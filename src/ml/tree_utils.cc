#include "ml/tree_utils.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/normal.h"

namespace smeter::ml {

double EntropyOfCounts(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

std::optional<SplitCandidate> EvaluateNominalSplit(
    const Dataset& data, const std::vector<size_t>& rows, size_t attr,
    size_t min_leaf) {
  const size_t n_branches = data.attribute(attr).num_values();
  const size_t n_classes = data.num_classes();
  std::vector<std::vector<double>> branch_counts(
      n_branches, std::vector<double>(n_classes, 0.0));
  std::vector<double> known_counts(n_classes, 0.0);
  double known = 0.0;
  for (size_t r : rows) {
    double v = data.value(r, attr);
    if (IsMissing(v)) continue;
    size_t cls = data.ClassOf(r).value();  // lint: checked: Dataset::Add validated the label
    // Dataset::Add guarantees nominal cells index into the value list.
    SMETER_DCHECK_LT(static_cast<size_t>(v), n_branches);
    branch_counts[static_cast<size_t>(v)][cls] += 1.0;
    known_counts[cls] += 1.0;
    known += 1.0;
  }
  if (known < 2.0) return std::nullopt;

  size_t populated = 0;
  double weighted_child_entropy = 0.0;
  double split_info = 0.0;
  for (const auto& counts : branch_counts) {
    double branch_total = 0.0;
    for (double c : counts) branch_total += c;
    if (branch_total >= static_cast<double>(min_leaf)) ++populated;
    if (branch_total <= 0.0) continue;
    double frac = branch_total / known;
    weighted_child_entropy += frac * EntropyOfCounts(counts);
    split_info -= frac * std::log2(frac);
  }
  if (populated < 2) return std::nullopt;

  double gain = EntropyOfCounts(known_counts) - weighted_child_entropy;
  // Scale by the fraction of rows with a known value (C4.5).
  gain *= known / static_cast<double>(rows.size());
  if (gain <= 1e-12 || split_info <= 1e-12) return std::nullopt;

  SplitCandidate out;
  out.attribute = attr;
  out.is_numeric = false;
  out.gain = gain;
  out.gain_ratio = gain / split_info;
  out.populated_branches = populated;
  return out;
}

std::optional<SplitCandidate> EvaluateNumericSplit(
    const Dataset& data, const std::vector<size_t>& rows, size_t attr,
    size_t min_leaf) {
  const size_t n_classes = data.num_classes();
  // (value, class) pairs with known values, sorted by value.
  std::vector<std::pair<double, size_t>> known;
  known.reserve(rows.size());
  for (size_t r : rows) {
    double v = data.value(r, attr);
    if (IsMissing(v)) continue;
    known.emplace_back(v, data.ClassOf(r).value());  // lint: checked: Dataset::Add validated the label
  }
  if (known.size() < 2 * min_leaf) return std::nullopt;
  std::sort(known.begin(), known.end());

  std::vector<double> total_counts(n_classes, 0.0);
  for (const auto& [v, cls] : known) total_counts[cls] += 1.0;
  const double n_known = static_cast<double>(known.size());
  const double parent_entropy = EntropyOfCounts(total_counts);

  std::vector<double> left_counts(n_classes, 0.0);
  double best_gain = -1.0;
  double best_threshold = 0.0;
  double best_left = 0.0;
  for (size_t i = 0; i + 1 < known.size(); ++i) {
    left_counts[known[i].second] += 1.0;
    if (known[i].first == known[i + 1].first) continue;  // not a boundary
    double n_left = static_cast<double>(i + 1);
    double n_right = n_known - n_left;
    if (n_left < static_cast<double>(min_leaf) ||
        n_right < static_cast<double>(min_leaf)) {
      continue;
    }
    std::vector<double> right_counts(n_classes, 0.0);
    for (size_t c = 0; c < n_classes; ++c) {
      right_counts[c] = total_counts[c] - left_counts[c];
    }
    double child_entropy =
        (n_left / n_known) * EntropyOfCounts(left_counts) +
        (n_right / n_known) * EntropyOfCounts(right_counts);
    double gain = parent_entropy - child_entropy;
    if (gain > best_gain) {
      best_gain = gain;
      best_threshold = 0.5 * (known[i].first + known[i + 1].first);
      best_left = n_left;
    }
  }
  if (best_gain <= 1e-12) return std::nullopt;

  // Scale by the known fraction, as with nominal splits.
  double known_frac = n_known / static_cast<double>(rows.size());
  double gain = best_gain * known_frac;

  double p_left = best_left / n_known;
  double split_info = 0.0;
  if (p_left > 0.0 && p_left < 1.0) {
    split_info = -p_left * std::log2(p_left) -
                 (1.0 - p_left) * std::log2(1.0 - p_left);
  }
  if (split_info <= 1e-12) return std::nullopt;

  SplitCandidate out;
  out.attribute = attr;
  out.is_numeric = true;
  out.threshold = best_threshold;
  out.gain = gain;
  out.gain_ratio = gain / split_info;
  out.populated_branches = 2;
  return out;
}

double PessimisticExtraErrors(double n, double e, double cf) {
  // Transliteration of Weka's weka.core.Utils-adjacent Stats.addErrs, the
  // confidence-bound heuristic C4.5 uses for pruning.
  if (cf > 0.5) return 0.0;  // degenerate confidence: no pessimism
  if (e < 1.0) {
    double base = n * (1.0 - std::pow(cf, 1.0 / n));
    if (e == 0.0) return base;
    return base + e * (PessimisticExtraErrors(n, 1.0, cf) - base);
  }
  if (e + 0.5 >= n) return std::max(n - e, 0.0);
  double z = InverseNormalCdf(1.0 - cf).value();  // lint: checked: cf in (0, 0.5] keeps the arg in domain
  double f = (e + 0.5) / n;
  double r =
      (f + z * z / (2.0 * n) +
       z * std::sqrt(f / n - f * f / n + z * z / (4.0 * n * n))) /
      (1.0 + z * z / n);
  return r * n - e;
}

}  // namespace smeter::ml
