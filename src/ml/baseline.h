// Trivial baselines: ZeroR (majority class) — Weka's sanity floor. Any
// real encoding/classifier pair must clear it; the evaluation benches use
// it to contextualize F-measures.

#ifndef SMETER_ML_BASELINE_H_
#define SMETER_ML_BASELINE_H_

#include <vector>

#include "ml/classifier.h"

namespace smeter::ml {

// Predicts the training majority class, always.
class ZeroR : public Classifier {
 public:
  Status Train(const Dataset& data) override;
  Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const override;
  std::string Name() const override { return "ZeroR"; }

 private:
  std::vector<double> distribution_;  // training class frequencies
  size_t width_ = 0;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_BASELINE_H_
