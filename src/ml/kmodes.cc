#include "ml/kmodes.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/check.h"

namespace smeter::ml {

double KModes::Distance(const std::vector<double>& row,
                        const std::vector<double>& mode) const {
  SMETER_DCHECK_EQ(mode.size(), attribute_indices_.size());
  SMETER_DCHECK_EQ(row.size(), schema_width_);
  double d = 0.0;
  for (size_t j = 0; j < attribute_indices_.size(); ++j) {
    double v = row[attribute_indices_[j]];
    // Missing never matches (counts as a full mismatch).
    if (IsMissing(v) || v != mode[j]) d += 1.0;
  }
  return d;
}

Status KModes::Fit(const Dataset& data) {
  if (options_.k == 0) return InvalidArgumentError("k must be > 0");
  if (data.num_instances() < options_.k) {
    return InvalidArgumentError("fewer instances than clusters");
  }
  attribute_indices_.clear();
  for (size_t a = 0; a < data.num_attributes(); ++a) {
    if (a == data.class_index()) continue;
    if (data.attribute(a).is_nominal()) attribute_indices_.push_back(a);
  }
  if (attribute_indices_.empty()) {
    return FailedPreconditionError("no nominal attributes to cluster on");
  }
  schema_width_ = data.num_attributes();
  const size_t n = data.num_instances();
  const size_t m = attribute_indices_.size();

  Rng rng(options_.seed);
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best_modes;
  std::vector<size_t> best_assignments;

  for (size_t restart = 0; restart < options_.restarts; ++restart) {
    // Initialize modes from distinct random rows.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng.Shuffle(order);
    std::vector<std::vector<double>> modes;
    for (size_t c = 0; c < options_.k; ++c) {
      std::vector<double> mode(m, 0.0);
      for (size_t j = 0; j < m; ++j) {
        double v = data.value(order[c], attribute_indices_[j]);
        mode[j] = IsMissing(v) ? 0.0 : v;
      }
      modes.push_back(std::move(mode));
    }

    std::vector<size_t> assignments(n, 0);
    double cost = 0.0;
    for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
      // Assignment step.
      bool changed = iter == 0;
      cost = 0.0;
      for (size_t r = 0; r < n; ++r) {
        size_t best_cluster = 0;
        double best_distance = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < options_.k; ++c) {
          double d = Distance(data.row(r), modes[c]);
          if (d < best_distance) {
            best_distance = d;
            best_cluster = c;
          }
        }
        if (assignments[r] != best_cluster) changed = true;
        assignments[r] = best_cluster;
        cost += best_distance;
      }
      if (!changed) break;

      // Mode-update step: per-cluster, per-attribute majority category.
      for (size_t c = 0; c < options_.k; ++c) {
        for (size_t j = 0; j < m; ++j) {
          std::map<double, size_t> counts;
          for (size_t r = 0; r < n; ++r) {
            if (assignments[r] != c) continue;
            double v = data.value(r, attribute_indices_[j]);
            if (!IsMissing(v)) ++counts[v];
          }
          if (counts.empty()) continue;  // empty cluster keeps its mode
          size_t best_count = 0;
          double best_value = modes[c][j];
          for (const auto& [value, count] : counts) {
            if (count > best_count) {
              best_count = count;
              best_value = value;
            }
          }
          modes[c][j] = best_value;
        }
      }
    }

    if (cost < best_cost) {
      best_cost = cost;
      best_modes = modes;
      best_assignments = assignments;
    }
  }

  modes_ = std::move(best_modes);
  assignments_ = std::move(best_assignments);
  cost_ = best_cost;
  fitted_ = true;
  return Status::Ok();
}

Result<size_t> KModes::Predict(const std::vector<double>& row) const {
  if (!fitted_) return FailedPreconditionError("KModes not fitted");
  if (row.size() != schema_width_) {
    return InvalidArgumentError("row width mismatch");
  }
  size_t best_cluster = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < modes_.size(); ++c) {
    double d = Distance(row, modes_[c]);
    if (d < best_distance) {
      best_distance = d;
      best_cluster = c;
    }
  }
  return best_cluster;
}

Result<double> AdjustedRandIndex(const std::vector<size_t>& a,
                                 const std::vector<size_t>& b) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("labelings differ in length");
  }
  if (a.empty()) return FailedPreconditionError("empty labelings");

  // Contingency table.
  std::map<std::pair<size_t, size_t>, double> joint;
  std::map<size_t, double> row_sums, col_sums;
  for (size_t i = 0; i < a.size(); ++i) {
    joint[{a[i], b[i]}] += 1.0;
    row_sums[a[i]] += 1.0;
    col_sums[b[i]] += 1.0;
  }
  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_joint = 0.0;
  for (const auto& [key, count] : joint) sum_joint += choose2(count);
  double sum_rows = 0.0;
  for (const auto& [key, count] : row_sums) sum_rows += choose2(count);
  double sum_cols = 0.0;
  for (const auto& [key, count] : col_sums) sum_cols += choose2(count);
  double total = choose2(static_cast<double>(a.size()));
  double expected = sum_rows * sum_cols / total;
  double maximum = 0.5 * (sum_rows + sum_cols);
  if (maximum == expected) return 1.0;  // both partitions trivial
  return (sum_joint - expected) / (maximum - expected);
}

}  // namespace smeter::ml
