// Split-selection primitives shared by the C4.5-style tree (J48 analogue)
// and the random forest's base trees: entropy, information gain, gain
// ratio, numeric threshold search, and C4.5's pessimistic error bound.

#ifndef SMETER_ML_TREE_UTILS_H_
#define SMETER_ML_TREE_UTILS_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/status.h"
#include "ml/instances.h"

namespace smeter::ml {

// Shannon entropy (bits) of a count vector; 0 for an all-zero vector.
double EntropyOfCounts(const std::vector<double>& counts);

// A scored candidate split of one attribute.
struct SplitCandidate {
  size_t attribute = 0;
  bool is_numeric = false;
  // Numeric splits send value <= threshold left, > threshold right.
  double threshold = 0.0;
  double gain = 0.0;        // information gain (bits)
  double gain_ratio = 0.0;  // gain / split information
  // Number of branches with at least `min_leaf` instances.
  size_t populated_branches = 0;
};

// Evaluates the multiway split on nominal attribute `attr` over `rows` of
// `data`. Rows with a missing value are excluded from the gain computation
// and the gain is scaled by the known fraction (C4.5's treatment). Returns
// nullopt if fewer than two branches would hold >= min_leaf rows.
std::optional<SplitCandidate> EvaluateNominalSplit(
    const Dataset& data, const std::vector<size_t>& rows, size_t attr,
    size_t min_leaf);

// Finds the best binary threshold on numeric attribute `attr` (midpoints
// between consecutive distinct known values). Same missing-value treatment.
// Returns nullopt if no threshold yields two branches with >= min_leaf rows.
std::optional<SplitCandidate> EvaluateNumericSplit(
    const Dataset& data, const std::vector<size_t>& rows, size_t attr,
    size_t min_leaf);

// C4.5's pessimistic extra-error estimate: given a leaf covering `n`
// instances with `e` training errors, the expected additional errors at
// confidence `cf` (Weka's Stats.addErrs). Used by subtree-replacement
// pruning.
double PessimisticExtraErrors(double n, double e, double cf);

}  // namespace smeter::ml

#endif  // SMETER_ML_TREE_UTILS_H_
