#include "ml/evaluation.h"

#include <optional>
#include <sstream>

#include "common/random.h"
#include "common/stopwatch.h"

namespace smeter::ml {

Status ClassificationMetrics::Merge(const ClassificationMetrics& other) {
  if (other.confusion_.size() != confusion_.size()) {
    return InvalidArgumentError("confusion matrix shapes differ");
  }
  for (size_t a = 0; a < confusion_.size(); ++a) {
    for (size_t p = 0; p < confusion_.size(); ++p) {
      confusion_[a][p] += other.confusion_[a][p];
    }
  }
  total_ += other.total_;
  return Status::Ok();
}

double ClassificationMetrics::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (size_t c = 0; c < confusion_.size(); ++c) correct += confusion_[c][c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ClassificationMetrics::Precision(size_t c) const {
  size_t predicted = 0;
  for (size_t a = 0; a < confusion_.size(); ++a) predicted += confusion_[a][c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(confusion_[c][c]) /
         static_cast<double>(predicted);
}

double ClassificationMetrics::Recall(size_t c) const {
  size_t actual = 0;
  for (size_t p = 0; p < confusion_.size(); ++p) actual += confusion_[c][p];
  if (actual == 0) return 0.0;
  return static_cast<double>(confusion_[c][c]) / static_cast<double>(actual);
}

double ClassificationMetrics::F1(size_t c) const {
  double precision = Precision(c);
  double recall = Recall(c);
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double ClassificationMetrics::WeightedF1() const {
  if (total_ == 0) return 0.0;
  double weighted = 0.0;
  for (size_t c = 0; c < confusion_.size(); ++c) {
    size_t support = 0;
    for (size_t p = 0; p < confusion_.size(); ++p) support += confusion_[c][p];
    weighted += static_cast<double>(support) * F1(c);
  }
  return weighted / static_cast<double>(total_);
}

double ClassificationMetrics::Kappa() const {
  if (total_ == 0) return 0.0;
  double n = static_cast<double>(total_);
  double expected = 0.0;
  for (size_t c = 0; c < confusion_.size(); ++c) {
    double actual = 0.0, predicted = 0.0;
    for (size_t i = 0; i < confusion_.size(); ++i) {
      actual += static_cast<double>(confusion_[c][i]);
      predicted += static_cast<double>(confusion_[i][c]);
    }
    expected += (actual / n) * (predicted / n);
  }
  if (expected >= 1.0) return 0.0;
  return (Accuracy() - expected) / (1.0 - expected);
}

std::string ClassificationMetrics::ToString(
    const std::vector<std::string>& class_names) const {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "accuracy " << Accuracy() << ", weighted F1 " << WeightedF1() << "\n";
  for (size_t c = 0; c < confusion_.size(); ++c) {
    std::string name =
        c < class_names.size() ? class_names[c] : std::to_string(c);
    out << "  " << name << ": P=" << Precision(c) << " R=" << Recall(c)
        << " F1=" << F1(c) << "\n";
  }
  return out.str();
}

Result<ClassificationMetrics> EvaluateTrainTest(Classifier& classifier,
                                                const Dataset& train,
                                                const Dataset& test) {
  if (train.num_attributes() != test.num_attributes() ||
      train.class_index() != test.class_index()) {
    return InvalidArgumentError("train/test schema mismatch");
  }
  for (size_t a = 0; a < train.num_attributes(); ++a) {
    if (train.attribute(a).kind() != test.attribute(a).kind() ||
        train.attribute(a).num_values() != test.attribute(a).num_values()) {
      return InvalidArgumentError("train/test attribute " +
                                  std::to_string(a) + " differs");
    }
  }
  SMETER_RETURN_IF_ERROR(classifier.Train(train));
  ClassificationMetrics metrics(train.num_classes());
  for (size_t r = 0; r < test.num_instances(); ++r) {
    Result<size_t> actual = test.ClassOf(r);
    if (!actual.ok()) return actual.status();
    Result<size_t> predicted = classifier.Predict(test.row(r));
    if (!predicted.ok()) return predicted.status();
    metrics.Record(*actual, *predicted);
  }
  return metrics;
}

Result<std::vector<std::vector<size_t>>> StratifiedFolds(const Dataset& data,
                                                         size_t folds,
                                                         uint64_t seed) {
  if (folds < 2) return InvalidArgumentError("need at least 2 folds");
  if (folds > data.num_instances()) {
    return InvalidArgumentError("more folds than instances");
  }
  if (data.num_classes() == 0) {
    return InvalidArgumentError("class attribute must be nominal");
  }
  // Group rows by class, shuffle within groups, then deal them round-robin.
  std::vector<std::vector<size_t>> by_class(data.num_classes());
  for (size_t r = 0; r < data.num_instances(); ++r) {
    Result<size_t> cls = data.ClassOf(r);
    if (!cls.ok()) return cls.status();
    by_class[*cls].push_back(r);
  }
  Rng rng(seed);
  std::vector<std::vector<size_t>> assignment(folds);
  size_t next_fold = 0;
  for (auto& rows : by_class) {
    rng.Shuffle(rows);
    for (size_t r : rows) {
      assignment[next_fold].push_back(r);
      next_fold = (next_fold + 1) % folds;
    }
  }
  return assignment;
}

Result<CrossValidationResult> CrossValidate(const ClassifierFactory& factory,
                                            const Dataset& data, size_t folds,
                                            uint64_t seed, ThreadPool* pool) {
  Result<std::vector<std::vector<size_t>>> fold_rows =
      StratifiedFolds(data, folds, seed);
  if (!fold_rows.ok()) return fold_rows.status();

  Stopwatch watch;
  // Folds are independent; each lane writes only its own slot, and the
  // slots merge in fold order below so the confusion matrix is identical
  // for any pool size.
  std::vector<std::optional<ClassificationMetrics>> per_fold(folds);
  auto run_folds = [&](size_t begin, size_t end) -> Status {
    for (size_t f = begin; f < end; ++f) {
      std::vector<size_t> train_rows;
      for (size_t g = 0; g < folds; ++g) {
        if (g == f) continue;
        train_rows.insert(train_rows.end(), (*fold_rows)[g].begin(),
                          (*fold_rows)[g].end());
      }
      Dataset train = data.Subset(train_rows);
      Dataset test = data.Subset((*fold_rows)[f]);
      std::unique_ptr<Classifier> classifier = factory();
      Result<ClassificationMetrics> fold_metrics =
          EvaluateTrainTest(*classifier, train, test);
      if (!fold_metrics.ok()) return fold_metrics.status();
      per_fold[f] = std::move(fold_metrics.value());
    }
    return Status::Ok();
  };
  if (pool != nullptr) {
    SMETER_RETURN_IF_ERROR(pool->ParallelFor(0, folds, 1, run_folds));
  } else {
    SMETER_RETURN_IF_ERROR(run_folds(0, folds));
  }

  CrossValidationResult result;
  result.metrics = ClassificationMetrics(data.num_classes());
  for (size_t f = 0; f < folds; ++f) {
    SMETER_RETURN_IF_ERROR(result.metrics.Merge(*per_fold[f]));
  }
  result.processing_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace smeter::ml
