#include "ml/classifier.h"

namespace smeter::ml {

Result<size_t> Classifier::Predict(const std::vector<double>& row) const {
  Result<std::vector<double>> dist = PredictDistribution(row);
  if (!dist.ok()) return dist.status();
  const std::vector<double>& p = dist.value();
  if (p.empty()) return InternalError("empty distribution");
  size_t best = 0;
  for (size_t i = 1; i < p.size(); ++i) {
    if (p[i] > p[best]) best = i;
  }
  return best;
}

Status CheckTrainable(const Dataset& data) {
  if (data.empty()) {
    return FailedPreconditionError("training set is empty");
  }
  if (!data.class_attribute().is_nominal()) {
    return InvalidArgumentError("class attribute must be nominal");
  }
  if (data.num_classes() < 2) {
    return InvalidArgumentError("need at least two classes");
  }
  for (size_t r = 0; r < data.num_instances(); ++r) {
    if (IsMissing(data.value(r, data.class_index()))) {
      return InvalidArgumentError("missing class label in row " +
                                  std::to_string(r));
    }
  }
  return Status::Ok();
}

}  // namespace smeter::ml
