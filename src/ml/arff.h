// ARFF import/export — the file format the paper fed to Weka ("the so
// generated files were used as input for Weka"). Supports numeric and
// nominal attributes and '?' missing values; that is the full feature set
// the experiments need.

#ifndef SMETER_ML_ARFF_H_
#define SMETER_ML_ARFF_H_

#include <string>

#include "common/status.h"
#include "ml/instances.h"

namespace smeter::ml {

// Renders `data` as ARFF text. The class attribute is written in place
// (its position is not encoded in ARFF; pass the same class index when
// reading back).
std::string ToArff(const Dataset& data);

// Parses ARFF text. `class_index` selects the class attribute; the default
// (-1) means the last attribute, Weka's convention.
Result<Dataset> FromArff(const std::string& text, int class_index = -1);

// Convenience wrappers.
Status WriteArffFile(const std::string& path, const Dataset& data);
Result<Dataset> ReadArffFile(const std::string& path, int class_index = -1);

}  // namespace smeter::ml

#endif  // SMETER_ML_ARFF_H_
