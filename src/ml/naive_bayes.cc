#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace smeter::ml {
namespace {

constexpr double kLogFloor = -700.0;  // exp() underflow guard

// Normalizes log scores into a probability distribution.
std::vector<double> SoftmaxFromLogs(const std::vector<double>& logs) {
  SMETER_DCHECK(!logs.empty());
  double max_log = *std::max_element(logs.begin(), logs.end());
  std::vector<double> p(logs.size());
  double sum = 0.0;
  for (size_t i = 0; i < logs.size(); ++i) {
    p[i] = std::exp(std::max(logs[i] - max_log, kLogFloor));
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace

Status NaiveBayes::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  const size_t n_attr = data.num_attributes();
  const size_t n_rows = data.num_instances();
  num_classes_ = data.num_classes();
  class_index_ = data.class_index();

  kinds_.assign(n_attr, AttributeKind::kNumeric);
  nominal_.assign(n_attr, {});
  numeric_.assign(n_attr, {});

  // Priors.
  std::vector<double> class_counts(num_classes_, 0.0);
  for (size_t r = 0; r < n_rows; ++r) {
    Result<size_t> cls = data.ClassOf(r);
    if (!cls.ok()) return cls.status();
    class_counts[*cls] += 1.0;
  }
  log_prior_.assign(num_classes_, 0.0);
  double prior_denominator =
      static_cast<double>(n_rows) +
      options_.laplace * static_cast<double>(num_classes_);
  for (size_t c = 0; c < num_classes_; ++c) {
    log_prior_[c] =
        std::log((class_counts[c] + options_.laplace) / prior_denominator);
  }

  for (size_t a = 0; a < n_attr; ++a) {
    if (a == class_index_) continue;
    const Attribute& attr = data.attribute(a);
    kinds_[a] = attr.kind();
    if (attr.is_nominal()) {
      const size_t n_cat = attr.num_values();
      std::vector<std::vector<double>> counts(
          num_classes_, std::vector<double>(n_cat, 0.0));
      std::vector<double> totals(num_classes_, 0.0);
      for (size_t r = 0; r < n_rows; ++r) {
        double v = data.value(r, a);
        if (IsMissing(v)) continue;
        size_t cls = data.ClassOf(r).value();  // lint: checked: Dataset::Add validated the label
        counts[cls][static_cast<size_t>(v)] += 1.0;
        totals[cls] += 1.0;
      }
      NominalModel model;
      model.log_likelihood.assign(num_classes_,
                                  std::vector<double>(n_cat, 0.0));
      for (size_t c = 0; c < num_classes_; ++c) {
        double denom =
            totals[c] + options_.laplace * static_cast<double>(n_cat);
        for (size_t v = 0; v < n_cat; ++v) {
          model.log_likelihood[c][v] =
              std::log((counts[c][v] + options_.laplace) / denom);
        }
      }
      nominal_[a] = std::move(model);
    } else {
      // Per-class Gaussian with a range-based variance floor.
      double global_min = 0.0, global_max = 0.0;
      bool any = false;
      std::vector<double> sum(num_classes_, 0.0), sq(num_classes_, 0.0),
          cnt(num_classes_, 0.0);
      for (size_t r = 0; r < n_rows; ++r) {
        double v = data.value(r, a);
        if (IsMissing(v)) continue;
        if (!any) {
          global_min = global_max = v;
          any = true;
        } else {
          global_min = std::min(global_min, v);
          global_max = std::max(global_max, v);
        }
        size_t cls = data.ClassOf(r).value();  // lint: checked: Dataset::Add validated the label
        sum[cls] += v;
        sq[cls] += v * v;
        cnt[cls] += 1.0;
      }
      double range = any ? (global_max - global_min) : 1.0;
      double floor_sd = std::max(options_.min_stddev_fraction * range, 1e-9);
      NumericModel model;
      model.mean.assign(num_classes_, 0.0);
      model.stddev.assign(num_classes_, floor_sd);
      for (size_t c = 0; c < num_classes_; ++c) {
        if (cnt[c] < 1.0) continue;  // class never saw this attribute
        double mean = sum[c] / cnt[c];
        double var = sq[c] / cnt[c] - mean * mean;
        model.mean[c] = mean;
        model.stddev[c] = std::max(std::sqrt(std::max(var, 0.0)), floor_sd);
      }
      numeric_[a] = std::move(model);
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> NaiveBayes::PredictDistribution(
    const std::vector<double>& row) const {
  if (num_classes_ == 0) {
    return FailedPreconditionError("NaiveBayes not trained");
  }
  if (row.size() != kinds_.size()) {
    return InvalidArgumentError("row width mismatch");
  }
  std::vector<double> logp = log_prior_;
  for (size_t a = 0; a < row.size(); ++a) {
    if (a == class_index_ || IsMissing(row[a])) continue;
    if (kinds_[a] == AttributeKind::kNominal) {
      size_t v = static_cast<size_t>(row[a]);
      if (row[a] < 0 || v >= nominal_[a].log_likelihood[0].size()) {
        return InvalidArgumentError("nominal index out of range at attr " +
                                    std::to_string(a));
      }
      for (size_t c = 0; c < num_classes_; ++c) {
        logp[c] += nominal_[a].log_likelihood[c][v];
      }
    } else {
      for (size_t c = 0; c < num_classes_; ++c) {
        double sd = numeric_[a].stddev[c];
        double z = (row[a] - numeric_[a].mean[c]) / sd;
        logp[c] += -0.5 * z * z - std::log(sd) - 0.9189385332046727;  // ln √2π
      }
    }
  }
  return SoftmaxFromLogs(logp);
}

}  // namespace smeter::ml
