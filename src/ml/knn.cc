#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace smeter::ml {

Status Knn::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  if (options_.k == 0) return InvalidArgumentError("k must be > 0");
  num_classes_ = data.num_classes();
  class_index_ = data.class_index();

  const size_t n_attr = data.num_attributes();
  kinds_.assign(n_attr, AttributeKind::kNumeric);
  numeric_min_.assign(n_attr, 0.0);
  numeric_inv_range_.assign(n_attr, 0.0);
  for (size_t a = 0; a < n_attr; ++a) {
    kinds_[a] = data.attribute(a).kind();
    if (a == class_index_ || data.attribute(a).is_nominal()) continue;
    bool any = false;
    double lo = 0.0, hi = 0.0;
    for (size_t r = 0; r < data.num_instances(); ++r) {
      double v = data.value(r, a);
      if (IsMissing(v)) continue;
      if (!any) {
        lo = hi = v;
        any = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    numeric_min_[a] = lo;
    numeric_inv_range_[a] = hi > lo ? 1.0 / (hi - lo) : 0.0;
  }

  instances_.clear();
  labels_.clear();
  for (size_t r = 0; r < data.num_instances(); ++r) {
    instances_.push_back(data.row(r));
    labels_.push_back(data.ClassOf(r).value());  // lint: checked: Dataset::Add validated the label
  }
  return Status::Ok();
}

double Knn::Distance(const std::vector<double>& a,
                     const std::vector<double>& b) const {
  double sum = 0.0;
  for (size_t j = 0; j < kinds_.size(); ++j) {
    if (j == class_index_) continue;
    double va = a[j], vb = b[j];
    double d;
    if (IsMissing(va) || IsMissing(vb)) {
      d = 1.0;  // maximal attribute distance
    } else if (kinds_[j] == AttributeKind::kNominal) {
      d = va == vb ? 0.0 : 1.0;
    } else {
      d = std::abs(va - vb) * numeric_inv_range_[j];
      d = std::min(d, 1.0);
    }
    sum += d * d;
  }
  return std::sqrt(sum);
}

Result<std::vector<double>> Knn::PredictDistribution(
    const std::vector<double>& row) const {
  if (instances_.empty()) return FailedPreconditionError("kNN not trained");
  if (row.size() != kinds_.size()) {
    return InvalidArgumentError("row width mismatch");
  }

  // Partial sort of (distance, index).
  std::vector<std::pair<double, size_t>> distances;
  distances.reserve(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    distances.emplace_back(Distance(row, instances_[i]), i);
  }
  size_t k = std::min(options_.k, distances.size());
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<long>(k),
                    distances.end());

  std::vector<double> votes(num_classes_, 0.0);
  for (size_t i = 0; i < k; ++i) {
    double weight = options_.distance_weighted
                        ? 1.0 / (distances[i].first + 1e-9)
                        : 1.0;
    votes[labels_[distances[i].second]] += weight;
  }
  double total = 0.0;
  for (double v : votes) total += v;
  for (double& v : votes) v /= total;
  return votes;
}

}  // namespace smeter::ml
