// Evaluation protocol matching the paper: stratified 10-fold
// cross-validation, weighted F-measure ("the weighted harmonic mean of
// Precision and Recall"), and wall-clock processing time.

#ifndef SMETER_ML_EVALUATION_H_
#define SMETER_ML_EVALUATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ml/classifier.h"

namespace smeter::ml {

// Confusion-matrix-backed classification metrics.
class ClassificationMetrics {
 public:
  explicit ClassificationMetrics(size_t num_classes)
      : confusion_(num_classes, std::vector<size_t>(num_classes, 0)) {}

  void Record(size_t actual, size_t predicted) {
    ++confusion_[actual][predicted];
    ++total_;
  }

  // Merges another matrix of the same shape (fold accumulation).
  Status Merge(const ClassificationMetrics& other);

  size_t num_classes() const { return confusion_.size(); }
  size_t total() const { return total_; }
  const std::vector<std::vector<size_t>>& confusion() const {
    return confusion_;
  }

  double Accuracy() const;
  // Per-class precision / recall / F1; 0 when undefined (no predictions or
  // no instances of the class), matching Weka's convention.
  double Precision(size_t c) const;
  double Recall(size_t c) const;
  double F1(size_t c) const;
  // F-measure averaged over classes weighted by class support — the number
  // the paper's figures and Table 1 report.
  double WeightedF1() const;
  // Cohen's kappa: agreement beyond chance; 0 for a ZeroR-like predictor.
  double Kappa() const;

  // Multi-line rendering with per-class rows.
  std::string ToString(const std::vector<std::string>& class_names) const;

 private:
  std::vector<std::vector<size_t>> confusion_;  // [actual][predicted]
  size_t total_ = 0;
};

// Creates fresh classifier instances for each CV fold.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

// Trains `classifier` on `train` and scores it on `test` (same schema).
Result<ClassificationMetrics> EvaluateTrainTest(Classifier& classifier,
                                                const Dataset& train,
                                                const Dataset& test);

// Stratified fold assignment: returns `folds` disjoint row-index lists
// covering the dataset, with class proportions approximately preserved.
// Errors if folds < 2 or folds > #instances.
Result<std::vector<std::vector<size_t>>> StratifiedFolds(const Dataset& data,
                                                         size_t folds,
                                                         uint64_t seed);

struct CrossValidationResult {
  ClassificationMetrics metrics{0};
  // Wall time spent in Train + Predict across all folds (the paper's
  // "processing time").
  double processing_seconds = 0.0;
};

// Stratified k-fold cross-validation. Folds are independent, so when
// `pool` is set (not owned; nullptr = serial) they train and score in
// parallel; metrics merge in fold order, making the result identical for
// any pool size. The factory is invoked concurrently from pool threads and
// must be safe to call in parallel. `processing_seconds` is wall time, so
// it shrinks with the pool.
Result<CrossValidationResult> CrossValidate(const ClassifierFactory& factory,
                                            const Dataset& data, size_t folds,
                                            uint64_t seed,
                                            ThreadPool* pool = nullptr);

}  // namespace smeter::ml

#endif  // SMETER_ML_EVALUATION_H_
