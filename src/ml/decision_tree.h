// C4.5-style decision tree — the J48 analogue — also used (unpruned, with a
// random attribute subset per node) as the random forest's base learner.
//
// Splits: multiway on nominal attributes, binary threshold on numeric
// attributes; selection by gain ratio (C4.5) or plain information gain.
// Missing values: excluded from split scoring (gain scaled by the known
// fraction) and routed to the most-populated branch when partitioning and
// predicting. Pruning: C4.5 pessimistic subtree replacement at confidence
// 0.25 by default.

#ifndef SMETER_ML_DECISION_TREE_H_
#define SMETER_ML_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "ml/classifier.h"
#include "ml/tree_utils.h"

namespace smeter::ml {

struct DecisionTreeOptions {
  // C4.5 selects by gain ratio; random-forest trees use raw gain.
  bool use_gain_ratio = true;
  // Minimum instances per populated branch (Weka J48 -M, default 2).
  size_t min_leaf = 2;
  // 0 = unlimited depth.
  size_t max_depth = 0;
  // Pessimistic subtree-replacement pruning (J48 -C, default 0.25).
  bool prune = true;
  double pruning_confidence = 0.25;
  // When > 0, each node considers only this many randomly chosen
  // attributes (the forest's mtry). 0 = all attributes.
  size_t random_feature_subset = 0;
  uint64_t seed = 7;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(const DecisionTreeOptions& options = {})
      : options_(options) {}

  Status Train(const Dataset& data) override;
  Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const override;
  std::string Name() const override { return "J48"; }

  // Structure metrics, for tests and ablations.
  size_t NumNodes() const;
  size_t NumLeaves() const;
  size_t Depth() const;

  // Indented textual rendering of the tree (attribute names from training).
  std::string ToString() const;

 private:
  struct Node {
    bool is_leaf = true;
    // Split description (valid when !is_leaf).
    size_t attribute = 0;
    bool numeric_split = false;
    double threshold = 0.0;
    // Children: nominal -> one per category; numeric -> [<=, >].
    std::vector<std::unique_ptr<Node>> children;
    size_t majority_child = 0;  // route for missing values
    // Training class counts reaching this node.
    std::vector<double> class_counts;
    size_t majority_class = 0;
  };

  std::unique_ptr<Node> BuildNode(const Dataset& data,
                                  const std::vector<size_t>& rows,
                                  size_t depth, Rng& rng);
  // Returns the subtree's pessimistic error; replaces subtrees by leaves
  // when that does not hurt the bound.
  double PruneNode(Node* node);
  const Node* Route(const Node* node, const std::vector<double>& row) const;

  void CollectStats(const Node* node, size_t depth, size_t* nodes,
                    size_t* leaves, size_t* max_depth) const;
  void Render(const Node* node, size_t indent, std::string* out) const;

  DecisionTreeOptions options_;
  std::unique_ptr<Node> root_;
  std::vector<Attribute> schema_;
  size_t class_index_ = 0;
  size_t num_classes_ = 0;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_DECISION_TREE_H_
