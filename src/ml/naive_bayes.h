// Naive Bayes classifier (Weka `NaiveBayes` analogue).
//
// Nominal attributes use Laplace-smoothed frequency estimates; numeric
// attributes use per-class Gaussians with a variance floor. Missing cells
// are skipped both in training counts and at prediction time, which is the
// standard NB treatment and matches Weka.

#ifndef SMETER_ML_NAIVE_BAYES_H_
#define SMETER_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/classifier.h"

namespace smeter::ml {

struct NaiveBayesOptions {
  // Laplace smoothing pseudo-count for nominal likelihoods and priors.
  double laplace = 1.0;
  // Minimum per-class standard deviation for numeric attributes, as a
  // fraction of the attribute's global range (Weka uses a 0.1/precision
  // floor; a range fraction is scale-free).
  double min_stddev_fraction = 1e-3;
};

class NaiveBayes : public Classifier {
 public:
  explicit NaiveBayes(const NaiveBayesOptions& options = {})
      : options_(options) {}

  Status Train(const Dataset& data) override;
  Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const override;
  std::string Name() const override { return "NaiveBayes"; }

 private:
  struct NominalModel {
    // [class][category] -> smoothed log-likelihood.
    std::vector<std::vector<double>> log_likelihood;
  };
  struct NumericModel {
    std::vector<double> mean;    // per class
    std::vector<double> stddev;  // per class, floored
  };

  NaiveBayesOptions options_;
  size_t num_classes_ = 0;
  size_t class_index_ = 0;
  std::vector<double> log_prior_;
  // One entry per attribute; the class attribute's entry is unused.
  std::vector<NominalModel> nominal_;
  std::vector<NumericModel> numeric_;
  std::vector<AttributeKind> kinds_;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_NAIVE_BAYES_H_
