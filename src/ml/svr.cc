#include "ml/svr.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smeter::ml {

std::vector<double> Svr::Standardize(const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - feat_mean_[j]) * feat_inv_std_[j];
  }
  return out;
}

Status Svr::Train(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y) {
  if (x.empty()) return FailedPreconditionError("empty training set");
  if (x.size() != y.size()) {
    return InvalidArgumentError("feature/target count mismatch");
  }
  dim_ = x[0].size();
  if (dim_ == 0) return InvalidArgumentError("zero-dimensional features");
  for (const auto& row : x) {
    if (row.size() != dim_) return InvalidArgumentError("ragged feature rows");
  }
  if (options_.c <= 0.0) return InvalidArgumentError("C must be > 0");
  if (options_.epsilon_tube < 0.0) {
    return InvalidArgumentError("epsilon_tube must be >= 0");
  }

  const size_t n = x.size();

  // Standardization statistics.
  feat_mean_.assign(dim_, 0.0);
  feat_inv_std_.assign(dim_, 1.0);
  if (options_.standardize) {
    for (size_t j = 0; j < dim_; ++j) {
      double sum = 0.0, sq = 0.0;
      for (size_t i = 0; i < n; ++i) {
        sum += x[i][j];
        sq += x[i][j] * x[i][j];
      }
      double mean = sum / static_cast<double>(n);
      double var = std::max(sq / static_cast<double>(n) - mean * mean, 0.0);
      feat_mean_[j] = mean;
      feat_inv_std_[j] = 1.0 / std::max(std::sqrt(var), 1e-9);
    }
    double sum = 0.0, sq = 0.0;
    for (double v : y) {
      sum += v;
      sq += v * v;
    }
    y_mean_ = sum / static_cast<double>(n);
    y_std_ = std::max(
        std::sqrt(std::max(sq / static_cast<double>(n) - y_mean_ * y_mean_,
                           0.0)),
        1e-9);
  } else {
    y_mean_ = 0.0;
    y_std_ = 1.0;
  }

  std::vector<std::vector<double>> xs(n);
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = Standardize(x[i]);
    ys[i] = (y[i] - y_mean_) / y_std_;
  }

  resolved_kernel_ = options_.kernel;
  Result<double> gamma = ResolveGamma(options_.kernel, dim_);
  if (!gamma.ok()) return gamma.status();
  resolved_kernel_.gamma = gamma.value();

  // Precompute the kernel matrix (n is small in all our workloads).
  std::vector<std::vector<double>> kernel(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = KernelEval(resolved_kernel_, xs[i], xs[j]);
      kernel[i][j] = v;
      kernel[j][i] = v;
    }
  }

  // Dual variables in the beta parameterization: u < n is the alpha half
  // (b in [0, C]), u >= n the alpha* half (b in [-C, 0]).
  const size_t m = 2 * n;
  const double c_box = options_.c;
  const double eps = options_.epsilon_tube;
  std::vector<double> b(m, 0.0);
  std::vector<double> lower(m), upper(m), lin(m);
  for (size_t u = 0; u < m; ++u) {
    size_t i = u % n;
    bool alpha_half = u < n;
    lower[u] = alpha_half ? 0.0 : -c_box;
    upper[u] = alpha_half ? c_box : 0.0;
    // z_u * p_u with p_u = eps - y_i (alpha half, z = +1) or eps + y_i
    // (alpha* half, z = -1).
    lin[u] = alpha_half ? (eps - ys[i]) : -(eps + ys[i]);
  }
  // Gradient g_u = lin_u + sum_v K(i(u), i(v)) b_v. Track the kernel-sum
  // term via per-point beta sums.
  std::vector<double> kb(n, 0.0);  // (K beta)_i
  auto gradient = [&](size_t u) { return lin[u] + kb[u % n]; };

  iterations_used_ = 0;
  double last_low = 0.0, last_high = 0.0;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Maximal violating pair: i can increase (b_i < upper), j can decrease.
    size_t best_i = m, best_j = m;
    double min_gi = std::numeric_limits<double>::infinity();
    double max_gj = -std::numeric_limits<double>::infinity();
    for (size_t u = 0; u < m; ++u) {
      double g = gradient(u);
      if (b[u] < upper[u] - 1e-12 && g < min_gi) {
        min_gi = g;
        best_i = u;
      }
      if (b[u] > lower[u] + 1e-12 && g > max_gj) {
        max_gj = g;
        best_j = u;
      }
    }
    last_low = min_gi;
    last_high = max_gj;
    if (best_i == m || best_j == m || max_gj - min_gi < options_.tolerance) {
      break;
    }

    size_t pi = best_i % n, pj = best_j % n;
    double eta =
        kernel[pi][pi] + kernel[pj][pj] - 2.0 * kernel[pi][pj];
    eta = std::max(eta, 1e-12);
    double t = (max_gj - min_gi) / eta;
    t = std::min(t, upper[best_i] - b[best_i]);
    t = std::min(t, b[best_j] - lower[best_j]);
    if (t <= 0.0) break;  // numerically stuck

    b[best_i] += t;
    b[best_j] -= t;
    for (size_t i = 0; i < n; ++i) {
      kb[i] += t * (kernel[i][pi] - kernel[i][pj]);
    }
    ++iterations_used_;
  }

  // Bias from free variables (KKT: g_u = -bias for strictly interior b_u).
  double bias_sum = 0.0;
  size_t bias_count = 0;
  for (size_t u = 0; u < m; ++u) {
    if (b[u] > lower[u] + 1e-8 && b[u] < upper[u] - 1e-8) {
      bias_sum += -gradient(u);
      ++bias_count;
    }
  }
  bias_ = bias_count > 0 ? bias_sum / static_cast<double>(bias_count)
                         : -0.5 * (last_low + last_high);

  // Collapse to per-point coefficients; keep only support vectors.
  support_.clear();
  beta_.clear();
  for (size_t i = 0; i < n; ++i) {
    double coeff = b[i] + b[i + n];
    if (std::abs(coeff) > 1e-12) {
      support_.push_back(xs[i]);
      beta_.push_back(coeff);
    }
  }
  trained_ = true;
  return Status::Ok();
}

Result<double> Svr::Predict(const std::vector<double>& x) const {
  if (!trained_) return FailedPreconditionError("SVR not trained");
  if (x.size() != dim_) return InvalidArgumentError("feature width mismatch");
  std::vector<double> xs = Standardize(x);
  double f = bias_;
  for (size_t s = 0; s < support_.size(); ++s) {
    f += beta_[s] * KernelEval(resolved_kernel_, support_[s], xs);
  }
  return f * y_std_ + y_mean_;
}

}  // namespace smeter::ml
