// Common interface for all classifiers (the Weka `Classifier` analogue).
//
// All learners are deterministic given their options (randomized learners
// take an explicit seed), train on a Dataset with a nominal class, and
// predict a class-probability distribution per instance.

#ifndef SMETER_ML_CLASSIFIER_H_
#define SMETER_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/instances.h"

namespace smeter::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Trains on `data`; the class attribute must be nominal with >= 2
  // categories and every row must have a class label.
  virtual Status Train(const Dataset& data) = 0;

  // Returns P(class | row) over the training class categories. `row` uses
  // the training schema; the class cell is ignored (may be kMissing).
  virtual Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const = 0;

  virtual std::string Name() const = 0;

  // Argmax of PredictDistribution (ties break toward the lower index,
  // matching Weka).
  Result<size_t> Predict(const std::vector<double>& row) const;
};

// Validates the shared Train() preconditions; learners call this first.
Status CheckTrainable(const Dataset& data);

}  // namespace smeter::ml

#endif  // SMETER_ML_CLASSIFIER_H_
