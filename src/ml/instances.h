// Dataset container (Weka "Instances" analogue).
//
// An instance is a row of doubles: numeric attributes hold their value,
// nominal attributes hold a category index, and missing cells hold NaN
// (IsMissing). One attribute is designated the class attribute.

#ifndef SMETER_ML_INSTANCES_H_
#define SMETER_ML_INSTANCES_H_

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "ml/attribute.h"

namespace smeter::ml {

// Sentinel for missing cells.
inline constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

inline bool IsMissing(double v) { return std::isnan(v); }

class Dataset {
 public:
  // `class_index` must address one of `attributes`. For classification the
  // class attribute must be nominal; regression targets are numeric.
  static Result<Dataset> Create(std::string relation,
                                std::vector<Attribute> attributes,
                                size_t class_index);

  // Appends a row. Validates width, nominal index ranges, and finiteness
  // (missing cells must be kMissing, not infinities).
  Status Add(std::vector<double> row);

  const std::string& relation() const { return relation_; }
  size_t num_attributes() const { return attributes_.size(); }
  size_t num_instances() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Attribute& attribute(size_t i) const {
    SMETER_DCHECK_LT(i, attributes_.size());
    return attributes_[i];
  }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t class_index() const { return class_index_; }
  const Attribute& class_attribute() const {
    return attributes_[class_index_];
  }
  // Number of classes (nominal class) — 0 for a numeric class attribute.
  size_t num_classes() const { return class_attribute().num_values(); }

  const std::vector<double>& row(size_t r) const {
    SMETER_DCHECK_LT(r, rows_.size());
    return rows_[r];
  }
  double value(size_t r, size_t c) const {
    SMETER_DCHECK_LT(r, rows_.size());
    SMETER_DCHECK_LT(c, rows_[r].size());
    return rows_[r][c];
  }

  // Class index of row `r`; errors if the class cell is missing.
  Result<size_t> ClassOf(size_t r) const;

  // Numeric class value of row `r` (regression); errors if missing.
  Result<double> TargetOf(size_t r) const;

  // A new dataset with the same schema containing the selected rows
  // (indices may repeat — used by bagging).
  Dataset Subset(const std::vector<size_t>& indices) const;

  // A new dataset with the same schema and no rows.
  Dataset EmptyCopy() const;

 private:
  Dataset(std::string relation, std::vector<Attribute> attributes,
          size_t class_index)
      : relation_(std::move(relation)),
        attributes_(std::move(attributes)),
        class_index_(class_index) {}

  std::string relation_;
  std::vector<Attribute> attributes_;
  size_t class_index_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_INSTANCES_H_
