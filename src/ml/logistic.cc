#include "ml/logistic.h"

#include <algorithm>
#include <cmath>

namespace smeter::ml {
namespace {

// Softmax over raw scores, numerically stable.
std::vector<double> Softmax(const std::vector<double>& scores) {
  double max_score = *std::max_element(scores.begin(), scores.end());
  std::vector<double> p(scores.size());
  double sum = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    p[i] = std::exp(scores[i] - max_score);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace

std::vector<double> Logistic::Featurize(const std::vector<double>& row) const {
  std::vector<double> x(feature_dim_, 0.0);
  for (size_t a = 0; a < schema_.size(); ++a) {
    if (a == class_index_) continue;
    size_t off = feature_offset_[a];
    double v = row[a];
    if (schema_[a].is_numeric()) {
      // Missing -> mean -> 0 after standardization.
      x[off] = IsMissing(v) ? 0.0 : (v - mean_[a]) * inv_std_[a];
    } else {
      size_t cat = IsMissing(v) ? mode_[a] : static_cast<size_t>(v);
      if (cat < schema_[a].num_values()) x[off + cat] = 1.0;
    }
  }
  return x;
}

Status Logistic::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  schema_ = data.attributes();
  class_index_ = data.class_index();
  num_classes_ = data.num_classes();
  const size_t n = data.num_instances();
  const size_t n_attr = schema_.size();

  // Feature layout + standardization / imputation statistics.
  feature_offset_.assign(n_attr, 0);
  mean_.assign(n_attr, 0.0);
  inv_std_.assign(n_attr, 1.0);
  mode_.assign(n_attr, 0);
  feature_dim_ = 0;
  for (size_t a = 0; a < n_attr; ++a) {
    if (a == class_index_) continue;
    feature_offset_[a] = feature_dim_;
    if (schema_[a].is_numeric()) {
      feature_dim_ += 1;
      double sum = 0.0, sq = 0.0, cnt = 0.0;
      for (size_t r = 0; r < n; ++r) {
        double v = data.value(r, a);
        if (IsMissing(v)) continue;
        sum += v;
        sq += v * v;
        cnt += 1.0;
      }
      if (cnt > 0.0) {
        double mean = sum / cnt;
        double var = std::max(sq / cnt - mean * mean, 0.0);
        mean_[a] = mean;
        inv_std_[a] = 1.0 / std::max(std::sqrt(var), 1e-9);
      }
    } else {
      feature_dim_ += schema_[a].num_values();
      std::vector<size_t> counts(schema_[a].num_values(), 0);
      for (size_t r = 0; r < n; ++r) {
        double v = data.value(r, a);
        if (!IsMissing(v)) ++counts[static_cast<size_t>(v)];
      }
      mode_[a] = static_cast<size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
    }
  }

  // Pre-featurize the training set.
  std::vector<std::vector<double>> features;
  std::vector<size_t> labels;
  features.reserve(n);
  labels.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    features.push_back(Featurize(data.row(r)));
    labels.push_back(data.ClassOf(r).value());  // lint: checked: Dataset::Add validated the label
  }

  const size_t dim = feature_dim_ + 1;  // + bias
  weights_.assign(num_classes_, std::vector<double>(dim, 0.0));

  auto objective_and_gradient =
      [&](const std::vector<std::vector<double>>& w,
          std::vector<std::vector<double>>* grad) -> double {
    double nll = 0.0;
    if (grad != nullptr) {
      grad->assign(num_classes_, std::vector<double>(dim, 0.0));
    }
    std::vector<double> scores(num_classes_);
    for (size_t r = 0; r < n; ++r) {
      const std::vector<double>& x = features[r];
      for (size_t c = 0; c < num_classes_; ++c) {
        double s = w[c][feature_dim_];  // bias
        for (size_t j = 0; j < feature_dim_; ++j) s += w[c][j] * x[j];
        scores[c] = s;
      }
      std::vector<double> p = Softmax(scores);
      nll -= std::log(std::max(p[labels[r]], 1e-300));
      if (grad != nullptr) {
        for (size_t c = 0; c < num_classes_; ++c) {
          double delta = p[c] - (c == labels[r] ? 1.0 : 0.0);
          for (size_t j = 0; j < feature_dim_; ++j) {
            (*grad)[c][j] += delta * x[j];
          }
          (*grad)[c][feature_dim_] += delta;
        }
      }
    }
    // Ridge on non-bias weights.
    for (size_t c = 0; c < num_classes_; ++c) {
      for (size_t j = 0; j < feature_dim_; ++j) {
        nll += 0.5 * options_.ridge * w[c][j] * w[c][j];
        if (grad != nullptr) (*grad)[c][j] += options_.ridge * w[c][j];
      }
    }
    return nll;
  };

  std::vector<std::vector<double>> grad;
  double loss = objective_and_gradient(weights_, &grad);
  double step = 1.0 / static_cast<double>(std::max<size_t>(n, 1));
  iterations_used_ = 0;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    double grad_norm = 0.0;
    for (const auto& gc : grad) {
      for (double g : gc) grad_norm += g * g;
    }
    grad_norm = std::sqrt(grad_norm);
    if (grad_norm < options_.gradient_tolerance) break;

    // Backtracking line search along -grad.
    bool improved = false;
    for (int attempt = 0; attempt < 40; ++attempt) {
      std::vector<std::vector<double>> trial = weights_;
      for (size_t c = 0; c < num_classes_; ++c) {
        for (size_t j = 0; j < dim; ++j) {
          trial[c][j] -= step * grad[c][j];
        }
      }
      double trial_loss = objective_and_gradient(trial, nullptr);
      if (trial_loss < loss) {
        weights_ = std::move(trial);
        loss = trial_loss;
        step *= 1.3;  // tentatively grow for the next iteration
        improved = true;
        break;
      }
      step *= 0.5;
    }
    ++iterations_used_;
    if (!improved) break;
    loss = objective_and_gradient(weights_, &grad);
  }
  return Status::Ok();
}

Result<std::vector<double>> Logistic::PredictDistribution(
    const std::vector<double>& row) const {
  if (weights_.empty()) return FailedPreconditionError("Logistic not trained");
  if (row.size() != schema_.size()) {
    return InvalidArgumentError("row width mismatch");
  }
  std::vector<double> x = Featurize(row);
  std::vector<double> scores(num_classes_);
  for (size_t c = 0; c < num_classes_; ++c) {
    double s = weights_[c][feature_dim_];
    for (size_t j = 0; j < feature_dim_; ++j) s += weights_[c][j] * x[j];
    scores[c] = s;
  }
  return Softmax(scores);
}

}  // namespace smeter::ml
