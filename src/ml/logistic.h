// Multinomial logistic regression with a ridge penalty (Weka `Logistic`
// analogue, which is also ridge-regularized multinomial logistic).
//
// Nominal attributes are one-hot encoded; numeric attributes are
// standardized internally. Missing numeric cells impute the training mean
// (0 after standardization); missing nominal cells impute the training
// mode. Trained by full-batch gradient descent with backtracking line
// search — the day-vector datasets are tiny, so robustness beats speed.

#ifndef SMETER_ML_LOGISTIC_H_
#define SMETER_ML_LOGISTIC_H_

#include <vector>

#include "ml/classifier.h"

namespace smeter::ml {

struct LogisticOptions {
  double ridge = 1e-4;  // Weka's default 1e-8 is numerically fragile here
  size_t max_iterations = 300;
  double gradient_tolerance = 1e-6;
};

class Logistic : public Classifier {
 public:
  explicit Logistic(const LogisticOptions& options = {}) : options_(options) {}

  Status Train(const Dataset& data) override;
  Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const override;
  std::string Name() const override { return "Logistic"; }

  // Iterations the optimizer actually ran (for tests).
  size_t iterations_used() const { return iterations_used_; }

 private:
  // Expands a schema row into the standardized one-hot feature vector
  // (without bias).
  std::vector<double> Featurize(const std::vector<double>& row) const;

  LogisticOptions options_;
  size_t num_classes_ = 0;
  size_t class_index_ = 0;
  std::vector<Attribute> schema_;
  // Per original attribute: offset into the expanded feature vector.
  std::vector<size_t> feature_offset_;
  size_t feature_dim_ = 0;
  // Standardization parameters for numeric attributes (indexed by original
  // attribute; unused entries 0/1).
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  // Imputation mode for nominal attributes.
  std::vector<size_t> mode_;
  // Weights: [class][feature_dim_ + 1], bias last.
  std::vector<std::vector<double>> weights_;
  size_t iterations_used_ = 0;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_LOGISTIC_H_
