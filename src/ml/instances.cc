#include "ml/instances.h"

namespace smeter::ml {

Result<Dataset> Dataset::Create(std::string relation,
                                std::vector<Attribute> attributes,
                                size_t class_index) {
  if (attributes.empty()) {
    return InvalidArgumentError("dataset needs at least one attribute");
  }
  if (class_index >= attributes.size()) {
    return InvalidArgumentError("class_index out of range");
  }
  return Dataset(std::move(relation), std::move(attributes), class_index);
}

Status Dataset::Add(std::vector<double> row) {
  if (row.size() != attributes_.size()) {
    return InvalidArgumentError(
        "row width " + std::to_string(row.size()) + " != " +
        std::to_string(attributes_.size()) + " attributes");
  }
  for (size_t c = 0; c < row.size(); ++c) {
    double v = row[c];
    if (IsMissing(v)) continue;
    if (std::isinf(v)) {
      return InvalidArgumentError("infinite value in attribute " +
                                  attributes_[c].name());
    }
    if (attributes_[c].is_nominal()) {
      if (v < 0 || v != std::floor(v) ||
          static_cast<size_t>(v) >= attributes_[c].num_values()) {
        return InvalidArgumentError("bad nominal index for attribute " +
                                    attributes_[c].name());
      }
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Result<size_t> Dataset::ClassOf(size_t r) const {
  double v = rows_[r][class_index_];
  if (IsMissing(v)) {
    return FailedPreconditionError("missing class in row " +
                                   std::to_string(r));
  }
  return static_cast<size_t>(v);
}

Result<double> Dataset::TargetOf(size_t r) const {
  double v = rows_[r][class_index_];
  if (IsMissing(v)) {
    return FailedPreconditionError("missing target in row " +
                                   std::to_string(r));
  }
  return v;
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out(relation_, attributes_, class_index_);
  out.rows_.reserve(indices.size());
  for (size_t i : indices) out.rows_.push_back(rows_[i]);
  return out;
}

Dataset Dataset::EmptyCopy() const {
  return Dataset(relation_, attributes_, class_index_);
}

}  // namespace smeter::ml
