// Random forest (Weka `RandomForest` analogue): bagged, unpruned,
// gain-selected trees with a random attribute subset at every node;
// prediction averages the trees' leaf distributions.

#ifndef SMETER_ML_RANDOM_FOREST_H_
#define SMETER_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace smeter::ml {

struct RandomForestOptions {
  size_t num_trees = 50;
  // Attributes examined per node; 0 = Weka's default
  // floor(log2(num_attributes - 1) + 1).
  size_t features_per_node = 0;
  // 0 = unlimited (Weka default).
  size_t max_depth = 0;
  size_t min_leaf = 1;
  uint64_t seed = 1;
  // Trains trees on this pool when set (not owned; nullptr = serial).
  // Every tree's bootstrap bag and RNG seed are drawn from the master
  // stream up front, so the trained forest — trees, predictions, and
  // oob_accuracy — is bit-identical for any pool size, including none.
  ThreadPool* pool = nullptr;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(const RandomForestOptions& options = {})
      : options_(options) {}

  Status Train(const Dataset& data) override;
  Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const override;
  std::string Name() const override { return "RandomForest"; }

  size_t num_trees() const { return trees_.size(); }

  // Out-of-bag accuracy estimate computed during Train() (instances judged
  // only by trees whose bootstrap missed them). NaN if no instance was ever
  // out of bag.
  double oob_accuracy() const { return oob_accuracy_; }

 private:
  RandomForestOptions options_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  size_t num_classes_ = 0;
  double oob_accuracy_ = 0.0;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_RANDOM_FOREST_H_
