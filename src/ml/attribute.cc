#include "ml/attribute.h"

namespace smeter::ml {

Attribute Attribute::Numeric(std::string name) {
  return Attribute(AttributeKind::kNumeric, std::move(name), {});
}

Attribute Attribute::Nominal(std::string name,
                             std::vector<std::string> values) {
  return Attribute(AttributeKind::kNominal, std::move(name),
                   std::move(values));
}

Result<std::string> Attribute::ValueName(size_t i) const {
  if (!is_nominal()) {
    return FailedPreconditionError("numeric attribute has no value names");
  }
  if (i >= values_.size()) {
    return OutOfRangeError("nominal index " + std::to_string(i) +
                           " out of range for attribute " + name_);
  }
  return values_[i];
}

Result<size_t> Attribute::IndexOf(const std::string& label) const {
  if (!is_nominal()) {
    return FailedPreconditionError("numeric attribute has no categories");
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == label) return i;
  }
  return NotFoundError("category '" + label + "' not in attribute " + name_);
}

}  // namespace smeter::ml
