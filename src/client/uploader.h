// Client-SDK uploader: drains crash-safe spools into a running ingestd
// over real TCP sockets, with retry, jittered backoff, and THROTTLE
// push-back honoring — the connect/retry state machine half of the
// store-and-forward client (client/spool.h is the durability half).
//
// Delivery contract (DESIGN.md section 16): a spool is uploaded by
// replaying its records as the standard wire conversation — HELLO from the
// spool header, TABLE_ANNOUNCE with the stored table blob verbatim, one
// SYMBOL_BATCH per spooled batch (same seq, timestamps, and symbol
// values), GOODBYE from the SEAL record. Any failure aborts the attempt;
// the next attempt replays the conversation from the start, which is safe
// because the server persists a session only at GOODBYE and acknowledges
// an already persisted meter without rewriting it (ArchiveSink's
// duplicate-ack path). Only after GOODBYE_ACK(kOk) — i.e. after the server
// made the upload durable — is the spool's DONE marker appended, so every
// reachable crash point resolves to "will retry" or "durable on both
// ends", never to silent loss and never to duplicated readings.
//
// Fault seams: `client.connect` (before each TCP connect) and
// `client.send` (before each frame write) let tests partition the network
// and kill the client at every frame boundary deterministically.
//
// All functions are synchronous and exception-free; per-spool failures are
// reported in the outcome structs, not thrown as errors, so one dead meter
// never aborts a fleet drain.

#ifndef SMETER_CLIENT_UPLOADER_H_
#define SMETER_CLIENT_UPLOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/loadgen.h"

namespace smeter::client {

struct UploaderOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string auth_token;
  int max_attempts = 5;            // connection attempts per spool
  int64_t io_timeout_ms = 10'000;  // per-socket send/recv timeout
  // Retry pacing; a THROTTLE's retry_after_ms hint is added on top of the
  // jittered draw, exactly like the load generator's retry loop.
  net::BackoffPolicy backoff;
  // Delete a spool file once its DONE marker is durable. Off by default:
  // a done spool is inert (drains skip it) and useful for audits.
  bool remove_done = false;
};

// What happened to one spool file.
struct UploadOutcome {
  std::string path;
  std::string meter_id;
  bool delivered = false;     // GOODBYE acked kOk this run
  bool already_done = false;  // spool carried a DONE marker; nothing sent
  bool skipped_unsealed = false;  // spool still accumulating; not eligible
  uint64_t attempts = 0;
  uint64_t throttled = 0;
  uint64_t frames_sent = 0;
  uint64_t symbols_sent = 0;
  // Why the spool was not delivered (unreadable file, attempts exhausted);
  // OK for delivered / already-done / skipped outcomes.
  Status status;
};

// Aggregate over a drain (or a spool-fleet run).
struct UplinkReport {
  size_t spools_total = 0;
  size_t delivered = 0;
  size_t already_done = 0;
  size_t skipped_unsealed = 0;
  size_t failed = 0;
  uint64_t attempts = 0;
  uint64_t reconnects = 0;  // attempts beyond each spool's first
  uint64_t throttled = 0;
  uint64_t frames_sent = 0;
  uint64_t symbols_sent = 0;

  std::string ToJson() const;
};

// Uploads one spool file end to end: read + validate, replay the
// conversation with retry/backoff, append DONE on success (and unlink when
// options.remove_done). Never returns a Status error — every failure mode
// lands in the outcome so fleet drains can keep going.
UploadOutcome UploadSpool(const UploaderOptions& options,
                          const std::string& path);

// Uploads every `*.spool` under `dir` (sorted by name, `concurrency`
// parallel workers; 0 acts as 1). Errors only when the directory itself
// cannot be walked.
Result<UplinkReport> DrainSpoolDir(const UploaderOptions& options,
                                   const std::string& dir,
                                   size_t concurrency = 1);

// Store-and-forward fleet mode (`smeter loadgen --spool-dir`): runs the
// shared sensor-side
// pipeline (net::PrepareFleetUploads), spools every meter's batches and
// SEAL durably under `spool_dir` — resuming mid-spool files exactly where
// their last durable record left off — then drains the directory through
// UploadSpool with `options.concurrency` workers. Crash-restart at ANY
// point re-runs to the same archive: the spool layer dedupes the spooling
// half, the server's duplicate-ack path dedupes the upload half. Errors on
// setup problems (bad input, unwritable spool dir, spool append failure —
// the process-crash signal in chaos tests); per-spool upload failures are
// counted in the report instead.
Result<UplinkReport> RunSpoolFleet(const net::LoadgenOptions& options,
                                   const std::string& spool_dir,
                                   bool remove_done = false);

}  // namespace smeter::client

#endif  // SMETER_CLIENT_UPLOADER_H_
