#include "client/spool.h"

#include <filesystem>
#include <utility>

#include "common/fault_injection.h"
#include "core/symbol.h"
#include "net/wire.h"

namespace smeter::client {
namespace {

// --- little-endian field writers / readers ---------------------------------
//
// Same layout discipline as the wire codecs (net/wire.cc keeps its helpers
// file-local on purpose — the two formats must be free to diverge), strict
// in the same way: every Take errors on truncation and the caller asserts
// exhaustion, so ParseSpoolRecord(EncodeSpoolRecord(x)) == x.

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Result<uint8_t> TakeU8() {
    if (remaining() < 1) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint16_t> TakeU16() {
    if (remaining() < 2) return Truncated();
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 2;
    return v;
  }

  Result<uint32_t> TakeU32() {
    if (remaining() < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> TakeU64() {
    if (remaining() < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<int64_t> TakeI64() {
    Result<uint64_t> v = TakeU64();
    if (!v.ok()) return v.status();
    return static_cast<int64_t>(*v);
  }

  Result<std::string> TakeBytes(size_t len) {
    if (remaining() < len) return Truncated();
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  Status ExpectExhausted() const {
    if (pos_ != data_.size()) {
      return InvalidArgumentError("trailing bytes after spool record fields");
    }
    return Status::Ok();
  }

 private:
  static Status Truncated() {
    return InvalidArgumentError("truncated spool record field");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status ValidateHeader(const SpoolHeader& header) {
  if (header.format_version != kSpoolFormatVersion) {
    return InvalidArgumentError("spool format version " +
                                std::to_string(header.format_version) +
                                " is not " +
                                std::to_string(kSpoolFormatVersion));
  }
  if (!net::IsValidMeterId(header.meter_id)) {
    return InvalidArgumentError(
        "spool meter id is empty, all dots, or has bytes outside "
        "[A-Za-z0-9_.-]");
  }
  if (header.level < 1 || header.level > kMaxSymbolLevel) {
    return InvalidArgumentError("spool level " +
                                std::to_string(header.level) +
                                " outside [1, " +
                                std::to_string(kMaxSymbolLevel) + "]");
  }
  if (header.step_seconds <= 0 ||
      header.step_seconds > net::kMaxWireStepSeconds) {
    return InvalidArgumentError(
        "spool step " + std::to_string(header.step_seconds) +
        " outside (0, " + std::to_string(net::kMaxWireStepSeconds) + "]");
  }
  return Status::Ok();
}

Status ValidateBatch(const SpoolBatch& batch, uint8_t level) {
  if (batch.seq == 0) {
    return InvalidArgumentError("spool batch seq 0 (seqs are 1-based)");
  }
  if (batch.symbols.empty()) {
    return InvalidArgumentError("empty spool batch");
  }
  if (batch.start_timestamp < -net::kMaxWireTimestamp ||
      batch.start_timestamp > net::kMaxWireTimestamp) {
    return InvalidArgumentError(
        "spool batch start timestamp " +
        std::to_string(batch.start_timestamp) + " outside ±" +
        std::to_string(net::kMaxWireTimestamp));
  }
  const uint32_t alphabet = 1u << level;
  for (uint16_t symbol : batch.symbols) {
    if (symbol != net::kWireGapSymbol && symbol >= alphabet) {
      return InvalidArgumentError("spool symbol " + std::to_string(symbol) +
                                  " outside the level-" +
                                  std::to_string(level) + " alphabet");
    }
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeSpoolRecord(const SpoolRecord& record) {
  std::string out;
  PutU8(out, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case SpoolRecordType::kHeader: {
      const SpoolHeader& header = record.header;
      PutU16(out, header.format_version);
      PutU16(out, static_cast<uint16_t>(
                      std::min(header.meter_id.size(), net::kMaxWireString)));
      out.append(header.meter_id, 0, net::kMaxWireString);
      PutU32(out, header.table_version);
      PutU8(out, header.level);
      PutI64(out, header.step_seconds);
      PutU32(out, static_cast<uint32_t>(header.table_blob.size()));
      out += header.table_blob;
      break;
    }
    case SpoolRecordType::kBatch: {
      const SpoolBatch& batch = record.batch;
      PutU64(out, batch.seq);
      PutI64(out, batch.start_timestamp);
      PutU32(out, static_cast<uint32_t>(batch.symbols.size()));
      for (uint16_t symbol : batch.symbols) PutU16(out, symbol);
      break;
    }
    case SpoolRecordType::kSeal:
      PutU64(out, record.seal.windows_valid);
      PutU64(out, record.seal.windows_partial);
      PutU64(out, record.seal.windows_gap);
      break;
    case SpoolRecordType::kDone:
      break;
  }
  return out;
}

Result<SpoolRecord> ParseSpoolRecord(std::string_view payload) {
  Reader reader(payload);
  SpoolRecord record;
  Result<uint8_t> type = reader.TakeU8();
  if (!type.ok()) return type.status();
  if (*type < static_cast<uint8_t>(SpoolRecordType::kHeader) ||
      *type > static_cast<uint8_t>(SpoolRecordType::kDone)) {
    return InvalidArgumentError("unknown spool record type " +
                                std::to_string(*type));
  }
  record.type = static_cast<SpoolRecordType>(*type);
  switch (record.type) {
    case SpoolRecordType::kHeader: {
      SpoolHeader& header = record.header;
      Result<uint16_t> version = reader.TakeU16();
      if (!version.ok()) return version.status();
      header.format_version = *version;
      Result<uint16_t> id_len = reader.TakeU16();
      if (!id_len.ok()) return id_len.status();
      if (*id_len > net::kMaxWireString) {
        return InvalidArgumentError("spool meter id longer than " +
                                    std::to_string(net::kMaxWireString));
      }
      Result<std::string> meter = reader.TakeBytes(*id_len);
      if (!meter.ok()) return meter.status();
      header.meter_id = std::move(*meter);
      Result<uint32_t> table_version = reader.TakeU32();
      if (!table_version.ok()) return table_version.status();
      header.table_version = *table_version;
      Result<uint8_t> level = reader.TakeU8();
      if (!level.ok()) return level.status();
      header.level = *level;
      Result<int64_t> step = reader.TakeI64();
      if (!step.ok()) return step.status();
      header.step_seconds = *step;
      Result<uint32_t> blob_len = reader.TakeU32();
      if (!blob_len.ok()) return blob_len.status();
      if (*blob_len != reader.remaining()) {
        return InvalidArgumentError(
            "spool table blob length disagrees with record size");
      }
      Result<std::string> blob = reader.TakeBytes(*blob_len);
      if (!blob.ok()) return blob.status();
      header.table_blob = std::move(*blob);
      SMETER_RETURN_IF_ERROR(ValidateHeader(header));
      break;
    }
    case SpoolRecordType::kBatch: {
      SpoolBatch& batch = record.batch;
      Result<uint64_t> seq = reader.TakeU64();
      if (!seq.ok()) return seq.status();
      batch.seq = *seq;
      Result<int64_t> start = reader.TakeI64();
      if (!start.ok()) return start.status();
      batch.start_timestamp = *start;
      Result<uint32_t> count = reader.TakeU32();
      if (!count.ok()) return count.status();
      if (*count == 0) return InvalidArgumentError("empty spool batch");
      if (reader.remaining() != static_cast<size_t>(*count) * 2) {
        return InvalidArgumentError(
            "spool symbol count disagrees with record size");
      }
      batch.symbols.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        Result<uint16_t> symbol = reader.TakeU16();
        if (!symbol.ok()) return symbol.status();
        batch.symbols.push_back(*symbol);
      }
      // Symbol values are validated against the header's level at the
      // file level (ReadSpool) — a lone record does not know the level,
      // so only the structural checks run here.
      SMETER_RETURN_IF_ERROR(ValidateBatch(batch, kMaxSymbolLevel));
      break;
    }
    case SpoolRecordType::kSeal: {
      Result<uint64_t> valid = reader.TakeU64();
      if (!valid.ok()) return valid.status();
      record.seal.windows_valid = *valid;
      Result<uint64_t> partial = reader.TakeU64();
      if (!partial.ok()) return partial.status();
      record.seal.windows_partial = *partial;
      Result<uint64_t> gap = reader.TakeU64();
      if (!gap.ok()) return gap.status();
      record.seal.windows_gap = *gap;
      break;
    }
    case SpoolRecordType::kDone:
      break;
  }
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return record;
}

Result<SpoolContents> ReadSpool(const std::string& path) {
  Result<io::AppendLogContents> log = io::ReadAppendLog(path);
  if (!log.ok()) return log.status();
  if (log->corrupt_midfile) {
    return DataLossError(
        path + ": spool record failed its checksum before end-of-file; "
               "records after the damage are untrusted (quarantine via "
               "fsck)");
  }
  SpoolContents contents;
  contents.torn_tail = log->torn_tail;
  contents.valid_bytes = log->valid_bytes;
  if (log->records.empty()) {
    // Creation is atomic with the header record inside, so an empty log
    // never comes from this SDK — only from truncation to the magic.
    return InvalidArgumentError(path + ": spool has no header record");
  }
  for (size_t i = 0; i < log->records.size(); ++i) {
    Result<SpoolRecord> record = ParseSpoolRecord(log->records[i]);
    if (!record.ok()) {
      return Status(record.status().code(),
                    path + ": record " + std::to_string(i) + ": " +
                        record.status().message());
    }
    if (contents.done) {
      return InvalidArgumentError(path + ": record after the DONE marker");
    }
    switch (record->type) {
      case SpoolRecordType::kHeader:
        if (i != 0) {
          return InvalidArgumentError(path + ": duplicate spool header");
        }
        contents.header = std::move(record->header);
        break;
      case SpoolRecordType::kBatch: {
        if (i == 0) {
          return InvalidArgumentError(path +
                                      ": first spool record is not a header");
        }
        if (contents.sealed) {
          return InvalidArgumentError(path + ": batch after the SEAL record");
        }
        SpoolBatch& batch = record->batch;
        if (batch.seq != contents.next_seq()) {
          return InvalidArgumentError(
              path + ": batch seq " + std::to_string(batch.seq) +
              ", expected " + std::to_string(contents.next_seq()));
        }
        SMETER_RETURN_IF_ERROR(ValidateBatch(batch, contents.header.level));
        contents.batches.push_back(std::move(batch));
        break;
      }
      case SpoolRecordType::kSeal:
        if (i == 0) {
          return InvalidArgumentError(path +
                                      ": first spool record is not a header");
        }
        if (contents.sealed) {
          return InvalidArgumentError(path + ": duplicate SEAL record");
        }
        contents.sealed = true;
        contents.seal = record->seal;
        break;
      case SpoolRecordType::kDone:
        if (i == 0) {
          return InvalidArgumentError(path +
                                      ": first spool record is not a header");
        }
        if (!contents.sealed) {
          return InvalidArgumentError(path + ": DONE before SEAL");
        }
        contents.done = true;
        break;
    }
  }
  return contents;
}

Result<Spool> Spool::Create(const std::string& path,
                            const SpoolHeader& header) {
  SMETER_RETURN_IF_ERROR(ValidateHeader(header));
  std::error_code error;
  if (std::filesystem::exists(path, error)) {
    return FailedPreconditionError(path + ": spool already exists");
  }
  SpoolRecord record;
  record.type = SpoolRecordType::kHeader;
  record.header = header;
  SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
      path, io::BuildAppendLog({EncodeSpoolRecord(record)})));
  Result<io::AppendLogWriter> writer = io::AppendLogWriter::OpenForAppend(path);
  if (!writer.ok()) return writer.status();
  return Spool(path, header, std::move(writer.value()));
}

Result<Spool> Spool::Resume(const std::string& path) {
  Result<SpoolContents> contents = ReadSpool(path);
  if (!contents.ok()) return contents.status();
  if (contents->torn_tail) {
    // The kill -9 signature: drop the partial trailing record so the next
    // append starts on a frame boundary. Everything before it is intact.
    SMETER_RETURN_IF_ERROR(
        io::TruncateFile(path, contents->valid_bytes));
  }
  Result<io::AppendLogWriter> writer = io::AppendLogWriter::OpenForAppend(path);
  if (!writer.ok()) return writer.status();
  Spool spool(path, std::move(contents->header), std::move(writer.value()));
  spool.next_seq_ = contents->next_seq();
  spool.symbols_spooled_ = contents->symbols_spooled();
  spool.sealed_ = contents->sealed;
  spool.done_ = contents->done;
  return spool;
}

Result<Spool> Spool::OpenOrCreate(const std::string& path,
                                  const SpoolHeader& header) {
  std::error_code error;
  if (!std::filesystem::exists(path, error)) return Create(path, header);
  Result<Spool> spool = Resume(path);
  if (!spool.ok()) return spool.status();
  if (!(spool->header() == header)) {
    return FailedPreconditionError(
        path + ": spool header disagrees with the requested upload "
               "(meter re-encoded with different parameters?); refusing to "
               "interleave two streams");
  }
  return spool;
}

Status Spool::Append(const SpoolRecord& record) {
  // The client-side durability seam: tests kill the upload pipeline here
  // at every call and prove Resume() continues from the last durable
  // record (tests/integration/client_soak_test.cc).
  SMETER_FAULT_POINT("client.spool.append");
  return writer_.Append(EncodeSpoolRecord(record));
}

Status Spool::AppendBatch(const SpoolBatch& batch) {
  if (done_) return FailedPreconditionError(path_ + ": spool is done");
  if (sealed_) {
    return FailedPreconditionError(path_ + ": spool is sealed");
  }
  if (batch.seq != next_seq_) {
    return InvalidArgumentError(path_ + ": batch seq " +
                                std::to_string(batch.seq) + ", expected " +
                                std::to_string(next_seq_));
  }
  SMETER_RETURN_IF_ERROR(ValidateBatch(batch, header_.level));
  SpoolRecord record;
  record.type = SpoolRecordType::kBatch;
  record.batch = batch;
  SMETER_RETURN_IF_ERROR(Append(record));
  ++next_seq_;
  symbols_spooled_ += batch.symbols.size();
  return Status::Ok();
}

Status Spool::Seal(const SpoolSeal& seal) {
  if (done_) return FailedPreconditionError(path_ + ": spool is done");
  if (sealed_) {
    return FailedPreconditionError(path_ + ": spool is already sealed");
  }
  SpoolRecord record;
  record.type = SpoolRecordType::kSeal;
  record.seal = seal;
  SMETER_RETURN_IF_ERROR(Append(record));
  sealed_ = true;
  return Status::Ok();
}

Status Spool::MarkDone() {
  if (done_) return FailedPreconditionError(path_ + ": spool is already done");
  if (!sealed_) {
    return FailedPreconditionError(path_ + ": cannot mark an unsealed spool "
                                           "done");
  }
  SpoolRecord record;
  record.type = SpoolRecordType::kDone;
  SMETER_RETURN_IF_ERROR(Append(record));
  done_ = true;
  return Status::Ok();
}

}  // namespace smeter::client
