// Crash-safe on-disk spool of pending symbol uploads (the client half of
// end-to-end exactly-once delivery).
//
// A meter that encodes readings faster than it can reach the aggregation
// server — or that crashes, reboots, or sits behind a partition — must not
// lose them. The spool is the store-and-forward buffer: one append-only
// file per meter, layered on the common/io checksummed append log (magic
// "SMLG1\n", u32 length + crc32c per record), so every durability property
// the fleet manifest already enjoys carries over wholesale:
//
//   * creation is atomic (AtomicWriteFile: tmp -> fsync -> rename -> dir
//     fsync), so a spool either exists with a valid header or not at all;
//   * every append is fsynced before it returns, so a batch on disk is a
//     durable checkpoint;
//   * a kill -9 mid-append leaves a torn tail the reader detects and
//     Resume() truncates away — the valid prefix is never poisoned;
//   * a bit flip anywhere fails that record's CRC32C and is reported as
//     mid-file corruption, which fsck quarantines (`.spool` triage).
//
// Record stream (each record is one append-log frame):
//
//   HEADER  exactly once, first: format version, meter id, table version,
//           symbol level, cadence step, and the serialized lookup table
//           verbatim — everything the uploader needs to replay HELLO and
//           TABLE_ANNOUNCE without re-encoding.
//   BATCH   zero or more: durable sequence number (1-based, strictly
//           consecutive), start timestamp, and the symbol values exactly
//           as they will ride a SYMBOL_BATCH frame (kWireGapSymbol for
//           GAP). A restarted client reads next_seq() and continues
//           spooling where it stopped — no batch is ever re-encoded or
//           skipped.
//   SEAL    at most once, after the last batch: the client's EncodeQuality
//           counts, i.e. the GOODBYE payload. A sealed spool is a complete
//           upload unit; only sealed spools are eligible for uplink.
//   DONE    at most once, last: the server acknowledged GOODBYE with kOk.
//           Appended AFTER the ack so "done on disk" implies "durable on
//           the server" (the server persists before GOODBYE_ACK). A done
//           spool is safe to delete; re-uploading it is also safe because
//           the server's duplicate-ack path acknowledges an already
//           persisted meter without rewriting it — that pairing is the
//           exactly-once argument (DESIGN.md section 16).
//
// The record codecs are strict exact inverses (trailing bytes, truncated
// fields, and out-of-range values are errors), so Encode/Parse is closed
// under fuzzing — see tests/fuzz/fuzz_spool.cc.
//
// Fault seam: every append passes `client.spool.append`, so tests can kill
// the client at any durability point and prove Resume() continues exactly
// where the last fsynced record left off.

#ifndef SMETER_CLIENT_SPOOL_H_
#define SMETER_CLIENT_SPOOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/status.h"

namespace smeter::client {

// Bumped when the record layout changes; readers refuse versions they do
// not speak rather than misparse them.
inline constexpr uint16_t kSpoolFormatVersion = 1;

// File extension the SDK, the uplink CLI, and fsck's spool triage agree on.
inline constexpr char kSpoolSuffix[] = ".spool";

enum class SpoolRecordType : uint8_t {
  kHeader = 1,
  kBatch = 2,
  kSeal = 3,
  kDone = 4,
};

struct SpoolHeader {
  uint16_t format_version = kSpoolFormatVersion;
  std::string meter_id;       // must satisfy net::IsValidMeterId
  uint32_t table_version = 1;
  uint8_t level = 1;          // bits per symbol, [1, kMaxSymbolLevel]
  int64_t step_seconds = 0;   // cadence, > 0
  std::string table_blob;     // LookupTable::Serialize() bytes verbatim

  friend bool operator==(const SpoolHeader& a, const SpoolHeader& b) {
    return a.format_version == b.format_version && a.meter_id == b.meter_id &&
           a.table_version == b.table_version && a.level == b.level &&
           a.step_seconds == b.step_seconds && a.table_blob == b.table_blob;
  }
};

struct SpoolBatch {
  uint64_t seq = 0;            // 1-based, strictly consecutive
  int64_t start_timestamp = 0;
  // Symbol alphabet indices (< 2^level), or kWireGapSymbol for GAP —
  // the exact values a SYMBOL_BATCH frame will carry.
  std::vector<uint16_t> symbols;  // non-empty

  friend bool operator==(const SpoolBatch& a, const SpoolBatch& b) {
    return a.seq == b.seq && a.start_timestamp == b.start_timestamp &&
           a.symbols == b.symbols;
  }
};

struct SpoolSeal {
  uint64_t windows_valid = 0;
  uint64_t windows_partial = 0;
  uint64_t windows_gap = 0;

  friend bool operator==(const SpoolSeal& a, const SpoolSeal& b) {
    return a.windows_valid == b.windows_valid &&
           a.windows_partial == b.windows_partial &&
           a.windows_gap == b.windows_gap;
  }
};

// One decoded record; `type` selects which member is meaningful.
struct SpoolRecord {
  SpoolRecordType type = SpoolRecordType::kHeader;
  SpoolHeader header;  // kHeader
  SpoolBatch batch;    // kBatch
  SpoolSeal seal;      // kSeal
};

// Serializes one record's payload (the bytes inside an append-log frame;
// the frame's own length + CRC32C wrapper comes from common/io).
std::string EncodeSpoolRecord(const SpoolRecord& record);

// Strict inverse of EncodeSpoolRecord: kInvalidArgument on an unknown
// record type, truncated or trailing bytes, or out-of-domain fields
// (level, step, timestamp, symbol values, empty batches, zero seq).
Result<SpoolRecord> ParseSpoolRecord(std::string_view payload);

// A whole spool file, structurally validated: header first and exactly
// once, batch seqs consecutive from 1, seal before done, nothing after
// done.
struct SpoolContents {
  SpoolHeader header;
  std::vector<SpoolBatch> batches;
  bool sealed = false;
  SpoolSeal seal;
  bool done = false;
  // A partial trailing record ran to end-of-file (kill -9 mid-append).
  // `valid_bytes` is where the intact prefix ends; Resume() truncates to
  // it, and fsck repairs standalone files the same way.
  bool torn_tail = false;
  size_t valid_bytes = 0;

  uint64_t next_seq() const {
    return batches.empty() ? 1 : batches.back().seq + 1;
  }
  size_t symbols_spooled() const {
    size_t total = 0;
    for (const SpoolBatch& batch : batches) total += batch.symbols.size();
    return total;
  }
};

// Reads and validates a spool file. Errors on an unreadable file or bad
// magic (propagated from io::ReadAppendLog), on mid-file corruption
// (kDataLoss — fsck quarantines these), and on any structural violation;
// a torn tail is NOT an error (flags above), matching the manifest's
// crash-recovery policy.
Result<SpoolContents> ReadSpool(const std::string& path);

// Append handle over one spool file. Single-writer, like AppendLogWriter
// underneath; the uploader and the spooling loop never share one Spool.
class Spool {
 public:
  // Creates `path` atomically with the header as its first record, then
  // opens it for appending. Fails if the file already exists.
  static Result<Spool> Create(const std::string& path,
                              const SpoolHeader& header);

  // Opens an existing spool: truncates a torn tail (the crash signature),
  // validates the record stream, and positions the writer after the last
  // durable record. The caller continues at next_seq().
  static Result<Spool> Resume(const std::string& path);

  // Resume() when `path` exists, Create() otherwise. On resume the stored
  // header must equal `header` — a mismatch means the caller re-encoded
  // with different parameters, and appending to the old stream would
  // interleave two incompatible uploads, so it is refused.
  static Result<Spool> OpenOrCreate(const std::string& path,
                                    const SpoolHeader& header);

  Spool(Spool&&) = default;
  Spool& operator=(Spool&&) = default;

  // Durably appends one batch; `batch.seq` must equal next_seq(). Fault
  // seams: `client.spool.append` (entry), plus the append log's own
  // `manifest.append` / `io.fsync` underneath.
  Status AppendBatch(const SpoolBatch& batch);

  // Durably appends the SEAL record; no batches may follow.
  Status Seal(const SpoolSeal& seal);

  // Durably appends the DONE record (server acked GOODBYE with kOk).
  Status MarkDone();

  const std::string& path() const { return path_; }
  const SpoolHeader& header() const { return header_; }
  uint64_t next_seq() const { return next_seq_; }
  size_t symbols_spooled() const { return symbols_spooled_; }
  bool sealed() const { return sealed_; }
  bool done() const { return done_; }

 private:
  Spool(std::string path, SpoolHeader header, io::AppendLogWriter writer)
      : path_(std::move(path)),
        header_(std::move(header)),
        writer_(std::move(writer)) {}

  Status Append(const SpoolRecord& record);

  std::string path_;
  SpoolHeader header_;
  io::AppendLogWriter writer_;
  uint64_t next_seq_ = 1;
  size_t symbols_spooled_ = 0;
  bool sealed_ = false;
  bool done_ = false;
};

}  // namespace smeter::client

#endif  // SMETER_CLIENT_SPOOL_H_
