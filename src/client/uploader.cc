#include "client/uploader.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <utility>

#include "client/spool.h"
#include "common/fault_injection.h"
#include "net/wire.h"

namespace smeter::client {
namespace {

namespace fs = std::filesystem;
using net::Frame;
using net::FrameType;
using net::WireStatus;

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Per-spool deterministic jitter seed (FNV-1a of the meter id): distinct
// meters draw distinct backoff schedules without sharing rng state — the
// same de-synchronization argument as the load generator's retry loop.
uint64_t JitterSeed(const std::string& name) {
  uint64_t seed = 0xcbf29ce484222325ull;
  for (char ch : name) {
    seed = (seed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ull;
  }
  return seed == 0 ? 0x9e3779b97f4a7c15ull : seed;
}

// Blocking framed-protocol transport over one TCP connection. This is the
// SDK's own copy (the load generator keeps its MeterClient private): the
// fault seams differ — `client.connect` and `client.send` here model the
// edge device's network, where `loadgen.drop` models a dying load source.
class Transport {
 public:
  ~Transport() { CloseFd(); }

  Status Connect(const std::string& host, uint16_t port, int64_t timeout_ms) {
    CloseFd();
    in_.clear();
    // The partition seam: tests fail connects deterministically or with a
    // seeded probability to simulate an unreachable aggregator.
    SMETER_FAULT_POINT("client.connect");
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return Errno("socket");
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("bad host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Errno("connect " + host + ":" + std::to_string(port));
    }
    return Status::Ok();
  }

  Status SendFrame(const Frame& frame) {
    // The kill-at-every-frame seam: an injected failure here aborts the
    // conversation exactly as a client crash between two writes would.
    if (Status fault = fault::Check("client.send"); !fault.ok()) {
      Abort();
      return fault;
    }
    const std::string bytes = EncodeFrame(frame);
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      return Errno("write");
    }
    return Status::Ok();
  }

  Result<Frame> RecvFrame() {
    for (;;) {
      net::DecodeResult decoded = net::DecodeFrame(in_);
      if (decoded.outcome == net::DecodeResult::Outcome::kFrame) {
        in_.erase(0, decoded.consumed);
        return std::move(decoded.frame);
      }
      if (decoded.outcome == net::DecodeResult::Outcome::kError) {
        return decoded.error;
      }
      char chunk[16 * 1024];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        in_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        return InternalError("server closed the connection");
      }
      if (errno == EINTR) continue;
      return Errno("read");
    }
  }

  void Abort() {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      CloseFd();
    }
  }

 private:
  void CloseFd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd_ = -1;
  std::string in_;
};

Status ExpectOkAck(const Frame& frame, FrameType type) {
  if (frame.type != type) {
    return InternalError("expected ack type " +
                         std::to_string(static_cast<int>(type)) + ", got " +
                         std::to_string(static_cast<int>(frame.type)));
  }
  Result<net::AckPayload> ack = net::ParseAck(frame);
  if (!ack.ok()) return ack.status();
  if (ack->status != WireStatus::kOk) {
    return InternalError(std::string("server refused: [") +
                         net::WireStatusName(ack->status) + "] " +
                         ack->message);
  }
  return Status::Ok();
}

// A THROTTLE in place of any awaited ack fails the attempt and records the
// server's retry_after_ms hint for the backoff floor.
Status CheckThrottle(const Frame& frame, const std::string& meter_id,
                     UploadOutcome* outcome, uint32_t* retry_hint_ms) {
  if (frame.type != FrameType::kThrottle) return Status::Ok();
  ++outcome->throttled;
  Result<net::ThrottlePayload> throttle = net::ParseThrottle(frame);
  if (!throttle.ok()) {
    return InternalError(meter_id + ": malformed THROTTLE: " +
                         throttle.status().message());
  }
  if (throttle->retry_after_ms > *retry_hint_ms) {
    *retry_hint_ms = throttle->retry_after_ms;
  }
  return InternalError(meter_id + ": throttled [" +
                       net::ThrottleScopeName(throttle->scope) + "] " +
                       throttle->message);
}

// One complete replay of the spool as a wire conversation over a fresh
// connection. Any error aborts the attempt; the caller retries with the
// whole conversation from the start (safe: the server persists only at
// GOODBYE, and a meter persisted by an earlier attempt gets the
// duplicate ack).
Status UploadConversation(const UploaderOptions& options,
                          const SpoolContents& spool, UploadOutcome* outcome,
                          uint32_t* retry_hint_ms) {
  Transport transport;
  SMETER_RETURN_IF_ERROR(
      transport.Connect(options.host, options.port, options.io_timeout_ms));

  net::HelloPayload hello;
  hello.protocol_version = net::kProtocolVersion;
  hello.meter_id = spool.header.meter_id;
  hello.auth_token = options.auth_token;
  SMETER_RETURN_IF_ERROR(transport.SendFrame(net::MakeHello(hello)));
  ++outcome->frames_sent;
  Result<Frame> reply = transport.RecvFrame();
  if (!reply.ok()) return reply.status();
  SMETER_RETURN_IF_ERROR(
      CheckThrottle(*reply, hello.meter_id, outcome, retry_hint_ms));
  SMETER_RETURN_IF_ERROR(ExpectOkAck(*reply, FrameType::kHelloAck));

  net::TableAnnouncePayload announce;
  announce.table_version = spool.header.table_version;
  announce.table_blob = spool.header.table_blob;
  SMETER_RETURN_IF_ERROR(
      transport.SendFrame(net::MakeTableAnnounce(announce)));
  ++outcome->frames_sent;
  reply = transport.RecvFrame();
  if (!reply.ok()) return reply.status();
  SMETER_RETURN_IF_ERROR(
      CheckThrottle(*reply, hello.meter_id, outcome, retry_hint_ms));
  SMETER_RETURN_IF_ERROR(ExpectOkAck(*reply, FrameType::kTableAck));

  for (const SpoolBatch& spooled : spool.batches) {
    net::SymbolBatchPayload batch;
    batch.seq = spooled.seq;
    batch.start_timestamp = spooled.start_timestamp;
    batch.step_seconds = spool.header.step_seconds;
    batch.level = spool.header.level;
    batch.symbols = spooled.symbols;
    SMETER_RETURN_IF_ERROR(transport.SendFrame(net::MakeSymbolBatch(batch)));
    ++outcome->frames_sent;
    outcome->symbols_sent += spooled.symbols.size();
    reply = transport.RecvFrame();
    if (!reply.ok()) return reply.status();
    SMETER_RETURN_IF_ERROR(
        CheckThrottle(*reply, hello.meter_id, outcome, retry_hint_ms));
    Result<net::BatchAckPayload> ack = net::ParseBatchAck(*reply);
    if (!ack.ok()) return ack.status();
    if (ack->status != WireStatus::kOk) {
      return InternalError(std::string("batch refused: [") +
                           net::WireStatusName(ack->status) + "] " +
                           ack->message);
    }
  }

  net::GoodbyePayload goodbye;
  goodbye.windows_valid = spool.seal.windows_valid;
  goodbye.windows_partial = spool.seal.windows_partial;
  goodbye.windows_gap = spool.seal.windows_gap;
  SMETER_RETURN_IF_ERROR(transport.SendFrame(net::MakeGoodbye(goodbye)));
  ++outcome->frames_sent;
  reply = transport.RecvFrame();
  if (!reply.ok()) return reply.status();
  SMETER_RETURN_IF_ERROR(
      CheckThrottle(*reply, hello.meter_id, outcome, retry_hint_ms));
  return ExpectOkAck(*reply, FrameType::kGoodbyeAck);
}

}  // namespace

UploadOutcome UploadSpool(const UploaderOptions& options,
                          const std::string& path) {
  UploadOutcome outcome;
  outcome.path = path;

  Result<SpoolContents> spool = ReadSpool(path);
  if (!spool.ok()) {
    outcome.status = spool.status();
    return outcome;
  }
  outcome.meter_id = spool->header.meter_id;
  if (spool->done) {
    // The DONE marker means a previous run saw GOODBYE_ACK(kOk), which the
    // server only sends after the archive write is durable. Nothing to do.
    outcome.already_done = true;
    outcome.delivered = true;
    if (options.remove_done) {
      std::error_code error;
      fs::remove(path, error);
    }
    return outcome;
  }
  if (!spool->sealed) {
    // Still accumulating batches; GOODBYE needs the SEAL's quality counts.
    outcome.skipped_unsealed = true;
    return outcome;
  }
  if (spool->torn_tail) {
    // Repair before replaying so a retried upload and a later Resume()
    // agree on the record stream.
    if (Status truncated = io::TruncateFile(path, spool->valid_bytes);
        !truncated.ok()) {
      outcome.status = truncated;
      return outcome;
    }
  }

  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  uint64_t rng = JitterSeed(outcome.meter_id);
  uint32_t retry_hint_ms = 0;
  Status last = InternalError("no attempts made");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_hint_ms +
          net::FullJitterBackoffMs(attempt, options.backoff, &rng)));
    }
    retry_hint_ms = 0;
    ++outcome.attempts;
    last = UploadConversation(options, *spool, &outcome, &retry_hint_ms);
    if (last.ok()) break;
  }
  if (!last.ok()) {
    outcome.status = last;
    return outcome;
  }

  // The ack is in hand: the server has durably persisted this meter. Make
  // "delivered" just as durable on the client before reporting success, so
  // a crash right here re-uploads (converging via the duplicate ack)
  // instead of losing track.
  Result<Spool> writer = Spool::Resume(path);
  Status done = writer.ok() ? writer->MarkDone() : writer.status();
  if (!done.ok()) {
    outcome.status = done;
    return outcome;
  }
  outcome.delivered = true;
  if (options.remove_done) {
    std::error_code error;
    fs::remove(path, error);
  }
  return outcome;
}

std::string UplinkReport::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"spools_total\": " << spools_total << ",\n"
      << "  \"delivered\": " << delivered << ",\n"
      << "  \"already_done\": " << already_done << ",\n"
      << "  \"skipped_unsealed\": " << skipped_unsealed << ",\n"
      << "  \"failed\": " << failed << ",\n"
      << "  \"attempts\": " << attempts << ",\n"
      << "  \"reconnects\": " << reconnects << ",\n"
      << "  \"throttled\": " << throttled << ",\n"
      << "  \"frames_sent\": " << frames_sent << ",\n"
      << "  \"symbols_sent\": " << symbols_sent << "\n"
      << "}";
  return out.str();
}

Result<UplinkReport> DrainSpoolDir(const UploaderOptions& options,
                                   const std::string& dir,
                                   size_t concurrency) {
  std::error_code error;
  if (!fs::is_directory(dir, error) || error) {
    return NotFoundError("not a directory: " + dir);
  }
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, error)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::string suffix = kSpoolSuffix;
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      paths.push_back(dir + "/" + name);
    }
  }
  if (error) {
    return InternalError("cannot walk " + dir + ": " + error.message());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<UploadOutcome> outcomes(paths.size());
  const size_t workers =
      std::min(concurrency == 0 ? 1 : concurrency,
               paths.empty() ? size_t{1} : paths.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t index = next.fetch_add(1, std::memory_order_relaxed);
        if (index >= paths.size()) return;
        outcomes[index] = UploadSpool(options, paths[index]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  UplinkReport report;
  report.spools_total = outcomes.size();
  for (const UploadOutcome& outcome : outcomes) {
    report.attempts += outcome.attempts;
    report.reconnects += outcome.attempts > 0 ? outcome.attempts - 1 : 0;
    report.throttled += outcome.throttled;
    report.frames_sent += outcome.frames_sent;
    report.symbols_sent += outcome.symbols_sent;
    if (outcome.already_done) {
      ++report.already_done;
    } else if (outcome.skipped_unsealed) {
      ++report.skipped_unsealed;
    } else if (outcome.delivered) {
      ++report.delivered;
    } else {
      ++report.failed;
    }
  }
  return report;
}

Result<UplinkReport> RunSpoolFleet(const net::LoadgenOptions& options,
                                   const std::string& spool_dir,
                                   bool remove_done) {
  std::error_code error;
  fs::create_directories(spool_dir, error);
  if (error) {
    return InternalError("cannot create spool dir " + spool_dir + ": " +
                         error.message());
  }

  Result<std::vector<net::PreparedUpload>> prepared =
      net::PrepareFleetUploads(options);
  if (!prepared.ok()) return prepared.status();

  // Phase 1, spooling — serial and deterministic, so the kill-anywhere
  // chaos tests can address "the Nth spool append" by global call number.
  // Every append is fsynced; a crash (or injected append failure) at any
  // point leaves spools that the next run resumes exactly where they
  // stopped.
  const size_t batch_size =
      options.batch_symbols == 0 ? 512 : options.batch_symbols;
  for (const net::PreparedUpload& meter : *prepared) {
    const auto& samples = meter.symbols.samples();
    const int64_t step = samples.size() >= 2
                             ? samples[1].timestamp - samples[0].timestamp
                             : options.encode.pipeline.window_seconds;
    SpoolHeader header;
    header.meter_id = meter.name;
    header.table_version = 1;
    header.level = static_cast<uint8_t>(meter.symbols.level());
    header.step_seconds = step;
    header.table_blob = meter.table_blob;
    Result<Spool> spool =
        Spool::OpenOrCreate(spool_dir + "/" + meter.name + kSpoolSuffix,
                            header);
    if (!spool.ok()) return spool.status();
    if (spool->done()) continue;  // delivered by a previous run
    // Resume where the last durable batch ended. Batches need not all be
    // the same size for the protocol; resuming by spooled-symbol count is
    // what makes a re-run with the same input land the identical stream.
    for (size_t begin = spool->symbols_spooled();
         !spool->sealed() && begin < samples.size(); begin += batch_size) {
      const size_t end = std::min(begin + batch_size, samples.size());
      SpoolBatch batch;
      batch.seq = spool->next_seq();
      batch.start_timestamp = samples[begin].timestamp;
      batch.symbols.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        batch.symbols.push_back(
            samples[i].symbol.is_gap()
                ? net::kWireGapSymbol
                : static_cast<uint16_t>(samples[i].symbol.index()));
      }
      SMETER_RETURN_IF_ERROR(spool->AppendBatch(batch));
    }
    if (!spool->sealed()) {
      SpoolSeal seal;
      seal.windows_valid = meter.quality.windows_valid;
      seal.windows_partial = meter.quality.windows_partial;
      seal.windows_gap = meter.quality.windows_gap;
      SMETER_RETURN_IF_ERROR(spool->Seal(seal));
    }
  }

  // Phase 2, uplink — the sealed spools travel through the standard drain.
  UploaderOptions uploader;
  uploader.host = options.host;
  uploader.port = options.port;
  uploader.auth_token = options.auth_token;
  uploader.max_attempts = options.max_attempts;
  uploader.io_timeout_ms = options.io_timeout_ms;
  uploader.backoff = options.backoff;
  uploader.remove_done = remove_done;
  return DrainSpoolDir(uploader, spool_dir, options.concurrency);
}

}  // namespace smeter::client
