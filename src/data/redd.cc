#include "data/redd.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace smeter::data {

Result<TimeSeries> LoadReddChannel(const std::string& path) {
  CsvOptions csv;
  csv.delimiter = ' ';
  Result<CsvTable> table = ReadCsvFile(path, csv);
  if (!table.ok()) return table.status();

  // A final row with no line terminator is the signature of a truncated
  // write (logger crash mid-record); its fields cannot be trusted, so drop
  // just that row instead of failing the whole channel on a short field.
  size_t usable_rows = table->rows.size();
  if (table->last_row_unterminated && usable_rows > 0) --usable_rows;

  TimeSeries series;
  for (size_t i = 0; i < usable_rows; ++i) {
    const auto& row = table->rows[i];
    if (row.size() < 2) {
      return InvalidArgumentError(path + ": row " + std::to_string(i) +
                                  " has fewer than 2 fields");
    }
    Result<int64_t> ts = ParseInt(row[0]);
    if (!ts.ok()) return ts.status();
    Result<double> value = ParseDouble(row[1]);
    if (!value.ok()) return value.status();
    Status appended = series.Append({*ts, *value});
    if (!appended.ok()) {
      return Status(appended.code(),
                    path + ": row " + std::to_string(i) + ": " +
                        appended.message());
    }
  }
  return series;
}

Result<TimeSeries> LoadReddHouseMains(const std::string& house_dir) {
  Result<TimeSeries> mains1 = LoadReddChannel(house_dir + "/channel_1.dat");
  if (!mains1.ok()) return mains1.status();
  Result<TimeSeries> mains2 = LoadReddChannel(house_dir + "/channel_2.dat");
  if (!mains2.ok()) return mains2.status();

  // Merge on shared timestamps (two-pointer walk).
  TimeSeries total;
  size_t i = 0, j = 0;
  const TimeSeries& a = mains1.value();
  const TimeSeries& b = mains2.value();
  while (i < a.size() && j < b.size()) {
    if (a[i].timestamp < b[j].timestamp) {
      ++i;
    } else if (b[j].timestamp < a[i].timestamp) {
      ++j;
    } else {
      SMETER_RETURN_IF_ERROR(
          total.Append({a[i].timestamp, a[i].value + b[j].value}));
      ++i;
      ++j;
    }
  }
  if (total.empty()) {
    return FailedPreconditionError(house_dir +
                                   ": mains channels share no timestamps");
  }
  return total;
}

}  // namespace smeter::data
