#include "data/household.h"

#include <algorithm>
#include <cmath>

namespace smeter::data {

double Household::Step(Timestamp t, Rng& rng) {
  int64_t day = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --day;
  if (day != current_day_) {
    current_day_ = day;
    activity_scale_ =
        daily_variability_ > 0.0
            ? std::exp(rng.Gaussian(0.0, daily_variability_))
            : 1.0;
  }
  double total = 0.0;
  for (Appliance& a : appliances_) total += a.Step(t, rng, activity_scale_);
  if (meter_noise_sd_ > 0.0) total += rng.Gaussian(0.0, meter_noise_sd_);
  return std::max(total, 0.0);
}

Household MakeHousehold(size_t id, uint64_t seed) {
  Rng rng(seed ^ (0x51ed270b * (id + 1)));
  // Parameter jitter: houses built from the same personality but different
  // seeds differ by up to ~10%; exotic ids (>= 6) vary more.
  const double jitter_span = id < 8 ? 0.1 : 0.35;
  auto jitter = [&](double v) {
    return v * (1.0 + rng.Uniform(-jitter_span, jitter_span));
  };

  std::vector<Appliance> mix;
  const size_t personality = id % 8;
  switch (personality) {
    case 0: {
      // Family house, big consumer: electric water heater + tumble dryer.
      mix.push_back(Appliance::AlwaysOn("standby", jitter(95.0), 4.0));
      mix.push_back(Appliance::Thermostatic("fridge", jitter(140.0),
                                            jitter(900.0), jitter(1500.0),
                                            0.15));
      mix.push_back(Appliance::Thermostatic("freezer", jitter(110.0),
                                            jitter(700.0), jitter(2100.0),
                                            0.15));
      mix.push_back(Appliance::Stochastic("water_heater", jitter(2400.0), 0.10,
                                          jitter(1500.0), 3.0,
                                          DoublePeakProfile(), 1.3));
      mix.push_back(Appliance::Stochastic("oven", jitter(2000.0), 0.15,
                                          jitter(2400.0), 1.0,
                                          EveningPeakProfile(), 1.5));
      mix.push_back(Appliance::Stochastic("dryer", jitter(2600.0), 0.10,
                                          jitter(3000.0), 0.6,
                                          EveningPeakProfile(), 2.2));
      mix.push_back(Appliance::Stochastic("lights_tv", jitter(260.0), 0.25,
                                          jitter(5400.0), 4.0,
                                          EveningPeakProfile(), 1.4));
      break;
    }
    case 1: {
      // Small apartment, low consumption.
      mix.push_back(Appliance::AlwaysOn("standby", jitter(45.0), 2.0));
      mix.push_back(Appliance::Thermostatic("fridge", jitter(90.0),
                                            jitter(800.0), jitter(1900.0),
                                            0.2));
      mix.push_back(Appliance::Stochastic("kettle", jitter(1800.0), 0.05,
                                          jitter(150.0), 4.0,
                                          DoublePeakProfile(), 1.2));
      mix.push_back(Appliance::Stochastic("laptop_tv", jitter(130.0), 0.3,
                                          jitter(7200.0), 3.0,
                                          EveningPeakProfile(), 1.5));
      break;
    }
    case 2: {
      // Working couple: pronounced morning/evening double peak.
      mix.push_back(Appliance::AlwaysOn("standby", jitter(70.0), 3.0));
      mix.push_back(Appliance::Thermostatic("fridge", jitter(120.0),
                                            jitter(1000.0), jitter(1700.0),
                                            0.15));
      mix.push_back(Appliance::Stochastic("stove", jitter(1500.0), 0.12,
                                          jitter(1500.0), 1.6,
                                          DoublePeakProfile(), 1.6));
      mix.push_back(Appliance::Stochastic("washer", jitter(500.0), 0.2,
                                          jitter(3600.0), 0.5,
                                          DoublePeakProfile(), 2.5));
      mix.push_back(Appliance::Stochastic("lights_tv", jitter(220.0), 0.25,
                                          jitter(6000.0), 3.2,
                                          DoublePeakProfile(), 1.6));
      break;
    }
    case 3: {
      // Night-shift worker: activity shifted into the night.
      mix.push_back(Appliance::AlwaysOn("standby", jitter(60.0), 3.0));
      mix.push_back(Appliance::Thermostatic("fridge", jitter(100.0),
                                            jitter(850.0), jitter(1800.0),
                                            0.18));
      mix.push_back(Appliance::Stochastic("microwave", jitter(1100.0), 0.1,
                                          jitter(240.0), 3.0, NightProfile(),
                                          1.0));
      mix.push_back(Appliance::Stochastic("heater", jitter(1300.0), 0.15,
                                          jitter(2700.0), 1.4, NightProfile(),
                                          1.0));
      mix.push_back(Appliance::Stochastic("lights_tv", jitter(180.0), 0.25,
                                          jitter(5400.0), 3.0, NightProfile(),
                                          1.1));
      break;
    }
    case 4: {
      // Home office: flat daytime plateau, modest peaks.
      mix.push_back(Appliance::AlwaysOn("standby_it", jitter(150.0), 6.0));
      mix.push_back(Appliance::Thermostatic("fridge", jitter(130.0),
                                            jitter(950.0), jitter(1600.0),
                                            0.15));
      mix.push_back(Appliance::Stochastic("espresso", jitter(1300.0), 0.08,
                                          jitter(120.0), 6.0, FlatProfile(),
                                          0.8));
      mix.push_back(Appliance::Stochastic("ac", jitter(900.0), 0.2,
                                          jitter(3600.0), 2.0, FlatProfile(),
                                          0.9));
      mix.push_back(Appliance::Stochastic("lights_tv", jitter(200.0), 0.25,
                                          jitter(4800.0), 2.5,
                                          EveningPeakProfile(), 1.2));
      break;
    }
    case 6: {
      // EV commuter: unremarkable by day, a large charger most nights.
      mix.push_back(Appliance::AlwaysOn("standby", jitter(75.0), 3.0));
      mix.push_back(Appliance::Thermostatic("fridge", jitter(115.0),
                                            jitter(900.0), jitter(1800.0),
                                            0.15));
      mix.push_back(Appliance::Stochastic("ev_charger", jitter(3600.0), 0.05,
                                          jitter(3 * 3600.0), 0.9,
                                          NightProfile(), 0.7));
      mix.push_back(Appliance::Stochastic("stove", jitter(1400.0), 0.12,
                                          jitter(1500.0), 1.2,
                                          DoublePeakProfile(), 1.4));
      mix.push_back(Appliance::Stochastic("lights_tv", jitter(210.0), 0.25,
                                          jitter(5400.0), 3.0,
                                          EveningPeakProfile(), 1.3));
      break;
    }
    case 7: {
      // Student studio: tiny base load, kettle and microwave bursts.
      mix.push_back(Appliance::AlwaysOn("standby", jitter(35.0), 2.0));
      mix.push_back(Appliance::Thermostatic("minifridge", jitter(70.0),
                                            jitter(700.0), jitter(2100.0),
                                            0.2));
      mix.push_back(Appliance::Stochastic("kettle", jitter(2000.0), 0.05,
                                          jitter(120.0), 5.0,
                                          EveningPeakProfile(), 1.1));
      mix.push_back(Appliance::Stochastic("microwave", jitter(900.0), 0.1,
                                          jitter(180.0), 2.5,
                                          EveningPeakProfile(), 1.2));
      mix.push_back(Appliance::Stochastic("laptop", jitter(90.0), 0.3,
                                          jitter(9000.0), 2.5,
                                          NightProfile(), 1.4));
      break;
    }
    default: {  // personality 5
      // Retired couple: steady, moderate, cooking-centred.
      mix.push_back(Appliance::AlwaysOn("standby", jitter(80.0), 3.0));
      mix.push_back(Appliance::Thermostatic("fridge", jitter(125.0),
                                            jitter(900.0), jitter(1700.0),
                                            0.15));
      mix.push_back(Appliance::Thermostatic("freezer", jitter(95.0),
                                            jitter(750.0), jitter(2300.0),
                                            0.15));
      mix.push_back(Appliance::Stochastic("stove", jitter(1700.0), 0.12,
                                          jitter(2100.0), 2.0,
                                          EveningPeakProfile(), 1.0));
      mix.push_back(Appliance::Stochastic("iron_vacuum", jitter(1100.0), 0.2,
                                          jitter(1200.0), 0.8, FlatProfile(),
                                          1.0));
      mix.push_back(Appliance::Stochastic("lights_tv", jitter(240.0), 0.25,
                                          jitter(7200.0), 3.5,
                                          EveningPeakProfile(), 1.0));
      break;
    }
  }
  return Household("house " + std::to_string(id + 1), std::move(mix),
                   jitter(3.0));
}

}  // namespace smeter::data
