// Feature construction: turns raw or symbolized meter traces into ML
// datasets for the paper's two tasks.
//
// Classification (Section 3.1): one instance per qualifying day, one
// attribute per vertical window (96 x 15 min or 24 x 1 h), class = house.
// Symbolic variants use nominal attributes whose categories are the binary
// symbols; the lookup table is learned per house from the first two days
// (or from all houses pooled — the paper's "+" single-lookup-table
// variant). Raw variants use numeric attributes.
//
// Forecasting (Section 3.2): next-symbol prediction from `lag` previous
// symbols, reduced to classification; plus raw lag matrices for the SVR
// baseline.

#ifndef SMETER_DATA_FEATURES_H_
#define SMETER_DATA_FEATURES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/lookup_table.h"
#include "core/time_series.h"
#include "data/day_splitter.h"
#include "ml/instances.h"

namespace smeter::data {

// What the separator statistics are computed over.
enum class TableTrainingSource {
  // The raw samples of the historical span — the paper's choice (Figure 4
  // accumulates per-second statistics over the first days).
  kRawSamples,
  // The vertically aggregated window values of the historical span, i.e.
  // exactly the value distribution that will be encoded.
  kAggregates,
};

struct ClassificationOptions {
  // Shared day/vector construction.
  DayVectorOptions day;
  // Symbolic encoding (ignored by the raw builder).
  SeparatorMethod method = SeparatorMethod::kMedian;
  int level = 4;
  // One lookup table per house (paper default) or a single table learned
  // from all houses pooled (the "+" variants / Figure 7).
  bool global_table = false;
  // Historical span whose data trains the lookup tables (the paper uses
  // the first two days of each house).
  int64_t table_training_seconds = 2 * kSecondsPerDay;
  TableTrainingSource table_source = TableTrainingSource::kRawSamples;
};

// Builds the symbolic day-classification dataset over `houses` (raw 1 Hz
// traces). Attributes: one nominal attribute per window with 2^level
// categories (bit-string names); class: "house". Windows a day is missing
// stay missing. Errors if any house yields no table-training data or no
// house yields a qualifying day.
Result<ml::Dataset> BuildSymbolicClassificationDataset(
    const std::vector<TimeSeries>& houses, const ClassificationOptions& options);

// Raw variant: numeric window-average attributes (the paper's "raw" rows;
// with day.window_seconds == 1 this is the full-resolution raw vector).
Result<ml::Dataset> BuildRawClassificationDataset(
    const std::vector<TimeSeries>& houses, const ClassificationOptions& options);

// Per-house lookup tables as used by the symbolic builder (exposed so
// benches can reuse/inspect them). Returns one table per house, or a
// single table repeated when `global_table` is set.
Result<std::vector<LookupTable>> BuildHouseTables(
    const std::vector<TimeSeries>& houses, const ClassificationOptions& options);

// Section 4's resolution flexibility, applied to datasets: converts a
// symbolic classification dataset to a coarser alphabet by truncating each
// symbol attribute's bit string (category index >> (from - to)). Because
// separators nest (Figure 1), the result is identical to re-encoding the
// raw data at the coarser level. Attributes must be nominal with 2^from
// bit-string categories; the class attribute is passed through unchanged.
Result<ml::Dataset> CoarsenSymbolicDataset(const ml::Dataset& data,
                                           int from_level, int to_level);

// --- Forecasting -----------------------------------------------------------

// Builds a next-symbol classification dataset from a symbol-index sequence:
// rows have `lag` nominal lag attributes and a nominal class, one row per
// target position in [from, to) (positions below `lag` are skipped).
// All nominal attributes have 2^level categories.
Result<ml::Dataset> MakeSymbolicLagDataset(const std::vector<uint32_t>& symbols,
                                           size_t lag, int level, size_t from,
                                           size_t to);

// Builds raw lag features: x[i] = values[t-lag..t-1], y[i] = values[t] for
// target positions t in [max(from, lag), to).
Status BuildLagMatrix(const std::vector<double>& values, size_t lag,
                      size_t from, size_t to,
                      std::vector<std::vector<double>>* x,
                      std::vector<double>* y);

}  // namespace smeter::data

#endif  // SMETER_DATA_FEATURES_H_
