// Appliance-level load models for the synthetic smart-meter substrate.
//
// Three behaviours cover the phenomenology the experiments depend on:
//  * always-on  — standby/base load (router, clocks): near-constant watts;
//  * thermostatic — duty-cycled loads (fridge, freezer): alternating on/off
//    phases with jitter, producing the characteristic square-wave floor;
//  * stochastic — occupant-driven events (kettle, oven, washer, TV,
//    lights): a time-of-day and weekday/weekend modulated Poisson process
//    starts events with log-normal-ish magnitudes and random durations.
//
// Summed over an appliance mix, these yield the heavy-tailed, log-normal-
// looking power histogram of Figure 2 and per-house distinctive statistics.

#ifndef SMETER_DATA_APPLIANCE_H_
#define SMETER_DATA_APPLIANCE_H_

#include <array>
#include <string>

#include "common/random.h"
#include "core/time_series.h"

namespace smeter::data {

// Relative activity per hour of day (0-23); values are multipliers on the
// base event rate.
using HourProfile = std::array<double, 24>;

// Typical residential evening-peaked profile.
HourProfile EveningPeakProfile();
// Morning + evening double peak (working household).
HourProfile DoublePeakProfile();
// Flat profile (always equally likely).
HourProfile FlatProfile();
// Night-shifted profile (peaks around midnight-6am).
HourProfile NightProfile();

class Appliance {
 public:
  // Constant draw of `watts` with Gaussian noise of `noise_sd` watts.
  static Appliance AlwaysOn(std::string name, double watts, double noise_sd);

  // Duty-cycled load: `on_watts` for ~`on_seconds`, 0 for ~`off_seconds`,
  // each phase length jittered by +/- `jitter_fraction`.
  static Appliance Thermostatic(std::string name, double on_watts,
                                double on_seconds, double off_seconds,
                                double jitter_fraction);

  // Occupant-driven events. While idle, an event starts each second with
  // probability events_per_day/86400 * profile[hour] * weekend multiplier
  // (profile values average ~1). Event duration is exponential with the
  // given mean; event power is log-normal around `watts`
  // (sigma `power_sigma` in log space).
  static Appliance Stochastic(std::string name, double watts,
                              double power_sigma, double mean_duration_seconds,
                              double events_per_day, HourProfile profile,
                              double weekend_multiplier);

  const std::string& name() const { return name_; }

  // Advances one second of simulated time and returns the watts drawn
  // during [t, t+1). `t` is seconds since epoch; day 0 starts at t = 0 and
  // weeks start on a Monday (days 5 and 6 of each week are the weekend).
  // `activity_scale` multiplies the stochastic event rate (the household's
  // day-to-day occupancy variation); it does not affect always-on or
  // thermostatic loads.
  double Step(Timestamp t, Rng& rng, double activity_scale = 1.0);

 private:
  enum class Kind { kAlwaysOn, kThermostatic, kStochastic };

  Appliance(Kind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

  Kind kind_;
  std::string name_;

  // Always-on.
  double watts_ = 0.0;
  double noise_sd_ = 0.0;

  // Thermostatic.
  double on_seconds_ = 0.0;
  double off_seconds_ = 0.0;
  double jitter_fraction_ = 0.0;
  bool phase_on_ = false;
  double phase_remaining_ = 0.0;

  // Stochastic.
  double power_sigma_ = 0.0;
  double mean_duration_seconds_ = 0.0;
  double events_per_day_ = 0.0;
  HourProfile profile_{};
  double weekend_multiplier_ = 1.0;
  double event_remaining_ = 0.0;
  double event_watts_ = 0.0;
};

// True if `t` falls on a weekend day (weeks start Monday at t = 0).
bool IsWeekend(Timestamp t);

}  // namespace smeter::data

#endif  // SMETER_DATA_APPLIANCE_H_
