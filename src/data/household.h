// One simulated house: an appliance mix plus measurement noise. The six
// default houses are parameterized to mimic the REDD spread — different
// base loads, consumption magnitudes, appliance mixes, and daily rhythms —
// so that per-house statistics (the quantiles the median tables learn) are
// genuinely distinctive.

#ifndef SMETER_DATA_HOUSEHOLD_H_
#define SMETER_DATA_HOUSEHOLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/time_series.h"
#include "data/appliance.h"

namespace smeter::data {

class Household {
 public:
  // `daily_variability` is the log-space sigma of the per-day occupancy
  // multiplier applied to occupant-driven appliances: real households cook
  // or wash more on some days than others, which makes raw watt levels
  // vary day to day even when the routine (which hours are active) stays
  // stable.
  Household(std::string name, std::vector<Appliance> appliances,
            double meter_noise_sd, double daily_variability = 0.15)
      : name_(std::move(name)),
        appliances_(std::move(appliances)),
        meter_noise_sd_(meter_noise_sd),
        daily_variability_(daily_variability) {}

  const std::string& name() const { return name_; }
  size_t num_appliances() const { return appliances_.size(); }

  // Total watts drawn during [t, t+1); never negative.
  double Step(Timestamp t, Rng& rng);

 private:
  std::string name_;
  std::vector<Appliance> appliances_;
  double meter_noise_sd_;
  double daily_variability_;
  // Current day's occupancy multiplier.
  int64_t current_day_ = INT64_MIN;
  double activity_scale_ = 1.0;
};

// Builds one of the eight reference houses (id 0..7: family house, small
// apartment, working couple, night-shift worker, home office, EV commuter,
// student studio, retired couple). `seed` perturbs the parameters so
// different fleets are not identical. Ids >= 8 synthesize further houses
// by reusing the eight personalities with larger perturbations.
Household MakeHousehold(size_t id, uint64_t seed);

}  // namespace smeter::data

#endif  // SMETER_DATA_HOUSEHOLD_H_
