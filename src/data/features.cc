#include "data/features.h"

#include <string>

#include "core/symbol.h"
#include "ml/attribute.h"

namespace smeter::data {
namespace {

// Values from the first `training_seconds` of a trace — the "historical
// data" the separators are learned from. Either the raw samples (the
// paper's per-second statistics, Figure 4) or the window aggregates.
Result<std::vector<double>> TableTrainingValues(
    const TimeSeries& series, const ClassificationOptions& options) {
  if (series.empty()) {
    return FailedPreconditionError("empty house trace");
  }
  TimeRange head{series.front().timestamp,
                 series.front().timestamp + options.table_training_seconds};
  TimeSeries slice = series.Slice(head);
  if (options.table_source == TableTrainingSource::kRawSamples) {
    if (slice.empty()) {
      return FailedPreconditionError("no training data in historical span");
    }
    return slice.Values();
  }
  WindowOptions window;
  window.aggregation = options.day.aggregation;
  window.sample_period_seconds = options.day.sample_period_seconds;
  window.min_coverage = options.day.min_window_coverage;
  Result<TimeSeries> aggregated =
      VerticalSegmentByWindow(slice, options.day.window_seconds, window);
  if (!aggregated.ok()) return aggregated.status();
  if (aggregated->empty()) {
    return FailedPreconditionError(
        "no aggregated training data in the historical span");
  }
  return aggregated->Values();
}

// Window attribute names: w00, w01, ... (zero-padded for stable sorting).
std::string WindowName(size_t i, size_t total) {
  std::string index = std::to_string(i);
  std::string width = std::to_string(total - 1);
  while (index.size() < width.size()) index = "0" + index;
  return "w" + index;
}

std::vector<std::string> HouseNames(size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t h = 0; h < n; ++h) {
    names.push_back("house" + std::to_string(h + 1));
  }
  return names;
}

// Bit-string category names for a level-`level` alphabet.
std::vector<std::string> SymbolNames(int level) {
  size_t k = size_t{1} << level;
  std::vector<std::string> names;
  names.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    names.push_back(
        Symbol::Create(level, static_cast<uint32_t>(i)).value().ToBits());  // lint: checked: i < 2^level is always a valid index
  }
  return names;
}

Status ValidateHouses(const std::vector<TimeSeries>& houses) {
  if (houses.size() < 2) {
    return InvalidArgumentError("need at least two houses");
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<LookupTable>> BuildHouseTables(
    const std::vector<TimeSeries>& houses,
    const ClassificationOptions& options) {
  SMETER_RETURN_IF_ERROR(ValidateHouses(houses));
  LookupTableOptions table_options;
  table_options.method = options.method;
  table_options.level = options.level;

  if (options.global_table) {
    std::vector<double> pooled;
    for (const TimeSeries& house : houses) {
      Result<std::vector<double>> values = TableTrainingValues(house, options);
      if (!values.ok()) return values.status();
      pooled.insert(pooled.end(), values->begin(), values->end());
    }
    Result<LookupTable> table = LookupTable::Build(pooled, table_options);
    if (!table.ok()) return table.status();
    return std::vector<LookupTable>(houses.size(), table.value());
  }

  std::vector<LookupTable> tables;
  tables.reserve(houses.size());
  for (const TimeSeries& house : houses) {
    Result<std::vector<double>> values = TableTrainingValues(house, options);
    if (!values.ok()) return values.status();
    Result<LookupTable> table = LookupTable::Build(*values, table_options);
    if (!table.ok()) return table.status();
    tables.push_back(std::move(table.value()));
  }
  return tables;
}

Result<ml::Dataset> BuildSymbolicClassificationDataset(
    const std::vector<TimeSeries>& houses,
    const ClassificationOptions& options) {
  SMETER_RETURN_IF_ERROR(ValidateHouses(houses));
  Result<std::vector<LookupTable>> tables = BuildHouseTables(houses, options);
  if (!tables.ok()) return tables.status();

  const size_t windows_per_day =
      static_cast<size_t>(kSecondsPerDay / options.day.window_seconds);
  std::vector<ml::Attribute> attributes;
  attributes.reserve(windows_per_day + 1);
  std::vector<std::string> symbol_names = SymbolNames(options.level);
  for (size_t w = 0; w < windows_per_day; ++w) {
    attributes.push_back(
        ml::Attribute::Nominal(WindowName(w, windows_per_day), symbol_names));
  }
  attributes.push_back(
      ml::Attribute::Nominal("house", HouseNames(houses.size())));

  Result<ml::Dataset> dataset = ml::Dataset::Create(
      "smeter-days-symbolic", std::move(attributes), windows_per_day);
  if (!dataset.ok()) return dataset.status();

  size_t total_days = 0;
  for (size_t h = 0; h < houses.size(); ++h) {
    Result<std::vector<DayVector>> days =
        BuildDayVectors(houses[h], options.day);
    if (!days.ok()) return days.status();
    for (const DayVector& day : *days) {
      std::vector<double> row(windows_per_day + 1, ml::kMissing);
      for (size_t w = 0; w < windows_per_day; ++w) {
        if (ml::IsMissing(day.values[w])) continue;
        row[w] = static_cast<double>(
            (*tables)[h].Encode(day.values[w]).index());
      }
      row[windows_per_day] = static_cast<double>(h);
      SMETER_RETURN_IF_ERROR(dataset->Add(std::move(row)));
      ++total_days;
    }
  }
  if (total_days == 0) {
    return FailedPreconditionError("no day met the enough-data threshold");
  }
  return dataset;
}

Result<ml::Dataset> BuildRawClassificationDataset(
    const std::vector<TimeSeries>& houses,
    const ClassificationOptions& options) {
  SMETER_RETURN_IF_ERROR(ValidateHouses(houses));
  const size_t windows_per_day =
      static_cast<size_t>(kSecondsPerDay / options.day.window_seconds);
  std::vector<ml::Attribute> attributes;
  attributes.reserve(windows_per_day + 1);
  for (size_t w = 0; w < windows_per_day; ++w) {
    attributes.push_back(
        ml::Attribute::Numeric(WindowName(w, windows_per_day)));
  }
  attributes.push_back(
      ml::Attribute::Nominal("house", HouseNames(houses.size())));

  Result<ml::Dataset> dataset = ml::Dataset::Create(
      "smeter-days-raw", std::move(attributes), windows_per_day);
  if (!dataset.ok()) return dataset.status();

  size_t total_days = 0;
  for (size_t h = 0; h < houses.size(); ++h) {
    Result<std::vector<DayVector>> days =
        BuildDayVectors(houses[h], options.day);
    if (!days.ok()) return days.status();
    for (const DayVector& day : *days) {
      std::vector<double> row = day.values;
      row.push_back(static_cast<double>(h));
      SMETER_RETURN_IF_ERROR(dataset->Add(std::move(row)));
      ++total_days;
    }
  }
  if (total_days == 0) {
    return FailedPreconditionError("no day met the enough-data threshold");
  }
  return dataset;
}

Result<ml::Dataset> CoarsenSymbolicDataset(const ml::Dataset& data,
                                           int from_level, int to_level) {
  if (to_level < 1 || to_level > from_level ||
      from_level > kMaxSymbolLevel) {
    return InvalidArgumentError("levels must satisfy 1 <= to <= from <= " +
                                std::to_string(kMaxSymbolLevel));
  }
  const size_t from_k = size_t{1} << from_level;
  const int shift = from_level - to_level;

  std::vector<std::string> coarse_names = SymbolNames(to_level);
  std::vector<ml::Attribute> attributes;
  attributes.reserve(data.num_attributes());
  for (size_t a = 0; a < data.num_attributes(); ++a) {
    if (a == data.class_index()) {
      attributes.push_back(data.attribute(a));
      continue;
    }
    if (!data.attribute(a).is_nominal() ||
        data.attribute(a).num_values() != from_k) {
      return InvalidArgumentError("attribute " + data.attribute(a).name() +
                                  " is not a level-" +
                                  std::to_string(from_level) +
                                  " symbol attribute");
    }
    attributes.push_back(
        ml::Attribute::Nominal(data.attribute(a).name(), coarse_names));
  }

  Result<ml::Dataset> out = ml::Dataset::Create(
      data.relation() + "-level" + std::to_string(to_level),
      std::move(attributes), data.class_index());
  if (!out.ok()) return out.status();
  for (size_t r = 0; r < data.num_instances(); ++r) {
    std::vector<double> row = data.row(r);
    for (size_t a = 0; a < row.size(); ++a) {
      if (a == data.class_index() || ml::IsMissing(row[a])) continue;
      row[a] = static_cast<double>(static_cast<uint32_t>(row[a]) >> shift);
    }
    SMETER_RETURN_IF_ERROR(out->Add(std::move(row)));
  }
  return out;
}

Result<ml::Dataset> MakeSymbolicLagDataset(const std::vector<uint32_t>& symbols,
                                           size_t lag, int level, size_t from,
                                           size_t to) {
  if (lag == 0) return InvalidArgumentError("lag must be > 0");
  if (level < 1 || level > kMaxSymbolLevel) {
    return InvalidArgumentError("bad level");
  }
  if (to > symbols.size()) {
    return InvalidArgumentError("range end beyond sequence");
  }
  const uint32_t k = 1u << level;
  for (uint32_t s : symbols) {
    if (s >= k) return InvalidArgumentError("symbol index out of alphabet");
  }

  std::vector<std::string> symbol_names = SymbolNames(level);
  std::vector<ml::Attribute> attributes;
  attributes.reserve(lag + 1);
  for (size_t i = 0; i < lag; ++i) {
    attributes.push_back(ml::Attribute::Nominal(
        "lag" + std::to_string(lag - i), symbol_names));
  }
  attributes.push_back(ml::Attribute::Nominal("next", symbol_names));

  Result<ml::Dataset> dataset =
      ml::Dataset::Create("smeter-forecast", std::move(attributes), lag);
  if (!dataset.ok()) return dataset.status();

  for (size_t t = std::max(from, lag); t < to; ++t) {
    std::vector<double> row(lag + 1, 0.0);
    for (size_t i = 0; i < lag; ++i) {
      row[i] = static_cast<double>(symbols[t - lag + i]);
    }
    row[lag] = static_cast<double>(symbols[t]);
    SMETER_RETURN_IF_ERROR(dataset->Add(std::move(row)));
  }
  return dataset;
}

Status BuildLagMatrix(const std::vector<double>& values, size_t lag,
                      size_t from, size_t to,
                      std::vector<std::vector<double>>* x,
                      std::vector<double>* y) {
  if (lag == 0) return InvalidArgumentError("lag must be > 0");
  if (to > values.size()) {
    return InvalidArgumentError("range end beyond sequence");
  }
  if (x == nullptr || y == nullptr) {
    return InvalidArgumentError("null output");
  }
  x->clear();
  y->clear();
  for (size_t t = std::max(from, lag); t < to; ++t) {
    std::vector<double> row(values.begin() + static_cast<long>(t - lag),
                            values.begin() + static_cast<long>(t));
    x->push_back(std::move(row));
    y->push_back(values[t]);
  }
  return Status::Ok();
}

}  // namespace smeter::data
