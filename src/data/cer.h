// Loader for the Irish CER smart-metering trial file format — the dataset
// Section 4 recommends for studying seasonal change ("one can consider to
// use Irish CER dataset which has more than one year measurement").
//
// CER files are whitespace-separated text, one record per line:
//
//   <meter_id> <daycode><slot> <kwh>
//
// where <daycode> is a 3-digit day number (day 1 = 2009-01-01 in the
// trial; we map it to relative timestamps), <slot> a 2-digit half-hour
// index 1..50 (49/50 appear on DST-change days), and <kwh> the energy used
// in that half hour. Records may arrive in any order.

#ifndef SMETER_DATA_CER_H_
#define SMETER_DATA_CER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/time_series.h"

namespace smeter::data {

struct CerOptions {
  // Convert kWh-per-half-hour into average watts (x2000); otherwise keep
  // raw kWh values.
  bool convert_to_watts = true;
};

// Parses CER-format `content`. Returns one (meter id, series) pair per
// meter, meters in ascending id order, samples sorted by time. Timestamps
// are relative: day 1 slot 1 begins at t = 0. Errors on malformed rows or
// out-of-range slots.
Result<std::vector<std::pair<int64_t, TimeSeries>>> ParseCer(
    const std::string& content, const CerOptions& options = {});

// Reads and parses the file at `path`.
Result<std::vector<std::pair<int64_t, TimeSeries>>> LoadCerFile(
    const std::string& path, const CerOptions& options = {});

// Writes series in CER format (the inverse mapping), for interoperability
// tests and for exporting simulator output to CER-consuming tools.
// Timestamps must be non-negative multiples of 1800 s.
Result<std::string> FormatCer(
    const std::vector<std::pair<int64_t, TimeSeries>>& meters,
    const CerOptions& options = {});

}  // namespace smeter::data

#endif  // SMETER_DATA_CER_H_
