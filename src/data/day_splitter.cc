#include "data/day_splitter.h"

#include <cmath>

#include "ml/instances.h"  // kMissing convention

namespace smeter::data {

std::vector<TimeRange> EnumerateDays(const TimeSeries& series) {
  std::vector<TimeRange> days;
  if (series.empty()) return days;
  Timestamp first_day = series.front().timestamp / kSecondsPerDay;
  if (series.front().timestamp < 0 &&
      series.front().timestamp % kSecondsPerDay != 0) {
    --first_day;
  }
  Timestamp last_day = series.back().timestamp / kSecondsPerDay;
  if (series.back().timestamp < 0 &&
      series.back().timestamp % kSecondsPerDay != 0) {
    --last_day;
  }
  for (Timestamp d = first_day; d <= last_day; ++d) {
    days.push_back({d * kSecondsPerDay, (d + 1) * kSecondsPerDay});
  }
  return days;
}

Result<std::vector<DayVector>> BuildDayVectors(
    const TimeSeries& series, const DayVectorOptions& options) {
  if (options.window_seconds <= 0 ||
      kSecondsPerDay % options.window_seconds != 0) {
    return InvalidArgumentError("window_seconds must divide 86400");
  }
  if (options.sample_period_seconds <= 0) {
    return InvalidArgumentError("sample_period_seconds must be > 0");
  }
  if (options.min_hours < 0.0 || options.min_hours > 24.0) {
    return InvalidArgumentError("min_hours must be in [0, 24]");
  }

  const size_t windows_per_day =
      static_cast<size_t>(kSecondsPerDay / options.window_seconds);
  const double samples_needed =
      options.min_hours * 3600.0 /
      static_cast<double>(options.sample_period_seconds);

  std::vector<DayVector> out;
  for (const TimeRange& day : EnumerateDays(series)) {
    TimeSeries day_data = series.Slice(day);
    if (static_cast<double>(day_data.size()) < samples_needed) continue;

    WindowOptions window;
    window.aggregation = options.aggregation;
    window.sample_period_seconds = options.sample_period_seconds;
    window.min_coverage = options.min_window_coverage;
    Result<TimeSeries> aggregated =
        VerticalSegmentByWindow(day_data, options.window_seconds, window);
    if (!aggregated.ok()) return aggregated.status();

    DayVector dv;
    dv.day_start = day.begin;
    dv.values.assign(windows_per_day, ml::kMissing);
    for (const Sample& s : aggregated.value()) {
      // Window samples are stamped with the window end.
      int64_t offset = s.timestamp - day.begin;
      size_t idx = static_cast<size_t>(offset / options.window_seconds) - 1;
      if (idx < windows_per_day) {
        dv.values[idx] = s.value;
        ++dv.windows_present;
      }
    }
    out.push_back(std::move(dv));
  }
  return out;
}

}  // namespace smeter::data
