#include "data/cer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"

namespace smeter::data {
namespace {

constexpr int64_t kHalfHour = 1800;
constexpr double kKwhPerHalfHourToWatts = 2000.0;

}  // namespace

Result<std::vector<std::pair<int64_t, TimeSeries>>> ParseCer(
    const std::string& content, const CerOptions& options) {
  CsvOptions csv;
  csv.delimiter = ' ';
  Result<CsvTable> table = ParseCsv(content, csv);
  if (!table.ok()) return table.status();

  std::map<int64_t, std::vector<Sample>> by_meter;
  for (size_t i = 0; i < table->rows.size(); ++i) {
    const auto& row = table->rows[i];
    if (row.size() < 3) {
      return InvalidArgumentError("CER row " + std::to_string(i) +
                                  " has fewer than 3 fields");
    }
    Result<int64_t> meter = ParseInt(row[0]);
    if (!meter.ok()) return meter.status();
    std::string_view code = Trim(row[1]);
    if (code.size() != 5) {
      return InvalidArgumentError("CER row " + std::to_string(i) +
                                  ": day-time code must be 5 digits");
    }
    Result<int64_t> day = ParseInt(code.substr(0, 3));
    if (!day.ok()) return day.status();
    Result<int64_t> slot = ParseInt(code.substr(3, 2));
    if (!slot.ok()) return slot.status();
    if (*day < 1) {
      return InvalidArgumentError("CER row " + std::to_string(i) +
                                  ": day must be >= 1");
    }
    if (*slot < 1 || *slot > 50) {
      return InvalidArgumentError("CER row " + std::to_string(i) +
                                  ": slot must be in [1, 50]");
    }
    Result<double> kwh = ParseDouble(row[2]);
    if (!kwh.ok()) return kwh.status();

    Timestamp t = (*day - 1) * kSecondsPerDay + (*slot - 1) * kHalfHour;
    double value =
        options.convert_to_watts ? *kwh * kKwhPerHalfHourToWatts : *kwh;
    by_meter[*meter].push_back({t, value});
  }

  std::vector<std::pair<int64_t, TimeSeries>> out;
  out.reserve(by_meter.size());
  for (auto& [meter, samples] : by_meter) {
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) {
                return a.timestamp < b.timestamp;
              });
    Result<TimeSeries> series = TimeSeries::FromSamples(std::move(samples));
    if (!series.ok()) return series.status();
    out.emplace_back(meter, std::move(series.value()));
  }
  return out;
}

Result<std::vector<std::pair<int64_t, TimeSeries>>> LoadCerFile(
    const std::string& path, const CerOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return InternalError("I/O error reading: " + path);
  return ParseCer(buffer.str(), options);
}

Result<std::string> FormatCer(
    const std::vector<std::pair<int64_t, TimeSeries>>& meters,
    const CerOptions& options) {
  std::string out;
  char line[64];
  for (const auto& [meter, series] : meters) {
    for (const Sample& s : series) {
      if (s.timestamp < 0 || s.timestamp % kHalfHour != 0) {
        return InvalidArgumentError(
            "timestamps must be non-negative multiples of 1800 s");
      }
      int64_t day = s.timestamp / kSecondsPerDay + 1;
      int64_t slot = (s.timestamp % kSecondsPerDay) / kHalfHour + 1;
      if (day > 999) {
        return InvalidArgumentError("day beyond the 3-digit CER encoding");
      }
      double value = options.convert_to_watts
                         ? s.value / kKwhPerHalfHourToWatts
                         : s.value;
      std::snprintf(line, sizeof(line), "%lld %03lld%02lld %.5f\n",
                    static_cast<long long>(meter),
                    static_cast<long long>(day),
                    static_cast<long long>(slot), value);
      out += line;
    }
  }
  return out;
}

}  // namespace smeter::data
