#include "data/appliance.h"

#include <algorithm>
#include <cmath>

namespace smeter::data {

HourProfile EveningPeakProfile() {
  return {0.2, 0.1, 0.1, 0.1, 0.1, 0.2, 0.6, 1.0, 0.9, 0.7, 0.6, 0.8,
          1.0, 0.8, 0.6, 0.7, 1.0, 1.6, 2.4, 2.8, 2.6, 2.0, 1.2, 0.6};
}

HourProfile DoublePeakProfile() {
  return {0.2, 0.1, 0.1, 0.1, 0.2, 0.6, 1.8, 2.4, 1.6, 0.5, 0.3, 0.4,
          0.5, 0.4, 0.3, 0.4, 0.8, 1.6, 2.4, 2.2, 1.8, 1.4, 0.8, 0.4};
}

HourProfile FlatProfile() {
  HourProfile p;
  p.fill(1.0);
  return p;
}

HourProfile NightProfile() {
  return {2.4, 2.6, 2.4, 2.0, 1.6, 1.0, 0.5, 0.3, 0.2, 0.2, 0.3, 0.5,
          0.7, 0.8, 0.8, 0.8, 0.9, 1.0, 1.0, 1.1, 1.3, 1.6, 2.0, 2.2};
}

bool IsWeekend(Timestamp t) {
  int64_t day = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --day;  // floor for negative t
  int64_t dow = ((day % 7) + 7) % 7;            // Monday = 0
  return dow >= 5;
}

Appliance Appliance::AlwaysOn(std::string name, double watts,
                              double noise_sd) {
  Appliance a(Kind::kAlwaysOn, std::move(name));
  a.watts_ = watts;
  a.noise_sd_ = noise_sd;
  return a;
}

Appliance Appliance::Thermostatic(std::string name, double on_watts,
                                  double on_seconds, double off_seconds,
                                  double jitter_fraction) {
  Appliance a(Kind::kThermostatic, std::move(name));
  a.watts_ = on_watts;
  a.on_seconds_ = on_seconds;
  a.off_seconds_ = off_seconds;
  a.jitter_fraction_ = jitter_fraction;
  a.phase_on_ = false;
  a.phase_remaining_ = 0.0;
  return a;
}

Appliance Appliance::Stochastic(std::string name, double watts,
                                double power_sigma,
                                double mean_duration_seconds,
                                double events_per_day, HourProfile profile,
                                double weekend_multiplier) {
  Appliance a(Kind::kStochastic, std::move(name));
  a.watts_ = watts;
  a.power_sigma_ = power_sigma;
  a.mean_duration_seconds_ = mean_duration_seconds;
  a.events_per_day_ = events_per_day;
  a.profile_ = profile;
  a.weekend_multiplier_ = weekend_multiplier;
  return a;
}

double Appliance::Step(Timestamp t, Rng& rng, double activity_scale) {
  switch (kind_) {
    case Kind::kAlwaysOn: {
      double w = watts_;
      if (noise_sd_ > 0.0) w += rng.Gaussian(0.0, noise_sd_);
      return std::max(w, 0.0);
    }
    case Kind::kThermostatic: {
      if (phase_remaining_ <= 0.0) {
        phase_on_ = !phase_on_;
        double nominal = phase_on_ ? on_seconds_ : off_seconds_;
        double jitter = rng.Uniform(-jitter_fraction_, jitter_fraction_);
        phase_remaining_ = std::max(nominal * (1.0 + jitter), 1.0);
      }
      phase_remaining_ -= 1.0;
      return phase_on_ ? watts_ : 0.0;
    }
    case Kind::kStochastic: {
      if (event_remaining_ > 0.0) {
        event_remaining_ -= 1.0;
        return event_watts_;
      }
      int64_t second_of_day = ((t % kSecondsPerDay) + kSecondsPerDay) %
                              kSecondsPerDay;
      size_t hour = static_cast<size_t>(second_of_day / kSecondsPerHour);
      double rate = events_per_day_ / static_cast<double>(kSecondsPerDay) *
                    profile_[hour] * activity_scale;
      if (IsWeekend(t)) rate *= weekend_multiplier_;
      if (rng.Bernoulli(std::min(rate, 1.0))) {
        event_remaining_ = rng.Exponential(1.0 / mean_duration_seconds_);
        event_watts_ =
            watts_ * std::exp(rng.Gaussian(0.0, power_sigma_) -
                              0.5 * power_sigma_ * power_sigma_);
        event_remaining_ -= 1.0;
        return event_watts_;
      }
      return 0.0;
    }
  }
  return 0.0;
}

}  // namespace smeter::data
