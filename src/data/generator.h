// Fleet-level smart-meter trace generation with outage (gap) injection —
// the REDD-dataset substitute (see DESIGN.md section 2 for the
// substitution argument).

#ifndef SMETER_DATA_GENERATOR_H_
#define SMETER_DATA_GENERATOR_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "core/time_series.h"
#include "data/household.h"

namespace smeter::data {

struct GeneratorOptions {
  size_t num_houses = 6;
  Timestamp start_timestamp = 0;
  int64_t duration_seconds = 14 * kSecondsPerDay;
  int64_t sample_period_seconds = 1;
  // Meter quantization: reported watts are rounded to a multiple of this
  // (1 W, like REDD). This is what makes `median` and `distinctmedian`
  // genuinely different — standby plateaus repeat the same reading for
  // hours. Set to 0 to disable.
  double resolution_watts = 1.0;
  // Seasonal modulation (Section 4's seasonal-change scenario, for
  // CER-length simulations): consumption is scaled by
  //   1 + seasonal_amplitude * cos(2*pi*(day - seasonal_peak_day)/period).
  // 0 disables it. 0.4 roughly doubles winter vs summer consumption.
  double seasonal_amplitude = 0.0;
  int64_t seasonal_period_days = 365;
  int64_t seasonal_peak_day = 15;  // mid-January heating peak
  // Outage model: outages start as a Poisson process and last an
  // exponential time; samples inside an outage are dropped (a gap, as in
  // REDD).
  double outages_per_day = 0.4;
  double outage_mean_seconds = 2400.0;
  // House index that mimics REDD's house 5 ("not enough data"): most of
  // its days fail the 20-hour rule. Set >= num_houses to disable.
  size_t sparse_house = 4;
  double sparse_outages_per_day = 18.0;
  double sparse_outage_mean_seconds = 9600.0;
  uint64_t seed = 42;
};

// Generates one house's full (gappy) trace. Deterministic in
// (options.seed, house_id).
Result<TimeSeries> GenerateHouseSeries(size_t house_id,
                                       const GeneratorOptions& options);

// Streams one house's trace through `callback` without materializing it —
// for histogram-style passes over weeks of 1 Hz data. The callback sees
// exactly the samples GenerateHouseSeries would contain.
Status ForEachHouseSample(size_t house_id, const GeneratorOptions& options,
                          const std::function<void(const Sample&)>& callback);

// All houses, materialized. Convenient for tests/examples; benches prefer
// per-house streaming.
Result<std::vector<TimeSeries>> GenerateFleet(const GeneratorOptions& options);

}  // namespace smeter::data

#endif  // SMETER_DATA_GENERATOR_H_
