// Day-level preparation for the classification experiment (Section 3.1):
// split a house's trace into aligned calendar days, keep days with "enough"
// data (the paper's threshold: >= 20 hours), and turn each kept day into a
// fixed-length vector of window aggregates (96 x 15 min or 24 x 1 h).

#ifndef SMETER_DATA_DAY_SPLITTER_H_
#define SMETER_DATA_DAY_SPLITTER_H_

#include <vector>

#include "common/status.h"
#include "core/time_series.h"
#include "core/vertical.h"

namespace smeter::data {

struct DayVectorOptions {
  // Vertical aggregation window within the day (900 or 3600 in the paper).
  int64_t window_seconds = kSecondsPerHour;
  int64_t sample_period_seconds = 1;
  // The paper keeps days with at least 20 hours of data.
  double min_hours = 20.0;
  // A window with coverage below this is a missing cell in the vector.
  double min_window_coverage = 0.5;
  Aggregation aggregation = Aggregation::kMean;
};

// One selected day: `values` has 86400/window_seconds entries; absent
// windows are NaN (core missing convention).
struct DayVector {
  Timestamp day_start = 0;
  std::vector<double> values;
  size_t windows_present = 0;
};

// Aligned day ranges [k*86400, (k+1)*86400) intersecting the series.
std::vector<TimeRange> EnumerateDays(const TimeSeries& series);

// Builds the day vectors of all qualifying days. Errors on bad options;
// an empty result just means no day met the threshold.
Result<std::vector<DayVector>> BuildDayVectors(const TimeSeries& series,
                                               const DayVectorOptions& options);

}  // namespace smeter::data

#endif  // SMETER_DATA_DAY_SPLITTER_H_
