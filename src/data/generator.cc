#include "data/generator.h"

#include <cmath>

namespace smeter::data {
namespace {

Status ValidateOptions(const GeneratorOptions& options) {
  if (options.num_houses == 0) {
    return InvalidArgumentError("num_houses must be > 0");
  }
  if (options.duration_seconds <= 0) {
    return InvalidArgumentError("duration_seconds must be > 0");
  }
  if (options.sample_period_seconds <= 0) {
    return InvalidArgumentError("sample_period_seconds must be > 0");
  }
  if (options.outages_per_day < 0.0 || options.outage_mean_seconds < 0.0) {
    return InvalidArgumentError("outage parameters must be >= 0");
  }
  if (options.seasonal_amplitude < 0.0 || options.seasonal_amplitude >= 1.0) {
    return InvalidArgumentError("seasonal_amplitude must be in [0, 1)");
  }
  if (options.seasonal_period_days <= 0) {
    return InvalidArgumentError("seasonal_period_days must be > 0");
  }
  return Status::Ok();
}

}  // namespace

Status ForEachHouseSample(size_t house_id, const GeneratorOptions& options,
                          const std::function<void(const Sample&)>& callback) {
  SMETER_RETURN_IF_ERROR(ValidateOptions(options));
  if (house_id >= options.num_houses) {
    return InvalidArgumentError("house_id out of range");
  }

  Household house = MakeHousehold(house_id, options.seed);
  Rng power_rng(options.seed ^ (0xabcdef12u + house_id * 7919));
  Rng outage_rng(options.seed ^ (0x13572468u + house_id * 104729));

  const bool sparse = house_id == options.sparse_house;
  const double outages_per_day =
      sparse ? options.sparse_outages_per_day : options.outages_per_day;
  const double outage_mean =
      sparse ? options.sparse_outage_mean_seconds : options.outage_mean_seconds;
  const double outage_rate =
      outages_per_day / static_cast<double>(kSecondsPerDay);

  // Outage schedule: the next outage begins at `next_outage_start` and,
  // once entered, lasts until `outage_end`.
  const Timestamp end = options.start_timestamp + options.duration_seconds;
  Timestamp next_outage_start = end;  // disabled unless rate > 0
  Timestamp outage_end = options.start_timestamp;
  if (outage_rate > 0.0 && outage_mean > 0.0) {
    next_outage_start =
        options.start_timestamp +
        static_cast<int64_t>(outage_rng.Exponential(outage_rate));
  }

  for (Timestamp t = options.start_timestamp; t < end;
       t += options.sample_period_seconds) {
    // The appliance simulation always advances (the house keeps consuming
    // during a meter outage); only the measurement is dropped.
    double watts = house.Step(t, power_rng);
    if (options.seasonal_amplitude > 0.0) {
      double day = static_cast<double>(t) / kSecondsPerDay;
      double phase = 2.0 * 3.14159265358979323846 *
                     (day - static_cast<double>(options.seasonal_peak_day)) /
                     static_cast<double>(options.seasonal_period_days);
      watts *= 1.0 + options.seasonal_amplitude * std::cos(phase);
    }
    if (options.resolution_watts > 0.0) {
      watts = std::round(watts / options.resolution_watts) *
              options.resolution_watts;
    }

    if (t >= next_outage_start) {
      outage_end =
          t + static_cast<int64_t>(outage_rng.Exponential(1.0 / outage_mean));
      next_outage_start =
          outage_end +
          static_cast<int64_t>(outage_rng.Exponential(outage_rate));
    }
    if (t < outage_end) continue;  // inside an outage: sample lost
    callback({t, watts});
  }
  return Status::Ok();
}

Result<TimeSeries> GenerateHouseSeries(size_t house_id,
                                       const GeneratorOptions& options) {
  TimeSeries series;
  Status status = ForEachHouseSample(
      house_id, options, [&series](const Sample& s) {
        // Timestamps are strictly increasing by construction.
        (void)series.Append(s);
      });
  if (!status.ok()) return status;
  return series;
}

Result<std::vector<TimeSeries>> GenerateFleet(
    const GeneratorOptions& options) {
  SMETER_RETURN_IF_ERROR(ValidateOptions(options));
  std::vector<TimeSeries> fleet;
  fleet.reserve(options.num_houses);
  for (size_t h = 0; h < options.num_houses; ++h) {
    Result<TimeSeries> series = GenerateHouseSeries(h, options);
    if (!series.ok()) return series.status();
    fleet.push_back(std::move(series.value()));
  }
  return fleet;
}

}  // namespace smeter::data
