// Loader for the REDD low_freq on-disk layout (Kolter & Johnson, 2011) —
// for users who have the real dataset. Each channel is a text file of
// "unix_timestamp watts" lines; channels 1 and 2 are the two mains, and the
// paper sums them into the house total.

#ifndef SMETER_DATA_REDD_H_
#define SMETER_DATA_REDD_H_

#include <string>

#include "common/status.h"
#include "core/time_series.h"

namespace smeter::data {

// Reads one channel file (space-separated "timestamp value" rows, sorted by
// time). Rejects malformed rows and timestamp regressions.
Result<TimeSeries> LoadReddChannel(const std::string& path);

// Loads `house_dir`/channel_1.dat + channel_2.dat and sums them into the
// house's total consumption, aligning on the timestamps both channels
// share (REDD mains are sampled together; stray singletons are dropped).
Result<TimeSeries> LoadReddHouseMains(const std::string& house_dir);

}  // namespace smeter::data

#endif  // SMETER_DATA_REDD_H_
