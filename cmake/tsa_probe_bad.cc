// Configure-time thread-safety probe, the failing half: this TU reads a
// GUARDED_BY field with no lock held and MUST be rejected when
// -Wthread-safety -Werror is live. If it compiles, the analysis is not
// firing and the configure aborts rather than pretend the concurrency
// contracts are being checked.

#include "common/sync.h"

namespace {

class Guarded {
 public:
  // Deliberate violation: no REQUIRES, no lock, guarded read.
  int Read() const { return count_; }

 private:
  mutable smeter::Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded guarded;
  return guarded.Read();
}
