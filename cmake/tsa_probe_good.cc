// Configure-time thread-safety probe, the passing half: a correctly
// annotated class using the common/sync.h wrappers must compile cleanly
// under -Wthread-safety -Werror. If this TU fails, the annotations
// themselves are broken for the active compiler and the configure aborts.

#include "common/sync.h"

namespace {

class Guarded {
 public:
  void Increment() REQUIRES(!mutex_) {
    smeter::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  smeter::Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded guarded;
  guarded.Increment();
  return 0;
}
