// Full-jitter backoff schedule tests. The helper is pure (caller-owned
// rng state, no clocks), so the whole schedule is checkable exactly:
// bounds, determinism per seed, exponential ceiling growth, cap
// saturation, and degenerate policies.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "net/loadgen.h"

namespace smeter::net {
namespace {

TEST(FullJitterBackoffTest, FirstAttemptNeverWaits) {
  BackoffPolicy policy;
  uint64_t rng = 1;
  EXPECT_EQ(FullJitterBackoffMs(1, policy, &rng), 0);
  EXPECT_EQ(FullJitterBackoffMs(0, policy, &rng), 0);
  EXPECT_EQ(FullJitterBackoffMs(-3, policy, &rng), 0);
}

TEST(FullJitterBackoffTest, DrawsStayInsideTheExponentialCeiling) {
  BackoffPolicy policy;
  policy.base_ms = 50;
  policy.cap_ms = 2'000;
  uint64_t rng = 0x12345678u;
  for (int attempt = 2; attempt <= 12; ++attempt) {
    // ceiling = min(cap, base * 2^(attempt-2))
    int64_t ceiling = policy.base_ms;
    for (int i = 2; i < attempt && ceiling < policy.cap_ms; ++i) {
      ceiling *= 2;
    }
    if (ceiling > policy.cap_ms) ceiling = policy.cap_ms;
    for (int draw = 0; draw < 200; ++draw) {
      const int64_t delay = FullJitterBackoffMs(attempt, policy, &rng);
      ASSERT_GE(delay, 0) << "attempt " << attempt;
      ASSERT_LE(delay, ceiling) << "attempt " << attempt;
    }
  }
}

TEST(FullJitterBackoffTest, SameSeedSameSchedule) {
  BackoffPolicy policy;
  uint64_t a = 42, b = 42;
  for (int attempt = 2; attempt <= 8; ++attempt) {
    EXPECT_EQ(FullJitterBackoffMs(attempt, policy, &a),
              FullJitterBackoffMs(attempt, policy, &b));
  }
  EXPECT_EQ(a, b);
}

TEST(FullJitterBackoffTest, SchedulesActuallyJitter) {
  // The whole point: two meters that failed together must not retry in
  // lockstep. With a 2000 ms cap the odds of 8 identical draws from
  // distinct seeds are negligible.
  BackoffPolicy policy;
  uint64_t a = 42, b = 43;
  std::vector<int64_t> sa, sb;
  for (int attempt = 5; attempt <= 12; ++attempt) {
    sa.push_back(FullJitterBackoffMs(attempt, policy, &a));
    sb.push_back(FullJitterBackoffMs(attempt, policy, &b));
  }
  EXPECT_NE(sa, sb);
  // And a single seed's schedule is not a constant either.
  EXPECT_GT(std::set<int64_t>(sa.begin(), sa.end()).size(), 1u);
}

TEST(FullJitterBackoffTest, CapBoundsLateAttempts) {
  BackoffPolicy policy;
  policy.base_ms = 100;
  policy.cap_ms = 400;
  uint64_t rng = 7;
  for (int attempt = 2; attempt <= 40; ++attempt) {
    EXPECT_LE(FullJitterBackoffMs(attempt, policy, &rng), 400);
  }
}

TEST(FullJitterBackoffTest, DegeneratePoliciesAreClamped) {
  // base < 1 acts as 1; cap < base acts as base; a zero rng seed is
  // reseeded instead of dividing by zero or returning a constant.
  BackoffPolicy policy;
  policy.base_ms = 0;
  policy.cap_ms = -5;
  uint64_t rng = 0;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    const int64_t delay = FullJitterBackoffMs(attempt, policy, &rng);
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, 1);
  }
  EXPECT_NE(rng, 0u);
}

TEST(FullJitterBackoffTest, HugeAttemptCountsNeverOverflow) {
  // Regression: the doubling loop used to overflow int64 once the attempt
  // count pushed the theoretical ceiling past INT64_MAX (signed overflow is
  // UB, and in practice produced negative delays). A client that has been
  // retrying for days must still draw sane, cap-bounded waits.
  BackoffPolicy policy;
  policy.base_ms = 50;
  policy.cap_ms = 2'000;
  uint64_t rng = 9;
  for (int attempt : {63, 64, 65, 100, 1'000, 1'000'000, INT32_MAX}) {
    const int64_t delay = FullJitterBackoffMs(attempt, policy, &rng);
    EXPECT_GE(delay, 0) << "attempt " << attempt;
    EXPECT_LE(delay, policy.cap_ms) << "attempt " << attempt;
  }

  // The pathological-but-legal policy: a cap of INT64_MAX means the
  // ceiling itself saturates at INT64_MAX, and the modulus (ceiling + 1)
  // must be computed in uint64 space rather than overflowing back to zero.
  BackoffPolicy unbounded;
  unbounded.base_ms = 1;
  unbounded.cap_ms = INT64_MAX;
  for (int attempt : {2, 63, 64, 70, 1'000}) {
    const int64_t delay = FullJitterBackoffMs(attempt, unbounded, &rng);
    EXPECT_GE(delay, 0) << "attempt " << attempt;
  }
}

TEST(XorShift64Test, AdvancesAndNeverYieldsZero) {
  uint64_t state = 1;
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t value = XorShift64(&state);
    EXPECT_NE(value, 0u);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no short cycle from the unit seed
}

}  // namespace
}  // namespace smeter::net
