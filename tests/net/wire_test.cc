// Frame codec tests: Encode/Decode and Make*/Parse* must be exact
// inverses, and every malformed input — truncation, CRC damage, unknown
// types, oversized lengths, trailing bytes — must be refused with the
// documented outcome, never accepted or crashed on.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testutil.h"

namespace smeter::net {
namespace {

Frame DecodeOk(const std::string& bytes) {
  DecodeResult result = DecodeFrame(bytes);
  EXPECT_EQ(result.outcome, DecodeResult::Outcome::kFrame)
      << result.error.ToString();
  EXPECT_EQ(result.consumed, bytes.size());
  return result.frame;
}

TEST(WireFrameTest, EncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = FrameType::kSymbolBatch;
  frame.payload = std::string("\x00\x01\x02\xff payload", 12);
  std::string bytes = EncodeFrame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());
  EXPECT_EQ(DecodeOk(bytes), frame);
}

TEST(WireFrameTest, EmptyPayloadRoundTrips) {
  Frame frame;
  frame.type = FrameType::kPing;
  EXPECT_EQ(DecodeOk(EncodeFrame(frame)), frame);
}

TEST(WireFrameTest, StreamingDecodeConsumesExactlyOneFrame) {
  std::string stream = EncodeFrame(MakePing(7)) + EncodeFrame(MakePong(7));
  DecodeResult first = DecodeFrame(stream);
  ASSERT_EQ(first.outcome, DecodeResult::Outcome::kFrame);
  EXPECT_EQ(first.frame.type, FrameType::kPing);
  DecodeResult second = DecodeFrame(
      std::string_view(stream).substr(first.consumed));
  ASSERT_EQ(second.outcome, DecodeResult::Outcome::kFrame);
  EXPECT_EQ(second.frame.type, FrameType::kPong);
  EXPECT_EQ(first.consumed + second.consumed, stream.size());
}

TEST(WireFrameTest, EveryTruncationIsNeedMoreNeverError) {
  std::string bytes = EncodeFrame(MakeHello({kProtocolVersion, "m1", "t"}));
  for (size_t n = 0; n < bytes.size(); ++n) {
    SCOPED_TRACE(n);
    DecodeResult result = DecodeFrame(std::string_view(bytes).substr(0, n));
    EXPECT_EQ(result.outcome, DecodeResult::Outcome::kNeedMore);
    EXPECT_EQ(result.consumed, 0u);
  }
}

TEST(WireFrameTest, EverySingleBitFlipIsDetected) {
  std::string bytes = EncodeFrame(MakePing(0x0123456789abcdefull));
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = bytes;
      damaged[byte] = static_cast<char>(
          static_cast<unsigned char>(damaged[byte]) ^ (1u << bit));
      DecodeResult result = DecodeFrame(damaged);
      // A flipped length byte may legitimately turn the buffer into a
      // valid prefix of a longer frame (kNeedMore); anything that decodes
      // to a complete frame identical to the original is a codec bug.
      if (result.outcome == DecodeResult::Outcome::kFrame) {
        ADD_FAILURE() << "bit " << bit << " of byte " << byte
                      << " flipped but the frame still decoded";
      }
    }
  }
}

TEST(WireFrameTest, UnknownFrameTypeDecodesWhenCrcValid) {
  // Forward compatibility: a frame of a type this revision has never heard
  // of still decodes as long as the CRC checks out — refusing it is session
  // policy (typed kUnsupported ack), not a codec error, so the stream never
  // desyncs on a future protocol extension.
  Frame frame;
  frame.type = static_cast<FrameType>(99);
  frame.payload = "future-feature";
  std::string bytes = EncodeFrame(frame);
  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.outcome, DecodeResult::Outcome::kFrame);
  EXPECT_EQ(static_cast<uint8_t>(result.frame.type), 99);
  EXPECT_EQ(result.frame.payload, "future-feature");
  EXPECT_EQ(result.consumed, bytes.size());

  // A type byte that was *damaged in flight* (CRC computed over the
  // original type) is still caught: the CRC covers the type byte.
  std::string damaged = EncodeFrame(MakePing(7));
  damaged[4] = 99;
  DecodeResult torn = DecodeFrame(damaged);
  ASSERT_EQ(torn.outcome, DecodeResult::Outcome::kError);
  EXPECT_EQ(torn.error.code(), StatusCode::kDataLoss);

  EXPECT_FALSE(IsKnownFrameType(0));
  EXPECT_FALSE(IsKnownFrameType(12));
  EXPECT_TRUE(IsKnownFrameType(1));
  EXPECT_TRUE(IsKnownFrameType(11));  // kThrottle, the v2 push-back
}

TEST(WireFrameTest, OversizedLengthIsRefusedBeforeAllocation) {
  std::string bytes(kFrameHeaderBytes, '\0');
  const uint32_t huge = kMaxFramePayload + 1;
  bytes[0] = static_cast<char>(huge & 0xff);
  bytes[1] = static_cast<char>((huge >> 8) & 0xff);
  bytes[2] = static_cast<char>((huge >> 16) & 0xff);
  bytes[3] = static_cast<char>((huge >> 24) & 0xff);
  bytes[4] = 1;  // kHello
  DecodeResult result = DecodeFrame(bytes);
  EXPECT_EQ(result.outcome, DecodeResult::Outcome::kError);
  EXPECT_EQ(result.error.code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, CrcDamageIsDataLoss) {
  std::string bytes = EncodeFrame(MakeGoodbye({10, 2, 1}));
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);  // payload bit
  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.outcome, DecodeResult::Outcome::kError);
  EXPECT_EQ(result.error.code(), StatusCode::kDataLoss);
}

TEST(WirePayloadTest, HelloRoundTrip) {
  HelloPayload hello;
  hello.protocol_version = kProtocolVersion;
  hello.meter_id = "meter_1042";
  hello.auth_token = "secret token";
  ASSERT_OK_AND_ASSIGN(HelloPayload parsed, ParseHello(MakeHello(hello)));
  EXPECT_EQ(parsed.protocol_version, hello.protocol_version);
  EXPECT_EQ(parsed.meter_id, hello.meter_id);
  EXPECT_EQ(parsed.auth_token, hello.auth_token);
}

TEST(WirePayloadTest, MeterIdCharsetIsEnforced) {
  EXPECT_TRUE(IsValidMeterId("meter_1042"));
  EXPECT_TRUE(IsValidMeterId("A-9._x"));
  EXPECT_TRUE(IsValidMeterId("..x"));  // has a non-dot byte: a plain name
  EXPECT_FALSE(IsValidMeterId(""));
  EXPECT_FALSE(IsValidMeterId("."));
  EXPECT_FALSE(IsValidMeterId(".."));
  EXPECT_FALSE(IsValidMeterId("..."));
  EXPECT_FALSE(IsValidMeterId("a/b"));
  EXPECT_FALSE(IsValidMeterId("../../escape"));
  EXPECT_FALSE(IsValidMeterId("a\\b"));
  EXPECT_FALSE(IsValidMeterId("a b"));
  EXPECT_FALSE(IsValidMeterId("a\nb"));
  EXPECT_FALSE(IsValidMeterId(std::string_view("a\0b", 3)));
  EXPECT_FALSE(IsValidMeterId(std::string(kMaxWireString + 1, 'a')));

  // ParseHello applies the same rule, so a hostile meter id dies at the
  // strict parser, before the session or the archive sink can see it.
  EXPECT_FALSE(
      ParseHello(MakeHello({kProtocolVersion, "../../evil", ""})).ok());
  EXPECT_FALSE(ParseHello(MakeHello({kProtocolVersion, "..", ""})).ok());
  EXPECT_FALSE(ParseHello(MakeHello({kProtocolVersion, "m\nx", ""})).ok());
  EXPECT_TRUE(ParseHello(MakeHello({kProtocolVersion, "m-1.cer", ""})).ok());
}

TEST(WirePayloadTest, OversizedStringsAreClampedNotMisframed) {
  // A server-built message longer than kMaxWireString must still produce a
  // parseable frame: PutString clamps instead of letting the u16 length
  // prefix wrap or the strict TakeString bound refuse the ack.
  AckPayload ack;
  ack.status = WireStatus::kBadTable;
  ack.message = std::string(200'000, 'x');  // > u16 range, > kMaxWireString
  ASSERT_OK_AND_ASSIGN(AckPayload parsed,
                       ParseAck(MakeAck(FrameType::kGoodbyeAck, ack)));
  EXPECT_EQ(parsed.status, WireStatus::kBadTable);
  EXPECT_EQ(parsed.message, std::string(kMaxWireString, 'x'));

  ASSERT_OK_AND_ASSIGN(
      BatchAckPayload batch_ack,
      ParseBatchAck(MakeBatchAck(
          {7, WireStatus::kBadBatch, std::string(70'000, 'y')})));
  EXPECT_EQ(batch_ack.message.size(), kMaxWireString);
}

TEST(WirePayloadTest, HelloRejectsTruncationAndTrailingBytes) {
  Frame frame = MakeHello({kProtocolVersion, "m", ""});
  for (size_t n = 0; n < frame.payload.size(); ++n) {
    Frame cut = frame;
    cut.payload.resize(n);
    EXPECT_FALSE(ParseHello(cut).ok()) << "truncated to " << n;
  }
  Frame padded = frame;
  padded.payload += '\0';
  EXPECT_FALSE(ParseHello(padded).ok());
}

TEST(WirePayloadTest, AckRoundTripAllThreeTypes) {
  for (FrameType type : {FrameType::kHelloAck, FrameType::kTableAck,
                         FrameType::kGoodbyeAck}) {
    AckPayload ack;
    ack.status = WireStatus::kBadTable;
    ack.message = "crc mismatch";
    ASSERT_OK_AND_ASSIGN(AckPayload parsed, ParseAck(MakeAck(type, ack)));
    EXPECT_EQ(parsed.status, ack.status);
    EXPECT_EQ(parsed.message, ack.message);
  }
}

TEST(WirePayloadTest, AckRejectsOutOfRangeStatus) {
  Frame frame = MakeAck(FrameType::kHelloAck, {WireStatus::kOk, ""});
  frame.payload[0] = 120;  // not a WireStatus
  EXPECT_FALSE(ParseAck(frame).ok());
}

TEST(WirePayloadTest, UnsupportedStatusRoundTripsInBothAckShapes) {
  // kUnsupported is the newest (largest) status value; it must survive the
  // parse-side range check in both the plain ack and the batch ack.
  AckPayload ack;
  ack.status = WireStatus::kUnsupported;
  ack.message = "unsupported frame type 99";
  ASSERT_OK_AND_ASSIGN(AckPayload parsed,
                       ParseAck(MakeAck(FrameType::kGoodbyeAck, ack)));
  EXPECT_EQ(parsed.status, WireStatus::kUnsupported);
  EXPECT_EQ(parsed.message, ack.message);

  BatchAckPayload batch_ack;
  batch_ack.seq = 5;
  batch_ack.status = WireStatus::kUnsupported;
  ASSERT_OK_AND_ASSIGN(BatchAckPayload parsed_batch,
                       ParseBatchAck(MakeBatchAck(batch_ack)));
  EXPECT_EQ(parsed_batch.status, WireStatus::kUnsupported);
  EXPECT_EQ(parsed_batch.seq, 5u);
}

TEST(WirePayloadTest, TableAnnounceRoundTripsBlobVerbatim) {
  TableAnnouncePayload announce;
  announce.table_version = 7;
  announce.table_blob = std::string("blob with\0 embedded nul", 23);
  ASSERT_OK_AND_ASSIGN(TableAnnouncePayload parsed,
                       ParseTableAnnounce(MakeTableAnnounce(announce)));
  EXPECT_EQ(parsed.table_version, 7u);
  EXPECT_EQ(parsed.table_blob, announce.table_blob);
}

TEST(WirePayloadTest, SymbolBatchRoundTripIncludingGapSentinel) {
  SymbolBatchPayload batch;
  batch.seq = 3;
  batch.start_timestamp = 1'600'000'000;
  batch.step_seconds = 900;
  batch.level = 4;
  batch.symbols = {0, 15, kWireGapSymbol, 7, kWireGapSymbol};
  ASSERT_OK_AND_ASSIGN(SymbolBatchPayload parsed,
                       ParseSymbolBatch(MakeSymbolBatch(batch)));
  EXPECT_EQ(parsed.seq, batch.seq);
  EXPECT_EQ(parsed.start_timestamp, batch.start_timestamp);
  EXPECT_EQ(parsed.step_seconds, batch.step_seconds);
  EXPECT_EQ(parsed.level, batch.level);
  EXPECT_EQ(parsed.symbols, batch.symbols);
}

TEST(WirePayloadTest, SymbolBatchRejectsBadFields) {
  SymbolBatchPayload batch;
  batch.seq = 1;
  batch.start_timestamp = 0;
  batch.step_seconds = 900;
  batch.level = 4;
  batch.symbols = {1, 2, 3};
  Frame good = MakeSymbolBatch(batch);
  ASSERT_TRUE(ParseSymbolBatch(good).ok());

  Frame trailing = good;
  trailing.payload += "xx";
  EXPECT_FALSE(ParseSymbolBatch(trailing).ok());

  Frame truncated = good;
  truncated.payload.pop_back();
  EXPECT_FALSE(ParseSymbolBatch(truncated).ok());

  batch.step_seconds = 0;
  EXPECT_FALSE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());
  batch.step_seconds = 900;
  batch.symbols.clear();
  EXPECT_FALSE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());
}

TEST(WirePayloadTest, SymbolBatchBoundsTimestampAndStep) {
  // Hostile timestamps/steps are refused at parse so the session's cadence
  // arithmetic (start + step * windows) can never overflow int64.
  SymbolBatchPayload batch;
  batch.seq = 1;
  batch.level = 4;
  batch.symbols = {1};

  batch.start_timestamp = kMaxWireTimestamp;
  batch.step_seconds = kMaxWireStepSeconds;
  EXPECT_TRUE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());
  batch.start_timestamp = -kMaxWireTimestamp;
  EXPECT_TRUE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());

  batch.start_timestamp = kMaxWireTimestamp + 1;
  EXPECT_FALSE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());
  batch.start_timestamp = -kMaxWireTimestamp - 1;
  EXPECT_FALSE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());

  batch.start_timestamp = 0;
  batch.step_seconds = kMaxWireStepSeconds + 1;
  EXPECT_FALSE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());
  batch.step_seconds = -900;
  EXPECT_FALSE(ParseSymbolBatch(MakeSymbolBatch(batch)).ok());
}

TEST(WirePayloadTest, BatchAckPingGoodbyeRoundTrip) {
  ASSERT_OK_AND_ASSIGN(
      BatchAckPayload ack,
      ParseBatchAck(MakeBatchAck({42, WireStatus::kOutOfOrder, "rewind"})));
  EXPECT_EQ(ack.seq, 42u);
  EXPECT_EQ(ack.status, WireStatus::kOutOfOrder);
  EXPECT_EQ(ack.message, "rewind");

  ASSERT_OK_AND_ASSIGN(PingPayload ping, ParsePing(MakePing(99)));
  EXPECT_EQ(ping.nonce, 99u);
  ASSERT_OK_AND_ASSIGN(PingPayload pong, ParsePing(MakePong(99)));
  EXPECT_EQ(pong.nonce, 99u);

  ASSERT_OK_AND_ASSIGN(GoodbyePayload bye,
                       ParseGoodbye(MakeGoodbye({96, 3, 12})));
  EXPECT_EQ(bye.windows_valid, 96u);
  EXPECT_EQ(bye.windows_partial, 3u);
  EXPECT_EQ(bye.windows_gap, 12u);
}

TEST(WirePayloadTest, ParsersCheckTheFrameType) {
  Frame ping = MakePing(1);
  EXPECT_FALSE(ParseHello(ping).ok());
  EXPECT_FALSE(ParseAck(ping).ok());
  EXPECT_FALSE(ParseTableAnnounce(ping).ok());
  EXPECT_FALSE(ParseSymbolBatch(ping).ok());
  EXPECT_FALSE(ParseBatchAck(ping).ok());
  EXPECT_FALSE(ParseGoodbye(ping).ok());
  EXPECT_FALSE(ParseThrottle(ping).ok());
  EXPECT_FALSE(ParsePing(MakeHello({kProtocolVersion, "m", ""})).ok());
}

TEST(WirePayloadTest, ThrottleRoundTripAllScopes) {
  for (ThrottleScope scope :
       {ThrottleScope::kAdmission, ThrottleScope::kRate,
        ThrottleScope::kMemory, ThrottleScope::kDisk}) {
    ThrottlePayload throttle;
    throttle.retry_after_ms = 1'250;
    throttle.scope = scope;
    throttle.message = "come back later";
    ASSERT_OK_AND_ASSIGN(ThrottlePayload parsed,
                         ParseThrottle(MakeThrottle(throttle)));
    EXPECT_EQ(parsed.retry_after_ms, 1'250u);
    EXPECT_EQ(parsed.scope, scope);
    EXPECT_EQ(parsed.message, "come back later");
    EXPECT_FALSE(ThrottleScopeName(scope).empty());
  }
  EXPECT_EQ(ThrottleScopeName(ThrottleScope::kAdmission), "admission");
  EXPECT_EQ(ThrottleScopeName(ThrottleScope::kRate), "rate");
  EXPECT_EQ(ThrottleScopeName(ThrottleScope::kMemory), "memory");
  EXPECT_EQ(ThrottleScopeName(ThrottleScope::kDisk), "disk");
}

TEST(WirePayloadTest, ThrottleRejectsBadScopeTruncationAndTrailing) {
  Frame good = MakeThrottle({250, ThrottleScope::kRate, "slow down"});
  ASSERT_TRUE(ParseThrottle(good).ok());

  // Scope byte sits right after the u32 retry hint; 0 and 5 are outside
  // the enum.
  Frame bad_scope = good;
  bad_scope.payload[4] = 0;
  EXPECT_FALSE(ParseThrottle(bad_scope).ok());
  bad_scope.payload[4] = 5;
  EXPECT_FALSE(ParseThrottle(bad_scope).ok());

  for (size_t n = 0; n < good.payload.size(); ++n) {
    Frame cut = good;
    cut.payload.resize(n);
    EXPECT_FALSE(ParseThrottle(cut).ok()) << "truncated to " << n;
  }
  Frame padded = good;
  padded.payload += '\0';
  EXPECT_FALSE(ParseThrottle(padded).ok());
}

TEST(WirePayloadTest, ThrottleFrameSurvivesEncodeDecode) {
  Frame frame = MakeThrottle({60'000, ThrottleScope::kDisk,
                              "archive paused: no space left"});
  EXPECT_EQ(DecodeOk(EncodeFrame(frame)), frame);
}

TEST(WireStatusTest, EveryStatusHasAName) {
  for (uint8_t s = 0; s <= 9; ++s) {
    EXPECT_FALSE(WireStatusName(static_cast<WireStatus>(s)).empty());
  }
  EXPECT_EQ(WireStatusName(WireStatus::kOk), "ok");
  EXPECT_EQ(WireStatusName(WireStatus::kDraining), "draining");
  EXPECT_EQ(WireStatusName(WireStatus::kUnsupported), "unsupported");
}

}  // namespace
}  // namespace smeter::net
