// Query codec tests: every Make*/Parse* pair must be an exact inverse,
// and every malformed payload — truncation, trailing bytes, wrong frame
// type, out-of-range fields, non-canonical error results — must be
// refused, never accepted or crashed on. The fuzz harness
// (tests/fuzz/fuzz_query.cc) extends the same closure to random bytes.

#include "net/query_wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/symbol.h"
#include "testutil.h"

namespace smeter::net {
namespace {

// Parsers must refuse every strict prefix of a valid payload and every
// valid payload with trailing garbage: the frame length is authoritative,
// so any disagreement is damage or a hostile client.
template <typename Parser>
void ExpectPayloadClosure(const Frame& frame, Parser parse) {
  for (size_t n = 0; n < frame.payload.size(); ++n) {
    Frame cut = frame;
    cut.payload.resize(n);
    EXPECT_FALSE(parse(cut).ok()) << "prefix of " << n << " bytes parsed";
  }
  Frame padded = frame;
  padded.payload.push_back('\0');
  EXPECT_FALSE(parse(padded).ok()) << "trailing byte accepted";
}

TEST(QueryWireTest, FrameTypeSpaceIsDisjointFromIngest) {
  for (int type = 0; type < 64; ++type) {
    EXPECT_EQ(IsQueryFrameType(static_cast<uint8_t>(type)),
              type >= 32 && type <= 39)
        << type;
  }
}

TEST(QueryWireTest, HelloRoundTrips) {
  QueryHelloPayload hello;
  hello.protocol_version = 7;
  hello.auth_token = "s3cret";
  Frame frame = MakeQueryHello(hello);
  EXPECT_EQ(static_cast<uint8_t>(frame.type), 32);
  ASSERT_OK_AND_ASSIGN(QueryHelloPayload parsed, ParseQueryHello(frame));
  EXPECT_EQ(parsed.protocol_version, 7);
  EXPECT_EQ(parsed.auth_token, "s3cret");
  ExpectPayloadClosure(frame, ParseQueryHello);
  EXPECT_FALSE(ParseQueryHello(MakeQueryAck({})).ok());
}

TEST(QueryWireTest, AckRoundTripsIncludingErrors) {
  QueryAckPayload ack;
  ack.status = WireStatus::kDraining;
  ack.message = "drain in progress";
  ASSERT_OK_AND_ASSIGN(QueryAckPayload parsed, ParseQueryAck(MakeQueryAck(ack)));
  EXPECT_EQ(parsed.status, WireStatus::kDraining);
  EXPECT_EQ(parsed.message, "drain in progress");
  // An unknown status byte is refused, not cast blindly.
  Frame bogus = MakeQueryAck(ack);
  bogus.payload[0] = 0x7f;
  EXPECT_FALSE(ParseQueryAck(bogus).ok());
  ExpectPayloadClosure(MakeQueryAck(ack), ParseQueryAck);
}

TEST(QueryWireTest, PointQueryRoundTripsAndValidatesMeter) {
  PointQueryPayload query;
  query.request_id = 0x0123456789abcdefull;
  query.meter_id = "house_042";
  Frame frame = MakePointQuery(query);
  ASSERT_OK_AND_ASSIGN(PointQueryPayload parsed, ParsePointQuery(frame));
  EXPECT_EQ(parsed.request_id, query.request_id);
  EXPECT_EQ(parsed.meter_id, "house_042");
  ExpectPayloadClosure(frame, ParsePointQuery);

  PointQueryPayload bad = query;
  bad.meter_id = "no spaces allowed";
  EXPECT_FALSE(ParsePointQuery(MakePointQuery(bad)).ok());
}

TEST(QueryWireTest, PointResultRoundTripsOkAndGap) {
  PointResultPayload result;
  result.request_id = 42;
  result.timestamp = -86'400;
  result.level = 4;
  result.symbol = 11;
  ASSERT_OK_AND_ASSIGN(PointResultPayload parsed,
                       ParsePointResult(MakePointResult(result)));
  EXPECT_EQ(parsed.request_id, 42u);
  EXPECT_EQ(parsed.timestamp, -86'400);
  EXPECT_EQ(parsed.level, 4);
  EXPECT_EQ(parsed.symbol, 11);

  result.symbol = kWireGapSymbol;  // a GAP is legal at any level
  EXPECT_TRUE(ParsePointResult(MakePointResult(result)).ok());
  result.symbol = 1u << 4;  // outside the level-4 alphabet
  EXPECT_FALSE(ParsePointResult(MakePointResult(result)).ok());
  result.symbol = 0;
  result.level = kMaxSymbolLevel + 1;
  EXPECT_FALSE(ParsePointResult(MakePointResult(result)).ok());
}

TEST(QueryWireTest, NonOkPointResultMustCarryCanonicalDefaults) {
  PointResultPayload error;
  error.request_id = 9;
  error.status = WireStatus::kNotFound;
  error.message = "meter never reported";
  EXPECT_TRUE(ParsePointResult(MakePointResult(error)).ok());
  // Values smuggled alongside an error status are refused.
  error.timestamp = 1;
  EXPECT_FALSE(ParsePointResult(MakePointResult(error)).ok());
  error.timestamp = 0;
  error.symbol = 3;
  EXPECT_FALSE(ParsePointResult(MakePointResult(error)).ok());
}

TEST(QueryWireTest, RangeQueryRoundTripsAndValidates) {
  RangeQueryPayload query;
  query.request_id = 5;
  query.meter_id = "house_a";
  query.start = -900;
  query.end = 86'400;
  query.level = 0;  // native
  query.max_symbols = 1024;
  Frame frame = MakeRangeQuery(query);
  ASSERT_OK_AND_ASSIGN(RangeQueryPayload parsed, ParseRangeQuery(frame));
  EXPECT_EQ(parsed.request_id, 5u);
  EXPECT_EQ(parsed.meter_id, "house_a");
  EXPECT_EQ(parsed.start, -900);
  EXPECT_EQ(parsed.end, 86'400);
  EXPECT_EQ(parsed.level, 0);
  EXPECT_EQ(parsed.max_symbols, 1024u);
  ExpectPayloadClosure(frame, ParseRangeQuery);

  RangeQueryPayload bad = query;
  bad.end = bad.start;  // empty window
  EXPECT_FALSE(ParseRangeQuery(MakeRangeQuery(bad)).ok());
  bad = query;
  bad.level = kMaxSymbolLevel + 1;
  EXPECT_FALSE(ParseRangeQuery(MakeRangeQuery(bad)).ok());
  bad = query;
  bad.max_symbols = 0;
  EXPECT_FALSE(ParseRangeQuery(MakeRangeQuery(bad)).ok());
  bad = query;
  bad.start = kMaxWireTimestamp + 1;
  bad.end = kMaxWireTimestamp + 2;
  EXPECT_FALSE(ParseRangeQuery(MakeRangeQuery(bad)).ok());
}

TEST(QueryWireTest, RangeResultRoundTripsSymbolsAndGaps) {
  RangeResultPayload result;
  result.request_id = 77;
  result.start_timestamp = 3600;
  result.step_seconds = 900;
  result.level = 3;
  result.truncated = 1;
  result.symbols = {0, 7, kWireGapSymbol, 5, 1};
  Frame frame = MakeRangeResult(result);
  ASSERT_OK_AND_ASSIGN(RangeResultPayload parsed, ParseRangeResult(frame));
  EXPECT_EQ(parsed.symbols, result.symbols);
  EXPECT_EQ(parsed.truncated, 1);
  EXPECT_EQ(parsed.step_seconds, 900);
  ExpectPayloadClosure(frame, ParseRangeResult);

  // A symbol outside the level-3 alphabet is refused.
  result.symbols.push_back(8);
  EXPECT_FALSE(ParseRangeResult(MakeRangeResult(result)).ok());
  result.symbols.pop_back();

  // A count field that disagrees with the actual payload size is refused
  // (hostile length smuggling).
  Frame lying = frame;
  lying.payload.resize(lying.payload.size() - 2);
  EXPECT_FALSE(ParseRangeResult(lying).ok());
}

TEST(QueryWireTest, NonOkRangeResultMustCarryCanonicalDefaults) {
  RangeResultPayload error;
  error.request_id = 8;
  error.status = WireStatus::kBadFrame;
  error.message = "level finer than native";
  EXPECT_TRUE(ParseRangeResult(MakeRangeResult(error)).ok());
  error.symbols = {1};
  EXPECT_FALSE(ParseRangeResult(MakeRangeResult(error)).ok());
  error.symbols.clear();
  error.truncated = 1;
  EXPECT_FALSE(ParseRangeResult(MakeRangeResult(error)).ok());
}

TEST(QueryWireTest, AggregateQueryRoundTripsAndValidates) {
  AggregateQueryPayload query;
  query.request_id = 3;
  query.start = 0;
  query.end = 7 * 86'400;
  query.level = 2;
  Frame frame = MakeAggregateQuery(query);
  ASSERT_OK_AND_ASSIGN(AggregateQueryPayload parsed,
                       ParseAggregateQuery(frame));
  EXPECT_EQ(parsed.level, 2);
  EXPECT_EQ(parsed.end, 7 * 86'400);
  ExpectPayloadClosure(frame, ParseAggregateQuery);

  AggregateQueryPayload bad = query;
  bad.level = 0;  // aggregate has no "native": level is mandatory
  EXPECT_FALSE(ParseAggregateQuery(MakeAggregateQuery(bad)).ok());
  bad = query;
  bad.end = bad.start - 1;
  EXPECT_FALSE(ParseAggregateQuery(MakeAggregateQuery(bad)).ok());
}

TEST(QueryWireTest, AggregateResultRoundTripsHistogram) {
  AggregateResultPayload result;
  result.request_id = 12;
  result.level = 2;
  result.meters = 300;
  result.meters_coarser = 4;
  result.windows = 100'000;
  result.gaps = 250;
  result.rollup_partitions = 30;
  result.scanned_partitions = 2;
  result.histogram = {10, 20, 30, 40};
  Frame frame = MakeAggregateResult(result);
  ASSERT_OK_AND_ASSIGN(AggregateResultPayload parsed,
                       ParseAggregateResult(frame));
  EXPECT_EQ(parsed.histogram, result.histogram);
  EXPECT_EQ(parsed.meters, 300u);
  EXPECT_EQ(parsed.rollup_partitions, 30u);
  ExpectPayloadClosure(frame, ParseAggregateResult);

  // Histogram size must be exactly 2^level on an ok result.
  result.histogram.push_back(0);
  EXPECT_FALSE(ParseAggregateResult(MakeAggregateResult(result)).ok());
  result.histogram.pop_back();
  // Gap count can never exceed the window count.
  result.gaps = result.windows + 1;
  EXPECT_FALSE(ParseAggregateResult(MakeAggregateResult(result)).ok());
}

TEST(QueryWireTest, NonOkAggregateResultMustCarryCanonicalDefaults) {
  AggregateResultPayload error;
  error.request_id = 2;
  error.status = WireStatus::kServerError;
  error.message = "store unavailable";
  EXPECT_TRUE(ParseAggregateResult(MakeAggregateResult(error)).ok());
  error.meters = 1;
  EXPECT_FALSE(ParseAggregateResult(MakeAggregateResult(error)).ok());
  error.meters = 0;
  error.histogram = {0, 0};
  EXPECT_FALSE(ParseAggregateResult(MakeAggregateResult(error)).ok());
}

TEST(QueryWireTest, QueryFramesSurviveTheSharedFrameLayer) {
  // Query frames ride the ingest frame codec unchanged: encode, decode,
  // re-parse, byte-identical re-encode.
  PointQueryPayload query;
  query.request_id = 99;
  query.meter_id = "m1";
  Frame frame = MakePointQuery(query);
  std::string bytes = EncodeFrame(frame);
  DecodeResult decoded = DecodeFrame(bytes);
  ASSERT_EQ(decoded.outcome, DecodeResult::Outcome::kFrame);
  ASSERT_OK_AND_ASSIGN(PointQueryPayload parsed,
                       ParsePointQuery(decoded.frame));
  EXPECT_EQ(EncodeFrame(MakePointQuery(parsed)), bytes);
}

}  // namespace
}  // namespace smeter::net
