// ArchiveSink disk-exhaustion circuit breaker tests: an ENOSPC-style
// write failure must open the circuit, further persists must fail fast
// (classifiable as disk-full, no more write attempts), duplicates must
// keep succeeding, and the space probe must re-close the circuit exactly
// when the injected fault plan stops failing `file.write`.

#include "net/archive_sink.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/symbol.h"
#include "core/symbolic_series.h"
#include "testutil.h"

namespace smeter::net {
namespace {

using smeter::testing::TempPath;

SymbolicSeries TinySeries() {
  SymbolicSeries series(4);
  for (int i = 0; i < 8; ++i) {
    SymbolicSample sample;
    sample.timestamp = 900 * i;
    sample.symbol = Symbol::FromValidated(4, static_cast<uint32_t>(i % 16));
    EXPECT_OK(series.Append(sample));
  }
  return series;
}

EncodeQuality CleanQuality() {
  EncodeQuality quality;
  quality.windows_valid = 8;
  return quality;
}

TEST(IsDiskFullStatusTest, ClassifiesEnospcShapedMessagesOnly) {
  EXPECT_FALSE(IsDiskFullStatus(Status::Ok()));
  EXPECT_FALSE(IsDiskFullStatus(InternalError("connection reset by peer")));
  EXPECT_TRUE(IsDiskFullStatus(InternalError(
      "write /tmp/x: No space left on device")));
  EXPECT_TRUE(IsDiskFullStatus(InternalError("Disk quota exceeded")));
  EXPECT_TRUE(IsDiskFullStatus(InternalError("injected ENOSPC")));
  EXPECT_TRUE(IsDiskFullStatus(DataLossError("EDQUOT on append")));
}

TEST(ArchiveSinkCircuitTest, DiskFullOpensCircuitAndFailsFast) {
  const std::string dir = TempPath("sink_circuit");
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ArchiveSink> sink,
                       ArchiveSink::Open(dir, /*resume=*/false));
  EXPECT_FALSE(sink->circuit_open());

  // First meter lands normally.
  ASSERT_OK(sink->Persist("meter_ok", "blob", TinySeries(), CleanQuality()));

  {
    fault::ScopedFaultPlan plan({[] {
      fault::FaultRule rule =
          fault::FaultRule::FailCalls("file.write", 1);
      rule.message = "No space left on device";
      return rule;
    }()});
    Status full =
        sink->Persist("meter_full", "blob", TinySeries(), CleanQuality());
    ASSERT_FALSE(full.ok());
    EXPECT_TRUE(IsDiskFullStatus(full)) << full.ToString();
    EXPECT_TRUE(sink->circuit_open());

    // While open: fail fast, still disk-full-classifiable, and no write
    // attempt reaches the seam.
    const size_t writes_before = plan.CallCount("file.write");
    Status paused =
        sink->Persist("meter_next", "blob", TinySeries(), CleanQuality());
    ASSERT_FALSE(paused.ok());
    EXPECT_TRUE(IsDiskFullStatus(paused)) << paused.ToString();
    EXPECT_EQ(plan.CallCount("file.write"), writes_before);

    // Duplicates are never held hostage by a full disk.
    EXPECT_OK(
        sink->Persist("meter_ok", "blob", TinySeries(), CleanQuality()));

    // Probes fail while the plan keeps injecting; the circuit stays open.
    EXPECT_FALSE(sink->MaybeProbe(/*now_ms=*/1'000));
    EXPECT_TRUE(sink->circuit_open());
  }

  // Plan gone = space back. The first allowed probe closes the circuit and
  // the paused meter persists cleanly.
  EXPECT_TRUE(sink->MaybeProbe(/*now_ms=*/2'000));
  EXPECT_FALSE(sink->circuit_open());
  EXPECT_OK(
      sink->Persist("meter_full", "blob", TinySeries(), CleanQuality()));
  EXPECT_OK(sink->Finalize());
}

TEST(ArchiveSinkCircuitTest, ProbesAreIntervalLimited) {
  const std::string dir = TempPath("sink_probe_interval");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ArchiveSink> sink,
      ArchiveSink::Open(dir, /*resume=*/false, /*shards=*/1,
                        /*probe_interval_ms=*/500));

  {
    fault::ScopedFaultPlan plan({[] {
      fault::FaultRule rule =
          fault::FaultRule::FailCalls("file.write", 1);
      rule.message = "injected ENOSPC";
      return rule;
    }()});
    ASSERT_FALSE(
        sink->Persist("m", "blob", TinySeries(), CleanQuality()).ok());
    ASSERT_TRUE(sink->circuit_open());

    // The trip resets the probe clock: the first probe may run at once.
    EXPECT_FALSE(sink->MaybeProbe(100));
    const size_t probes_after_first = plan.CallCount("file.write");
    EXPECT_GT(probes_after_first, 0u);

    // Within the interval, MaybeProbe is a cheap no-op — this is what
    // keeps N shard timers from multiplying the probe write rate.
    EXPECT_FALSE(sink->MaybeProbe(101));
    EXPECT_FALSE(sink->MaybeProbe(599));
    EXPECT_EQ(plan.CallCount("file.write"), probes_after_first);

    // Past the interval, the probe actually runs again.
    EXPECT_FALSE(sink->MaybeProbe(601));
    EXPECT_GT(plan.CallCount("file.write"), probes_after_first);
  }

  EXPECT_TRUE(sink->MaybeProbe(1'200));
  EXPECT_FALSE(sink->circuit_open());
  // A closed circuit's probe is the true-fast-path.
  EXPECT_TRUE(sink->MaybeProbe(1'201));
}

TEST(ArchiveSinkCircuitTest, NonDiskFailuresDoNotOpenTheCircuit) {
  const std::string dir = TempPath("sink_nondisk");
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ArchiveSink> sink,
                       ArchiveSink::Open(dir, /*resume=*/false));
  {
    fault::ScopedFaultPlan plan({[] {
      fault::FaultRule rule =
          fault::FaultRule::FailCalls("file.write", 1, 1);
      rule.message = "transient injected I/O error";
      return rule;
    }()});
    ASSERT_FALSE(
        sink->Persist("m", "blob", TinySeries(), CleanQuality()).ok());
  }
  EXPECT_FALSE(sink->circuit_open());
  // The very next persist goes straight to disk and succeeds.
  EXPECT_OK(sink->Persist("m", "blob", TinySeries(), CleanQuality()));
}

}  // namespace
}  // namespace smeter::net
