// QuerySession state-machine tests: the handshake gate, per-query error
// tolerance vs protocol-violation failure, forward-compatibility acks,
// draining refusal, and query evaluation against a real (tiny) store and
// against no store at all.

#include "net/query_session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "core/archive_store.h"
#include "core/codec.h"
#include "core/symbolic_series.h"
#include "testutil.h"

namespace smeter::net {
namespace {

namespace fs = std::filesystem;

// One meter, 48 level-3 samples at 900 s cadence, one gap.
std::unique_ptr<ArchiveStore> OpenTinyStore(const std::string& name) {
  const std::string root = smeter::testing::TempPath("query_session_" + name);
  fs::remove_all(root);
  fs::create_directories(root + "/archive");
  SymbolicSeries series(3);
  for (int i = 0; i < 48; ++i) {
    Symbol symbol = (i == 10) ? Symbol::Gap(3)
                              : Symbol::Create(3, i % 8).value();
    EXPECT_TRUE(series.Append({i * 900, symbol}).ok());
  }
  auto blob = PackSymbolicSeriesFramed(series);
  EXPECT_TRUE(blob.ok());
  EXPECT_TRUE(
      io::AtomicWriteFile(root + "/archive/house_a.symbols", *blob).ok());
  EXPECT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto store = ArchiveStore::Open(root + "/store");
  EXPECT_TRUE(store.ok());
  return std::move(*store);
}

std::vector<Frame> Drive(QuerySession& session, const Frame& frame) {
  std::vector<Frame> replies;
  ScopedThreadRole self(session.writer_role());
  session.OnFrame(frame, &replies);
  return replies;
}

QuerySession::State StateOf(QuerySession& session) {
  ScopedThreadRole self(session.writer_role());
  return session.state();
}

Frame Hello(const std::string& token = "") {
  QueryHelloPayload hello;
  hello.auth_token = token;
  return MakeQueryHello(hello);
}

TEST(QuerySessionTest, HandshakeThenQueriesHappyPath) {
  auto store = OpenTinyStore("happy");
  QuerySession session(store.get(), {});

  auto replies = Drive(session, Hello());
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies[0]));
  EXPECT_EQ(ack.status, WireStatus::kOk);
  EXPECT_EQ(StateOf(session), QuerySession::State::kServing);

  PointQueryPayload point;
  point.request_id = 1;
  point.meter_id = "house_a";
  replies = Drive(session, MakePointQuery(point));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(PointResultPayload value,
                       ParsePointResult(replies[0]));
  EXPECT_EQ(value.request_id, 1u);
  EXPECT_EQ(value.status, WireStatus::kOk);
  EXPECT_EQ(value.timestamp, 47 * 900);
  EXPECT_EQ(value.level, 3);

  RangeQueryPayload range;
  range.request_id = 2;
  range.meter_id = "house_a";
  range.start = 0;
  range.end = 48 * 900;
  range.level = 1;
  range.max_symbols = 1000;
  replies = Drive(session, MakeRangeQuery(range));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(RangeResultPayload scan,
                       ParseRangeResult(replies[0]));
  EXPECT_EQ(scan.status, WireStatus::kOk);
  EXPECT_EQ(scan.level, 1);
  ASSERT_EQ(scan.symbols.size(), 48u);
  EXPECT_EQ(scan.symbols[10], kWireGapSymbol);  // the gap survives
  // Level-1 symbol = top bit of the level-3 index (i%8 >= 4).
  EXPECT_EQ(scan.symbols[0], 0);
  EXPECT_EQ(scan.symbols[5], 1);

  AggregateQueryPayload aggregate;
  aggregate.request_id = 3;
  aggregate.start = 0;
  aggregate.end = 86'400;
  aggregate.level = 3;
  replies = Drive(session, MakeAggregateQuery(aggregate));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(AggregateResultPayload fleet,
                       ParseAggregateResult(replies[0]));
  EXPECT_EQ(fleet.status, WireStatus::kOk);
  EXPECT_EQ(fleet.meters, 1u);
  EXPECT_EQ(fleet.windows, 48u);
  EXPECT_EQ(fleet.gaps, 1u);

  ScopedThreadRole self(session.writer_role());
  EXPECT_EQ(session.queries_served(), 3u);
}

TEST(QuerySessionTest, QueryBeforeHelloFailsTheSession) {
  auto store = OpenTinyStore("gate");
  QuerySession session(store.get(), {});
  PointQueryPayload point;
  point.request_id = 1;
  point.meter_id = "house_a";
  auto replies = Drive(session, MakePointQuery(point));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies[0]));
  EXPECT_EQ(ack.status, WireStatus::kBadState);
  EXPECT_EQ(StateOf(session), QuerySession::State::kFailed);
  // A failed session ignores further frames.
  EXPECT_TRUE(Drive(session, Hello()).empty());
}

TEST(QuerySessionTest, PerQueryErrorsKeepServing) {
  auto store = OpenTinyStore("tolerant");
  QuerySession session(store.get(), {});
  Drive(session, Hello());

  // Unknown meter: kNotFound result, session survives.
  PointQueryPayload point;
  point.request_id = 1;
  point.meter_id = "nobody";
  auto replies = Drive(session, MakePointQuery(point));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(PointResultPayload missing,
                       ParsePointResult(replies[0]));
  EXPECT_EQ(missing.status, WireStatus::kNotFound);
  EXPECT_EQ(StateOf(session), QuerySession::State::kServing);

  // Level finer than native: kBadFrame result, session survives.
  RangeQueryPayload range;
  range.request_id = 2;
  range.meter_id = "house_a";
  range.start = 0;
  range.end = 86'400;
  range.level = 7;
  replies = Drive(session, MakeRangeQuery(range));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(RangeResultPayload refused,
                       ParseRangeResult(replies[0]));
  EXPECT_EQ(refused.status, WireStatus::kBadFrame);
  EXPECT_EQ(StateOf(session), QuerySession::State::kServing);
}

TEST(QuerySessionTest, UndecodablePayloadFailsTheSession) {
  auto store = OpenTinyStore("hostile");
  QuerySession session(store.get(), {});
  Drive(session, Hello());
  Frame garbage = MakePointQuery({1, "house_a"});
  garbage.payload.resize(3);  // truncated payload inside a CRC-valid frame
  auto replies = Drive(session, garbage);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies[0]));
  EXPECT_EQ(ack.status, WireStatus::kBadFrame);
  EXPECT_EQ(StateOf(session), QuerySession::State::kFailed);
}

TEST(QuerySessionTest, ServerSideFrameFromClientIsAViolation) {
  QuerySession session(nullptr, {});
  Drive(session, Hello());
  auto replies = Drive(session, MakePointResult({}));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies[0]));
  EXPECT_EQ(ack.status, WireStatus::kBadState);
  EXPECT_EQ(StateOf(session), QuerySession::State::kFailed);
}

TEST(QuerySessionTest, UnknownFrameTypeIsRefusedPerFrame) {
  QuerySession session(nullptr, {});
  Drive(session, Hello());
  Frame future;
  future.type = static_cast<FrameType>(63);
  auto replies = Drive(session, future);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies[0]));
  EXPECT_EQ(ack.status, WireStatus::kUnsupported);
  // Forward compatibility: the session survives and still serves.
  EXPECT_EQ(StateOf(session), QuerySession::State::kServing);
}

TEST(QuerySessionTest, AuthVersionAndDrainingGates) {
  QuerySessionOptions needs_token;
  needs_token.auth_token = "letmein";
  {
    QuerySession session(nullptr, needs_token);
    auto replies = Drive(session, Hello("wrong"));
    ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies.at(0)));
    EXPECT_EQ(ack.status, WireStatus::kUnauthorized);
    EXPECT_EQ(StateOf(session), QuerySession::State::kFailed);
  }
  {
    QuerySession session(nullptr, needs_token);
    auto replies = Drive(session, Hello("letmein"));
    ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies.at(0)));
    EXPECT_EQ(ack.status, WireStatus::kOk);
  }
  {
    QuerySession session(nullptr, {});
    QueryHelloPayload hello;
    hello.protocol_version = kQueryProtocolVersion + 1;
    auto replies = Drive(session, MakeQueryHello(hello));
    ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies.at(0)));
    EXPECT_EQ(ack.status, WireStatus::kUnauthorized);
  }
  {
    QuerySessionOptions draining;
    draining.draining = true;
    QuerySession session(nullptr, draining);
    auto replies = Drive(session, Hello());
    ASSERT_OK_AND_ASSIGN(QueryAckPayload ack, ParseQueryAck(replies.at(0)));
    EXPECT_EQ(ack.status, WireStatus::kDraining);
  }
}

TEST(QuerySessionTest, NullStoreAnswersServerErrorNotCrash) {
  QuerySession session(nullptr, {});
  Drive(session, Hello());
  auto replies = Drive(session, MakePointQuery({5, "house_a"}));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(PointResultPayload result,
                       ParsePointResult(replies[0]));
  EXPECT_EQ(result.request_id, 5u);
  EXPECT_EQ(result.status, WireStatus::kServerError);
  EXPECT_EQ(StateOf(session), QuerySession::State::kServing);
}

TEST(QuerySessionTest, ScanClampsToTheServerCeiling) {
  auto store = OpenTinyStore("clamp");
  QuerySessionOptions options;
  options.max_scan_symbols = 8;
  QuerySession session(store.get(), options);
  Drive(session, Hello());
  RangeQueryPayload range;
  range.request_id = 1;
  range.meter_id = "house_a";
  range.start = 0;
  range.end = 86'400;
  range.level = 0;
  range.max_symbols = kMaxWireRangeSymbols;  // client asks for the moon
  auto replies = Drive(session, MakeRangeQuery(range));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(RangeResultPayload scan,
                       ParseRangeResult(replies[0]));
  EXPECT_EQ(scan.status, WireStatus::kOk);
  EXPECT_EQ(scan.symbols.size(), 8u);
  EXPECT_EQ(scan.truncated, 1);
}

}  // namespace
}  // namespace smeter::net
