// Session state-machine tests, frame by frame: the happy path must yield a
// persistable series, and every protocol violation must fail the session
// with the documented WireStatus — while the table blob, cadence, and gap
// accounting stay exactly what the archive layer needs.

#include "net/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/sync.h"
#include "core/lookup_table.h"
#include "core/symbol.h"
#include "net/wire.h"
#include "testutil.h"

namespace smeter::net {
namespace {

constexpr int kLevel = 4;

// A small valid serialized table at kLevel.
std::string TableBlob() {
  LookupTableOptions options;
  options.level = kLevel;
  options.method = SeparatorMethod::kMedian;
  std::vector<double> training;
  for (int i = 1; i <= 64; ++i) training.push_back(10.0 * i);
  Result<LookupTable> table = LookupTable::Build(training, options);
  SMETER_CHECK(table.ok());
  return table->Serialize();
}

Frame Hello(const std::string& meter = "meter_1", const std::string& token = "") {
  return MakeHello({kProtocolVersion, meter, token});
}

Frame Table() { return MakeTableAnnounce({1, TableBlob()}); }

Frame Batch(uint64_t seq, int64_t start, int64_t step,
            std::vector<uint16_t> symbols, uint8_t level = kLevel) {
  SymbolBatchPayload batch;
  batch.seq = seq;
  batch.start_timestamp = start;
  batch.step_seconds = step;
  batch.level = level;
  batch.symbols = std::move(symbols);
  return MakeSymbolBatch(batch);
}

// Feeds one frame and returns the replies. The test thread is the
// session's single writer; claiming the role per call keeps the helpers
// honest under -Wthread-safety without each test repeating the claim.
std::vector<Frame> Feed(Session& session, const Frame& frame) {
  ScopedThreadRole writer(session.writer_role());
  std::vector<Frame> replies;
  session.OnFrame(frame, &replies);
  return replies;
}

// Asserts the single reply is an ack of `type` with `status`.
void ExpectAck(const std::vector<Frame>& replies, FrameType type,
               WireStatus status) {
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, type);
  ASSERT_OK_AND_ASSIGN(AckPayload ack, ParseAck(replies[0]));
  EXPECT_EQ(ack.status, status) << ack.message;
}

// Asserts the single reply is a BATCH_ACK carrying `status` and `seq` —
// refused batches must answer in the batch channel so clients see the real
// refusal reason, not a generic GOODBYE_ACK.
void ExpectBatchAck(const std::vector<Frame>& replies, WireStatus status,
                    uint64_t seq) {
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, FrameType::kBatchAck);
  ASSERT_OK_AND_ASSIGN(BatchAckPayload ack, ParseBatchAck(replies[0]));
  EXPECT_EQ(ack.status, status) << ack.message;
  EXPECT_EQ(ack.seq, seq);
}

// Drives a session to kStreaming.
void Handshake(Session& session) {
  ExpectAck(Feed(session, Hello()), FrameType::kHelloAck, WireStatus::kOk);
  ExpectAck(Feed(session, Table()), FrameType::kTableAck, WireStatus::kOk);
  ScopedThreadRole writer(session.writer_role());
  ASSERT_EQ(session.state(), Session::State::kStreaming);
}

TEST(SessionTest, HappyPathProducesTheSeries) {
  Session session(SessionOptions{});
  Handshake(session);
  // The test body is the session's single writer for its whole lifetime.
  ScopedThreadRole writer(session.writer_role());
  EXPECT_EQ(session.meter_id(), "meter_1");
  EXPECT_EQ(session.table_blob(), TableBlob());
  EXPECT_EQ(session.table_version(), 1u);
  EXPECT_EQ(session.level(), kLevel);

  std::vector<Frame> replies =
      Feed(session, Batch(1, 1000, 900, {3, 7, kWireGapSymbol}));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(BatchAckPayload ack1, ParseBatchAck(replies[0]));
  EXPECT_EQ(ack1.seq, 1u);
  EXPECT_EQ(ack1.status, WireStatus::kOk);

  replies = Feed(session, Batch(2, 1000 + 3 * 900, 900, {0, 15}));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(session.symbols_received(), 5u);
  EXPECT_EQ(session.gaps_received(), 1u);

  // GOODBYE gets no immediate reply: the server acks after persisting.
  replies = Feed(session, MakeGoodbye({4, 0, 1}));
  EXPECT_TRUE(replies.empty());
  ASSERT_EQ(session.state(), Session::State::kComplete);
  EXPECT_EQ(session.quality().windows_valid, 4u);
  EXPECT_EQ(session.quality().windows_gap, 1u);

  ASSERT_OK_AND_ASSIGN(SymbolicSeries series, session.TakeSeries());
  ASSERT_EQ(series.size(), 5u);
  EXPECT_EQ(series[0].timestamp, 1000);
  EXPECT_EQ(series[0].symbol, Symbol::Create(kLevel, 3).value());
  EXPECT_TRUE(series[2].symbol.is_gap());
  EXPECT_EQ(series[4].timestamp, 1000 + 4 * 900);
}

TEST(SessionTest, MissingWindowsBetweenBatchesAreGapFilled) {
  Session session(SessionOptions{});
  Handshake(session);
  ScopedThreadRole writer(session.writer_role());
  Feed(session, Batch(1, 0, 900, {1, 2}));
  // Next expected start is 1800; starting at 4500 skips three windows.
  std::vector<Frame> replies = Feed(session, Batch(2, 4500, 900, {3}));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(BatchAckPayload ack, ParseBatchAck(replies[0]));
  EXPECT_EQ(ack.status, WireStatus::kOk);
  EXPECT_EQ(session.symbols_received(), 6u);
  EXPECT_EQ(session.gaps_received(), 3u);

  Feed(session, MakeGoodbye({3, 0, 3}));
  ASSERT_EQ(session.state(), Session::State::kComplete);
  ASSERT_OK_AND_ASSIGN(SymbolicSeries series, session.TakeSeries());
  ASSERT_EQ(series.size(), 6u);
  for (size_t i = 2; i < 5; ++i) {
    EXPECT_TRUE(series[i].symbol.is_gap()) << i;
    EXPECT_EQ(series[i].timestamp, static_cast<int64_t>(i) * 900) << i;
  }
}

TEST(SessionTest, BatchBeforeTableIsBadState) {
  Session session(SessionOptions{});
  ScopedThreadRole writer(session.writer_role());
  Feed(session, Hello());
  std::vector<Frame> replies = Feed(session, Batch(1, 0, 900, {1}));
  // The offending request was a batch, so the refusal answers in kind.
  ExpectBatchAck(replies, WireStatus::kBadState, 0);
  EXPECT_EQ(session.state(), Session::State::kFailed);
  EXPECT_EQ(session.error_status(), WireStatus::kBadState);
}

TEST(SessionTest, NonHelloFirstFrameIsBadState) {
  Session session(SessionOptions{});
  std::vector<Frame> replies = Feed(session, Table());
  ExpectAck(replies, FrameType::kTableAck, WireStatus::kBadState);
  // A pre-HELLO ping is not allowed either.
  Session session2(SessionOptions{});
  ScopedThreadRole writer2(session2.writer_role());
  Feed(session2, MakePing(1));
  EXPECT_EQ(session2.state(), Session::State::kFailed);
}

TEST(SessionTest, WrongProtocolVersionIsUnauthorized) {
  Session session(SessionOptions{});
  std::vector<Frame> replies =
      Feed(session, MakeHello({kProtocolVersion + 1, "m", ""}));
  ExpectAck(replies, FrameType::kHelloAck, WireStatus::kUnauthorized);
}

TEST(SessionTest, TraversalMeterIdIsRefusedAtHello) {
  // A hostile meter id must never reach the archive sink: ParseHello
  // refuses path separators, "..", and control bytes, and the session
  // fails before storing any id.
  for (const std::string& evil :
       {std::string("../../etc/cron.d/x"), std::string("a/b"),
        std::string(".."), std::string("m\nforged manifest line"),
        std::string("m\0id", 4)}) {
    Session session(SessionOptions{});
    ScopedThreadRole writer(session.writer_role());
    std::vector<Frame> replies = Feed(session, Hello(evil));
    ExpectAck(replies, FrameType::kHelloAck, WireStatus::kBadFrame);
    EXPECT_EQ(session.state(), Session::State::kFailed);
    EXPECT_TRUE(session.meter_id().empty());
  }
}

TEST(SessionTest, AuthTokenEnforcedWhenConfigured) {
  SessionOptions options;
  options.auth_token = "sesame";
  Session wrong(options);
  ExpectAck(Feed(wrong, Hello("m", "guess")), FrameType::kHelloAck,
            WireStatus::kUnauthorized);
  Session right(options);
  ExpectAck(Feed(right, Hello("m", "sesame")), FrameType::kHelloAck,
            WireStatus::kOk);
}

TEST(SessionTest, DrainingRefusesNewHellos) {
  Session session(SessionOptions{});
  ScopedThreadRole writer(session.writer_role());
  session.SetDraining();
  ExpectAck(Feed(session, Hello()), FrameType::kHelloAck,
            WireStatus::kDraining);
  EXPECT_EQ(session.state(), Session::State::kFailed);
}

TEST(SessionTest, DamagedTableBlobIsBadTable) {
  Session session(SessionOptions{});
  Feed(session, Hello());
  std::string blob = TableBlob();
  blob[blob.size() / 2] ^= 0x10;  // break the crc32c footer check
  std::vector<Frame> replies =
      Feed(session, MakeTableAnnounce({1, blob}));
  ExpectAck(replies, FrameType::kTableAck, WireStatus::kBadTable);
}

TEST(SessionTest, TableFaultSeamQuarantinesTheSession) {
  fault::ScopedFaultPlan plan(
      {fault::FaultRule::FailCalls("session.table", 1, 1)});
  Session session(SessionOptions{});
  Feed(session, Hello());
  ExpectAck(Feed(session, Table()), FrameType::kTableAck,
            WireStatus::kBadTable);
  EXPECT_EQ(plan.TotalInjected(), 1u);
}

TEST(SessionTest, NonConsecutiveSeqIsOutOfOrder) {
  Session session(SessionOptions{});
  Handshake(session);
  Feed(session, Batch(1, 0, 900, {1}));
  ExpectBatchAck(Feed(session, Batch(3, 1800, 900, {1})),
                 WireStatus::kOutOfOrder, 3);
}

TEST(SessionTest, TimestampRewindAndOffGridAreOutOfOrder) {
  Session session(SessionOptions{});
  Handshake(session);
  Feed(session, Batch(1, 9000, 900, {1, 2}));
  // Rewind: starts before the expected 10800.
  ExpectBatchAck(Feed(session, Batch(2, 9000, 900, {3})),
                 WireStatus::kOutOfOrder, 2);

  Session session2(SessionOptions{});
  Handshake(session2);
  Feed(session2, Batch(1, 0, 900, {1}));
  // Off the 900 s grid.
  ExpectBatchAck(Feed(session2, Batch(2, 901, 900, {1})),
                 WireStatus::kOutOfOrder, 2);
}

TEST(SessionTest, StepChangeMidStreamIsBadBatch) {
  Session session(SessionOptions{});
  Handshake(session);
  Feed(session, Batch(1, 0, 900, {1}));
  ExpectBatchAck(Feed(session, Batch(2, 900, 600, {1})),
                 WireStatus::kBadBatch, 2);
}

TEST(SessionTest, LevelMismatchIsBadBatch) {
  Session session(SessionOptions{});
  Handshake(session);
  ExpectBatchAck(Feed(session, Batch(1, 0, 900, {1}, kLevel + 1)),
                 WireStatus::kBadBatch, 1);
}

TEST(SessionTest, SymbolAboveAlphabetIsRejectedAtParse) {
  Session session(SessionOptions{});
  Handshake(session);
  // kLevel = 4 bits -> indices 0..15; 16 is out of alphabet (and not GAP).
  // The strict wire parser refuses it before the session layer ever sees
  // the batch, so the refusal carries the expected seq, not the sent one.
  ExpectBatchAck(Feed(session, Batch(1, 0, 900, {16})),
                 WireStatus::kBadFrame, 1);
}

TEST(SessionTest, OversizedGapJumpIsRefusedNotFilled) {
  SessionOptions options;
  options.max_gap_fill = 4;
  Session session(options);
  Handshake(session);
  Feed(session, Batch(1, 0, 900, {1}));
  // Skips 5 windows > max_gap_fill of 4.
  ExpectBatchAck(Feed(session, Batch(2, 900 + 5 * 900, 900, {1})),
                 WireStatus::kOutOfOrder, 2);
}

TEST(SessionTest, SymbolCapBoundsSessionMemory) {
  SessionOptions options;
  options.max_session_symbols = 3;
  Session session(options);
  Handshake(session);
  Feed(session, Batch(1, 0, 900, {1, 2}));
  ExpectBatchAck(Feed(session, Batch(2, 1800, 900, {3, 4})),
                 WireStatus::kBadBatch, 2);
}

TEST(SessionTest, ExtremeTimestampsNeverOverflowTheCadence) {
  // Batches at the very edge of the wire's timestamp bounds must either
  // stream cleanly or be refused — never run the cadence arithmetic into
  // signed-overflow UB (the UBSan matrix enforces the "never").
  Session session(SessionOptions{});
  Handshake(session);
  ScopedThreadRole writer(session.writer_role());
  const int64_t start = kMaxWireTimestamp - kMaxWireStepSeconds;
  std::vector<Frame> replies =
      Feed(session, Batch(1, start, kMaxWireStepSeconds, {1, 2, 3}));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(BatchAckPayload ack, ParseBatchAck(replies[0]));
  EXPECT_EQ(ack.status, WireStatus::kOk);
  EXPECT_EQ(session.symbols_received(), 3u);

  // A second batch continuing the cadence still works past the wire's
  // start-timestamp bound (next expected start is start + 3 * step).
  Session rewind(SessionOptions{});
  Handshake(rewind);
  Feed(rewind, Batch(1, kMaxWireTimestamp, kMaxWireStepSeconds, {1}));
  // Rewind to the far negative edge: delta is huge but must be computed
  // without overflow and refused as out of order.
  ExpectBatchAck(
      Feed(rewind, Batch(2, -kMaxWireTimestamp, kMaxWireStepSeconds, {1})),
      WireStatus::kOutOfOrder, 2);
}

TEST(SessionTest, GoodbyeQualityMismatchFailsInsteadOfPersisting) {
  Session session(SessionOptions{});
  Handshake(session);
  ScopedThreadRole writer(session.writer_role());
  Feed(session, Batch(1, 0, 900, {1, 2, kWireGapSymbol}));
  // Server saw 3 symbols / 1 gap; the client claims 3 / 0.
  ExpectAck(Feed(session, MakeGoodbye({3, 0, 0})), FrameType::kGoodbyeAck,
            WireStatus::kBadBatch);
  EXPECT_EQ(session.state(), Session::State::kFailed);
  EXPECT_FALSE(session.TakeSeries().ok());
}

TEST(SessionTest, GoodbyeWithoutAnyBatchIsBadState) {
  Session session(SessionOptions{});
  Handshake(session);
  ExpectAck(Feed(session, MakeGoodbye({0, 0, 0})), FrameType::kGoodbyeAck,
            WireStatus::kBadState);
}

TEST(SessionTest, PingWorksInAnyLiveStateAfterHello) {
  Session session(SessionOptions{});
  ScopedThreadRole writer(session.writer_role());
  Feed(session, Hello());
  std::vector<Frame> replies = Feed(session, MakePing(17));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_OK_AND_ASSIGN(PingPayload pong, ParsePing(replies[0]));
  EXPECT_EQ(replies[0].type, FrameType::kPong);
  EXPECT_EQ(pong.nonce, 17u);
  EXPECT_EQ(session.state(), Session::State::kExpectTable);

  Feed(session, Table());
  replies = Feed(session, MakePing(18));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(session.state(), Session::State::kStreaming);
}

TEST(SessionTest, UnknownFrameTypeIsRefusedWithoutStateChange) {
  // A CRC-valid frame of a future type must be answered with a typed
  // kUnsupported ack and leave the session exactly where it was, in every
  // live state — the connection keeps working afterwards.
  Frame future;
  future.type = static_cast<FrameType>(200);
  future.payload = "v3-feature-probe";

  Session session(SessionOptions{});
  ScopedThreadRole writer(session.writer_role());

  // kExpectHello: refused, then a real HELLO still succeeds.
  ExpectAck(Feed(session, future), FrameType::kGoodbyeAck,
            WireStatus::kUnsupported);
  EXPECT_EQ(session.state(), Session::State::kExpectHello);
  ExpectAck(Feed(session, Hello()), FrameType::kHelloAck, WireStatus::kOk);

  // kExpectTable: refused, then the table still lands.
  ExpectAck(Feed(session, future), FrameType::kGoodbyeAck,
            WireStatus::kUnsupported);
  EXPECT_EQ(session.state(), Session::State::kExpectTable);
  ExpectAck(Feed(session, Table()), FrameType::kTableAck, WireStatus::kOk);

  // kStreaming: refused mid-stream, then the upload completes normally.
  Feed(session, Batch(1, 0, 900, {1, 2}));
  std::vector<Frame> replies = Feed(session, future);
  ExpectAck(replies, FrameType::kGoodbyeAck, WireStatus::kUnsupported);
  ASSERT_OK_AND_ASSIGN(AckPayload ack, ParseAck(replies[0]));
  EXPECT_NE(ack.message.find("200"), std::string::npos) << ack.message;
  EXPECT_EQ(session.state(), Session::State::kStreaming);
  EXPECT_EQ(session.symbols_received(), 2u);

  Feed(session, Batch(2, 2 * 900, 900, {3}));
  Feed(session, MakeGoodbye({3, 0, 0}));
  EXPECT_EQ(session.state(), Session::State::kComplete);
}

TEST(SessionTest, FramesAfterTerminalStatesAreIgnored) {
  Session session(SessionOptions{});
  Handshake(session);
  ScopedThreadRole writer(session.writer_role());
  Feed(session, Batch(1, 0, 900, {1}));
  Feed(session, MakeGoodbye({1, 0, 0}));
  ASSERT_EQ(session.state(), Session::State::kComplete);
  EXPECT_TRUE(Feed(session, Batch(2, 900, 900, {1})).empty());
  EXPECT_EQ(session.state(), Session::State::kComplete);

  Session failed(SessionOptions{});
  ScopedThreadRole failed_writer(failed.writer_role());
  Feed(failed, Table());
  ASSERT_EQ(failed.state(), Session::State::kFailed);
  EXPECT_TRUE(Feed(failed, Hello()).empty());
}

TEST(SessionTest, TakeSeriesRequiresCompletion) {
  Session session(SessionOptions{});
  Handshake(session);
  ScopedThreadRole writer(session.writer_role());
  Feed(session, Batch(1, 0, 900, {1}));
  EXPECT_FALSE(session.TakeSeries().ok());
}

TEST(SessionTest, AckTypeForCoversEveryRequest) {
  EXPECT_EQ(AckTypeFor(FrameType::kHello), FrameType::kHelloAck);
  EXPECT_EQ(AckTypeFor(FrameType::kTableAnnounce), FrameType::kTableAck);
  EXPECT_EQ(AckTypeFor(FrameType::kSymbolBatch), FrameType::kBatchAck);
  EXPECT_EQ(AckTypeFor(FrameType::kPing), FrameType::kPong);
  EXPECT_EQ(AckTypeFor(FrameType::kGoodbye), FrameType::kGoodbyeAck);
}

}  // namespace
}  // namespace smeter::net
