// Event loop and BufferedFd tests over socketpairs: timer ordering and
// cancellation, cross-thread wakeups, partial-frame consumption, clean-EOF
// close semantics, and the output-buffer backpressure watermark.

#include "net/event_loop.h"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/sync.h"
#include "testutil.h"

namespace smeter::net {
namespace {

// A connected non-blocking socket pair; the caller owns both fds.
void MakeSocketPair(int fds[2]) {
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLoop> loop, EventLoop::Create());
  // The test thread is the loop thread: it seeds timers, then runs the loop.
  ScopedThreadRole loop_owner(loop->role());
  std::vector<int> fired;
  loop->RunAfter(30, [&] { fired.push_back(3); });
  loop->RunAfter(10, [&] { fired.push_back(1); });
  loop->RunAfter(20, [&] {
    // Timer callbacks run on the loop thread.
    ScopedThreadRole owner(loop->role());
    fired.push_back(2);
    loop->Stop();
  });
  // Stop() arrives with the 20 ms timer; the 30 ms one must not fire.
  ASSERT_OK(loop->Run());
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, ZeroDelayTimerFiresOnNextPass) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLoop> loop, EventLoop::Create());
  ScopedThreadRole loop_owner(loop->role());
  bool fired = false;
  loop->RunAfter(0, [&] {
    ScopedThreadRole owner(loop->role());
    fired = true;
    loop->Stop();
  });
  ASSERT_OK(loop->Run());
  EXPECT_TRUE(fired);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLoop> loop, EventLoop::Create());
  ScopedThreadRole loop_owner(loop->role());
  bool cancelled_fired = false;
  uint64_t id = loop->RunAfter(5, [&] { cancelled_fired = true; });
  loop->CancelTimer(id);
  loop->RunAfter(20, [&] {
    ScopedThreadRole owner(loop->role());
    loop->Stop();
  });
  ASSERT_OK(loop->Run());
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoopTest, TimerCallbackMayScheduleAnotherTimer) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLoop> loop, EventLoop::Create());
  ScopedThreadRole loop_owner(loop->role());
  int hops = 0;
  std::function<void()> hop = [&] {
    ScopedThreadRole owner(loop->role());
    if (++hops == 3) {
      loop->Stop();
      return;
    }
    loop->RunAfter(1, hop);
  };
  loop->RunAfter(1, hop);
  ASSERT_OK(loop->Run());
  EXPECT_EQ(hops, 3);
}

TEST(EventLoopTest, WakeupFromAnotherThreadRunsTheHandler) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLoop> loop, EventLoop::Create());
  ScopedThreadRole loop_owner(loop->role());
  int wakeups = 0;
  loop->SetWakeupHandler([&] {
    ScopedThreadRole owner(loop->role());
    ++wakeups;
    loop->Stop();
  });
  // Wakeup() is the one cross-thread entry point — no role needed.
  std::thread poker([&] { loop->Wakeup(); });
  ASSERT_OK(loop->Run());
  poker.join();
  EXPECT_EQ(wakeups, 1);
}

// Harness around one BufferedFd end of a socketpair; the other end is
// driven with raw read/write calls from the test body.
struct FdHarness {
  std::unique_ptr<EventLoop> loop;
  int peer_fd = -1;
  std::unique_ptr<BufferedFd> buffered;
  std::string received;
  size_t consume_limit = SIZE_MAX;  // bytes on_data consumes per call
  bool closed = false;
  Status close_reason;

  void Init(size_t high_watermark = 1 << 20) {
    auto created = EventLoop::Create();
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    loop = std::move(created.value());
    int fds[2];
    MakeSocketPair(fds);
    peer_fd = fds[1];
    BufferedFd::Callbacks callbacks;
    callbacks.on_data = [this](std::string_view data) {
      size_t take = std::min(consume_limit, data.size());
      received.append(data.substr(0, take));
      return take;
    };
    callbacks.on_close = [this](const Status& reason) {
      closed = true;
      close_reason = reason;
    };
    buffered = std::make_unique<BufferedFd>(loop.get(), fds[0],
                                            std::move(callbacks),
                                            high_watermark);
    // The test thread drives the loop, so it owns the connection too.
    ScopedThreadRole io_owner(buffered->role());
    ASSERT_OK(buffered->Register());
  }

  ~FdHarness() {
    buffered.reset();
    if (peer_fd >= 0) close(peer_fd);
  }

  void Spin(int passes = 10) {
    ScopedThreadRole loop_owner(loop->role());
    for (int i = 0; i < passes; ++i) {
      ASSERT_OK(loop->RunOnce(10));
    }
  }
};

TEST(BufferedFdTest, DeliversBytesAndCountsThem) {
  FdHarness h;
  h.Init();
  ScopedThreadRole io(h.buffered->role());
  ASSERT_EQ(write(h.peer_fd, "hello", 5), 5);
  h.Spin();
  EXPECT_EQ(h.received, "hello");
  EXPECT_EQ(h.buffered->bytes_in(), 5u);
  EXPECT_FALSE(h.closed);
}

TEST(BufferedFdTest, UnconsumedBytesStayBufferedAcrossReads) {
  FdHarness h;
  h.Init();
  // on_data refuses to consume anything until 10 bytes have arrived —
  // the partial-frame pattern a frame decoder uses.
  h.consume_limit = 0;
  ASSERT_EQ(write(h.peer_fd, "01234", 5), 5);
  h.Spin();
  EXPECT_EQ(h.received, "");
  ASSERT_EQ(write(h.peer_fd, "56789", 5), 5);
  h.consume_limit = SIZE_MAX;
  h.Spin();
  // The buffer was re-offered in full once more bytes arrived.
  EXPECT_EQ(h.received, "0123456789");
}

TEST(BufferedFdTest, SendReachesThePeer) {
  FdHarness h;
  h.Init();
  ScopedThreadRole io(h.buffered->role());
  ASSERT_OK(h.buffered->Send("ping!"));
  h.Spin();
  char buf[16];
  ssize_t n = read(h.peer_fd, buf, sizeof(buf));
  ASSERT_EQ(n, 5);
  EXPECT_EQ(std::string(buf, 5), "ping!");
  EXPECT_EQ(h.buffered->bytes_out(), 5u);
}

TEST(BufferedFdTest, PeerEofClosesWithOkExactlyOnce) {
  FdHarness h;
  h.Init();
  ScopedThreadRole io(h.buffered->role());
  ASSERT_EQ(write(h.peer_fd, "bye", 3), 3);
  close(h.peer_fd);
  h.peer_fd = -1;
  h.Spin();
  EXPECT_EQ(h.received, "bye");  // data before EOF is still delivered
  EXPECT_TRUE(h.closed);
  EXPECT_OK(h.close_reason);
  EXPECT_TRUE(h.buffered->closed());
}

TEST(BufferedFdTest, BackpressurePausesReadsAtTheHighWatermark) {
  FdHarness h;
  // Tiny watermark: any unflushed output beyond 64 bytes pauses reads.
  h.Init(/*high_watermark=*/64);
  ScopedThreadRole io(h.buffered->role());
  // Fill the peer's receive path: the socketpair buffer is finite, so a
  // large enough Send leaves bytes queued in the BufferedFd.
  std::string big(1 << 20, 'x');
  ASSERT_OK(h.buffered->Send(big));
  h.Spin(3);
  ASSERT_GT(h.buffered->pending_out(), 64u);
  EXPECT_TRUE(h.buffered->paused());
  EXPECT_GE(h.buffered->stalls(), 1u);

  // While paused, inbound bytes are not offered to on_data.
  ASSERT_EQ(write(h.peer_fd, "inbound", 7), 7);
  h.Spin(3);
  EXPECT_EQ(h.received, "");

  // Drain the peer side; the output empties, reading resumes, and the
  // inbound bytes finally arrive.
  std::string sunk;
  char buf[65536];
  for (int i = 0; i < 200 && sunk.size() < big.size(); ++i) {
    ssize_t n = read(h.peer_fd, buf, sizeof(buf));
    if (n > 0) sunk.append(buf, static_cast<size_t>(n));
    h.Spin(2);
  }
  EXPECT_EQ(sunk.size(), big.size());
  EXPECT_FALSE(h.buffered->paused());
  EXPECT_EQ(h.received, "inbound");
}

TEST(BufferedFdTest, StallClockStartsAtPauseAndClearsOnDrain) {
  FdHarness h;
  h.Init(/*high_watermark=*/64);
  ScopedThreadRole io(h.buffered->role());
  EXPECT_EQ(h.buffered->stalled_since_ms(), 0);

  // Jam the peer: the watermark pause must stamp the stall clock — this is
  // what the server's write-stall sweep reads to drop non-draining peers.
  std::string big(1 << 20, 'x');
  ASSERT_OK(h.buffered->Send(big));
  h.Spin(3);
  ASSERT_TRUE(h.buffered->paused());
  const int64_t stalled_at = h.buffered->stalled_since_ms();
  EXPECT_GT(stalled_at, 0);
  EXPECT_LE(stalled_at, EventLoop::NowMs());
  // buffered_bytes covers the jammed output (the memory-budget gauge).
  EXPECT_GE(h.buffered->buffered_bytes(), h.buffered->pending_out());

  // Draining the peer un-pauses and resets the clock to "not stalled".
  std::string sunk;
  char buf[65536];
  for (int i = 0; i < 200 && sunk.size() < big.size(); ++i) {
    ssize_t n = read(h.peer_fd, buf, sizeof(buf));
    if (n > 0) sunk.append(buf, static_cast<size_t>(n));
    h.Spin(2);
  }
  ASSERT_FALSE(h.buffered->paused());
  EXPECT_EQ(h.buffered->stalled_since_ms(), 0);
}

TEST(BufferedFdTest, CloseAfterFlushDrainsTheOutputFirst) {
  FdHarness h;
  h.Init();
  ScopedThreadRole io(h.buffered->role());
  std::string payload(1 << 18, 'y');
  ASSERT_OK(h.buffered->Send(payload));
  h.buffered->CloseAfterFlush(Status::Ok());
  // on_close fires once the output buffer has drained into the kernel;
  // the peer may still have socket-buffered bytes to read after that, so
  // keep reading until EOF rather than stopping at the close signal.
  std::string sunk;
  char buf[65536];
  for (int i = 0; i < 400 && sunk.size() < payload.size(); ++i) {
    ssize_t n = read(h.peer_fd, buf, sizeof(buf));
    if (n == 0) break;  // EOF: the fd really closed
    if (n > 0) sunk.append(buf, static_cast<size_t>(n));
    h.Spin(2);
  }
  EXPECT_TRUE(h.closed);
  EXPECT_EQ(sunk.size(), payload.size());
}

TEST(BufferedFdTest, ReadFaultSeamDropsTheConnectionNotTheLoop) {
  FdHarness h;
  h.Init();
  fault::ScopedFaultPlan plan(
      {fault::FaultRule::FailCalls("net.read", 1, 1)});
  ASSERT_EQ(write(h.peer_fd, "doomed", 6), 6);
  h.Spin();
  EXPECT_TRUE(h.closed);
  EXPECT_FALSE(h.close_reason.ok());
  EXPECT_EQ(plan.TotalInjected(), 1u);
  // The loop itself still runs fine.
  bool fired = false;
  ScopedThreadRole loop_owner(h.loop->role());
  h.loop->RunAfter(0, [&] { fired = true; });
  h.Spin(2);
  EXPECT_TRUE(fired);
}

TEST(BufferedFdTest, SendVecCoalescesSegmentsIntoOneWritev) {
  FdHarness h;
  h.Init();
  ScopedThreadRole io(h.buffered->role());
  const std::string_view parts[] = {"alpha", "-", "beta", "-", "gamma"};
  ASSERT_OK(h.buffered->SendVec(parts, 5));
  // One syscall carried all five segments (the batched-ack hot path).
  EXPECT_EQ(h.buffered->writev_calls(), 1u);
  EXPECT_EQ(h.buffered->writev_segments(), 5u);
  EXPECT_EQ(h.buffered->bytes_out(), 16u);
  h.Spin();
  char buf[64];
  ssize_t n = read(h.peer_fd, buf, sizeof(buf));
  ASSERT_EQ(n, 16);
  EXPECT_EQ(std::string(buf, 16), "alpha-beta-gamma");
}

TEST(BufferedFdTest, ReleaseFdDetachesWithoutClosingTheSocket) {
  FdHarness h;
  h.Init();
  h.consume_limit = 0;  // keep inbound bytes buffered, unconsumed
  ASSERT_EQ(write(h.peer_fd, "carried", 7), 7);
  h.Spin();
  ScopedThreadRole io(h.buffered->role());
  BufferedFd::Released released = h.buffered->ReleaseFd();
  ASSERT_GE(released.fd, 0);
  // The unconsumed input travels with the fd (the shard-handoff contract).
  EXPECT_EQ(released.pending_in, "carried");
  EXPECT_TRUE(h.buffered->closed());
  EXPECT_FALSE(h.closed);  // detached, not closed: on_close never fires
  // The fd is still a live socket: it can ship bytes to the peer.
  ASSERT_EQ(::write(released.fd, "ok", 2), 2);
  char buf[8];
  ASSERT_EQ(read(h.peer_fd, buf, sizeof(buf)), 2);
  EXPECT_EQ(std::string(buf, 2), "ok");
  ::close(released.fd);
}

TEST(BufferedFdTest, InjectedInputIsDeliveredByPump) {
  // The adoption path for handed-off connections: bytes already read by
  // another loop are injected and pumped explicitly, because
  // edge-triggered epoll never signals an edge for them.
  FdHarness h;
  h.Init();
  ScopedThreadRole io(h.buffered->role());
  h.buffered->InjectInput("hand");
  h.buffered->Pump();
  EXPECT_EQ(h.received, "hand");
  // Injected bytes interleave cleanly with bytes from the socket itself.
  ASSERT_EQ(write(h.peer_fd, "off", 3), 3);
  h.Spin();
  EXPECT_EQ(h.received, "handoff");
}

TEST(BufferedFdTest, FrameCorruptionSeamDamagesInboundBytes) {
  FdHarness h;
  h.Init();
  fault::ScopedFaultPlan plan(
      {fault::FaultRule::CorruptBytes("net.frame", /*bits=*/4)});
  std::string original(256, 'z');
  ASSERT_EQ(write(h.peer_fd, original.data(), original.size()),
            static_cast<ssize_t>(original.size()));
  h.Spin();
  ASSERT_EQ(h.received.size(), original.size());
  EXPECT_NE(h.received, original);  // the seam flipped bits in transit
  EXPECT_GE(plan.TotalInjected(), 1u);
}

}  // namespace
}  // namespace smeter::net
