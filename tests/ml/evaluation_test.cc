#include "ml/evaluation.h"

#include <memory>

#include <gtest/gtest.h>

#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

TEST(ClassificationMetricsTest, PerfectPredictions) {
  ClassificationMetrics m(2);
  for (int i = 0; i < 5; ++i) {
    m.Record(0, 0);
    m.Record(1, 1);
  }
  EXPECT_DOUBLE_EQ(m.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.WeightedF1(), 1.0);
  EXPECT_DOUBLE_EQ(m.Precision(0), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(1), 1.0);
}

TEST(ClassificationMetricsTest, KnownConfusionMatrix) {
  // actual 0: 8 right, 2 predicted as 1; actual 1: 6 right, 4 as 0.
  ClassificationMetrics m(2);
  for (int i = 0; i < 8; ++i) m.Record(0, 0);
  for (int i = 0; i < 2; ++i) m.Record(0, 1);
  for (int i = 0; i < 6; ++i) m.Record(1, 1);
  for (int i = 0; i < 4; ++i) m.Record(1, 0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.7);
  EXPECT_DOUBLE_EQ(m.Precision(0), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(m.Recall(0), 0.8);
  double f1_0 = 2.0 * (8.0 / 12.0) * 0.8 / (8.0 / 12.0 + 0.8);
  EXPECT_DOUBLE_EQ(m.F1(0), f1_0);
  double f1_1 = 2.0 * 0.75 * 0.6 / (0.75 + 0.6);
  EXPECT_NEAR(m.WeightedF1(), 0.5 * f1_0 + 0.5 * f1_1, 1e-12);
}

TEST(ClassificationMetricsTest, UndefinedMetricsAreZero) {
  ClassificationMetrics m(3);
  m.Record(0, 0);
  EXPECT_DOUBLE_EQ(m.Precision(2), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(2), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(2), 0.0);
}

TEST(ClassificationMetricsTest, MergeAccumulates) {
  ClassificationMetrics a(2), b(2);
  a.Record(0, 0);
  b.Record(1, 0);
  ASSERT_OK(a.Merge(b));
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.Accuracy(), 0.5);
  ClassificationMetrics c(3);
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(ClassificationMetricsTest, ToStringMentionsClasses) {
  ClassificationMetrics m(2);
  m.Record(0, 0);
  std::string text = m.ToString({"houseA", "houseB"});
  EXPECT_NE(text.find("houseA"), std::string::npos);
  EXPECT_NE(text.find("accuracy"), std::string::npos);
}

TEST(StratifiedFoldsTest, PartitionIsDisjointAndComplete) {
  Dataset d = testing::GaussianBlobs(50, 3);
  ASSERT_OK_AND_ASSIGN(std::vector<std::vector<size_t>> folds,
                       StratifiedFolds(d, 10, 1));
  ASSERT_EQ(folds.size(), 10u);
  std::vector<int> seen(d.num_instances(), 0);
  for (const auto& fold : folds) {
    for (size_t r : fold) ++seen[r];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(StratifiedFoldsTest, ClassBalancePreserved) {
  Dataset d = testing::GaussianBlobs(50, 5);  // 50 per class
  ASSERT_OK_AND_ASSIGN(std::vector<std::vector<size_t>> folds,
                       StratifiedFolds(d, 5, 2));
  for (const auto& fold : folds) {
    size_t class0 = 0;
    for (size_t r : fold) {
      if (d.ClassOf(r).value() == 0) ++class0;
    }
    EXPECT_EQ(fold.size(), 20u);
    EXPECT_EQ(class0, 10u);
  }
}

TEST(StratifiedFoldsTest, Validates) {
  Dataset d = testing::GaussianBlobs(3, 7);
  EXPECT_FALSE(StratifiedFolds(d, 1, 1).ok());
  EXPECT_FALSE(StratifiedFolds(d, 100, 1).ok());
}

TEST(EvaluateTrainTestTest, ScoresHeldOutData) {
  Dataset train = testing::GaussianBlobs(100, 11);
  Dataset test = testing::GaussianBlobs(30, 12);
  NaiveBayes nb;
  ASSERT_OK_AND_ASSIGN(ClassificationMetrics metrics,
                       EvaluateTrainTest(nb, train, test));
  EXPECT_EQ(metrics.total(), test.num_instances());
  EXPECT_GT(metrics.Accuracy(), 0.95);
}

TEST(EvaluateTrainTestTest, RejectsSchemaMismatch) {
  Dataset train = testing::GaussianBlobs(10, 13);
  Dataset other = testing::NominalXor(2);
  NaiveBayes nb;
  EXPECT_FALSE(EvaluateTrainTest(nb, train, other).ok());
}

TEST(CrossValidateTest, TenFoldOnSeparableData) {
  Dataset d = testing::GaussianBlobs(60, 17);
  ASSERT_OK_AND_ASSIGN(
      CrossValidationResult result,
      CrossValidate([] { return std::make_unique<NaiveBayes>(); }, d, 10, 3));
  EXPECT_EQ(result.metrics.total(), d.num_instances());
  EXPECT_GT(result.metrics.WeightedF1(), 0.95);
  EXPECT_GT(result.processing_seconds, 0.0);
}

TEST(CrossValidateTest, WorksWithRandomForest) {
  Dataset d = testing::NominalSeparable(20, 19);
  RandomForestOptions options;
  options.num_trees = 10;
  ASSERT_OK_AND_ASSIGN(
      CrossValidationResult result,
      CrossValidate([&] { return std::make_unique<RandomForest>(options); },
                    d, 5, 7));
  EXPECT_GT(result.metrics.WeightedF1(), 0.9);
}

TEST(CrossValidateTest, DeterministicGivenSeed) {
  Dataset d = testing::GaussianBlobs(40, 23);
  auto factory = [] { return std::make_unique<NaiveBayes>(); };
  ASSERT_OK_AND_ASSIGN(CrossValidationResult a, CrossValidate(factory, d, 5, 9));
  ASSERT_OK_AND_ASSIGN(CrossValidationResult b, CrossValidate(factory, d, 5, 9));
  EXPECT_EQ(a.metrics.confusion(), b.metrics.confusion());
}

TEST(CrossValidateTest, ParallelFoldsMatchSerial) {
  Dataset d = testing::GaussianBlobs(60, 29);
  auto factory = [] { return std::make_unique<NaiveBayes>(); };
  ASSERT_OK_AND_ASSIGN(CrossValidationResult serial,
                       CrossValidate(factory, d, 6, 11));
  for (size_t threads : {2, 4}) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(CrossValidationResult parallel,
                         CrossValidate(factory, d, 6, 11, &pool));
    // Folds merge in order, so the confusion matrix is identical for any
    // pool size; only processing_seconds (wall time) may differ.
    EXPECT_EQ(parallel.metrics.confusion(), serial.metrics.confusion())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace smeter::ml
