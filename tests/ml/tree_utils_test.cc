#include "ml/tree_utils.h"

#include <gtest/gtest.h>

#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

TEST(EntropyOfCountsTest, KnownValues) {
  EXPECT_DOUBLE_EQ(EntropyOfCounts({5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(EntropyOfCounts({4, 4, 4, 4}), 2.0);
  EXPECT_DOUBLE_EQ(EntropyOfCounts({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyOfCounts({}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyOfCounts({0, 0}), 0.0);
  EXPECT_NEAR(EntropyOfCounts({3, 1}), 0.8112781245, 1e-9);
}

std::vector<size_t> AllRows(const Dataset& d) {
  std::vector<size_t> rows(d.num_instances());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

TEST(NominalSplitTest, PerfectPredictorHasMaximalGain) {
  Dataset d = testing::NominalSeparable(20, 3);
  std::optional<SplitCandidate> key =
      EvaluateNominalSplit(d, AllRows(d), 0, 2);
  std::optional<SplitCandidate> noise =
      EvaluateNominalSplit(d, AllRows(d), 1, 2);
  ASSERT_TRUE(key.has_value());
  EXPECT_NEAR(key->gain, std::log2(3.0), 1e-9);  // full class entropy
  EXPECT_EQ(key->populated_branches, 3u);
  // The noise attribute provides (almost) no gain; it may not even qualify.
  if (noise.has_value()) {
    EXPECT_LT(noise->gain, 0.05);
    EXPECT_LT(noise->gain_ratio, key->gain_ratio);
  }
}

TEST(NominalSplitTest, RejectsSplitsWithoutTwoPopulatedBranches) {
  Dataset d = Dataset::Create("r",
                              {Attribute::Nominal("f", {"only", "never"}),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(d.Add({0.0, static_cast<double>(i % 2)}));
  }
  EXPECT_FALSE(EvaluateNominalSplit(d, AllRows(d), 0, 2).has_value());
}

TEST(NominalSplitTest, MissingValuesScaleGain) {
  Dataset d = Dataset::Create("m",
                              {Attribute::Nominal("f", {"x", "y"}),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  // Perfect predictor on the half of the rows where it is known.
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(d.Add({static_cast<double>(i % 2),
                     static_cast<double>(i % 2)}));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(d.Add({kMissing, static_cast<double>(i % 2)}));
  }
  std::optional<SplitCandidate> split =
      EvaluateNominalSplit(d, AllRows(d), 0, 2);
  ASSERT_TRUE(split.has_value());
  EXPECT_NEAR(split->gain, 0.5, 1e-9);  // 1 bit x 50% known
}

TEST(NumericSplitTest, FindsSeparatingThreshold) {
  Dataset d = Dataset::Create("n",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"lo", "hi"})},
                              1)
                  .value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(d.Add({static_cast<double>(i), i < 10 ? 0.0 : 1.0}));
  }
  std::optional<SplitCandidate> split =
      EvaluateNumericSplit(d, AllRows(d), 0, 2);
  ASSERT_TRUE(split.has_value());
  EXPECT_TRUE(split->is_numeric);
  EXPECT_NEAR(split->threshold, 9.5, 1e-9);
  EXPECT_NEAR(split->gain, 1.0, 1e-9);
  EXPECT_NEAR(split->gain_ratio, 1.0, 1e-9);
}

TEST(NumericSplitTest, NoThresholdOnConstantAttribute) {
  Dataset d = Dataset::Create("n",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(d.Add({1.0, static_cast<double>(i % 2)}));
  }
  EXPECT_FALSE(EvaluateNumericSplit(d, AllRows(d), 0, 2).has_value());
}

TEST(NumericSplitTest, MinLeafRespected) {
  Dataset d = Dataset::Create("n",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  // The only informative boundary strands a single row.
  ASSERT_OK(d.Add({0.0, 0.0}));
  for (int i = 1; i < 10; ++i) {
    ASSERT_OK(d.Add({static_cast<double>(i), 1.0}));
  }
  std::optional<SplitCandidate> strict =
      EvaluateNumericSplit(d, AllRows(d), 0, 3);
  // With min_leaf 3 the 1-vs-9 boundary is unavailable.
  if (strict.has_value()) {
    EXPECT_GE(strict->populated_branches, 2u);
    EXPECT_GT(strict->threshold, 1.0);
  }
  std::optional<SplitCandidate> loose =
      EvaluateNumericSplit(d, AllRows(d), 0, 1);
  ASSERT_TRUE(loose.has_value());
  EXPECT_NEAR(loose->threshold, 0.5, 1e-9);
}

TEST(PessimisticExtraErrorsTest, MatchesC45Behaviour) {
  // Zero observed errors still yield a positive pessimistic estimate.
  double zero = PessimisticExtraErrors(10.0, 0.0, 0.25);
  EXPECT_GT(zero, 0.0);
  EXPECT_LT(zero, 10.0);
  // More data with the same error rate -> relatively less pessimism.
  double small = PessimisticExtraErrors(10.0, 2.0, 0.25) / 10.0;
  double large = PessimisticExtraErrors(1000.0, 200.0, 0.25) / 1000.0;
  EXPECT_GT(small, large);
  // Estimates increase with observed errors.
  EXPECT_LT(PessimisticExtraErrors(100.0, 1.0, 0.25),
            PessimisticExtraErrors(100.0, 1.0, 0.25) +
                PessimisticExtraErrors(100.0, 10.0, 0.25));
  // Lower confidence value -> more pessimism.
  EXPECT_GT(PessimisticExtraErrors(100.0, 10.0, 0.05),
            PessimisticExtraErrors(100.0, 10.0, 0.25));
  // Saturated error count.
  EXPECT_DOUBLE_EQ(PessimisticExtraErrors(10.0, 10.0, 0.25), 0.0);
}

}  // namespace
}  // namespace smeter::ml
