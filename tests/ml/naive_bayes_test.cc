#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

TEST(NaiveBayesTest, TrainRejectsBadData) {
  NaiveBayes nb;
  Dataset empty = Dataset::Create("e",
                                  {Attribute::Numeric("x"),
                                   Attribute::Nominal("c", {"a", "b"})},
                                  1)
                      .value();
  EXPECT_FALSE(nb.Train(empty).ok());

  Dataset numeric_class =
      Dataset::Create("n", {Attribute::Numeric("y")}, 0).value();
  ASSERT_OK(numeric_class.Add({1.0}));
  EXPECT_FALSE(nb.Train(numeric_class).ok());
}

TEST(NaiveBayesTest, PredictBeforeTrainFails) {
  NaiveBayes nb;
  EXPECT_FALSE(nb.PredictDistribution({1.0, 0.0}).ok());
}

TEST(NaiveBayesTest, SeparatesGaussianBlobs) {
  Dataset d = testing::GaussianBlobs(100, 5);
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  ASSERT_OK_AND_ASSIGN(size_t lo, nb.Predict({0.0, 0.0, kMissing}));
  ASSERT_OK_AND_ASSIGN(size_t hi, nb.Predict({4.0, 4.0, kMissing}));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 1u);
}

TEST(NaiveBayesTest, NominalLikelihoodsDriveProbabilities) {
  Dataset d = testing::NominalSeparable(30, 7);
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       nb.PredictDistribution({1.0, 0.0, kMissing}));
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_GT(dist[1], 0.9);
}

TEST(NaiveBayesTest, DistributionSumsToOne) {
  Dataset d = testing::GaussianBlobs(50, 11);
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       nb.PredictDistribution({1.0, -2.0, kMissing}));
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NaiveBayesTest, MissingAttributesAreSkipped) {
  Dataset d = testing::GaussianBlobs(100, 13);
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  // All-missing row falls back to the prior: balanced classes -> ~0.5.
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       nb.PredictDistribution({kMissing, kMissing, kMissing}));
  EXPECT_NEAR(dist[0], 0.5, 1e-6);
}

TEST(NaiveBayesTest, LaplaceSmoothingAvoidsZeroProbabilities) {
  // Category "n1" never occurs with class c0; an unsmoothed model would
  // zero it out entirely.
  Dataset d = Dataset::Create("s",
                              {Attribute::Nominal("f", {"n0", "n1"}),
                               Attribute::Nominal("c", {"c0", "c1"})},
                              1)
                  .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(d.Add({0.0, 0.0}));
    ASSERT_OK(d.Add({1.0, 1.0}));
  }
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       nb.PredictDistribution({1.0, kMissing}));
  EXPECT_GT(dist[0], 0.0);
  EXPECT_GT(dist[1], dist[0]);
}

TEST(NaiveBayesTest, UnbalancedPriorsMatter) {
  Dataset d = Dataset::Create("p",
                              {Attribute::Nominal("f", {"x", "y"}),
                               Attribute::Nominal("c", {"rare", "common"})},
                              1)
                  .value();
  // The feature is uninformative; class "common" is 9x more frequent.
  for (int i = 0; i < 90; ++i) ASSERT_OK(d.Add({static_cast<double>(i % 2), 1.0}));
  for (int i = 0; i < 10; ++i) ASSERT_OK(d.Add({static_cast<double>(i % 2), 0.0}));
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  ASSERT_OK_AND_ASSIGN(size_t predicted, nb.Predict({0.0, kMissing}));
  EXPECT_EQ(predicted, 1u);
}

TEST(NaiveBayesTest, ConstantNumericAttributeDoesNotCrash) {
  Dataset d = Dataset::Create("k",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(d.Add({5.0, static_cast<double>(i % 2)}));
  }
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       nb.PredictDistribution({5.0, kMissing}));
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
}

TEST(NaiveBayesTest, RejectsWrongRowWidth) {
  Dataset d = testing::GaussianBlobs(10, 3);
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  EXPECT_FALSE(nb.PredictDistribution({1.0}).ok());
}

TEST(NaiveBayesTest, RejectsOutOfRangeNominal) {
  Dataset d = testing::NominalSeparable(5, 1);
  NaiveBayes nb;
  ASSERT_OK(nb.Train(d));
  EXPECT_FALSE(nb.PredictDistribution({9.0, 0.0, kMissing}).ok());
}

}  // namespace
}  // namespace smeter::ml
