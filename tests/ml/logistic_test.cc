#include "ml/logistic.h"

#include <gtest/gtest.h>

#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

double Accuracy(const Classifier& c, const Dataset& d) {
  size_t correct = 0;
  for (size_t r = 0; r < d.num_instances(); ++r) {
    if (c.Predict(d.row(r)).value() == d.ClassOf(r).value()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(d.num_instances());
}

TEST(LogisticTest, SeparatesLinearlySeparableBlobs) {
  Dataset d = testing::GaussianBlobs(100, 3);
  Logistic model;
  ASSERT_OK(model.Train(d));
  EXPECT_GT(Accuracy(model, d), 0.97);
  EXPECT_GT(model.iterations_used(), 0u);
}

TEST(LogisticTest, MulticlassNominalFeatures) {
  Dataset d = testing::NominalSeparable(40, 5);
  Logistic model;
  ASSERT_OK(model.Train(d));
  EXPECT_GT(Accuracy(model, d), 0.95);
  ASSERT_OK_AND_ASSIGN(size_t cls, model.Predict({2.0, 1.0, kMissing}));
  EXPECT_EQ(cls, 2u);
}

TEST(LogisticTest, ProbabilitiesSumToOne) {
  Dataset d = testing::GaussianBlobs(50, 7);
  Logistic model;
  ASSERT_OK(model.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       model.PredictDistribution({2.0, 2.0, kMissing}));
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LogisticTest, ConfidenceGrowsAwayFromBoundary) {
  Dataset d = testing::GaussianBlobs(200, 9);
  Logistic model;
  ASSERT_OK(model.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> near,
                       model.PredictDistribution({2.0, 2.0, kMissing}));
  ASSERT_OK_AND_ASSIGN(std::vector<double> far,
                       model.PredictDistribution({8.0, 8.0, kMissing}));
  EXPECT_GT(far[1], near[1]);
  EXPECT_GT(far[1], 0.99);
}

TEST(LogisticTest, MissingValuesImputed) {
  Dataset d = testing::GaussianBlobs(100, 11);
  Logistic model;
  ASSERT_OK(model.Train(d));
  // A fully-missing row imputes the global mean: probabilities stay finite.
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> dist,
      model.PredictDistribution({kMissing, kMissing, kMissing}));
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
}

TEST(LogisticTest, XorStaysHard) {
  // A linear model cannot do better than chance on XOR — a useful negative
  // control that the paper's classifier ordering depends on.
  Dataset d = testing::NominalXor(25);
  Logistic model;
  ASSERT_OK(model.Train(d));
  EXPECT_LT(Accuracy(model, d), 0.8);
}

TEST(LogisticTest, RidgeShrinksConfidence) {
  Dataset d = testing::GaussianBlobs(60, 13);
  LogisticOptions strong;
  strong.ridge = 100.0;
  Logistic regularized(strong);
  Logistic plain;
  ASSERT_OK(regularized.Train(d));
  ASSERT_OK(plain.Train(d));
  std::vector<double> reg_dist =
      regularized.PredictDistribution({6.0, 6.0, kMissing}).value();
  std::vector<double> plain_dist =
      plain.PredictDistribution({6.0, 6.0, kMissing}).value();
  EXPECT_LT(reg_dist[1], plain_dist[1]);
}

TEST(LogisticTest, PredictBeforeTrainFails) {
  Logistic model;
  EXPECT_FALSE(model.PredictDistribution({1.0}).ok());
}

TEST(LogisticTest, RejectsWrongRowWidth) {
  Dataset d = testing::GaussianBlobs(20, 17);
  Logistic model;
  ASSERT_OK(model.Train(d));
  EXPECT_FALSE(model.PredictDistribution({1.0}).ok());
}

TEST(LogisticTest, DeterministicTraining) {
  Dataset d = testing::GaussianBlobs(60, 19);
  Logistic a, b;
  ASSERT_OK(a.Train(d));
  ASSERT_OK(b.Train(d));
  for (size_t r = 0; r < d.num_instances(); ++r) {
    EXPECT_EQ(a.PredictDistribution(d.row(r)).value(),
              b.PredictDistribution(d.row(r)).value());
  }
}

}  // namespace
}  // namespace smeter::ml
