#include "ml/baseline.h"

#include <gtest/gtest.h>

#include "ml/evaluation.h"
#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

TEST(ZeroRTest, PredictsMajorityClass) {
  Dataset d = Dataset::Create("z",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  for (int i = 0; i < 7; ++i) ASSERT_OK(d.Add({1.0 * i, 1.0}));
  for (int i = 0; i < 3; ++i) ASSERT_OK(d.Add({1.0 * i, 0.0}));
  ZeroR zero;
  ASSERT_OK(zero.Train(d));
  ASSERT_OK_AND_ASSIGN(size_t cls, zero.Predict({99.0, kMissing}));
  EXPECT_EQ(cls, 1u);
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       zero.PredictDistribution({0.0, kMissing}));
  EXPECT_DOUBLE_EQ(dist[1], 0.7);
  EXPECT_DOUBLE_EQ(dist[0], 0.3);
}

TEST(ZeroRTest, KappaIsZeroForZeroR) {
  // ZeroR agrees with truth only by chance: kappa ~ 0 by construction.
  Dataset d = testing::GaussianBlobs(50, 3);
  ZeroR zero;
  ASSERT_OK_AND_ASSIGN(ClassificationMetrics metrics,
                       EvaluateTrainTest(zero, d, d));
  EXPECT_NEAR(metrics.Kappa(), 0.0, 1e-9);
  EXPECT_NEAR(metrics.Accuracy(), 0.5, 1e-9);
}

TEST(ZeroRTest, Validates) {
  ZeroR zero;
  EXPECT_FALSE(zero.PredictDistribution({1.0}).ok());
  Dataset d = testing::GaussianBlobs(5, 5);
  ASSERT_OK(zero.Train(d));
  EXPECT_FALSE(zero.PredictDistribution({1.0}).ok());  // wrong width
}

TEST(KappaTest, PerfectAgreementIsOne) {
  ClassificationMetrics m(3);
  for (size_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) m.Record(c, c);
  }
  EXPECT_DOUBLE_EQ(m.Kappa(), 1.0);
}

TEST(KappaTest, EmptyMatrixIsZero) {
  ClassificationMetrics m(2);
  EXPECT_DOUBLE_EQ(m.Kappa(), 0.0);
}

TEST(KappaTest, KnownTwoByTwoValue) {
  // Classic example: po = 0.7, pe = 0.5 -> kappa = 0.4.
  ClassificationMetrics m(2);
  for (int i = 0; i < 35; ++i) m.Record(0, 0);
  for (int i = 0; i < 15; ++i) m.Record(0, 1);
  for (int i = 0; i < 15; ++i) m.Record(1, 0);
  for (int i = 0; i < 35; ++i) m.Record(1, 1);
  EXPECT_NEAR(m.Kappa(), 0.4, 1e-12);
}

}  // namespace
}  // namespace smeter::ml
