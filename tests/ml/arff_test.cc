#include "ml/arff.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::ml {
namespace {

Dataset SampleDataset() {
  Dataset d = Dataset::Create("meter days",
                              {Attribute::Numeric("w0"),
                               Attribute::Nominal("sym", {"00", "01"}),
                               Attribute::Nominal("house", {"h1", "h2"})},
                              2)
                  .value();
  (void)d.Add({1.5, 0.0, 0.0});
  (void)d.Add({kMissing, 1.0, 1.0});
  return d;
}

TEST(ArffTest, RoundTripPreservesEverything) {
  Dataset original = SampleDataset();
  std::string text = ToArff(original);
  ASSERT_OK_AND_ASSIGN(Dataset parsed, FromArff(text, 2));
  EXPECT_EQ(parsed.relation(), "meter days");
  ASSERT_EQ(parsed.num_attributes(), 3u);
  EXPECT_TRUE(parsed.attribute(0).is_numeric());
  EXPECT_TRUE(parsed.attribute(1).is_nominal());
  EXPECT_EQ(parsed.attribute(1).values(),
            (std::vector<std::string>{"00", "01"}));
  ASSERT_EQ(parsed.num_instances(), 2u);
  EXPECT_DOUBLE_EQ(parsed.value(0, 0), 1.5);
  EXPECT_TRUE(IsMissing(parsed.value(1, 0)));
  EXPECT_EQ(parsed.ClassOf(1).value(), 1u);
}

TEST(ArffTest, DefaultClassIsLastAttribute) {
  std::string text = ToArff(SampleDataset());
  ASSERT_OK_AND_ASSIGN(Dataset parsed, FromArff(text));
  EXPECT_EQ(parsed.class_index(), 2u);
}

TEST(ArffTest, ParsesHandWrittenWekaStyle) {
  std::string text =
      "% comment line\n"
      "@RELATION test\n"
      "\n"
      "@ATTRIBUTE temp NUMERIC\n"
      "@ATTRIBUTE outlook {sunny, rainy}\n"
      "@DATA\n"
      "20.5, sunny\n"
      "?, rainy\n";
  ASSERT_OK_AND_ASSIGN(Dataset parsed, FromArff(text));
  EXPECT_EQ(parsed.relation(), "test");
  ASSERT_EQ(parsed.num_instances(), 2u);
  EXPECT_DOUBLE_EQ(parsed.value(0, 0), 20.5);
  EXPECT_EQ(parsed.ClassOf(0).value(), 0u);
  EXPECT_TRUE(IsMissing(parsed.value(1, 0)));
}

TEST(ArffTest, QuotedNamesSurvive) {
  Dataset d = Dataset::Create("rel",
                              {Attribute::Numeric("has space"),
                               Attribute::Nominal("c", {"x,y", "z"})},
                              1)
                  .value();
  ASSERT_OK(d.Add({1.0, 0.0}));
  ASSERT_OK_AND_ASSIGN(Dataset parsed, FromArff(ToArff(d), 1));
  EXPECT_EQ(parsed.attribute(0).name(), "has space");
  EXPECT_EQ(parsed.attribute(1).values()[0], "x,y");
  EXPECT_EQ(parsed.ClassOf(0).value(), 0u);
}

// Found by the fuzz harness: names/labels containing quote characters,
// backslashes, `%`, or a literal `?` parsed once but did not survive a
// ToArff → FromArff round-trip (the writer's escapes were unreadable, and
// bare tokens changed meaning on re-read).
TEST(ArffTest, HostileNamesAndLabelsRoundTrip) {
  Dataset d = Dataset::Create("it's a 100% 'test'",
                              {Attribute::Numeric("clas'"),
                               Attribute::Nominal("a\\b", {"?", "%c", "d'e\\"}),
                               Attribute::Nominal("tab\there", {"'", "\""})},
                              2)
                  .value();
  ASSERT_OK(d.Add({1.0, 0.0, 1.0}));
  ASSERT_OK(d.Add({kMissing, 2.0, 0.0}));
  ASSERT_OK_AND_ASSIGN(Dataset parsed, FromArff(ToArff(d), 2));
  EXPECT_EQ(parsed.relation(), "it's a 100% 'test'");
  EXPECT_EQ(parsed.attribute(0).name(), "clas'");
  EXPECT_EQ(parsed.attribute(1).name(), "a\\b");
  EXPECT_EQ(parsed.attribute(1).values(),
            (std::vector<std::string>{"?", "%c", "d'e\\"}));
  EXPECT_EQ(parsed.attribute(2).name(), "tab\there");
  ASSERT_EQ(parsed.num_instances(), 2u);
  EXPECT_EQ(parsed.value(0, 1), 0.0);   // label "?" is a value, not missing
  EXPECT_TRUE(IsMissing(parsed.value(1, 0)));
  EXPECT_EQ(parsed.value(1, 1), 2.0);
}

TEST(ArffTest, RejectsMalformedInput) {
  EXPECT_FALSE(FromArff("").ok());
  EXPECT_FALSE(FromArff("@data\n1,2\n").ok());
  EXPECT_FALSE(
      FromArff("@attribute x numeric\n@data\n1,2\n").ok());  // width
  EXPECT_FALSE(
      FromArff("@attribute x {a\n@data\na\n").ok());  // unterminated list
  EXPECT_FALSE(
      FromArff("@attribute x {a,b}\n@data\nc\n").ok());  // unknown label
  EXPECT_FALSE(
      FromArff("@attribute x string\n@data\nfoo\n").ok());  // unsupported
  EXPECT_FALSE(FromArff("@attribute x numeric\n@data\nnotnum\n").ok());
}

TEST(ArffFileTest, WriteAndReadBack) {
  std::string path = smeter::testing::TempPath("data.arff");
  Dataset original = SampleDataset();
  ASSERT_OK(WriteArffFile(path, original));
  ASSERT_OK_AND_ASSIGN(Dataset parsed, ReadArffFile(path, 2));
  EXPECT_EQ(parsed.num_instances(), original.num_instances());
}

TEST(ArffFileTest, MissingFileIsNotFound) {
  Result<Dataset> r = ReadArffFile("/no/such/file.arff");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace smeter::ml
