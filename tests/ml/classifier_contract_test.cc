// Contract tests every Classifier implementation must satisfy, run as a
// parameterized suite over all seven learners: trains on separable data,
// emits normalized distributions, validates row width, predicts before
// training with an error, and is deterministic.

#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "ml/bagging.h"
#include "ml/baseline.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

struct ContractParam {
  std::string name;
  // Learners that cannot beat chance on blobs (only ZeroR).
  bool expect_learning = true;
};

ClassifierFactory FactoryFor(const std::string& name) {
  static const std::map<std::string, ClassifierFactory> kFactories = {
      {"NaiveBayes", [] { return std::make_unique<NaiveBayes>(); }},
      {"J48", [] { return std::make_unique<DecisionTree>(); }},
      {"RandomForest",
       [] {
         RandomForestOptions options;
         options.num_trees = 15;
         return std::make_unique<RandomForest>(options);
       }},
      {"Logistic",
       [] {
         LogisticOptions options;
         options.max_iterations = 80;
         return std::make_unique<Logistic>(options);
       }},
      {"IBk", [] { return std::make_unique<Knn>(); }},
      {"ZeroR", [] { return std::make_unique<ZeroR>(); }},
      {"Bagging",
       [] {
         BaggingOptions options;
         options.num_members = 8;
         return std::make_unique<Bagging>(
             [] { return std::make_unique<DecisionTree>(); }, options);
       }},
  };
  return kFactories.at(name);
}

class ClassifierContractTest
    : public ::testing::TestWithParam<ContractParam> {
 protected:
  std::unique_ptr<Classifier> Make() const {
    return FactoryFor(GetParam().name)();
  }
};

TEST_P(ClassifierContractTest, PredictBeforeTrainFails) {
  std::unique_ptr<Classifier> classifier = Make();
  EXPECT_FALSE(classifier->PredictDistribution({1.0, 2.0, 0.0}).ok());
}

TEST_P(ClassifierContractTest, RejectsUntrainableData) {
  std::unique_ptr<Classifier> classifier = Make();
  Dataset empty = Dataset::Create("e",
                                  {Attribute::Numeric("x"),
                                   Attribute::Nominal("c", {"a", "b"})},
                                  1)
                      .value();
  EXPECT_FALSE(classifier->Train(empty).ok());
  Dataset one_class = empty.EmptyCopy();
  ASSERT_OK(one_class.Add({1.0, kMissing}));
  EXPECT_FALSE(classifier->Train(one_class).ok());
}

TEST_P(ClassifierContractTest, LearnsSeparableBlobs) {
  Dataset d = testing::GaussianBlobs(80, 101);
  std::unique_ptr<Classifier> classifier = Make();
  ASSERT_OK(classifier->Train(d));
  size_t correct = 0;
  for (size_t r = 0; r < d.num_instances(); ++r) {
    if (classifier->Predict(d.row(r)).value() == d.ClassOf(r).value()) {
      ++correct;
    }
  }
  double accuracy =
      static_cast<double>(correct) / static_cast<double>(d.num_instances());
  if (GetParam().expect_learning) {
    EXPECT_GT(accuracy, 0.9) << GetParam().name;
  } else {
    EXPECT_NEAR(accuracy, 0.5, 0.05) << GetParam().name;
  }
}

TEST_P(ClassifierContractTest, DistributionsAreNormalized) {
  Dataset d = testing::NominalSeparable(25, 103);
  std::unique_ptr<Classifier> classifier = Make();
  ASSERT_OK(classifier->Train(d));
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> row = {static_cast<double>(rng.UniformInt(3)),
                               static_cast<double>(rng.UniformInt(2)),
                               kMissing};
    ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                         classifier->PredictDistribution(row));
    ASSERT_EQ(dist.size(), 3u);
    double sum = 0.0;
    for (double p : dist) {
      EXPECT_GE(p, 0.0) << GetParam().name;
      EXPECT_LE(p, 1.0 + 1e-9) << GetParam().name;
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << GetParam().name;
  }
}

TEST_P(ClassifierContractTest, RejectsWrongRowWidth) {
  Dataset d = testing::GaussianBlobs(20, 107);
  std::unique_ptr<Classifier> classifier = Make();
  ASSERT_OK(classifier->Train(d));
  EXPECT_FALSE(classifier->PredictDistribution({1.0}).ok());
  EXPECT_FALSE(
      classifier->PredictDistribution({1.0, 2.0, 0.0, 4.0}).ok());
}

TEST_P(ClassifierContractTest, DeterministicAcrossInstances) {
  Dataset d = testing::GaussianBlobs(40, 109);
  std::unique_ptr<Classifier> a = Make();
  std::unique_ptr<Classifier> b = Make();
  ASSERT_OK(a->Train(d));
  ASSERT_OK(b->Train(d));
  for (size_t r = 0; r < d.num_instances(); ++r) {
    EXPECT_EQ(a->PredictDistribution(d.row(r)).value(),
              b->PredictDistribution(d.row(r)).value())
        << GetParam().name << " row " << r;
  }
}

TEST_P(ClassifierContractTest, ToleratesMissingCells) {
  Dataset d = testing::GaussianBlobs(40, 113);
  std::unique_ptr<Classifier> classifier = Make();
  ASSERT_OK(classifier->Train(d));
  EXPECT_OK(
      classifier->PredictDistribution({kMissing, kMissing, kMissing})
          .status());
}

INSTANTIATE_TEST_SUITE_P(
    AllClassifiers, ClassifierContractTest,
    ::testing::Values(ContractParam{"NaiveBayes", true},
                      ContractParam{"J48", true},
                      ContractParam{"RandomForest", true},
                      ContractParam{"Logistic", true},
                      ContractParam{"IBk", true},
                      ContractParam{"ZeroR", false},
                      ContractParam{"Bagging", true}),
    [](const ::testing::TestParamInfo<ContractParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace smeter::ml
