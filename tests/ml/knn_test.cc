#include "ml/knn.h"

#include <gtest/gtest.h>

#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

double Accuracy(const Classifier& c, const Dataset& d) {
  size_t correct = 0;
  for (size_t r = 0; r < d.num_instances(); ++r) {
    if (c.Predict(d.row(r)).value() == d.ClassOf(r).value()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(d.num_instances());
}

TEST(KnnTest, OneNearestNeighborMemorizesTraining) {
  Dataset d = testing::GaussianBlobs(40, 3);
  KnnOptions options;
  options.k = 1;
  Knn knn(options);
  ASSERT_OK(knn.Train(d));
  EXPECT_DOUBLE_EQ(Accuracy(knn, d), 1.0);
}

TEST(KnnTest, SeparatesBlobsWithKThree)  {
  Dataset d = testing::GaussianBlobs(100, 5);
  Knn knn;
  ASSERT_OK(knn.Train(d));
  ASSERT_OK_AND_ASSIGN(size_t lo, knn.Predict({0.0, 0.0, kMissing}));
  ASSERT_OK_AND_ASSIGN(size_t hi, knn.Predict({4.0, 4.0, kMissing}));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 1u);
}

TEST(KnnTest, NominalHammingDistance) {
  Dataset d = testing::NominalSeparable(20, 7);
  Knn knn;
  ASSERT_OK(knn.Train(d));
  ASSERT_OK_AND_ASSIGN(size_t cls, knn.Predict({2.0, 0.0, kMissing}));
  EXPECT_EQ(cls, 2u);
}

TEST(KnnTest, LearnsXorUnlikeGreedyTree) {
  // 1-NN handles XOR trivially (exact memorization).
  Dataset d = testing::NominalXor(10);
  KnnOptions options;
  options.k = 1;
  Knn knn(options);
  ASSERT_OK(knn.Train(d));
  EXPECT_DOUBLE_EQ(Accuracy(knn, d), 1.0);
}

TEST(KnnTest, DistributionSumsToOne) {
  Dataset d = testing::GaussianBlobs(30, 9);
  KnnOptions options;
  options.k = 5;
  options.distance_weighted = true;
  Knn knn(options);
  ASSERT_OK(knn.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       knn.PredictDistribution({1.0, 1.0, kMissing}));
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(KnnTest, DistanceWeightingFavorsCloserNeighbors) {
  // Two classes at distance 0 (x2) vs slightly further (x3): with k=5 and
  // uniform votes the majority (3 far ones) wins; weighted, the 2 near
  // ones win.
  Dataset d = Dataset::Create("w",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"near", "far"})},
                              1)
                  .value();
  ASSERT_OK(d.Add({0.0, 0.0}));
  ASSERT_OK(d.Add({0.01, 0.0}));
  ASSERT_OK(d.Add({0.5, 1.0}));
  ASSERT_OK(d.Add({0.5, 1.0}));
  ASSERT_OK(d.Add({0.5, 1.0}));
  KnnOptions uniform;
  uniform.k = 5;
  Knn plain(uniform);
  ASSERT_OK(plain.Train(d));
  ASSERT_OK_AND_ASSIGN(size_t plain_cls, plain.Predict({0.0, kMissing}));
  EXPECT_EQ(plain_cls, 1u);
  KnnOptions weighted = uniform;
  weighted.distance_weighted = true;
  Knn smart(weighted);
  ASSERT_OK(smart.Train(d));
  ASSERT_OK_AND_ASSIGN(size_t smart_cls, smart.Predict({0.0, kMissing}));
  EXPECT_EQ(smart_cls, 0u);
}

TEST(KnnTest, MissingValuesCountAsMaxDistance) {
  Dataset d = testing::GaussianBlobs(20, 11);
  Knn knn;
  ASSERT_OK(knn.Train(d));
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> dist,
      knn.PredictDistribution({kMissing, kMissing, kMissing}));
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
}

TEST(KnnTest, Validates) {
  Knn knn;
  EXPECT_FALSE(knn.PredictDistribution({1.0}).ok());
  Dataset d = testing::GaussianBlobs(10, 13);
  KnnOptions options;
  options.k = 0;
  Knn bad(options);
  EXPECT_FALSE(bad.Train(d).ok());
  ASSERT_OK(knn.Train(d));
  EXPECT_FALSE(knn.PredictDistribution({1.0}).ok());
}

}  // namespace
}  // namespace smeter::ml
