#include "ml/svr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

TEST(SvrTest, FitsLinearFunctionWithLinearKernel) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    double v = static_cast<double>(i);
    x.push_back({v});
    y.push_back(3.0 * v + 7.0);
  }
  SvrOptions options;
  options.kernel.type = KernelType::kLinear;
  options.c = 10.0;
  options.epsilon_tube = 0.01;
  Svr svr(options);
  ASSERT_OK(svr.Train(x, y));
  for (double v : {5.0, 20.0, 45.0}) {
    ASSERT_OK_AND_ASSIGN(double pred, svr.Predict({v}));
    EXPECT_NEAR(pred, 3.0 * v + 7.0, 3.0);
  }
}

TEST(SvrTest, FitsSineWithRbfKernel) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double v = static_cast<double>(i) / 200.0 * 6.28;
    x.push_back({v});
    y.push_back(std::sin(v));
  }
  SvrOptions options;
  options.c = 10.0;
  options.epsilon_tube = 0.02;
  options.kernel.gamma = 2.0;
  Svr svr(options);
  ASSERT_OK(svr.Train(x, y));
  double max_err = 0.0;
  for (int i = 0; i < 50; ++i) {
    double v = static_cast<double>(i) / 50.0 * 6.28;
    ASSERT_OK_AND_ASSIGN(double pred, svr.Predict({v}));
    max_err = std::max(max_err, std::abs(pred - std::sin(v)));
  }
  EXPECT_LT(max_err, 0.15);
}

TEST(SvrTest, EpsilonTubeSparsifiesSupportVectors) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    double v = rng.Uniform(0.0, 10.0);
    x.push_back({v});
    y.push_back(2.0 * v + rng.Gaussian(0.0, 0.05));
  }
  SvrOptions narrow;
  narrow.kernel.type = KernelType::kLinear;
  narrow.epsilon_tube = 0.001;
  SvrOptions wide = narrow;
  wide.epsilon_tube = 1.0;
  Svr svr_narrow(narrow), svr_wide(wide);
  ASSERT_OK(svr_narrow.Train(x, y));
  ASSERT_OK(svr_wide.Train(x, y));
  EXPECT_LT(svr_wide.num_support_vectors(), svr_narrow.num_support_vectors());
}

TEST(SvrTest, HandlesConstantTarget) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {5.0, 5.0, 5.0};
  Svr svr;
  ASSERT_OK(svr.Train(x, y));
  ASSERT_OK_AND_ASSIGN(double pred, svr.Predict({2.5}));
  EXPECT_NEAR(pred, 5.0, 0.5);
}

TEST(SvrTest, StandardizationMakesScalesIrrelevant) {
  // Same function at two feature scales; standardized fits should agree
  // after mapping.
  std::vector<std::vector<double>> x_small, x_big;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 80; ++i) {
    double v = rng.Uniform(0.0, 1.0);
    x_small.push_back({v});
    x_big.push_back({v * 1e6});
    y.push_back(v * v);
  }
  Svr a, b;
  ASSERT_OK(a.Train(x_small, y));
  ASSERT_OK(b.Train(x_big, y));
  ASSERT_OK_AND_ASSIGN(double pa, a.Predict({0.5}));
  ASSERT_OK_AND_ASSIGN(double pb, b.Predict({0.5e6}));
  EXPECT_NEAR(pa, pb, 0.02);
}

TEST(SvrTest, RejectsBadInput) {
  Svr svr;
  EXPECT_FALSE(svr.Train({}, {}).ok());
  EXPECT_FALSE(svr.Train({{1.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(svr.Train({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).ok());
  SvrOptions options;
  options.c = 0.0;
  Svr bad_c(options);
  EXPECT_FALSE(bad_c.Train({{1.0}}, {1.0}).ok());
  options = {};
  options.epsilon_tube = -1.0;
  Svr bad_eps(options);
  EXPECT_FALSE(bad_eps.Train({{1.0}}, {1.0}).ok());
}

TEST(SvrTest, PredictBeforeTrainFails) {
  Svr svr;
  EXPECT_FALSE(svr.Predict({1.0}).ok());
}

TEST(SvrTest, PredictRejectsWrongWidth) {
  Svr svr;
  ASSERT_OK(svr.Train({{1.0, 2.0}, {2.0, 3.0}, {0.5, 2.5}}, {1.0, 2.0, 1.5}));
  EXPECT_FALSE(svr.Predict({1.0}).ok());
}

TEST(KernelTest, RbfBasics) {
  KernelOptions options;
  options.type = KernelType::kRbf;
  options.gamma = 0.5;
  EXPECT_DOUBLE_EQ(KernelEval(options, {1.0, 2.0}, {1.0, 2.0}), 1.0);
  double far = KernelEval(options, {0.0}, {10.0});
  EXPECT_GT(far, 0.0);
  EXPECT_LT(far, 1e-10);
}

TEST(KernelTest, LinearIsDotProduct) {
  KernelOptions options;
  options.type = KernelType::kLinear;
  EXPECT_DOUBLE_EQ(KernelEval(options, {1.0, 2.0}, {3.0, 4.0}), 11.0);
}

TEST(KernelTest, ResolveGamma) {
  KernelOptions options;
  ASSERT_OK_AND_ASSIGN(double g, ResolveGamma(options, 4));
  EXPECT_DOUBLE_EQ(g, 0.25);
  options.gamma = 2.0;
  ASSERT_OK_AND_ASSIGN(double g2, ResolveGamma(options, 4));
  EXPECT_DOUBLE_EQ(g2, 2.0);
  options.gamma = -1.0;
  EXPECT_FALSE(ResolveGamma(options, 4).ok());
  options.gamma = 0.0;
  EXPECT_FALSE(ResolveGamma(options, 0).ok());
}

}  // namespace
}  // namespace smeter::ml
