// Shared dataset builders for the ML test suites.

#ifndef SMETER_TESTS_ML_ML_TESTUTIL_H_
#define SMETER_TESTS_ML_ML_TESTUTIL_H_

#include "common/random.h"
#include "ml/instances.h"

namespace smeter::ml::testing {

// Two numeric attributes, two well-separated Gaussian blobs.
// Class 0 around (0, 0), class 1 around (4, 4), unit-ish variance.
inline Dataset GaussianBlobs(size_t per_class, uint64_t seed,
                             double separation = 4.0) {
  Dataset d = Dataset::Create("blobs",
                              {Attribute::Numeric("x"),
                               Attribute::Numeric("y"),
                               Attribute::Nominal("class", {"a", "b"})},
                              2)
                  .value();
  Rng rng(seed);
  for (size_t i = 0; i < per_class; ++i) {
    (void)d.Add({rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0), 0.0});
    (void)d.Add({rng.Gaussian(separation, 1.0), rng.Gaussian(separation, 1.0),
                 1.0});
  }
  return d;
}

// Nominal XOR-ish dataset: class = (a XOR b). Linearly inseparable but
// perfectly tree/NB-with-interaction separable by trees.
inline Dataset NominalXor(size_t copies) {
  Dataset d = Dataset::Create("xor",
                              {Attribute::Nominal("a", {"0", "1"}),
                               Attribute::Nominal("b", {"0", "1"}),
                               Attribute::Nominal("class", {"no", "yes"})},
                              2)
                  .value();
  for (size_t i = 0; i < copies; ++i) {
    (void)d.Add({0.0, 0.0, 0.0});
    (void)d.Add({0.0, 1.0, 1.0});
    (void)d.Add({1.0, 0.0, 1.0});
    (void)d.Add({1.0, 1.0, 0.0});
  }
  return d;
}

// One perfectly predictive nominal attribute plus a noise attribute.
inline Dataset NominalSeparable(size_t per_class, uint64_t seed) {
  Dataset d = Dataset::Create("sep",
                              {Attribute::Nominal("key", {"k0", "k1", "k2"}),
                               Attribute::Nominal("noise", {"n0", "n1"}),
                               Attribute::Nominal("class", {"c0", "c1", "c2"})},
                              2)
                  .value();
  Rng rng(seed);
  for (size_t i = 0; i < per_class; ++i) {
    for (double cls = 0.0; cls < 3.0; cls += 1.0) {
      (void)d.Add({cls, static_cast<double>(rng.UniformInt(2)), cls});
    }
  }
  return d;
}

}  // namespace smeter::ml::testing

#endif  // SMETER_TESTS_ML_ML_TESTUTIL_H_
