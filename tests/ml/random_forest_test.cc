#include "ml/random_forest.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

double Accuracy(const Classifier& c, const Dataset& d) {
  size_t correct = 0;
  for (size_t r = 0; r < d.num_instances(); ++r) {
    if (c.Predict(d.row(r)).value() == d.ClassOf(r).value()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(d.num_instances());
}

TEST(RandomForestTest, SeparatesBlobs) {
  Dataset d = testing::GaussianBlobs(100, 3);
  RandomForestOptions options;
  options.num_trees = 20;
  RandomForest forest(options);
  ASSERT_OK(forest.Train(d));
  EXPECT_EQ(forest.num_trees(), 20u);
  EXPECT_GT(Accuracy(forest, d), 0.97);
}

TEST(RandomForestTest, LearnsXor) {
  Dataset d = testing::NominalXor(20);
  RandomForestOptions options;
  options.num_trees = 30;
  RandomForest forest(options);
  ASSERT_OK(forest.Train(d));
  EXPECT_GT(Accuracy(forest, d), 0.95);
}

TEST(RandomForestTest, OobAccuracyIsComputedAndPlausible) {
  Dataset d = testing::GaussianBlobs(150, 7);
  RandomForestOptions options;
  options.num_trees = 25;
  RandomForest forest(options);
  ASSERT_OK(forest.Train(d));
  EXPECT_FALSE(std::isnan(forest.oob_accuracy()));
  EXPECT_GT(forest.oob_accuracy(), 0.9);
  EXPECT_LE(forest.oob_accuracy(), 1.0);
}

TEST(RandomForestTest, DistributionAveragesTrees) {
  Dataset d = testing::GaussianBlobs(60, 11);
  RandomForestOptions options;
  options.num_trees = 10;
  RandomForest forest(options);
  ASSERT_OK(forest.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       forest.PredictDistribution({2.0, 2.0, kMissing}));
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  Dataset d = testing::GaussianBlobs(80, 13);
  RandomForestOptions options;
  options.num_trees = 8;
  options.seed = 5;
  RandomForest a(options), b(options);
  ASSERT_OK(a.Train(d));
  ASSERT_OK(b.Train(d));
  for (size_t r = 0; r < d.num_instances(); ++r) {
    EXPECT_EQ(a.Predict(d.row(r)).value(), b.Predict(d.row(r)).value());
  }
}

TEST(RandomForestTest, DifferentSeedsGrowDifferentForests) {
  Dataset d = testing::GaussianBlobs(60, 17, /*separation=*/1.0);
  RandomForestOptions options;
  options.num_trees = 5;
  options.seed = 1;
  RandomForest a(options);
  options.seed = 2;
  RandomForest b(options);
  ASSERT_OK(a.Train(d));
  ASSERT_OK(b.Train(d));
  bool any_diff = false;
  for (size_t r = 0; r < d.num_instances() && !any_diff; ++r) {
    std::vector<double> da = a.PredictDistribution(d.row(r)).value();
    std::vector<double> db = b.PredictDistribution(d.row(r)).value();
    if (std::abs(da[0] - db[0]) > 1e-12) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForestTest, MoreTreesNotWorseOnHardData) {
  Dataset d = testing::GaussianBlobs(200, 19, /*separation=*/1.5);
  RandomForestOptions options;
  options.num_trees = 1;
  options.seed = 3;
  RandomForest tiny(options);
  options.num_trees = 40;
  RandomForest big(options);
  ASSERT_OK(tiny.Train(d));
  ASSERT_OK(big.Train(d));
  EXPECT_GE(Accuracy(big, d) + 0.02, Accuracy(tiny, d));
}

TEST(RandomForestTest, ParallelTrainingIsBitIdenticalToSerial) {
  Dataset d = testing::GaussianBlobs(120, 29);
  RandomForestOptions options;
  options.num_trees = 12;
  options.seed = 7;
  RandomForest serial(options);
  ASSERT_OK(serial.Train(d));
  for (size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    options.pool = &pool;
    RandomForest parallel(options);
    ASSERT_OK(parallel.Train(d));
    // Bags and tree seeds are pre-drawn serially, so the forest must be
    // bit-identical regardless of pool size — including FP-sensitive
    // quantities like distributions and OOB accuracy.
    EXPECT_EQ(parallel.oob_accuracy(), serial.oob_accuracy())
        << "threads=" << threads;
    for (size_t r = 0; r < d.num_instances(); ++r) {
      EXPECT_EQ(parallel.PredictDistribution(d.row(r)).value(),
                serial.PredictDistribution(d.row(r)).value())
          << "threads=" << threads << " row=" << r;
    }
  }
}

TEST(RandomForestTest, ValidatesOptions) {
  Dataset d = testing::GaussianBlobs(10, 23);
  RandomForestOptions options;
  options.num_trees = 0;
  RandomForest forest(options);
  EXPECT_FALSE(forest.Train(d).ok());
}

TEST(RandomForestTest, PredictBeforeTrainFails) {
  RandomForest forest;
  EXPECT_FALSE(forest.PredictDistribution({1.0, 2.0, kMissing}).ok());
}

}  // namespace
}  // namespace smeter::ml
