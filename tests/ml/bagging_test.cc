#include "ml/bagging.h"

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/naive_bayes.h"
#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

ClassifierFactory TreeFactory() {
  return [] {
    DecisionTreeOptions options;
    options.prune = false;
    return std::make_unique<DecisionTree>(options);
  };
}

double Accuracy(const Classifier& c, const Dataset& d) {
  size_t correct = 0;
  for (size_t r = 0; r < d.num_instances(); ++r) {
    if (c.Predict(d.row(r)).value() == d.ClassOf(r).value()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(d.num_instances());
}

TEST(BaggingTest, TrainsRequestedMembers) {
  Dataset d = testing::GaussianBlobs(60, 3);
  BaggingOptions options;
  options.num_members = 7;
  Bagging bagging(TreeFactory(), options);
  ASSERT_OK(bagging.Train(d));
  EXPECT_EQ(bagging.num_members(), 7u);
  EXPECT_GT(Accuracy(bagging, d), 0.95);
}

TEST(BaggingTest, BootstrapDiversitySolvesXor) {
  // Single greedy trees refuse to split balanced XOR; bootstrap imbalance
  // breaks the gain tie and the ensemble recovers the function.
  Dataset d = testing::NominalXor(15);
  BaggingOptions options;
  options.num_members = 25;
  Bagging bagging(TreeFactory(), options);
  ASSERT_OK(bagging.Train(d));
  EXPECT_GT(Accuracy(bagging, d), 0.9);
}

TEST(BaggingTest, DistributionIsNormalized) {
  Dataset d = testing::GaussianBlobs(40, 5);
  Bagging bagging([] { return std::make_unique<NaiveBayes>(); });
  ASSERT_OK(bagging.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       bagging.PredictDistribution({2.0, 2.0, kMissing}));
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BaggingTest, DeterministicGivenSeed) {
  Dataset d = testing::GaussianBlobs(50, 7);
  BaggingOptions options;
  options.num_members = 5;
  options.seed = 9;
  Bagging a(TreeFactory(), options), b(TreeFactory(), options);
  ASSERT_OK(a.Train(d));
  ASSERT_OK(b.Train(d));
  for (size_t r = 0; r < d.num_instances(); ++r) {
    EXPECT_EQ(a.PredictDistribution(d.row(r)).value(),
              b.PredictDistribution(d.row(r)).value());
  }
}

TEST(BaggingTest, ParallelTrainingIsBitIdenticalToSerial) {
  Dataset d = testing::GaussianBlobs(80, 13);
  BaggingOptions options;
  options.num_members = 9;
  options.seed = 4;
  Bagging serial(TreeFactory(), options);
  ASSERT_OK(serial.Train(d));
  for (size_t threads : {2, 4}) {
    ThreadPool pool(threads);
    options.pool = &pool;
    Bagging parallel(TreeFactory(), options);
    ASSERT_OK(parallel.Train(d));
    for (size_t r = 0; r < d.num_instances(); ++r) {
      EXPECT_EQ(parallel.PredictDistribution(d.row(r)).value(),
                serial.PredictDistribution(d.row(r)).value())
          << "threads=" << threads << " row=" << r;
    }
  }
}

TEST(BaggingTest, Validates) {
  Bagging untrained(TreeFactory());
  EXPECT_FALSE(untrained.PredictDistribution({1.0}).ok());
  Dataset d = testing::GaussianBlobs(10, 11);
  BaggingOptions options;
  options.num_members = 0;
  Bagging zero(TreeFactory(), options);
  EXPECT_FALSE(zero.Train(d).ok());
}

}  // namespace
}  // namespace smeter::ml
