#include "ml/kmodes.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::ml {
namespace {

// Three clean nominal clusters: all attributes equal the cluster id.
Dataset ThreeClusters(size_t per_cluster, uint64_t seed, double noise = 0.1) {
  std::vector<std::string> categories = {"0", "1", "2"};
  std::vector<Attribute> attributes;
  for (int a = 0; a < 6; ++a) {
    attributes.push_back(
        Attribute::Nominal("f" + std::to_string(a), categories));
  }
  attributes.push_back(Attribute::Nominal("label", categories));
  Dataset d = Dataset::Create("clusters", attributes, 6).value();
  Rng rng(seed);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      std::vector<double> row(7, static_cast<double>(c));
      for (int a = 0; a < 6; ++a) {
        if (rng.Bernoulli(noise)) {
          row[static_cast<size_t>(a)] = static_cast<double>(rng.UniformInt(3));
        }
      }
      (void)d.Add(std::move(row));
    }
  }
  return d;
}

std::vector<size_t> TrueLabels(const Dataset& d) {
  std::vector<size_t> labels;
  for (size_t r = 0; r < d.num_instances(); ++r) {
    labels.push_back(d.ClassOf(r).value());
  }
  return labels;
}

TEST(KModesTest, RecoversCleanClusters) {
  Dataset d = ThreeClusters(30, 3);
  KModesOptions options;
  options.k = 3;
  options.seed = 1;
  KModes km(options);
  ASSERT_OK(km.Fit(d));
  ASSERT_OK_AND_ASSIGN(double ari,
                       AdjustedRandIndex(km.assignments(), TrueLabels(d)));
  EXPECT_GT(ari, 0.9);
}

TEST(KModesTest, CostDecreasesWithMoreClusters) {
  Dataset d = ThreeClusters(30, 5, /*noise=*/0.3);
  KModesOptions options;
  options.seed = 2;
  options.k = 1;
  KModes one(options);
  ASSERT_OK(one.Fit(d));
  options.k = 3;
  KModes three(options);
  ASSERT_OK(three.Fit(d));
  EXPECT_LT(three.cost(), one.cost());
}

TEST(KModesTest, PredictAssignsToNearestMode) {
  Dataset d = ThreeClusters(30, 7, /*noise=*/0.0);
  KModesOptions options;
  options.k = 3;
  KModes km(options);
  ASSERT_OK(km.Fit(d));
  // A pure cluster-1 row must land in the same cluster as training row of
  // cluster 1.
  std::vector<double> probe(7, 1.0);
  probe[6] = kMissing;  // class ignored anyway
  ASSERT_OK_AND_ASSIGN(size_t cluster, km.Predict(probe));
  EXPECT_EQ(cluster, km.assignments()[30]);  // rows 30..59 are cluster 1
}

TEST(KModesTest, HandlesMissingValues) {
  Dataset d = ThreeClusters(20, 9);
  // Blank out some cells.
  Dataset with_missing = d.EmptyCopy();
  Rng rng(4);
  for (size_t r = 0; r < d.num_instances(); ++r) {
    std::vector<double> row = d.row(r);
    for (size_t a = 0; a < 6; ++a) {
      if (rng.Bernoulli(0.1)) row[a] = kMissing;
    }
    ASSERT_OK(with_missing.Add(std::move(row)));
  }
  KModesOptions options;
  options.k = 3;
  KModes km(options);
  ASSERT_OK(km.Fit(with_missing));
  ASSERT_OK_AND_ASSIGN(
      double ari, AdjustedRandIndex(km.assignments(), TrueLabels(d)));
  EXPECT_GT(ari, 0.7);
}

TEST(KModesTest, Validates) {
  Dataset d = ThreeClusters(2, 11);
  KModesOptions options;
  options.k = 0;
  EXPECT_FALSE(KModes(options).Fit(d).ok());
  options.k = 100;
  EXPECT_FALSE(KModes(options).Fit(d).ok());

  // No nominal attributes.
  Dataset numeric =
      Dataset::Create("n", {Attribute::Numeric("x"),
                            Attribute::Nominal("c", {"a", "b"})},
                      1)
          .value();
  ASSERT_OK(numeric.Add({1.0, 0.0}));
  ASSERT_OK(numeric.Add({2.0, 1.0}));
  options.k = 2;
  EXPECT_FALSE(KModes(options).Fit(numeric).ok());

  KModes unfitted(options);
  EXPECT_FALSE(unfitted.Predict({0.0}).ok());
}

TEST(KModesTest, DeterministicGivenSeed) {
  Dataset d = ThreeClusters(25, 13, 0.2);
  KModesOptions options;
  options.k = 3;
  options.seed = 42;
  KModes a(options), b(options);
  ASSERT_OK(a.Fit(d));
  ASSERT_OK(b.Fit(d));
  EXPECT_EQ(a.assignments(), b.assignments());
  EXPECT_DOUBLE_EQ(a.cost(), b.cost());
}

TEST(AdjustedRandIndexTest, KnownValues) {
  ASSERT_OK_AND_ASSIGN(double identical,
                       AdjustedRandIndex({0, 0, 1, 1}, {1, 1, 0, 0}));
  EXPECT_DOUBLE_EQ(identical, 1.0);  // label names don't matter
  ASSERT_OK_AND_ASSIGN(double self, AdjustedRandIndex({0, 1, 2}, {0, 1, 2}));
  EXPECT_DOUBLE_EQ(self, 1.0);
  // Orthogonal partitions of 4 items score <= 0.
  ASSERT_OK_AND_ASSIGN(double bad,
                       AdjustedRandIndex({0, 0, 1, 1}, {0, 1, 0, 1}));
  EXPECT_LE(bad, 0.0);
}

TEST(AdjustedRandIndexTest, Validates) {
  EXPECT_FALSE(AdjustedRandIndex({0, 1}, {0}).ok());
  EXPECT_FALSE(AdjustedRandIndex({}, {}).ok());
}

}  // namespace
}  // namespace smeter::ml
