#include "ml/instances.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::ml {
namespace {

Dataset TwoAttrDataset() {
  return Dataset::Create(
             "rel",
             {Attribute::Numeric("x"),
              Attribute::Nominal("class", {"a", "b"})},
             1)
      .value();
}

TEST(DatasetTest, CreateValidates) {
  EXPECT_FALSE(Dataset::Create("r", {}, 0).ok());
  EXPECT_FALSE(
      Dataset::Create("r", {Attribute::Numeric("x")}, 5).ok());
  EXPECT_TRUE(Dataset::Create("r", {Attribute::Numeric("x")}, 0).ok());
}

TEST(DatasetTest, AddValidatesWidth) {
  Dataset d = TwoAttrDataset();
  EXPECT_FALSE(d.Add({1.0}).ok());
  EXPECT_FALSE(d.Add({1.0, 0.0, 2.0}).ok());
  EXPECT_OK(d.Add({1.0, 0.0}));
  EXPECT_EQ(d.num_instances(), 1u);
}

TEST(DatasetTest, AddValidatesNominalRange) {
  Dataset d = TwoAttrDataset();
  EXPECT_FALSE(d.Add({1.0, 2.0}).ok());   // only 2 categories
  EXPECT_FALSE(d.Add({1.0, -1.0}).ok());
  EXPECT_FALSE(d.Add({1.0, 0.5}).ok());   // non-integer nominal
  EXPECT_OK(d.Add({1.0, 1.0}));
}

TEST(DatasetTest, AddRejectsInfinities) {
  Dataset d = TwoAttrDataset();
  EXPECT_FALSE(d.Add({INFINITY, 0.0}).ok());
}

TEST(DatasetTest, MissingValuesAllowed) {
  Dataset d = TwoAttrDataset();
  EXPECT_OK(d.Add({kMissing, 0.0}));
  EXPECT_TRUE(IsMissing(d.value(0, 0)));
}

TEST(DatasetTest, ClassOfReadsNominalIndex) {
  Dataset d = TwoAttrDataset();
  ASSERT_OK(d.Add({1.0, 1.0}));
  ASSERT_OK_AND_ASSIGN(size_t cls, d.ClassOf(0));
  EXPECT_EQ(cls, 1u);
}

TEST(DatasetTest, ClassOfMissingFails) {
  Dataset d = TwoAttrDataset();
  ASSERT_OK(d.Add({1.0, kMissing}));
  EXPECT_FALSE(d.ClassOf(0).ok());
}

TEST(DatasetTest, NumClasses) {
  Dataset d = TwoAttrDataset();
  EXPECT_EQ(d.num_classes(), 2u);
  Dataset numeric_class =
      Dataset::Create("r", {Attribute::Numeric("y")}, 0).value();
  EXPECT_EQ(numeric_class.num_classes(), 0u);
}

TEST(DatasetTest, TargetOfNumericClass) {
  Dataset d = Dataset::Create("r", {Attribute::Numeric("y")}, 0).value();
  ASSERT_OK(d.Add({3.5}));
  ASSERT_OK_AND_ASSIGN(double y, d.TargetOf(0));
  EXPECT_DOUBLE_EQ(y, 3.5);
}

TEST(DatasetTest, SubsetSelectsAndRepeats) {
  Dataset d = TwoAttrDataset();
  ASSERT_OK(d.Add({1.0, 0.0}));
  ASSERT_OK(d.Add({2.0, 1.0}));
  Dataset sub = d.Subset({1, 1, 0});
  ASSERT_EQ(sub.num_instances(), 3u);
  EXPECT_DOUBLE_EQ(sub.value(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.value(2, 0), 1.0);
  EXPECT_EQ(sub.num_attributes(), 2u);
}

TEST(DatasetTest, EmptyCopyKeepsSchema) {
  Dataset d = TwoAttrDataset();
  ASSERT_OK(d.Add({1.0, 0.0}));
  Dataset copy = d.EmptyCopy();
  EXPECT_EQ(copy.num_instances(), 0u);
  EXPECT_EQ(copy.num_attributes(), 2u);
  EXPECT_EQ(copy.class_index(), 1u);
}

}  // namespace
}  // namespace smeter::ml
