#include "ml/attribute.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::ml {
namespace {

TEST(AttributeTest, NumericBasics) {
  Attribute a = Attribute::Numeric("power");
  EXPECT_TRUE(a.is_numeric());
  EXPECT_FALSE(a.is_nominal());
  EXPECT_EQ(a.name(), "power");
  EXPECT_EQ(a.num_values(), 0u);
}

TEST(AttributeTest, NominalBasics) {
  Attribute a = Attribute::Nominal("color", {"red", "green", "blue"});
  EXPECT_TRUE(a.is_nominal());
  EXPECT_EQ(a.num_values(), 3u);
  ASSERT_OK_AND_ASSIGN(std::string name, a.ValueName(1));
  EXPECT_EQ(name, "green");
  ASSERT_OK_AND_ASSIGN(size_t idx, a.IndexOf("blue"));
  EXPECT_EQ(idx, 2u);
}

TEST(AttributeTest, NominalErrors) {
  Attribute a = Attribute::Nominal("c", {"x"});
  EXPECT_FALSE(a.ValueName(1).ok());
  Result<size_t> missing = a.IndexOf("y");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(AttributeTest, NumericHasNoCategories) {
  Attribute a = Attribute::Numeric("n");
  EXPECT_FALSE(a.ValueName(0).ok());
  EXPECT_FALSE(a.IndexOf("x").ok());
}

}  // namespace
}  // namespace smeter::ml
