#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "ml_testutil.h"
#include "testutil.h"

namespace smeter::ml {
namespace {

double TrainingAccuracy(const Classifier& c, const Dataset& d) {
  size_t correct = 0;
  for (size_t r = 0; r < d.num_instances(); ++r) {
    if (c.Predict(d.row(r)).value() == d.ClassOf(r).value()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(d.num_instances());
}

TEST(DecisionTreeTest, LearnsNestedNominalStructure) {
  // class = a AND b: the greedy gain heuristic finds `a` first, then `b`.
  Dataset d = Dataset::Create("and",
                              {Attribute::Nominal("a", {"0", "1"}),
                               Attribute::Nominal("b", {"0", "1"}),
                               Attribute::Nominal("class", {"no", "yes"})},
                              2)
                  .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(d.Add({0.0, 0.0, 0.0}));
    ASSERT_OK(d.Add({0.0, 1.0, 0.0}));
    ASSERT_OK(d.Add({1.0, 0.0, 0.0}));
    ASSERT_OK(d.Add({1.0, 1.0, 1.0}));
  }
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  EXPECT_DOUBLE_EQ(TrainingAccuracy(tree, d), 1.0);
  EXPECT_GE(tree.Depth(), 2u);
}

TEST(DecisionTreeTest, BalancedXorDefeatsGreedySplitting) {
  // Both attributes have exactly zero marginal gain on balanced XOR, so a
  // greedy C4.5-style tree (like Weka's J48) refuses to split at all. This
  // pins that known behaviour; the random forest's bagging breaks the tie
  // (see RandomForestTest.LearnsXor).
  Dataset d = testing::NominalXor(10);
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_NEAR(TrainingAccuracy(tree, d), 0.5, 1e-9);
}

TEST(DecisionTreeTest, LearnsNumericThreshold) {
  Dataset d = testing::GaussianBlobs(100, 3);
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  EXPECT_GT(TrainingAccuracy(tree, d), 0.95);
  ASSERT_OK_AND_ASSIGN(size_t lo, tree.Predict({-0.5, 0.2, kMissing}));
  ASSERT_OK_AND_ASSIGN(size_t hi, tree.Predict({4.2, 3.9, kMissing}));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 1u);
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  Dataset d = Dataset::Create("pure",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(d.Add({static_cast<double>(i), 0.0}));
  }
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  ASSERT_OK_AND_ASSIGN(size_t cls, tree.Predict({3.0, kMissing}));
  EXPECT_EQ(cls, 0u);
}

TEST(DecisionTreeTest, MaxDepthCapsGrowth) {
  Dataset d = testing::GaussianBlobs(200, 7, /*separation=*/1.0);
  DecisionTreeOptions options;
  options.max_depth = 2;
  options.prune = false;
  DecisionTree tree(options);
  ASSERT_OK(tree.Train(d));
  EXPECT_LE(tree.Depth(), 2u);
}

TEST(DecisionTreeTest, PruningShrinksNoisyTree) {
  // Pure label noise: an unpruned tree overfits, pruning collapses it.
  Dataset d = Dataset::Create("noise",
                              {Attribute::Numeric("x"),
                               Attribute::Nominal("c", {"a", "b"})},
                              1)
                  .value();
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(d.Add({rng.Uniform(), rng.Bernoulli(0.5) ? 1.0 : 0.0}));
  }
  DecisionTreeOptions unpruned_options;
  unpruned_options.prune = false;
  DecisionTree unpruned(unpruned_options);
  ASSERT_OK(unpruned.Train(d));
  DecisionTree pruned;  // default prunes at CF 0.25
  ASSERT_OK(pruned.Train(d));
  EXPECT_LT(pruned.NumNodes(), unpruned.NumNodes());
}

TEST(DecisionTreeTest, PruningKeepsGenuineStructure) {
  Dataset d = testing::NominalSeparable(30, 13);
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  EXPECT_DOUBLE_EQ(TrainingAccuracy(tree, d), 1.0);
  EXPECT_GT(tree.NumNodes(), 1u);
}

TEST(DecisionTreeTest, MissingValuesRouteToMajorityBranch) {
  Dataset d = testing::NominalSeparable(30, 17);
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  // Prediction with the split attribute missing must still return a valid
  // distribution.
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       tree.PredictDistribution({kMissing, 0.0, kMissing}));
  double sum = 0.0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DecisionTreeTest, RandomFeatureSubsetStillLearns) {
  Dataset d = testing::GaussianBlobs(150, 19);
  DecisionTreeOptions options;
  options.random_feature_subset = 1;
  options.prune = false;
  options.use_gain_ratio = false;
  DecisionTree tree(options);
  ASSERT_OK(tree.Train(d));
  EXPECT_GT(TrainingAccuracy(tree, d), 0.9);
}

TEST(DecisionTreeTest, DeterministicGivenSeed) {
  Dataset d = testing::GaussianBlobs(80, 23);
  DecisionTreeOptions options;
  options.random_feature_subset = 1;
  options.seed = 99;
  DecisionTree a(options), b(options);
  ASSERT_OK(a.Train(d));
  ASSERT_OK(b.Train(d));
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  for (size_t r = 0; r < d.num_instances(); ++r) {
    EXPECT_EQ(a.Predict(d.row(r)).value(), b.Predict(d.row(r)).value());
  }
}

TEST(DecisionTreeTest, PredictBeforeTrainFails) {
  DecisionTree tree;
  EXPECT_FALSE(tree.PredictDistribution({1.0}).ok());
}

TEST(DecisionTreeTest, RejectsWrongRowWidth) {
  Dataset d = testing::NominalXor(5);
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  EXPECT_FALSE(tree.PredictDistribution({0.0}).ok());
}

TEST(DecisionTreeTest, ToStringRendersSplits) {
  Dataset d = testing::NominalSeparable(20, 29);
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  std::string rendering = tree.ToString();
  EXPECT_NE(rendering.find("key"), std::string::npos);
  EXPECT_NE(rendering.find("c0"), std::string::npos);
}

TEST(DecisionTreeTest, LeafDistributionIsSmoothed) {
  Dataset d = testing::NominalXor(5);
  DecisionTree tree;
  ASSERT_OK(tree.Train(d));
  ASSERT_OK_AND_ASSIGN(std::vector<double> dist,
                       tree.PredictDistribution({0.0, 0.0, kMissing}));
  for (double p : dist) EXPECT_GT(p, 0.0);  // Laplace keeps everything > 0
}

}  // namespace
}  // namespace smeter::ml
