#include "testutil.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>

namespace smeter::testing {

TimeSeries MakeSeries(const std::vector<double>& values) {
  return TimeSeries::FromValues(values, /*start=*/0, /*step=*/1);
}

std::vector<double> LogNormalValues(size_t n, uint64_t seed, double mu,
                                    double sigma) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(mu, sigma));
  return values;
}

std::string TempPath(const std::string& name) {
  static std::atomic<int> counter{0};
  const char* base = std::getenv("TMPDIR");
  std::string dir = base != nullptr ? base : "/tmp";
  // Pid-salted: ctest runs every gtest case as its own process, so tests
  // sharing a fixture (same name, counter restarts at 0 per process) would
  // otherwise collide on one directory when run in parallel.
  return dir + "/smeter_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + "_" + name;
}

}  // namespace smeter::testing
