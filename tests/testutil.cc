#include "testutil.h"

#include <atomic>
#include <cstdlib>

namespace smeter::testing {

TimeSeries MakeSeries(const std::vector<double>& values) {
  return TimeSeries::FromValues(values, /*start=*/0, /*step=*/1);
}

std::vector<double> LogNormalValues(size_t n, uint64_t seed, double mu,
                                    double sigma) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(mu, sigma));
  return values;
}

std::string TempPath(const std::string& name) {
  static std::atomic<int> counter{0};
  const char* base = std::getenv("TMPDIR");
  std::string dir = base != nullptr ? base : "/tmp";
  return dir + "/smeter_test_" + std::to_string(counter++) + "_" + name;
}

}  // namespace smeter::testing
