// Failure injection across the parsing surfaces: deterministic garbage and
// truncation sweeps must produce clean error Statuses (never crashes or
// silent misparses), and the simulate -> files -> load round trips must be
// lossless.

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cli.h"
#include "common/random.h"
#include "core/codec.h"
#include "core/lookup_table.h"
#include "data/cer.h"
#include "data/generator.h"
#include "data/redd.h"
#include "ml/arff.h"
#include "testutil.h"

namespace smeter {
namespace {

// Deterministic printable garbage.
std::string Garbage(size_t length, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(32 + rng.UniformInt(95)));
  }
  return out;
}

TEST(RobustnessTest, GarbageNeverCrashesTheParsers) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    std::string junk = Garbage(200 + seed * 17, seed);
    // Every parser must return (not crash); most reject, none may abort.
    (void)LookupTable::Deserialize(junk);
    (void)UnpackSymbolicSeries(junk);
    (void)ml::FromArff(junk);
    (void)data::ParseCer(junk);
  }
  SUCCEED();
}

TEST(RobustnessTest, TruncationSweepOnPackedSymbols) {
  SymbolicSeries series(4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(series.Append(
        {i * 900, Symbol::Create(4, static_cast<uint32_t>(i % 16)).value()}));
  }
  std::string blob = PackSymbolicSeries(series).value();
  // Every strict prefix must be rejected (never misparsed as valid).
  for (size_t len = 0; len < blob.size(); ++len) {
    Result<SymbolicSeries> parsed =
        UnpackSymbolicSeries(blob.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix length " << len;
  }
  ASSERT_OK(UnpackSymbolicSeries(blob).status());
}

TEST(RobustnessTest, BitflipSweepOnSerializedTable) {
  std::vector<double> training = testing::LogNormalValues(200, 3);
  LookupTableOptions options;
  options.level = 3;
  LookupTable table = LookupTable::Build(training, options).value();
  std::string blob = table.Serialize();
  // Flip one character at a time across the header lines; each result must
  // either be rejected or parse into a structurally valid table (never
  // crash, never produce out-of-range state).
  for (size_t pos = 0; pos < std::min<size_t>(blob.size(), 120); ++pos) {
    std::string mutated = blob;
    mutated[pos] = mutated[pos] == 'x' ? 'y' : 'x';
    Result<LookupTable> parsed = LookupTable::Deserialize(mutated);
    if (parsed.ok()) {
      EXPECT_GE(parsed->level(), 1);
      EXPECT_LE(parsed->level(), kMaxSymbolLevel);
      EXPECT_EQ(parsed->separators().size(), parsed->alphabet_size() - 1);
    }
  }
  SUCCEED();
}

TEST(RobustnessTest, CliSimulateReddRoundTripsThroughLoader) {
  // The CLI writes REDD-format mains; LoadReddHouseMains must reassemble
  // exactly the generator's trace (watt halves re-summed).
  std::string dir = testing::TempPath("redd_roundtrip");
  std::ostringstream out;
  ASSERT_OK(cli::RunCli({"simulate", "--out", dir, "--houses", "1", "--days",
                         "1", "--seed", "77", "--outages", "0"},
                        out));
  ASSERT_OK_AND_ASSIGN(TimeSeries loaded,
                       data::LoadReddHouseMains(dir + "/house_1"));
  data::GeneratorOptions gen;
  gen.num_houses = 1;
  gen.duration_seconds = kSecondsPerDay;
  gen.outages_per_day = 0.0;
  gen.seed = 77;
  ASSERT_OK_AND_ASSIGN(TimeSeries original,
                       data::GenerateHouseSeries(0, gen));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded[i].timestamp, original[i].timestamp);
    // Two %.2f halves re-summed: at most 0.01 W rounding.
    ASSERT_NEAR(loaded[i].value, original[i].value, 0.011);
  }
}

TEST(RobustnessTest, CerFormatRoundTripsGeneratorOutput) {
  data::GeneratorOptions gen;
  gen.num_houses = 2;
  gen.duration_seconds = 3 * kSecondsPerDay;
  gen.sample_period_seconds = 1800;
  gen.outages_per_day = 0.0;
  gen.sparse_house = 99;
  gen.seed = 13;
  ASSERT_OK_AND_ASSIGN(std::vector<TimeSeries> fleet,
                       data::GenerateFleet(gen));
  std::vector<std::pair<int64_t, TimeSeries>> meters = {
      {7001, fleet[0]}, {7002, fleet[1]}};
  ASSERT_OK_AND_ASSIGN(std::string text, data::FormatCer(meters));
  ASSERT_OK_AND_ASSIGN(auto parsed, data::ParseCer(text));
  ASSERT_EQ(parsed.size(), 2u);
  for (size_t m = 0; m < 2; ++m) {
    ASSERT_EQ(parsed[m].second.size(), meters[m].second.size());
    for (size_t i = 0; i < parsed[m].second.size(); ++i) {
      ASSERT_EQ(parsed[m].second[i].timestamp,
                meters[m].second[i].timestamp);
      ASSERT_NEAR(parsed[m].second[i].value, meters[m].second[i].value,
                  0.05);
    }
  }
}

TEST(RobustnessTest, ArffSurvivesHostileFieldContents) {
  // Attribute names and categories full of ARFF metacharacters must round
  // trip through quoting.
  ml::Dataset d =
      ml::Dataset::Create(
          "weird relation, with {braces}",
          {ml::Attribute::Nominal("a,b {c}", {"x y", "z,w", "{}"}),
           ml::Attribute::Nominal("class", {"p", "q"})},
          1)
          .value();
  ASSERT_OK(d.Add({0.0, 0.0}));
  ASSERT_OK(d.Add({2.0, 1.0}));
  ASSERT_OK_AND_ASSIGN(ml::Dataset parsed, ml::FromArff(ml::ToArff(d), 1));
  EXPECT_EQ(parsed.attribute(0).name(), "a,b {c}");
  EXPECT_EQ(parsed.attribute(0).values()[1], "z,w");
  EXPECT_DOUBLE_EQ(parsed.value(1, 0), 2.0);
}

}  // namespace
}  // namespace smeter
