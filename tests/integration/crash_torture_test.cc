// Crash-torture drills for the durable storage layer. Each case simulates
// a process death or silent disk corruption at a chosen write seam during
// an encode-fleet run, then demands the full recovery contract:
//
//   fsck --repair exits 0 or 1 (every finding is repairable), and one
//   fault-free `encode-fleet --resume` yields an archive bit-identical to
//   a run that never saw a fault.
//
// The CorruptBytes cases additionally pin the zero-false-negatives
// contract: whenever the corrupted write landed in a checksummed artifact
// (.symbols, .table, fleet.manifest), fsck must flag it — a silent pass
// would let --resume carry damaged data forward, which the final
// bit-identical comparison would expose.
//
// CI soaks the seeded test (CrashTortureSoakTest) across many
// SMETER_FAULT_SEED values under ASan; see .github/workflows.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.h"
#include "common/fault_injection.h"
#include "core/fsck.h"
#include "testutil.h"

namespace smeter {
namespace {

std::string RunCliOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = cli::RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> FleetArtifacts(size_t houses) {
  std::vector<std::string> names;
  for (size_t h = 1; h <= houses; ++h) {
    names.push_back("house_" + std::to_string(h) + ".table");
    names.push_back("house_" + std::to_string(h) + ".symbols");
  }
  names.push_back("fleet.manifest");
  names.push_back("quality.json");
  return names;
}

void ExpectDirsBitIdentical(const std::string& a, const std::string& b,
                            const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    std::string contents = ReadAll(a + "/" + name);
    EXPECT_FALSE(contents.empty());
    EXPECT_EQ(contents, ReadAll(b + "/" + name));
  }
}

std::vector<std::string> FleetArgs(const std::string& input,
                                   const std::string& out_dir) {
  return {"encode-fleet", "--input", input,       "--out",
          out_dir,        "--threads", "1",       "--max-retries",
          "0"};
}

// Runs fsck --repair on `dir` (tolerating a directory the crash never
// created) and requires every finding to be repairable: exit 0 or 1,
// never 4.
void FsckRepairMustConverge(const std::string& dir) {
  if (!std::filesystem::exists(dir)) return;  // died before the first write
  FsckOptions options;
  options.repair = true;
  Result<FsckReport> report = FsckArchive(dir, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  int code = FsckExitCode(*report);
  EXPECT_TRUE(code == 0 || code == 1)
      << "unrepairable archive: " << FsckReportToJson(*report);
}

void ResumeFleet(const std::string& input, const std::string& out_dir) {
  std::vector<std::string> args = FleetArgs(input, out_dir);
  args.insert(args.end(), {"--resume", "true"});
  RunCliOk(args);
}

// Shared fixture data: one simulated fleet and its fault-free encode.
class CrashTortureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    input_ = new std::string(smeter::testing::TempPath("crash_torture"));
    std::filesystem::remove_all(*input_);
    RunCliOk({"simulate", "--out", *input_, "--houses", "3", "--days", "1",
              "--seed", "9", "--outages", "0"});
    clean_ = new std::string(*input_ + "/clean");
    RunCliOk(FleetArgs(*input_, *clean_));
  }

  static void TearDownTestSuite() {
    delete input_;
    delete clean_;
    input_ = nullptr;
    clean_ = nullptr;
  }

  static std::string* input_;
  static std::string* clean_;
};

std::string* CrashTortureTest::input_ = nullptr;
std::string* CrashTortureTest::clean_ = nullptr;

// Dies at the Nth call of a write seam (and every call after it — the
// disk is gone), like kill -9 at that exact point in the write schedule.
void RunKillPoint(const std::string& input, const std::string& clean,
                  const std::string& crash_dir, const std::string& seam,
                  int call) {
  SCOPED_TRACE(seam + " from call " + std::to_string(call));
  std::filesystem::remove_all(crash_dir);
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls(seam, call)});
    std::ostringstream out;
    // The run may fail outright or limp home with quarantined households;
    // both are legal crash signatures.
    Status status = cli::RunCli(FleetArgs(input, crash_dir), out);
    (void)status;
  }
  FsckRepairMustConverge(crash_dir);
  ResumeFleet(input, crash_dir);
  ExpectDirsBitIdentical(clean, crash_dir, FleetArtifacts(3));
}

TEST_F(CrashTortureTest, EveryKillPointConvergesAfterFsckAndResume) {
  const std::string crash_dir = *input_ + "/crashed";
  // file.write counts atomic whole-file writes (manifest seed, tables,
  // symbol blobs, final manifest, quality.json); sweeping the first eight
  // kills the run inside every artifact class.
  for (int call = 1; call <= 8; ++call) {
    RunKillPoint(*input_, *clean_, crash_dir, "file.write", call);
  }
  // Lower seams: fsync (file and directory), the rename that publishes an
  // atomic write — each leaves a different on-disk residue (stray .tmp,
  // unpublished file) for fsck to mop up.
  for (int call = 1; call <= 4; ++call) {
    RunKillPoint(*input_, *clean_, crash_dir, "io.fsync", call);
    RunKillPoint(*input_, *clean_, crash_dir, "io.rename", call);
  }
  // Death inside a manifest checkpoint append.
  for (int call = 1; call <= 3; ++call) {
    RunKillPoint(*input_, *clean_, crash_dir, "manifest.append", call);
  }
}

TEST_F(CrashTortureTest, SilentWriteCorruptionIsCaughtRepairedAndReEncoded) {
  const std::string corrupt_dir = *input_ + "/silent";
  // Corrupt exactly the k-th durable write, one write at a time. The run
  // itself succeeds — the damage is silent — so fsck is the only line of
  // defense for every checksummed artifact.
  for (int call = 1; call <= 9; ++call) {
    SCOPED_TRACE("corrupting write " + std::to_string(call));
    std::filesystem::remove_all(corrupt_dir);
    size_t injected = 0;
    {
      fault::ScopedFaultPlan plan(
          {fault::FaultRule::CorruptBytes("io.write", 3, call, call)},
          1000 + static_cast<uint64_t>(call));
      std::ostringstream out;
      Status status = cli::RunCli(FleetArgs(*input_, corrupt_dir), out);
      EXPECT_TRUE(status.ok()) << status.ToString();
      injected = plan.InjectedCount("io.write");
    }
    if (injected == 0) break;  // past the run's last write; sweep is done
    // Which artifact took the hit? (A corrupted write that a later write
    // of the same file replaced — e.g. the manifest seed — leaves no
    // trace, and that is itself correct behavior.)
    std::string damaged_name;
    for (const std::string& name : FleetArtifacts(3)) {
      if (ReadAll(corrupt_dir + "/" + name) != ReadAll(*clean_ + "/" + name)) {
        damaged_name = name;
        break;
      }
    }
    const bool checksummed =
        !damaged_name.empty() && damaged_name != "quality.json";
    ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(corrupt_dir, {}));
    if (checksummed) {
      // Zero false negatives: damage under a checksum must be flagged.
      EXPECT_FALSE(report.clean())
          << damaged_name << " corrupt but fsck saw nothing";
    }
    FsckRepairMustConverge(corrupt_dir);
    ResumeFleet(*input_, corrupt_dir);
    ExpectDirsBitIdentical(*clean_, corrupt_dir, FleetArtifacts(3));
  }
}

// Satellite regression: a failed manifest checkpoint append must surface
// as that household failing loudly (quarantine with the injection's error
// attached), never as an "ok" household whose checkpoint silently went
// missing.
TEST_F(CrashTortureTest, ManifestAppendFailureIsNeverSilent) {
  const std::string out_dir = *input_ + "/append_fault";
  std::filesystem::remove_all(out_dir);
  std::string output;
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("manifest.append", 1, 1)});
    std::ostringstream out;
    Status status = cli::RunCli(FleetArgs(*input_, out_dir), out);
    EXPECT_TRUE(status.ok()) << status.ToString();  // fleet survives
    EXPECT_EQ(plan.InjectedCount("manifest.append"), 1u);
    output = out.str();
  }
  // The household whose checkpoint could not be written is quarantined and
  // the failure is visible in the run summary and quality report.
  EXPECT_NE(output.find("quarantined"), std::string::npos) << output;
  std::string quality = ReadAll(out_dir + "/quality.json");
  EXPECT_NE(quality.find("\"households_quarantined\": 1"), std::string::npos)
      << quality;
  EXPECT_NE(quality.find("manifest.append"), std::string::npos) << quality;
  // And the usual contract holds: one clean resume completes the fleet.
  ResumeFleet(*input_, out_dir);
  ExpectDirsBitIdentical(*clean_, out_dir, FleetArtifacts(3));
}

// Seeded soak: a randomized storm of write failures and silent bit flips,
// then repair + resume must still converge. CI sweeps SMETER_FAULT_SEED.
TEST(CrashTortureSoakTest, RandomizedFaultsThenRepairAndResumeConverge) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("SMETER_FAULT_SEED")) {
    uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) seed = parsed;
  }
  SCOPED_TRACE("SMETER_FAULT_SEED=" + std::to_string(seed));
  std::string dir = smeter::testing::TempPath("crash_torture_soak_" +
                                              std::to_string(seed));
  std::filesystem::remove_all(dir);
  RunCliOk({"simulate", "--out", dir, "--houses", "3", "--days", "1",
            "--seed", "11", "--outages", "0"});
  std::string clean_dir = dir + "/clean";
  RunCliOk(FleetArgs(dir, clean_dir));

  std::string soak_dir = dir + "/soak";
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailWithProbability("file.write", 0.15),
         fault::FaultRule::FailWithProbability("io.fsync", 0.1),
         fault::FaultRule::FailWithProbability("io.rename", 0.1),
         fault::FaultRule::FailWithProbability("manifest.append", 0.1),
         fault::FaultRule::CorruptBytesWithProbability("io.write", 3, 0.25)},
        seed);
    std::ostringstream out;
    Status status = cli::RunCli(FleetArgs(dir, soak_dir), out);
    (void)status;  // any outcome is a legal crash signature
  }
  FsckRepairMustConverge(soak_dir);
  ResumeFleet(dir, soak_dir);
  ExpectDirsBitIdentical(clean_dir, soak_dir, FleetArtifacts(3));
}

}  // namespace
}  // namespace smeter
