// Client-SDK chaos soak: the store-and-forward path (spool + uploader)
// must deliver a fleet exactly once no matter where the client dies.
//
// The deterministic drills below kill the client at EVERY reachable
// durability point — each spool append (batches, SEAL, DONE) via the
// `client.spool.append` seam and each wire frame via `client.send` — by
// sweeping FailCalls(k, k) over k until a whole pass injects nothing.
// Every interrupted pass is followed by a plain restart of the same
// command, exactly what a supervised sensor process would do. The
// acceptance bar is the tentpole's: after convergence the networked
// archive is byte-identical to an offline `encode-fleet` run over the
// same input (zero lost readings, zero duplicated readings), fsck gives
// both the archive and the spool dir a clean bill, and every spool
// carries a DONE marker with a contiguous 1..n batch sequence.
//
// CI soaks the seeded storm test (ClientSoakTest.RandomizedStorm...)
// across many SMETER_FAULT_SEED values under ASan; see .github/workflows.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "client/spool.h"
#include "client/uploader.h"
#include "common/fault_injection.h"
#include "common/io.h"
#include "common/sync.h"
#include "net/ingest_server.h"
#include "net/loadgen.h"
#include "testutil.h"

namespace smeter {
namespace {

constexpr size_t kMeters = 4;

// Sweep ceiling for the kill-at-every-point loops: comfortably above the
// total number of seam calls a clean pass performs (≈ 60 spool appends /
// ≈ 80 frame sends for this fleet), so hitting it means the drill failed
// to converge rather than that the fleet grew.
constexpr int kMaxKillPoints = 400;

std::string RunCliOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = cli::RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A fresh scratch dir with a simulated CER fleet at <dir>/meters.cer.
std::string MakeFleetDir(const std::string& name) {
  std::string dir = smeter::testing::TempPath(name);
  std::filesystem::remove_all(dir);
  RunCliOk({"simulate", "--format", "cer", "--out", dir, "--houses",
            std::to_string(kMeters), "--days", "2", "--seed", "17",
            "--outages", "1.0"});
  return dir;
}

void EncodeFleetOffline(const std::string& cer, const std::string& out_dir) {
  RunCliOk({"encode-fleet", "--input", cer, "--format", "cer", "--out",
            out_dir, "--window", "1800", "--sample-period", "1800",
            "--threads", "1", "--max-retries", "0"});
}

void ExpectDirsBitIdentical(const std::string& a, const std::string& b) {
  std::vector<std::string> names;
  for (size_t m = 0; m < kMeters; ++m) {
    names.push_back("meter_" + std::to_string(1000 + m) + ".table");
    names.push_back("meter_" + std::to_string(1000 + m) + ".symbols");
  }
  names.push_back("fleet.manifest");
  names.push_back("quality.json");
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    std::string contents = ReadAll(a + "/" + name);
    EXPECT_FALSE(contents.empty());
    EXPECT_EQ(contents, ReadAll(b + "/" + name));
  }
}

// An ingest server on its own thread; joins on destruction.
struct RunningServer {
  std::unique_ptr<net::IngestServer> server;
  std::thread thread;
  Status result;

  RunningServer() = default;
  RunningServer(const RunningServer&) = delete;
  RunningServer& operator=(const RunningServer&) = delete;

  void Start(net::IngestServerOptions options) {
    auto created = net::IngestServer::Create(std::move(options));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    server = std::move(created.value());
    thread = std::thread([this] { result = server->Run(); });
  }

  void DrainAndJoin() {
    if (!thread.joinable()) return;
    server->RequestDrain();
    thread.join();
  }

  ~RunningServer() {
    if (thread.joinable()) {
      server->RequestDrain();
      thread.join();
    }
  }
};

net::IngestServerOptions ServerOptions(const std::string& archive_dir) {
  net::IngestServerOptions options;
  options.archive_dir = archive_dir;
  options.port = 0;
  options.drain_grace_ms = 500;
  return options;
}

// Spool-fleet options mirroring EncodeFleetOffline's sensor-side
// parameters, tuned for fast deterministic retries.
net::LoadgenOptions FleetOptions(uint16_t port, const std::string& cer) {
  net::LoadgenOptions options;
  options.port = port;
  options.input_cer = cer;
  options.encode.pipeline.window_seconds = 1800;
  options.encode.pipeline.window.sample_period_seconds = 1800;
  options.encode.gap_aware = true;
  options.batch_symbols = 16;  // several SYMBOL_BATCH frames per meter
  options.concurrency = 1;     // serial => deterministic seam numbering
  options.backoff.base_ms = 1;
  options.backoff.cap_ms = 5;
  return options;
}

// The sequence audit half of the acceptance bar: every spool is DONE and
// its batches count 1..n with no gap or repeat.
void ExpectSpoolsDoneAndContiguous(const std::string& spool_dir) {
  size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(spool_dir)) {
    if (entry.path().extension() != client::kSpoolSuffix) continue;
    SCOPED_TRACE(entry.path().string());
    Result<client::SpoolContents> contents =
        client::ReadSpool(entry.path().string());
    ASSERT_TRUE(contents.ok()) << contents.status().ToString();
    EXPECT_TRUE(contents->sealed);
    EXPECT_TRUE(contents->done);
    EXPECT_FALSE(contents->torn_tail);
    for (size_t i = 0; i < contents->batches.size(); ++i) {
      EXPECT_EQ(contents->batches[i].seq, i + 1);
      EXPECT_FALSE(contents->batches[i].symbols.empty());
    }
    ++seen;
  }
  EXPECT_EQ(seen, kMeters);
}

// fsck must give `dir` a clean bill (exit 0, no repairs needed).
void ExpectFsckClean(const std::string& dir) {
  std::ostringstream out, err;
  EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", dir}, out, err), 0)
      << out.str() << err.str();
}

// One supervised-restart convergence loop: run the spool fleet with
// FailCalls(seam, k, k) for k = 1, 2, ... until an entire pass injects
// nothing, treating every injected failure as a process crash (phase-1
// spool errors abort the run; drain-phase failures land in the report).
// Returns the number of interrupted passes.
int KillAtEveryPoint(const net::LoadgenOptions& options,
                     const std::string& spool_dir, const char* seam) {
  int kills = 0;
  for (int k = 1; k <= kMaxKillPoints; ++k) {
    size_t injected = 0;
    Result<client::UplinkReport> report = InternalError("pass never ran");
    {
      fault::ScopedFaultPlan plan({fault::FaultRule::FailCalls(seam, k, k)});
      report = client::RunSpoolFleet(options, spool_dir);
      injected = plan.TotalInjected();
    }
    if (injected == 0) {
      // A full pass ran past the would-be kill point: the previous passes
      // already made everything durable. This pass must be wholly clean.
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      if (report.ok()) {
        EXPECT_EQ(report->failed, 0u);
        EXPECT_EQ(report->already_done + report->delivered, kMeters);
      }
      return kills;
    }
    ++kills;
  }
  ADD_FAILURE() << seam << " sweep did not converge within "
                << kMaxKillPoints << " passes";
  return kills;
}

// ---------------------------------------------------------------------------

TEST(ClientSoakTest, UninterruptedSpoolFleetMatchesOfflineEncodeFleet) {
  std::string dir = MakeFleetDir("client_soak_baseline");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  RunningServer running;
  running.Start(ServerOptions(dir + "/online"));
  ASSERT_NE(running.server, nullptr);

  Result<client::UplinkReport> report = client::RunSpoolFleet(
      FleetOptions(running.server->port(), cer), dir + "/spool");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->spools_total, kMeters);
  EXPECT_EQ(report->delivered, kMeters);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->reconnects, 0u);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters);

  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
  ExpectSpoolsDoneAndContiguous(dir + "/spool");
  ExpectFsckClean(dir + "/online");
  ExpectFsckClean(dir + "/spool");

  // Idempotence: a fresh pass over an all-DONE spool dir costs nothing.
  Result<client::UplinkReport> again = client::RunSpoolFleet(
      FleetOptions(1, cer), dir + "/spool");  // port 1: nothing listens
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->already_done, kMeters);
  EXPECT_EQ(again->frames_sent, 0u);
}

TEST(ClientSoakTest, KillAtEverySpoolAppendPointConvergesBitIdentical) {
  std::string dir = MakeFleetDir("client_soak_spool_kill");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  RunningServer running;
  running.Start(ServerOptions(dir + "/online"));
  ASSERT_NE(running.server, nullptr);

  // Every durable record — each batch, each SEAL, each DONE — dies once.
  const int kills =
      KillAtEveryPoint(FleetOptions(running.server->port(), cer),
                       dir + "/spool", "client.spool.append");
  EXPECT_GT(kills, static_cast<int>(kMeters));  // well past one per meter

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  // Exactly-once at meter granularity despite every interrupted pass.
  EXPECT_EQ(running.server->counters().households_persisted, kMeters);

  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
  ExpectSpoolsDoneAndContiguous(dir + "/spool");
  ExpectFsckClean(dir + "/spool");
}

TEST(ClientSoakTest, KillAtEveryFrameSendPointConvergesBitIdentical) {
  std::string dir = MakeFleetDir("client_soak_send_kill");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  RunningServer running;
  running.Start(ServerOptions(dir + "/online"));
  ASSERT_NE(running.server, nullptr);

  // max_attempts = 1 turns every injected send failure into a process
  // death: no in-run retry, the next pass starts from the spools.
  net::LoadgenOptions options = FleetOptions(running.server->port(), cer);
  options.max_attempts = 1;
  const int kills =
      KillAtEveryPoint(options, dir + "/spool", "client.send");
  EXPECT_GT(kills, static_cast<int>(kMeters));

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters);
  // Replays beyond the first persist were answered by the duplicate-ack
  // path, not by rewriting the archive.
  EXPECT_GE(running.server->counters().sessions_completed, kMeters);

  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
  ExpectSpoolsDoneAndContiguous(dir + "/spool");
}

TEST(ClientSoakTest, DaemonDeathMidUploadThenRestartConverges) {
  std::string dir = MakeFleetDir("client_soak_daemon_death");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";

  // Phase 1: the daemon exits after persisting half the fleet — a crash
  // from the client's point of view. Later meters fail their attempts.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.exit_after_households = kMeters / 2;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenOptions options = FleetOptions(running.server->port(), cer);
    options.max_attempts = 2;
    options.io_timeout_ms = 2'000;
    Result<client::UplinkReport> report =
        client::RunSpoolFleet(options, dir + "/spool");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // At least the pre-death half delivered; how many of the rest failed
    // depends on how fast the listener died, so only the floor is fixed.
    EXPECT_GE(report->delivered, kMeters / 2);
    running.thread.join();
    ASSERT_OK(running.result);
  }

  // Phase 2: restart with --resume; the client simply reruns. Done spools
  // send nothing, pending spools deliver, archive converges.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.resume = true;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    Result<client::UplinkReport> report = client::RunSpoolFleet(
        FleetOptions(running.server->port(), cer), dir + "/spool");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->failed, 0u);
    EXPECT_EQ(report->already_done + report->delivered, kMeters);
    EXPECT_GE(report->already_done, kMeters / 2);
    running.DrainAndJoin();
    ASSERT_OK(running.result);
  }

  ExpectDirsBitIdentical(dir + "/offline", online);
  ExpectSpoolsDoneAndContiguous(dir + "/spool");
}

TEST(ClientSoakTest, LostDoneMarkerIsAbsorbedByTheDuplicateAckPath) {
  std::string dir = MakeFleetDir("client_soak_lost_done");
  const std::string cer = dir + "/meters.cer";

  RunningServer running;
  running.Start(ServerOptions(dir + "/online"));
  ASSERT_NE(running.server, nullptr);
  const std::string spool_dir = dir + "/spool";
  Result<client::UplinkReport> first = client::RunSpoolFleet(
      FleetOptions(running.server->port(), cer), spool_dir);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->delivered, kMeters);

  // Snapshot the archive, then simulate a client that crashed after the
  // server persisted but before its DONE marker: rewind one spool to its
  // pre-DONE bytes and drain again.
  const std::string victim = spool_dir + "/meter_1000.spool";
  std::string bytes = ReadAll(victim);
  ASSERT_OK_AND_ASSIGN(client::SpoolContents contents,
                       client::ReadSpool(victim));
  ASSERT_TRUE(contents.done);
  // The DONE record is the final append; everything before it is the
  // sealed upload the server already has.
  client::SpoolRecord done;
  done.type = client::SpoolRecordType::kDone;
  const std::string done_record =
      io::EncodeAppendRecord(client::EncodeSpoolRecord(done));
  ASSERT_GT(bytes.size(), done_record.size());
  ASSERT_OK(io::TruncateFile(victim, bytes.size() - done_record.size()));

  const std::string archive_before =
      ReadAll(dir + "/online/meter_1000.symbols");
  ASSERT_FALSE(archive_before.empty());

  Result<client::UplinkReport> second = client::RunSpoolFleet(
      FleetOptions(running.server->port(), cer), spool_dir);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->delivered, 1u);  // the re-uploaded victim
  EXPECT_EQ(second->already_done, kMeters - 1);
  EXPECT_EQ(second->failed, 0u);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  // The replay was acknowledged without rewriting: one persist per meter.
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters);
  EXPECT_EQ(ReadAll(dir + "/online/meter_1000.symbols"), archive_before);
  ExpectSpoolsDoneAndContiguous(spool_dir);
}

TEST(ClientSoakTest, PartitionsAndThrottleStormsConverge) {
  std::string dir = MakeFleetDir("client_soak_partition");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  // One admission slot for a 3-wide drain: every pass sheds connections
  // with THROTTLE(scope=admission) + retry_after_ms, which the uploader
  // must honor as a backoff floor and outlast.
  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.max_connections = 1;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions options = FleetOptions(running.server->port(), cer);
  options.concurrency = 3;
  options.max_attempts = 25;
  {
    // And the network is flaky on top: a quarter of connects never land.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailWithProbability("client.connect", 0.25)},
        /*seed=*/99);
    Result<client::UplinkReport> report =
        client::RunSpoolFleet(options, dir + "/spool");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->failed, 0u);
    EXPECT_EQ(report->delivered, kMeters);
  }

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
  ExpectSpoolsDoneAndContiguous(dir + "/spool");
}

// Everything at once, seeded: spool-append faults, connect partitions,
// frame kills, plus server-side read/write faults. Any per-pass outcome is
// legal; the invariant is that supervised restarts converge to the
// offline archive. CI sweeps SMETER_FAULT_SEED over this test under ASan.
TEST(ClientSoakTest, RandomizedStormThenRestartsConvergeBitIdentical) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("SMETER_FAULT_SEED")) {
    uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) seed = parsed;
  }
  SCOPED_TRACE("SMETER_FAULT_SEED=" + std::to_string(seed));
  std::string dir =
      MakeFleetDir("client_soak_storm_" + std::to_string(seed));
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";
  const std::string spool_dir = dir + "/spool";

  // Storm: several crash-and-restart passes under probabilistic faults on
  // both ends of the wire. Pass outcomes are unasserted by design.
  {
    RunningServer running;
    running.Start(ServerOptions(online));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenOptions options = FleetOptions(running.server->port(), cer);
    options.max_attempts = 2;
    options.io_timeout_ms = 2'000;
    for (int round = 0; round < 3; ++round) {
      fault::ScopedFaultPlan plan(
          {fault::FaultRule::FailWithProbability("client.spool.append", 0.05),
           fault::FaultRule::FailWithProbability("client.connect", 0.10),
           fault::FaultRule::FailWithProbability("client.send", 0.05),
           fault::FaultRule::FailWithProbability("net.read", 0.02),
           fault::FaultRule::FailWithProbability("net.write", 0.02)},
          seed + static_cast<uint64_t>(round));
      Result<client::UplinkReport> storm =
          client::RunSpoolFleet(options, spool_dir);
      (void)storm;  // any outcome is a legal crash signature
    }
    running.DrainAndJoin();
    ASSERT_OK(running.result);
  }

  // Triage: whatever the storm left (torn spool tails, archive damage)
  // must repair in one fsck pass on each side, then read clean.
  for (const std::string& target : {online, spool_dir}) {
    std::ostringstream out, err;
    int code = cli::RunCliExitCode(
        {"fsck", "--dir", target, "--repair", "true"}, out, err);
    EXPECT_NE(code, 4) << out.str() << err.str();
    ExpectFsckClean(target);
  }

  // Recovery: resume the daemon, rerun the client clean, converge.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.resume = true;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    Result<client::UplinkReport> report = client::RunSpoolFleet(
        FleetOptions(running.server->port(), cer), spool_dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->failed, 0u);
    EXPECT_EQ(report->already_done + report->delivered, kMeters);
    running.DrainAndJoin();
    ASSERT_OK(running.result);
  }

  ExpectDirsBitIdentical(dir + "/offline", online);
  ExpectSpoolsDoneAndContiguous(spool_dir);
}

}  // namespace
}  // namespace smeter
