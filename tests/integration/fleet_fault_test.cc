// End-to-end fault drills for the tolerant fleet path, driven through the
// CLI surface: an ingestion run interrupted by injected failures must,
// after `encode-fleet --resume`, leave outputs bit-identical to a run that
// was never interrupted; and a corrupt household must cost the fleet
// exactly that household, never the run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.h"
#include "common/fault_injection.h"
#include "testutil.h"

namespace smeter {
namespace {

std::string RunCliOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = cli::RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Every artifact a completed N-house fleet run leaves behind.
std::vector<std::string> FleetArtifacts(size_t houses) {
  std::vector<std::string> names;
  for (size_t h = 1; h <= houses; ++h) {
    names.push_back("house_" + std::to_string(h) + ".table");
    names.push_back("house_" + std::to_string(h) + ".symbols");
  }
  names.push_back("fleet.manifest");
  names.push_back("quality.json");
  return names;
}

void ExpectDirsBitIdentical(const std::string& a, const std::string& b,
                            const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    std::string contents = ReadAll(a + "/" + name);
    EXPECT_FALSE(contents.empty());
    EXPECT_EQ(contents, ReadAll(b + "/" + name));
  }
}

std::vector<std::string> FleetArgs(const std::string& input,
                                   const std::string& out_dir) {
  return {"encode-fleet", "--input", input,       "--out",
          out_dir,        "--threads", "1",       "--max-retries",
          "0"};
}

TEST(FleetFaultTest, InterruptedRunResumesBitIdentical) {
  std::string dir = smeter::testing::TempPath("fleet_fault_resume");
  std::filesystem::remove_all(dir);  // TempPath is stable across runs
  RunCliOk({"simulate", "--out", dir, "--houses", "3", "--days", "1",
            "--seed", "13", "--outages", "0"});

  std::string clean_dir = dir + "/clean";
  RunCliOk(FleetArgs(dir, clean_dir));

  // Interrupt a second run mid-flight: the manifest seed and house_1's two
  // files land (writes 1-3), then the disk "dies" and every later write —
  // including the final manifest rewrite — fails.
  std::string crash_dir = dir + "/crashed";
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("file.write", 4)});
    std::ostringstream out;
    Status status = cli::RunCli(FleetArgs(dir, crash_dir), out);
    EXPECT_FALSE(status.ok());
    EXPECT_GT(plan.InjectedCount("file.write"), 0u);
  }
  EXPECT_TRUE(std::filesystem::exists(crash_dir + "/house_1.symbols"));
  EXPECT_FALSE(std::filesystem::exists(crash_dir + "/house_2.symbols"));
  EXPECT_FALSE(std::filesystem::exists(crash_dir + "/quality.json"));

  // Resume with the fault gone: house_1 is carried from the checkpoint,
  // the rest encode fresh, and the result is indistinguishable from a run
  // that never crashed.
  std::vector<std::string> resume_args = FleetArgs(dir, crash_dir);
  resume_args.insert(resume_args.end(), {"--resume", "true"});
  std::string resumed = RunCliOk(resume_args);
  EXPECT_NE(resumed.find("[resumed]"), std::string::npos) << resumed;
  ExpectDirsBitIdentical(clean_dir, crash_dir, FleetArtifacts(3));
}

TEST(FleetFaultTest, CorruptHouseholdCostsOnlyItself) {
  std::string dir = smeter::testing::TempPath("fleet_fault_corrupt");
  std::filesystem::remove_all(dir);
  RunCliOk({"simulate", "--out", dir, "--houses", "3", "--days", "1",
            "--seed", "21", "--outages", "0"});
  {
    std::ofstream corrupt(dir + "/house_3/channel_1.dat",
                          std::ios::binary | std::ios::trunc);
    corrupt << "1303132929 1.1\nnot a number at all\n";
  }
  std::string out_dir = dir + "/encoded";
  // Real retry policy (1 retry, 1 ms backoff): a persistent parse error
  // must exhaust it and quarantine, with the run still exiting cleanly.
  std::string fleet =
      RunCliOk({"encode-fleet", "--input", dir, "--out", out_dir,
                "--threads", "2", "--max-retries", "1", "--retry-backoff-ms",
                "1"});
  EXPECT_NE(fleet.find("house_3: quarantined after 2 attempt(s)"),
            std::string::npos)
      << fleet;
  EXPECT_NE(fleet.find("3 households"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/house_1.symbols"));
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/house_2.symbols"));
  EXPECT_FALSE(std::filesystem::exists(out_dir + "/house_3.symbols"));

  std::string quality = ReadAll(out_dir + "/quality.json");
  EXPECT_NE(quality.find("\"households_ok\": 2"), std::string::npos)
      << quality;
  EXPECT_NE(quality.find("\"households_quarantined\": 1"), std::string::npos);
  EXPECT_NE(quality.find("\"house_3\""), std::string::npos);
  EXPECT_NE(quality.find("\"attempts\": 2"), std::string::npos);
  // The underlying loader error surfaces in the report, not a generic
  // "household failed".
  EXPECT_NE(quality.find("house_3"), std::string::npos);
  EXPECT_NE(quality.find("\"quarantined\""), std::string::npos);
}

// Soak entry point: CI runs this test repeatedly with SMETER_FAULT_SEED
// randomized (see .github/workflows). Every seed drives a different
// deterministic storm of read/write/encode failures; the invariant is
// always the same — after one fault-free --resume, the outputs are
// bit-identical to a run that saw no faults at all.
TEST(FleetFaultSoakTest, RandomizedInjectionThenResumeConverges) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("SMETER_FAULT_SEED")) {
    uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) seed = parsed;
  }
  SCOPED_TRACE("SMETER_FAULT_SEED=" + std::to_string(seed));
  std::string dir =
      smeter::testing::TempPath("fleet_fault_soak_" + std::to_string(seed));
  std::filesystem::remove_all(dir);
  RunCliOk({"simulate", "--out", dir, "--houses", "4", "--days", "1",
            "--seed", "3", "--outages", "0"});

  std::string clean_dir = dir + "/clean";
  RunCliOk(FleetArgs(dir, clean_dir));

  std::string soak_dir = dir + "/soak";
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailWithProbability("csv.read", 0.2),
         fault::FaultRule::FailWithProbability("file.write", 0.2),
         fault::FaultRule::FailWithProbability("fleet.household", 0.2)},
        seed);
    std::ostringstream out;
    // May fail outright or complete with quarantined households; either is
    // a legal crash signature for the resume path to absorb.
    Status status = cli::RunCli(FleetArgs(dir, soak_dir), out);
    (void)status;
  }

  std::vector<std::string> resume_args = FleetArgs(dir, soak_dir);
  resume_args.insert(resume_args.end(), {"--resume", "true"});
  RunCliOk(resume_args);
  ExpectDirsBitIdentical(clean_dir, soak_dir, FleetArtifacts(4));
}

}  // namespace
}  // namespace smeter
