// End-to-end forecasting (Section 3.2 at small scale): next-day hourly
// consumption predicted as next-symbol classification, against the SVR
// raw-value baseline.

#include <cmath>

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/reconstruction.h"
#include "data/features.h"
#include "data/generator.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/svr.h"
#include "testutil.h"

namespace smeter {
namespace {

constexpr size_t kLag = 12;
constexpr size_t kTrainHours = 7 * 24;
constexpr size_t kTotalHours = 8 * 24;

// Hourly consumption of one simulated house over 8 days.
std::vector<double> HourlySeries(uint64_t seed) {
  data::GeneratorOptions options;
  options.num_houses = 1;
  options.duration_seconds = 8 * kSecondsPerDay;
  options.outages_per_day = 0.0;
  options.sparse_house = 99;
  options.seed = seed;
  TimeSeries raw = data::GenerateHouseSeries(0, options).value();
  TimeSeries hourly =
      VerticalSegmentByWindow(raw, kSecondsPerHour, {}).value();
  return hourly.Values();
}

// Runs the paper's symbolic forecasting protocol; returns test MAE in
// watts.
double SymbolicForecastMae(const std::vector<double>& hourly,
                           ml::Classifier& classifier,
                           SeparatorMethod method) {
  LookupTableOptions table_options;
  table_options.method = method;
  table_options.level = 4;
  std::vector<double> training(hourly.begin(), hourly.begin() + kTrainHours);
  LookupTable table = LookupTable::Build(training, table_options).value();

  std::vector<uint32_t> symbols;
  for (double v : hourly) symbols.push_back(table.Encode(v).index());

  ml::Dataset train =
      data::MakeSymbolicLagDataset(symbols, kLag, 4, 0, kTrainHours).value();
  ml::Dataset test = data::MakeSymbolicLagDataset(symbols, kLag, 4,
                                                  kTrainHours, kTotalHours)
                         .value();
  EXPECT_TRUE(classifier.Train(train).ok());

  std::vector<double> truth, predicted;
  for (size_t r = 0; r < test.num_instances(); ++r) {
    size_t target = kTrainHours + r;
    truth.push_back(hourly[target]);
    size_t symbol = classifier.Predict(test.row(r)).value();
    // Symbol semantics: the center of its range (Section 3.2).
    Symbol s = Symbol::Create(4, static_cast<uint32_t>(symbol)).value();
    predicted.push_back(
        table.Reconstruct(s, ReconstructionMode::kRangeCenter).value());
  }
  return MeanAbsoluteError(truth, predicted).value();
}

TEST(ForecastIntegrationTest, SymbolicForecastBeatsMeanPredictor) {
  std::vector<double> hourly = HourlySeries(71);
  ASSERT_EQ(hourly.size(), kTotalHours);

  ml::NaiveBayes nb;
  double mae = SymbolicForecastMae(hourly, nb, SeparatorMethod::kMedian);

  // Baseline: always predict the training mean.
  double mean = 0.0;
  for (size_t i = 0; i < kTrainHours; ++i) mean += hourly[i];
  mean /= static_cast<double>(kTrainHours);
  std::vector<double> truth(hourly.begin() + kTrainHours, hourly.end());
  std::vector<double> constant(truth.size(), mean);
  double mean_mae = MeanAbsoluteError(truth, constant).value();

  EXPECT_GT(mae, 0.0);
  // Residential hourly load is extremely noisy; the paper only claims the
  // symbolic forecast is *comparable* to real-value forecasting, so this
  // sanity check is deliberately loose (the benches run the full protocol).
  EXPECT_LT(mae, 2.0 * mean_mae);
}

TEST(ForecastIntegrationTest, AllThreeEncodingsProduceFiniteErrors) {
  std::vector<double> hourly = HourlySeries(73);
  for (SeparatorMethod method :
       {SeparatorMethod::kUniform, SeparatorMethod::kMedian,
        SeparatorMethod::kDistinctMedian}) {
    ml::RandomForestOptions rf;
    rf.num_trees = 15;
    ml::RandomForest forest(rf);
    double mae = SymbolicForecastMae(hourly, forest, method);
    EXPECT_TRUE(std::isfinite(mae));
    EXPECT_GT(mae, 0.0);
    EXPECT_LT(mae, 2000.0) << SeparatorMethodName(method);
  }
}

TEST(ForecastIntegrationTest, SvrBaselineRunsOnRawValues) {
  std::vector<double> hourly = HourlySeries(79);
  std::vector<std::vector<double>> x_train, x_test;
  std::vector<double> y_train, y_test;
  ASSERT_OK(data::BuildLagMatrix(hourly, kLag, 0, kTrainHours, &x_train,
                                 &y_train));
  ASSERT_OK(data::BuildLagMatrix(hourly, kLag, kTrainHours, kTotalHours,
                                 &x_test, &y_test));
  ASSERT_EQ(y_test.size(), 24u);

  ml::SvrOptions options;
  options.c = 10.0;
  ml::Svr svr(options);
  ASSERT_OK(svr.Train(x_train, y_train));
  std::vector<double> predicted;
  for (const auto& x : x_test) {
    ASSERT_OK_AND_ASSIGN(double p, svr.Predict(x));
    predicted.push_back(p);
  }
  ASSERT_OK_AND_ASSIGN(double mae, MeanAbsoluteError(y_test, predicted));
  EXPECT_TRUE(std::isfinite(mae));
  // SVR should comfortably beat the worst-case spread of the data.
  double max = *std::max_element(hourly.begin(), hourly.end());
  EXPECT_LT(mae, max);
}

}  // namespace
}  // namespace smeter
