// The online two-phase encoder must agree exactly with the batch pipeline:
// same table (trained on the warm-up aggregates) and same symbol stream for
// the post-warm-up data.

#include <tuple>

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/online_encoder.h"
#include "data/generator.h"
#include "testutil.h"

namespace smeter {
namespace {

data::GeneratorOptions TraceOptions(double outages_per_day, uint64_t seed) {
  data::GeneratorOptions options;
  options.num_houses = 1;
  options.duration_seconds = 4 * kSecondsPerDay;
  options.outages_per_day = outages_per_day;
  options.sparse_house = 99;
  options.seed = seed;
  return options;
}

void CheckEquivalence(const TimeSeries& trace, SeparatorMethod method,
                      int level) {
  const int64_t warmup = 2 * kSecondsPerDay;
  const int64_t window = 900;

  // --- online ---
  OnlineEncoderOptions online_options;
  online_options.method = method;
  online_options.level = level;
  online_options.warmup_seconds = warmup;
  online_options.window_seconds = window;
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(online_options));
  std::vector<SymbolicSample> online_symbols;
  for (const Sample& s : trace) {
    ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> events, encoder.Push(s));
    for (const EncoderEvent& e : events) {
      if (e.type == EncoderEvent::Type::kSymbol) {
        online_symbols.push_back(e.symbol);
      }
    }
  }
  ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> tail, encoder.Flush());
  for (const EncoderEvent& e : tail) {
    if (e.type == EncoderEvent::Type::kSymbol) online_symbols.push_back(e.symbol);
  }
  ASSERT_TRUE(encoder.warmed_up());

  // --- batch ---
  Timestamp start = trace.front().timestamp;
  TimeSeries head = trace.Slice({start, start + warmup});
  WindowOptions window_options;
  ASSERT_OK_AND_ASSIGN(TimeSeries head_agg,
                       VerticalSegmentByWindow(head, window, window_options));
  LookupTableOptions table_options;
  table_options.method = method;
  table_options.level = level;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(head_agg.Values(), table_options));
  // The online table must match.
  EXPECT_EQ(encoder.table()->separators(), table.separators());

  TimeSeries rest = trace.Slice({start + warmup, trace.back().timestamp + 1});
  ASSERT_OK_AND_ASSIGN(TimeSeries rest_agg,
                       VerticalSegmentByWindow(rest, window, window_options));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries batch_symbols, Encode(rest_agg, table));

  ASSERT_EQ(online_symbols.size(), batch_symbols.size());
  for (size_t i = 0; i < online_symbols.size(); ++i) {
    EXPECT_EQ(online_symbols[i].timestamp, batch_symbols[i].timestamp)
        << "at symbol " << i;
    EXPECT_EQ(online_symbols[i].symbol, batch_symbols[i].symbol)
        << "at symbol " << i;
  }
}

// Parameterized sweep: every separator method at several window sizes and
// gap densities must agree with the batch pipeline exactly.
using EquivalenceParam = std::tuple<SeparatorMethod, int64_t, double>;

class OnlineBatchEquivalenceSweep
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(OnlineBatchEquivalenceSweep, StreamsMatchBatch) {
  auto [method, window, outages] = GetParam();
  ASSERT_OK_AND_ASSIGN(TimeSeries trace,
                       data::GenerateHouseSeries(0, TraceOptions(outages, 61)));
  const int64_t warmup = 2 * kSecondsPerDay;

  OnlineEncoderOptions online_options;
  online_options.method = method;
  online_options.level = 3;
  online_options.warmup_seconds = warmup;
  online_options.window_seconds = window;
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(online_options));
  std::vector<SymbolicSample> online_symbols;
  for (const Sample& s : trace) {
    ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> events, encoder.Push(s));
    for (const EncoderEvent& e : events) {
      if (e.type == EncoderEvent::Type::kSymbol) {
        online_symbols.push_back(e.symbol);
      }
    }
  }
  ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> tail, encoder.Flush());
  for (const EncoderEvent& e : tail) {
    if (e.type == EncoderEvent::Type::kSymbol) online_symbols.push_back(e.symbol);
  }

  Timestamp start = trace.front().timestamp;
  WindowOptions window_options;
  ASSERT_OK_AND_ASSIGN(
      TimeSeries head_agg,
      VerticalSegmentByWindow(trace.Slice({start, start + warmup}), window,
                              window_options));
  LookupTableOptions table_options;
  table_options.method = method;
  table_options.level = 3;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(head_agg.Values(), table_options));
  ASSERT_OK_AND_ASSIGN(
      TimeSeries rest_agg,
      VerticalSegmentByWindow(
          trace.Slice({start + warmup, trace.back().timestamp + 1}), window,
          window_options));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries batch_symbols, Encode(rest_agg, table));

  ASSERT_EQ(online_symbols.size(), batch_symbols.size());
  for (size_t i = 0; i < online_symbols.size(); ++i) {
    ASSERT_EQ(online_symbols[i].timestamp, batch_symbols[i].timestamp);
    ASSERT_EQ(online_symbols[i].symbol, batch_symbols[i].symbol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsWindowsGaps, OnlineBatchEquivalenceSweep,
    ::testing::Combine(::testing::Values(SeparatorMethod::kUniform,
                                         SeparatorMethod::kMedian,
                                         SeparatorMethod::kDistinctMedian),
                       ::testing::Values(int64_t{900}, int64_t{3600}),
                       ::testing::Values(0.0, 4.0)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      return SeparatorMethodName(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) > 0.0 ? "_gappy" : "_gapless");
    });

TEST(OnlineBatchEquivalenceTest, GaplessTraceMedian) {
  ASSERT_OK_AND_ASSIGN(TimeSeries trace,
                       data::GenerateHouseSeries(0, TraceOptions(0.0, 51)));
  CheckEquivalence(trace, SeparatorMethod::kMedian, 4);
}

TEST(OnlineBatchEquivalenceTest, GaplessTraceUniform) {
  ASSERT_OK_AND_ASSIGN(TimeSeries trace,
                       data::GenerateHouseSeries(0, TraceOptions(0.0, 53)));
  CheckEquivalence(trace, SeparatorMethod::kUniform, 2);
}

TEST(OnlineBatchEquivalenceTest, GappyTraceDistinctMedian) {
  ASSERT_OK_AND_ASSIGN(TimeSeries trace,
                       data::GenerateHouseSeries(0, TraceOptions(6.0, 57)));
  CheckEquivalence(trace, SeparatorMethod::kDistinctMedian, 3);
}

}  // namespace
}  // namespace smeter
