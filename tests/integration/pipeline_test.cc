// End-to-end: synthetic fleet -> vertical + horizontal segmentation ->
// nominal day vectors -> classifiers -> F-measure, mirroring Section 3.1
// at small scale.

#include <memory>

#include <gtest/gtest.h>

#include "data/features.h"
#include "data/generator.h"
#include "ml/arff.h"
#include "ml/evaluation.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "testutil.h"

namespace smeter {
namespace {

using data::ClassificationOptions;
using data::GeneratorOptions;

std::vector<TimeSeries> Fleet(size_t houses, int days, uint64_t seed) {
  GeneratorOptions options;
  options.num_houses = houses;
  options.duration_seconds = days * kSecondsPerDay;
  options.outages_per_day = 0.2;
  options.sparse_house = 99;
  options.seed = seed;
  return data::GenerateFleet(options).value();
}

ClassificationOptions Hourly(SeparatorMethod method, int level) {
  ClassificationOptions options;
  options.day.window_seconds = kSecondsPerHour;
  options.method = method;
  options.level = level;
  return options;
}

TEST(PipelineIntegrationTest, SymbolicClassificationBeatsChance) {
  std::vector<TimeSeries> fleet = Fleet(4, 10, 31);
  ASSERT_OK_AND_ASSIGN(
      ml::Dataset data,
      data::BuildSymbolicClassificationDataset(
          fleet, Hourly(SeparatorMethod::kMedian, 4)));
  ASSERT_GE(data.num_instances(), 30u);
  ASSERT_OK_AND_ASSIGN(
      ml::CrossValidationResult result,
      ml::CrossValidate([] { return std::make_unique<ml::NaiveBayes>(); },
                        data, 5, 1));
  // Chance is 0.25 for 4 balanced houses. (The full-scale comparison of
  // encodings/table scopes lives in the benches, with weeks of data.)
  EXPECT_GT(result.metrics.WeightedF1(), 0.4);
}

TEST(PipelineIntegrationTest, GlobalTableVariantAlsoWorks) {
  // Figure 7 / the "+" variants: a single lookup table for all houses must
  // still produce a usable dataset (the paper found it weaker but viable).
  std::vector<TimeSeries> fleet = Fleet(4, 10, 37);
  ClassificationOptions global = Hourly(SeparatorMethod::kMedian, 3);
  global.global_table = true;
  ASSERT_OK_AND_ASSIGN(
      ml::Dataset shared,
      data::BuildSymbolicClassificationDataset(fleet, global));
  auto factory = [] { return std::make_unique<ml::NaiveBayes>(); };
  ASSERT_OK_AND_ASSIGN(ml::CrossValidationResult global_result,
                       ml::CrossValidate(factory, shared, 5, 2));
  EXPECT_GT(global_result.metrics.WeightedF1(), 0.4);
}

TEST(PipelineIntegrationTest, SymbolicDatasetRoundTripsThroughArff) {
  // The paper's actual workflow wrote ARFF files for Weka; our encoder and
  // ARFF layer must agree end to end.
  std::vector<TimeSeries> fleet = Fleet(3, 4, 41);
  ASSERT_OK_AND_ASSIGN(
      ml::Dataset data,
      data::BuildSymbolicClassificationDataset(
          fleet, Hourly(SeparatorMethod::kDistinctMedian, 2)));
  std::string arff = ml::ToArff(data);
  ASSERT_OK_AND_ASSIGN(ml::Dataset parsed,
                       ml::FromArff(arff, static_cast<int>(data.class_index())));
  ASSERT_EQ(parsed.num_instances(), data.num_instances());
  for (size_t r = 0; r < data.num_instances(); ++r) {
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      if (ml::IsMissing(data.value(r, a))) {
        EXPECT_TRUE(ml::IsMissing(parsed.value(r, a)));
      } else {
        EXPECT_DOUBLE_EQ(parsed.value(r, a), data.value(r, a));
      }
    }
  }
}

TEST(PipelineIntegrationTest, RawAndSymbolicAgreeOnInstanceCount) {
  std::vector<TimeSeries> fleet = Fleet(3, 5, 43);
  ClassificationOptions options = Hourly(SeparatorMethod::kMedian, 3);
  ASSERT_OK_AND_ASSIGN(ml::Dataset symbolic,
                       data::BuildSymbolicClassificationDataset(fleet, options));
  ASSERT_OK_AND_ASSIGN(ml::Dataset raw,
                       data::BuildRawClassificationDataset(fleet, options));
  EXPECT_EQ(symbolic.num_instances(), raw.num_instances());
  EXPECT_EQ(symbolic.num_attributes(), raw.num_attributes());
}

TEST(PipelineIntegrationTest, RandomForestHandlesSymbolicData) {
  std::vector<TimeSeries> fleet = Fleet(3, 6, 47);
  ASSERT_OK_AND_ASSIGN(
      ml::Dataset data,
      data::BuildSymbolicClassificationDataset(
          fleet, Hourly(SeparatorMethod::kMedian, 4)));
  ml::RandomForestOptions rf;
  rf.num_trees = 15;
  ASSERT_OK_AND_ASSIGN(
      ml::CrossValidationResult result,
      ml::CrossValidate([&] { return std::make_unique<ml::RandomForest>(rf); },
                        data, 3, 5));
  EXPECT_GT(result.metrics.WeightedF1(), 0.5);
}

}  // namespace
}  // namespace smeter
