// End-to-end drills for the ingestion daemon over real loopback sockets:
// a loadgen fleet streamed through ingestd must leave an archive
// byte-identical to the offline `encode-fleet` run on the same traces;
// dropped connections must reconnect and converge; and a damaged archive
// must come back through fsck --repair plus a --resume restart — the same
// crash-recovery contract the storage layer gives the offline pipeline.
//
// CI soaks the seeded test (NetIngestSoakTest) across many
// SMETER_FAULT_SEED values under ASan; see .github/workflows.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "common/fault_injection.h"
#include "common/sync.h"
#include "core/fleet_manifest.h"
#include "net/archive_sink.h"
#include "net/ingest_server.h"
#include "net/loadgen.h"
#include "net/wire.h"
#include "testutil.h"

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace smeter {
namespace {

constexpr size_t kMeters = 6;

std::string RunCliOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = cli::RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A fresh scratch dir with a simulated CER fleet at <dir>/meters.cer.
std::string MakeFleetDir(const std::string& name) {
  std::string dir = smeter::testing::TempPath(name);
  std::filesystem::remove_all(dir);
  RunCliOk({"simulate", "--format", "cer", "--out", dir, "--houses",
            std::to_string(kMeters), "--days", "2", "--seed", "17",
            "--outages", "1.0"});
  return dir;
}

// The offline reference: encode-fleet over the same CER file with the
// same sensor-side parameters the loadgen meters use.
void EncodeFleetOffline(const std::string& cer, const std::string& out_dir) {
  RunCliOk({"encode-fleet", "--input", cer, "--format", "cer", "--out",
            out_dir, "--window", "1800", "--sample-period", "1800",
            "--threads", "1", "--max-retries", "0"});
}

// Every artifact a completed kMeters CER fleet leaves behind (simulate
// numbers CER meters from 1000).
std::vector<std::string> NetArtifacts() {
  std::vector<std::string> names;
  for (size_t m = 0; m < kMeters; ++m) {
    names.push_back("meter_" + std::to_string(1000 + m) + ".table");
    names.push_back("meter_" + std::to_string(1000 + m) + ".symbols");
  }
  names.push_back("fleet.manifest");
  names.push_back("quality.json");
  return names;
}

void ExpectDirsBitIdentical(const std::string& a, const std::string& b) {
  for (const std::string& name : NetArtifacts()) {
    SCOPED_TRACE(name);
    std::string contents = ReadAll(a + "/" + name);
    EXPECT_FALSE(contents.empty());
    EXPECT_EQ(contents, ReadAll(b + "/" + name));
  }
}

// An ingest server running on its own thread; joins on destruction.
// Not movable: the serving thread holds `this`.
struct RunningServer {
  std::unique_ptr<net::IngestServer> server;
  std::thread thread;
  Status result;

  RunningServer() = default;
  RunningServer(const RunningServer&) = delete;
  RunningServer& operator=(const RunningServer&) = delete;

  void Start(net::IngestServerOptions options) {
    auto created = net::IngestServer::Create(std::move(options));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    if (!created.ok()) return;
    server = std::move(created.value());
    thread = std::thread([this] { result = server->Run(); });
  }

  // Like Start, but routes RequestStatsDump's JSON into `stats_out`
  // (redirected before the serving thread can claim the server role).
  void StartWithStats(net::IngestServerOptions options,
                      std::ostream* stats_out) {
    auto created = net::IngestServer::Create(std::move(options));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    if (!created.ok()) return;
    server = std::move(created.value());
    {
      ScopedThreadRole owner(server->role());
      server->set_stats_out(stats_out);
    }
    thread = std::thread([this] { result = server->Run(); });
  }

  void DrainAndJoin() {
    if (!thread.joinable()) return;
    server->RequestDrain();
    thread.join();
  }

  ~RunningServer() {
    if (thread.joinable()) {
      server->RequestDrain();
      thread.join();
    }
  }
};

net::IngestServerOptions ServerOptions(const std::string& archive_dir) {
  net::IngestServerOptions options;
  options.archive_dir = archive_dir;
  options.port = 0;  // ephemeral
  options.drain_grace_ms = 500;
  return options;
}

// Loadgen options mirroring EncodeFleetOffline's sensor-side parameters.
net::LoadgenOptions LoadgenOptions(uint16_t port, const std::string& cer) {
  net::LoadgenOptions options;
  options.port = port;
  options.input_cer = cer;
  options.encode.pipeline.window_seconds = 1800;
  options.encode.pipeline.window.sample_period_seconds = 1800;
  options.encode.gap_aware = true;
  options.batch_symbols = 16;  // several SYMBOL_BATCH frames per meter
  options.concurrency = 3;
  return options;
}

net::LoadgenReport RunLoadgenOk(const net::LoadgenOptions& options) {
  Result<net::LoadgenReport> report = net::RunLoadgen(options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report.value() : net::LoadgenReport{};
}

TEST(NetIngestTest, LoopbackArchiveMatchesOfflineEncodeFleet) {
  std::string dir = MakeFleetDir("net_ingest_equivalence");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();  // exit_after_households drains the server
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_total, kMeters);
  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_EQ(report.meters_failed, 0u);
  EXPECT_EQ(report.reconnects, 0u);
  EXPECT_GT(report.symbols_sent, 0u);

  // The serving thread has joined; the test thread owns the server again.
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters& counters = running.server->counters();
  EXPECT_EQ(counters.sessions_completed, kMeters);
  EXPECT_EQ(counters.households_persisted, kMeters);
  EXPECT_EQ(counters.symbols_persisted, report.symbols_sent);
  EXPECT_EQ(counters.decode_errors, 0u);

  // The tentpole acceptance bar: the networked archive is byte-identical
  // to the offline one, so fsck/decode/info tooling applies unchanged.
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, DroppedConnectionsReconnectAndConverge) {
  std::string dir = MakeFleetDir("net_ingest_reconnect");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    // Kill the socket under the 2nd and 3rd batch sends: the affected
    // meters die mid-upload and must reconnect and re-upload from scratch.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("loadgen.drop", 2, 3)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 2u);
  }
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);
  EXPECT_GE(report.batches_dropped, 1u);
  // The server saw the dropped sessions and quarantined them.
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().sessions_dropped, 1u);
  EXPECT_GT(running.server->counters().sessions_accepted, kMeters);

  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, AcceptFaultSeamCostsOneConnectionNotTheListener) {
  std::string dir = MakeFleetDir("net_ingest_accept_fault");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    // The seam fails the first accept: the server closes that socket, the
    // affected meter sees a dead connection and retries, and the listener
    // itself keeps serving the rest of the fleet.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("net.accept", 1, 1)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().sessions_dropped, 1u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, RefusedTableQuarantinesSessionNotDaemon) {
  std::string dir = MakeFleetDir("net_ingest_bad_table");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    // The first TABLE_ANNOUNCE the server validates is refused with
    // kBadTable; that meter's retry (and everyone else) goes through.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("session.table", 1, 1)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().sessions_dropped, 1u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, ReUploadedFleetIsAcknowledgedAsDuplicates) {
  std::string dir = MakeFleetDir("net_ingest_duplicate");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  RunningServer running;
  running.Start(ServerOptions(dir + "/online"));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  net::LoadgenReport first = RunLoadgenOk(loadgen);
  EXPECT_EQ(first.meters_ok, kMeters);
  // The whole fleet re-uploads (a fleet-wide reconnect after, say, a
  // power cut): every GOODBYE is acked OK without rewriting anything.
  net::LoadgenReport second = RunLoadgenOk(loadgen);
  EXPECT_EQ(second.meters_ok, kMeters);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters);
  EXPECT_EQ(running.server->counters().sessions_completed, 2 * kMeters);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, DrainedServerRefusesNewSessions) {
  std::string dir = MakeFleetDir("net_ingest_drain_partial");
  const std::string cer = dir + "/meters.cer";

  // The server stops after half the fleet; the rest of the meters find a
  // closed listen socket and report failure instead of hanging.
  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters / 2;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.concurrency = 1;  // deterministic: meters land in name order
  loadgen.max_attempts = 1;
  Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report->meters_ok, kMeters / 2);
  EXPECT_EQ(report->meters_failed, kMeters - kMeters / 2);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters / 2);

  // The partial archive is valid as far as it goes: fsck grades it clean.
  std::ostringstream out, err;
  EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", dir + "/online"}, out,
                                err),
            0)
      << out.str() << err.str();
}

// The satellite drill: a partially-ingested archive is damaged on disk
// (torn manifest tail, a corrupted symbol file, a stray tmp), then
// fsck --repair plus a --resume restart plus a fleet-wide reconnect must
// converge to the bit-identical clean-run archive.
TEST(NetIngestTest, DamagedArchiveRepairsResumesAndConverges) {
  std::string dir = MakeFleetDir("net_ingest_crash_resume");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";

  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.exit_after_households = 3;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenOptions loadgen =
        LoadgenOptions(running.server->port(), cer);
    loadgen.concurrency = 1;
    loadgen.max_attempts = 1;
    Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    running.thread.join();
    ASSERT_OK(running.result);
    ScopedThreadRole owner(running.server->role());
    ASSERT_EQ(running.server->counters().households_persisted, 3u);
  }

  // Damage the partial archive the way a crash plus a bad disk would.
  {
    std::string symbols = ReadAll(online + "/meter_1001.symbols");
    ASSERT_FALSE(symbols.empty());
    symbols[symbols.size() / 2] ^= 0x20;  // silent media corruption
    std::ofstream(online + "/meter_1001.symbols", std::ios::binary)
        << symbols;
    std::ofstream(online + "/fleet.manifest", std::ios::app)
        << "{\"name\":\"meter_10";  // torn mid-record append
    std::ofstream(online + "/meter_1099.symbols.tmp") << "leftover";
  }

  // fsck --repair: issues found and repaired -> exit 1, resume required;
  // a second pass must grade the repaired archive clean.
  {
    std::ostringstream out, err;
    EXPECT_EQ(cli::RunCliExitCode(
                  {"fsck", "--dir", online, "--repair", "true"}, out, err),
              1)
        << out.str() << err.str();
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out2, err2), 0)
        << out2.str() << err2.str();
  }

  // Restart with --resume; the whole fleet reconnects. Households that
  // survived the repair are acked as duplicates, the rest re-upload.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.resume = true;
    server_options.exit_after_households = kMeters;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenReport report =
        RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    running.thread.join();
    ASSERT_OK(running.result);
    EXPECT_EQ(report.meters_ok, kMeters);
    // At least meter_1001 was re-persisted; at least meter_1000 carried.
    ScopedThreadRole owner(running.server->role());
    EXPECT_GE(running.server->counters().households_persisted, 1u);
    EXPECT_LT(running.server->counters().households_persisted, kMeters);
  }

  ExpectDirsBitIdentical(dir + "/offline", online);
}

// Meters whose hash-pinned home is each shard (simulate numbers CER
// meters from 1000, the same ids loadgen replays).
std::vector<uint64_t> HomesPerShard(int shards) {
  std::vector<uint64_t> counts(static_cast<size_t>(shards), 0);
  for (size_t m = 0; m < kMeters; ++m) {
    const std::string meter = "meter_" + std::to_string(1000 + m);
    ++counts[static_cast<size_t>(net::ShardForMeter(meter, shards))];
  }
  return counts;
}

// The multi-core tentpole acceptance bar: a --threads 4 run must leave an
// archive byte-identical to the offline single-threaded reference — shard
// logs unioned, records name-sorted, no per-shard files left behind.
TEST(NetIngestTest, ShardedArchiveIsByteIdenticalToSingleThreaded) {
  std::string dir = MakeFleetDir("net_ingest_sharded");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 4;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  EXPECT_EQ(running.server->shard_count(), 4);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);

  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_EQ(counters.sessions_completed, kMeters);
  EXPECT_EQ(counters.households_persisted, kMeters);
  EXPECT_EQ(counters.decode_errors, 0u);
  // Every connection re-homed by the HELLO peek was adopted somewhere.
  EXPECT_EQ(counters.handoffs_in, counters.handoffs_out);
  // Each meter persisted on its hash-pinned home shard, wherever the
  // kernel's SO_REUSEPORT choice first landed the connection.
  const std::vector<uint64_t> homes = HomesPerShard(4);
  for (int shard = 0; shard < 4; ++shard) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    EXPECT_EQ(running.server->shard_counters(shard).households_persisted,
              homes[static_cast<size_t>(shard)]);
  }

  EXPECT_FALSE(
      std::filesystem::exists(dir + "/online/fleet.manifest.shard0"));
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// Satellite regression: meter-hash pinning is stable across reconnects —
// a meter that dies mid-upload and reconnects lands back on the same
// shard, so its Session state machine always has the same single writer.
TEST(NetIngestTest, MeterHashPinningIsStableAcrossReconnects) {
  std::string dir = MakeFleetDir("net_ingest_pinning");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 4;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("loadgen.drop", 2, 3)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 2u);
  }
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);

  // The loadgen.drop seam fires before any persist, so each meter
  // persists exactly once — and the pinning hash puts that persist on the
  // meter's home shard no matter how many times it reconnected.
  ScopedThreadRole owner(running.server->role());
  const std::vector<uint64_t> homes = HomesPerShard(4);
  for (int shard = 0; shard < 4; ++shard) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    EXPECT_EQ(running.server->shard_counters(shard).households_persisted,
              homes[static_cast<size_t>(shard)]);
    EXPECT_EQ(running.server->shard_counters(shard).sessions_completed,
              homes[static_cast<size_t>(shard)]);
  }
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// The no-SO_REUSEPORT fallback: shard 0 owns the only listener and deals
// raw fds round-robin; the HELLO peek then re-homes each connection to its
// hash-pinned shard through the same mailbox.
TEST(NetIngestTest, SingleAcceptorFallbackRehomesByMeterHash) {
  std::string dir = MakeFleetDir("net_ingest_single_acceptor");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 3;
  server_options.force_single_acceptor = true;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);

  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  // All accepts happened on the dealing shard; with 3 shards at least some
  // fds were dealt or re-homed across the mailbox.
  EXPECT_EQ(running.server->shard_counters(1).sessions_accepted, 0u);
  EXPECT_EQ(running.server->shard_counters(2).sessions_accepted, 0u);
  EXPECT_GT(counters.handoffs_out, 0u);
  EXPECT_EQ(counters.handoffs_in, counters.handoffs_out);
  const std::vector<uint64_t> homes = HomesPerShard(3);
  for (int shard = 0; shard < 3; ++shard) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    EXPECT_EQ(running.server->shard_counters(shard).households_persisted,
              homes[static_cast<size_t>(shard)]);
  }
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// loadgen --connections: the fleet multiplexes over two persistent TCP
// connections, sessions back-to-back on each socket; the server resets
// the session to ExpectHello after every GOODBYE_ACK instead of closing.
TEST(NetIngestTest, MultiplexedConnectionsCarrySessionsBackToBack) {
  std::string dir = MakeFleetDir("net_ingest_multiplexed");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 2;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.connections = 2;
  net::LoadgenReport report = RunLoadgenOk(loadgen);
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_EQ(report.meters_failed, 0u);
  // Two sockets carried all six sessions.
  EXPECT_EQ(report.connections_opened, 2u);
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_EQ(counters.sessions_accepted, 2u);
  EXPECT_EQ(counters.sessions_completed, kMeters);
  // Completed keep-alive conversations are clean ends, not drops.
  EXPECT_EQ(counters.sessions_dropped, 0u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// SIGUSR1 path (the handler calls exactly RequestStatsDump): every shard
// snapshots its own counters and the last one to publish emits a single
// aggregated JSON blob.
TEST(NetIngestTest, StatsDumpAggregatesEveryShard) {
  std::string dir = MakeFleetDir("net_ingest_stats");
  const std::string cer = dir + "/meters.cer";

  std::ostringstream stats;
  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 3;
  RunningServer running;
  running.StartWithStats(std::move(server_options), &stats);
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  EXPECT_EQ(report.meters_ok, kMeters);

  running.server->RequestStatsDump();
  for (int i = 0; i < 500 && running.server->stats_dumps() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(running.server->stats_dumps(), 1u);
  running.DrainAndJoin();
  ASSERT_OK(running.result);

  const std::string blob = stats.str();
  EXPECT_NE(blob.find("\"shards\": ["), std::string::npos) << blob;
  EXPECT_NE(blob.find("\"total\":"), std::string::npos) << blob;
  // Three shard objects plus the total, each with the full counter set.
  size_t occurrences = 0;
  for (size_t pos = blob.find("\"sessions_accepted\"");
       pos != std::string::npos;
       pos = blob.find("\"sessions_accepted\"", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 4u) << blob;
}

// Fabricates the on-disk signature of a --threads N daemon killed before
// Finalize: a partial single-log run is re-split so the main manifest
// holds one record and per-shard append logs hold the rest (one of them
// torn mid-append). Leaves 3 households durably checkpointed.
void FabricateShardedCrash(const std::string& online,
                           const std::string& cer) {
  net::IngestServerOptions server_options = ServerOptions(online);
  server_options.exit_after_households = 3;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.concurrency = 1;  // deterministic: meters land in name order
  loadgen.max_attempts = 1;
  Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  running.thread.join();
  ASSERT_OK(running.result);

  Result<ManifestContents> manifest =
      LoadFleetManifest(online + "/fleet.manifest");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->reports.size(), 3u);
  // Main manifest keeps only the first record; the other two move into
  // shard logs, as if two shards had checkpointed them when the daemon
  // died. Shard 2's log is empty; shard 3's has a torn trailing append.
  std::ofstream(online + "/fleet.manifest", std::ios::binary)
      << BuildManifestLog({manifest->reports[0]});
  std::ofstream(online + "/" + net::ShardManifestFile(1), std::ios::binary)
      << BuildManifestLog({manifest->reports[1]});
  std::ofstream(online + "/" + net::ShardManifestFile(2), std::ios::binary)
      << BuildManifestLog({});
  std::ofstream(online + "/" + net::ShardManifestFile(3), std::ios::binary)
      << BuildManifestLog({manifest->reports[2]}) << "{\"name\":\"met";
}

// Kill-and-resume at --threads 4, sink-level recovery: Open(resume) unions
// the leftover shard logs directly (no fsck pass) and the restarted
// sharded daemon converges to the clean-run archive.
TEST(NetIngestTest, KilledShardedRunResumesDirectlyAndConverges) {
  std::string dir = MakeFleetDir("net_ingest_sharded_kill");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";
  FabricateShardedCrash(online, cer);

  net::IngestServerOptions server_options = ServerOptions(online);
  server_options.threads = 4;
  server_options.resume = true;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  // The three checkpointed households were carried, not re-persisted.
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters - 3);

  EXPECT_FALSE(std::filesystem::exists(online + "/" +
                                       net::ShardManifestFile(1)));
  ExpectDirsBitIdentical(dir + "/offline", online);
}

// Kill-and-resume via fsck: --repair unions the shard logs into the main
// manifest (torn tails contribute their valid prefix), removes them, and
// grades the archive clean on the second pass.
TEST(NetIngestTest, FsckMergesLeftoverShardLogs) {
  std::string dir = MakeFleetDir("net_ingest_sharded_fsck");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";
  FabricateShardedCrash(online, cer);

  {
    std::ostringstream out, err;
    EXPECT_EQ(cli::RunCliExitCode(
                  {"fsck", "--dir", online, "--repair", "true"}, out, err),
              1)
        << out.str() << err.str();
    EXPECT_NE(out.str().find("shard_manifest"), std::string::npos)
        << out.str();
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out2, err2), 0)
        << out2.str() << err2.str();
  }
  for (int shard = 1; shard <= 3; ++shard) {
    EXPECT_FALSE(std::filesystem::exists(
        online + "/" + net::ShardManifestFile(shard)));
  }
  Result<ManifestContents> merged =
      LoadFleetManifest(online + "/fleet.manifest");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->reports.size(), 3u);

  // A resumed sharded daemon finishes the fleet from the merged manifest.
  net::IngestServerOptions server_options = ServerOptions(online);
  server_options.threads = 4;
  server_options.resume = true;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  ExpectDirsBitIdentical(dir + "/offline", online);
}

// Shard count for the randomized soak below: the storm and the recovery
// both run against a sharded server so every fault seam also fires across
// the handoff / per-shard-manifest paths. SMETER_SOAK_THREADS overrides
// (CI pins it to 4 explicitly; 1 reproduces the single-loop storm).
int SoakThreads() {
  if (const char* env = std::getenv("SMETER_SOAK_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1 && parsed <= 64) return parsed;
  }
  return 4;
}

// Seeded soak: a randomized storm of connection drops, refused tables,
// server I/O failures, and silent bit flips on archive writes — then
// repair + resume + reconnect must still converge. CI sweeps
// SMETER_FAULT_SEED.
TEST(NetIngestSoakTest, RandomizedFaultsThenRepairResumeConverge) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("SMETER_FAULT_SEED")) {
    uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) seed = parsed;
  }
  SCOPED_TRACE("SMETER_FAULT_SEED=" + std::to_string(seed));
  std::string dir =
      MakeFleetDir("net_ingest_soak_" + std::to_string(seed));
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";

  // Storm phase: any per-meter outcome is a legal crash signature; the
  // daemon itself must survive and drain cleanly.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.threads = SoakThreads();
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenOptions loadgen =
        LoadgenOptions(running.server->port(), cer);
    loadgen.max_attempts = 2;
    loadgen.io_timeout_ms = 2'000;
    {
      fault::ScopedFaultPlan plan(
          {fault::FaultRule::FailWithProbability("loadgen.drop", 0.05),
           fault::FaultRule::FailWithProbability("net.read", 0.02),
           fault::FaultRule::FailWithProbability("net.write", 0.02),
           fault::FaultRule::FailWithProbability("session.table", 0.1),
           fault::FaultRule::FailWithProbability("file.write", 0.05),
           fault::FaultRule::CorruptBytesWithProbability("io.write", 3,
                                                         0.1)},
          seed);
      Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
    }
    running.DrainAndJoin();
    ASSERT_OK(running.result);
  }

  // Repair must converge: one --repair pass, then a clean bill.
  {
    std::ostringstream out, err;
    int code = cli::RunCliExitCode(
        {"fsck", "--dir", online, "--repair", "true"}, out, err);
    EXPECT_NE(code, 4) << out.str() << err.str();
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out2, err2), 0)
        << out2.str() << err2.str();
  }

  // Recovery: resume + full reconnect, no faults — sharded too, so the
  // resume path unions whatever per-shard logs the storm left behind.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.threads = SoakThreads();
    server_options.resume = true;
    server_options.exit_after_households = kMeters;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenReport report =
        RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    running.thread.join();
    ASSERT_OK(running.result);
    EXPECT_EQ(report.meters_ok, kMeters);
  }

  ExpectDirsBitIdentical(dir + "/offline", online);
}

// ---------------------------------------------------------------------------
// Overload protection & graceful degradation (PR 8). The loadgen client is
// deliberately well-behaved, so the drills below also need raw peers that
// are not: sockets that hold admission slots, go silent, or refuse to
// drain their acks.

// Minimal blocking loopback client. `rcvbuf_bytes` (set before connect so
// it binds the negotiated window) shrinks the kernel's receive capacity,
// which is what makes the write-stall deadline reachable fast.
int DialLoopback(uint16_t port, int rcvbuf_bytes = 0) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAllBytes(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads (and discards) until the peer closes. True when EOF or a reset
// arrived within `timeout_ms`.
bool DrainUntilPeerClose(int fd, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char buf[4096];
  for (;;) {
    const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remain.count() <= 0) return false;
    pollfd p{fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(remain.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    if (n < 0 && errno != EINTR && errno != EAGAIN) return true;  // reset
  }
}

// NOTE on observing the write-stall drop from the client side: a peer
// whose receive window is zero (the whole point of the jam) can never see
// the server's FIN without reading — the FIN queues behind data the
// window won't admit. So the drills below keep the jam up well past the
// deadline, then switch to draining; the buffered pongs arrive, then EOF.

std::string HelloBytes(const std::string& meter) {
  net::HelloPayload hello;
  hello.meter_id = meter;
  return net::EncodeFrame(net::MakeHello(hello));
}

// A syntactically valid meter id hash-pinned to `shard` of `shards`.
std::string MeterPinnedTo(int shard, int shards, const std::string& prefix) {
  for (int i = 0; i < 10'000; ++i) {
    std::string name = prefix + std::to_string(i);
    if (net::ShardForMeter(name, shards) == shard) return name;
  }
  ADD_FAILURE() << "no meter id pinned to shard " << shard;
  return prefix + "0";
}

// Admission control: with the whole connection budget held by parked
// peers, every loadgen connect is shed with an accept-time THROTTLE; once
// the slots free, the same fleet retries through and converges.
TEST(NetOverloadTest, AdmissionBudgetShedsFloodAndFreedSlotsAdmit) {
  std::string dir = MakeFleetDir("net_overload_admission");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.max_connections = 2;
  server_options.idle_timeout_ms = 0;  // the parked peers must survive
  server_options.throttle_retry_ms = 50;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  // Two parked connections exhaust the budget without ever speaking.
  int parked_a = DialLoopback(running.server->port());
  int parked_b = DialLoopback(running.server->port());
  ASSERT_GE(parked_a, 0);
  ASSERT_GE(parked_b, 0);

  // Phase 1: single attempts, budget full -> every meter is refused with a
  // THROTTLE(admission) frame the client can account for.
  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.max_attempts = 1;
  net::LoadgenReport shed = RunLoadgenOk(loadgen);
  EXPECT_EQ(shed.meters_ok, 0u);
  EXPECT_EQ(shed.meters_failed, kMeters);
  EXPECT_EQ(shed.throttled, kMeters);

  // Phase 2: slots freed, retries with jittered backoff land the fleet.
  ::close(parked_a);
  ::close(parked_b);
  loadgen.max_attempts = 5;
  loadgen.backoff.base_ms = 20;
  loadgen.backoff.cap_ms = 300;
  net::LoadgenReport landed = RunLoadgenOk(loadgen);
  EXPECT_EQ(landed.meters_ok, kMeters);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_GE(counters.connections_shed, kMeters);
  EXPECT_GE(counters.throttles_sent, kMeters);
  EXPECT_EQ(counters.households_persisted, kMeters);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// Per-meter token bucket: the first session per meter spends the burst
// token; an immediate fleet-wide re-upload is pushed back with
// THROTTLE(rate) and a refill-derived retry hint instead of being served.
TEST(NetOverloadTest, RateLimitThrottlesImmediateRepeatSessions) {
  std::string dir = MakeFleetDir("net_overload_rate");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  // 1 token per 5 s: even a slow sanitizer run cannot refill between the
  // first upload and the immediate re-upload.
  server_options.rate_limit = 0.2;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.max_attempts = 1;
  net::LoadgenReport first = RunLoadgenOk(loadgen);
  EXPECT_EQ(first.meters_ok, kMeters);
  EXPECT_EQ(first.throttled, 0u);

  net::LoadgenReport second = RunLoadgenOk(loadgen);
  EXPECT_EQ(second.meters_ok, 0u);
  EXPECT_EQ(second.meters_failed, kMeters);
  EXPECT_EQ(second.throttled, kMeters);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_GE(counters.rate_limited, kMeters);
  EXPECT_GE(counters.throttles_sent, kMeters);
  // The throttled re-uploads changed nothing on disk.
  EXPECT_EQ(counters.households_persisted, kMeters);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// Ingest-memory budget: a budget no session can fit under pushes back with
// THROTTLE(memory) mid-stream and drops the connection (freeing its
// buffers); nothing is persisted and the daemon stays healthy.
TEST(NetOverloadTest, MemoryBudgetThrottlesOversizedBacklog) {
  std::string dir = MakeFleetDir("net_overload_memory");
  const std::string cer = dir + "/meters.cer";

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.memory_budget = 512;  // ~96 samples/meter = 1.5 KiB
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.max_attempts = 2;
  loadgen.concurrency = 2;
  loadgen.backoff.base_ms = 20;
  loadgen.backoff.cap_ms = 100;
  net::LoadgenReport report = RunLoadgenOk(loadgen);
  EXPECT_EQ(report.meters_ok, 0u);
  EXPECT_EQ(report.meters_failed, kMeters);
  EXPECT_GE(report.throttled, kMeters);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_GE(counters.memory_throttled, kMeters);
  EXPECT_GE(counters.throttles_sent, kMeters);
  EXPECT_EQ(counters.households_persisted, 0u);
  // Every dropped connection returned its tracked bytes: the gauge is flat.
  EXPECT_EQ(counters.ingest_memory_bytes, 0u);
}

// Idle timeout on a sharded server: a peer that HELLOs onto a non-zero
// shard and goes silent is swept there, counted there, and the rest of the
// fleet is untouched.
TEST(NetOverloadTest, IdleTimeoutDropsSilentPeerOnItsHomeShard) {
  std::string dir = MakeFleetDir("net_overload_idle");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 2;
  server_options.idle_timeout_ms = 250;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  const std::string idler = MeterPinnedTo(1, 2, "idler_");
  int fd = DialLoopback(running.server->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAllBytes(fd, HelloBytes(idler)));
  // The HELLO peek re-homed the connection to shard 1; silence past the
  // deadline gets it swept (we see the hello ack, then EOF).
  EXPECT_TRUE(DrainUntilPeerClose(fd, 10'000));
  ::close(fd);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->shard_counters(1).idle_drops, 1u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// Write-stall deadline on a sharded server: a peer that floods PINGs and
// never drains the pongs jams its output buffer past the backpressure
// high-watermark; after write_stall_ms it is dropped on its home shard.
TEST(NetOverloadTest, WriteStallDeadlineDropsNonDrainingPeer) {
  std::string dir = MakeFleetDir("net_overload_stall");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 2;
  server_options.idle_timeout_ms = 0;  // isolate the stall deadline
  server_options.write_stall_ms = 250;
  server_options.high_watermark = 1024;
  server_options.sndbuf_bytes = 4096;  // small kernel buffer: jam fast
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  const std::string staller = MeterPinnedTo(1, 2, "staller_");
  int fd = DialLoopback(running.server->port(), /*rcvbuf_bytes=*/2048);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAllBytes(fd, HelloBytes(staller)));
  // Consume the hello ack (the session is established on shard 1), then
  // stop reading forever and flood PINGs; the pongs back up through the
  // kernel buffers into BufferedFd and past the high-watermark.
  {
    char ack[64];
    pollfd p{fd, POLLIN, 0};
    ASSERT_GT(::poll(&p, 1, 10'000), 0);
    ASSERT_GT(::recv(fd, ack, sizeof(ack), 0), 0);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
  std::string burst;
  for (int i = 0; i < 256; ++i) {
    burst += net::EncodeFrame(net::MakePing(static_cast<uint64_t>(i)));
  }
  for (int round = 0; round < 24; ++round) {  // ~100 KiB of pings max
    const ssize_t n = ::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL);
    if (n < 0) break;  // EAGAIN: both kernel directions are full — jammed
  }
  // Hold the jam far past write_stall_ms (sweeps run every 125 ms), then
  // drain: the server closed long ago, so the leftover pongs end in EOF.
  std::this_thread::sleep_for(std::chrono::milliseconds(2'000));
  EXPECT_TRUE(DrainUntilPeerClose(fd, 10'000));
  ::close(fd);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->shard_counters(1).write_stall_drops, 1u);
  EXPECT_EQ(running.server->counters().idle_drops, 0u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// The EMFILE escape hatch: with the process fd limit exhausted, the
// acceptor burns its reserved fd to accept-and-refuse the backlog instead
// of wedging the edge-triggered listener; once the crunch clears, the
// fleet uploads normally.
TEST(NetOverloadTest, EmfileAcceptCrunchShedsBacklogViaReservedFd) {
  std::string dir = MakeFleetDir("net_overload_emfile");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  // Clamp the soft fd limit a hair above current usage, then consume every
  // remaining slot but one — the client socket below takes that last one,
  // so the server's accept4 has nothing left and must hit EMFILE.
  size_t open_fds = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++open_fds;
  }
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit tight = old_limit;
  tight.rlim_cur = static_cast<rlim_t>(open_fds + 10);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> fillers;
  for (;;) {
    const int filler = ::dup(0);
    if (filler < 0) break;
    fillers.push_back(filler);
  }
  ASSERT_FALSE(fillers.empty());
  ::close(fillers.back());
  fillers.pop_back();

  int fd = DialLoopback(running.server->port());
  ASSERT_GE(fd, 0);
  // The hatch accepts and refuses: THROTTLE (best effort) then close.
  EXPECT_TRUE(DrainUntilPeerClose(fd, 10'000));
  ::close(fd);
  for (int filler : fillers) ::close(filler);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().accepts_emfile, 1u);
  EXPECT_GE(running.server->counters().connections_shed, 1u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// Disk exhaustion: ENOSPC on archive writes opens the circuit breaker
// (acks withheld, sessions pushed back with THROTTLE(disk)), the probe
// timer notices when space returns, and the retrying fleet then converges
// to the byte-identical archive.
TEST(NetOverloadTest, DiskFullPausesPersistsUntilProbeReopens) {
  std::string dir = MakeFleetDir("net_overload_enospc");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.probe_interval_ms = 25;
  server_options.throttle_retry_ms = 50;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.max_attempts = 10;
  loadgen.backoff.base_ms = 25;
  loadgen.backoff.cap_ms = 400;
  net::LoadgenReport report;
  {
    // The first persist trips the breaker; probes then chew through the
    // injected window (8 failing writes) until the disk "has space" again.
    fault::ScopedFaultPlan plan({[] {
      fault::FaultRule rule = fault::FaultRule::FailCalls("file.write", 1, 8);
      rule.message = "No space left on device";
      return rule;
    }()});
    report = RunLoadgenOk(loadgen);
  }
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.throttled, 1u);
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_GE(counters.circuit_opens, 1u);
  EXPECT_GE(counters.persists_paused, 1u);
  EXPECT_GE(counters.throttles_sent, 1u);
  EXPECT_EQ(counters.households_persisted, kMeters);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// A daemon killed while paused on a full disk must leave a salvageable
// archive: fsck --repair grades and fixes what the interrupted Finalize
// left behind, and a --resume restart plus a fleet-wide reconnect
// converges bit-identically.
TEST(NetOverloadTest, KilledDuringDiskPauseConvergesViaFsckAndResume) {
  std::string dir = MakeFleetDir("net_overload_enospc_kill");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";

  {
    net::IngestServerOptions server_options = ServerOptions(online);
    // Probes effectively never fire: the pause outlives the daemon.
    server_options.probe_interval_ms = 600'000;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);

    // Calls 1-2 are meter_1000's table+symbols; call 3 (the next meter's
    // first write) hits the full disk and the circuit stays open forever.
    fault::ScopedFaultPlan plan({[] {
      fault::FaultRule rule = fault::FaultRule::FailCalls("file.write", 3);
      rule.message = "No space left on device";
      return rule;
    }()});
    net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
    loadgen.concurrency = 1;  // deterministic: meter_1000 lands first
    loadgen.max_attempts = 1;
    Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->meters_ok, 1u);
    EXPECT_EQ(report->meters_failed, kMeters - 1);
    EXPECT_GE(report->throttled, kMeters - 1);

    // The "kill": drain while the disk is still full. Finalize cannot
    // write the manifest, so Run() itself reports the failure.
    running.DrainAndJoin();
    EXPECT_FALSE(running.result.ok());
    ScopedThreadRole owner(running.server->role());
    EXPECT_GE(running.server->counters().circuit_opens, 1u);
    EXPECT_GE(running.server->counters().persists_paused, 1u);
    EXPECT_EQ(running.server->counters().households_persisted, 1u);
  }

  // Space returns (the plan died with the scope). Repair, then resume.
  {
    std::ostringstream out, err;
    const int code = cli::RunCliExitCode(
        {"fsck", "--dir", online, "--repair", "true"}, out, err);
    EXPECT_NE(code, 4) << out.str() << err.str();
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out2, err2), 0)
        << out2.str() << err2.str();
  }
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.resume = true;
    server_options.exit_after_households = kMeters;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenReport report =
        RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    running.thread.join();
    ASSERT_OK(running.result);
    EXPECT_EQ(report.meters_ok, kMeters);
    // meter_1000 carried as a duplicate; the rest re-persisted.
    ScopedThreadRole owner(running.server->role());
    EXPECT_EQ(running.server->counters().households_persisted, kMeters - 1);
  }
  ExpectDirsBitIdentical(dir + "/offline", online);
}

// The chaos soak: a flooding fleet, parked and non-draining peers, a full
// disk, and random connection drops — all at once, on a sharded server
// with every overload knob engaged. Admitted sessions must converge
// bit-identically, every degradation mechanism must demonstrably fire,
// and the SIGUSR1 dump must carry all of the new counters. CI sweeps
// SMETER_FAULT_SEED over this test under ASan.
TEST(NetOverloadSoakTest, FloodEnospcSlowClientsConvergeBitIdentical) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("SMETER_FAULT_SEED")) {
    uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) seed = parsed;
  }
  SCOPED_TRACE("SMETER_FAULT_SEED=" + std::to_string(seed));
  std::string dir =
      MakeFleetDir("net_overload_soak_" + std::to_string(seed));
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";

  std::ostringstream stats;
  net::IngestServerOptions server_options = ServerOptions(online);
  server_options.threads = 2;
  server_options.max_connections = 4;
  server_options.memory_budget = 4096;
  server_options.rate_limit = 0.5;  // refused retries come back in < 2 s
  server_options.idle_timeout_ms = 350;
  server_options.write_stall_ms = 250;
  server_options.high_watermark = 2048;
  server_options.sndbuf_bytes = 4096;
  server_options.probe_interval_ms = 25;
  server_options.throttle_retry_ms = 100;
  RunningServer running;
  running.StartWithStats(std::move(server_options), &stats);
  ASSERT_NE(running.server, nullptr);
  const uint16_t port = running.server->port();

  // Two slow clients occupy half the admission budget. The idler HELLOs
  // and goes silent (idle sweep); the staller floods PINGs and never
  // drains the pongs (write-stall sweep). While the staller lives, its
  // pong backlog alone holds the memory gauge over budget, so the first
  // loadgen batches are memory-throttled too.
  int idler = DialLoopback(port);
  ASSERT_GE(idler, 0);
  ASSERT_TRUE(SendAllBytes(idler, HelloBytes(MeterPinnedTo(1, 2, "idler_"))));
  int staller = DialLoopback(port, /*rcvbuf_bytes=*/2048);
  ASSERT_GE(staller, 0);
  ASSERT_TRUE(
      SendAllBytes(staller, HelloBytes(MeterPinnedTo(1, 2, "staller_"))));
  {
    char ack[64];
    pollfd p{staller, POLLIN, 0};
    ASSERT_GT(::poll(&p, 1, 10'000), 0);
    ASSERT_GT(::recv(staller, ack, sizeof(ack), 0), 0);
  }
  const int flags = ::fcntl(staller, F_GETFL, 0);
  ASSERT_EQ(::fcntl(staller, F_SETFL, flags | O_NONBLOCK), 0);
  std::string burst;
  for (int i = 0; i < 256; ++i) {
    burst += net::EncodeFrame(net::MakePing(static_cast<uint64_t>(i)));
  }
  for (int round = 0; round < 24; ++round) {
    if (::send(staller, burst.data(), burst.size(), MSG_NOSIGNAL) < 0) break;
  }

  // The storm: the fleet floods in over the remaining slots while the
  // first 6 archive writes hit a full disk and the seeded seam drops
  // random client sockets mid-upload.
  {
    fault::ScopedFaultPlan plan(
        {[] {
           fault::FaultRule rule =
               fault::FaultRule::FailCalls("file.write", 1, 6);
           rule.message = "No space left on device";
           return rule;
         }(),
         fault::FaultRule::FailWithProbability("loadgen.drop", 0.05)},
        seed);
    net::LoadgenOptions loadgen = LoadgenOptions(port, cer);
    loadgen.concurrency = 6;
    loadgen.max_attempts = 16;
    loadgen.io_timeout_ms = 2'000;
    loadgen.backoff.base_ms = 25;
    loadgen.backoff.cap_ms = 500;
    net::LoadgenReport report = RunLoadgenOk(loadgen);
    EXPECT_EQ(report.meters_ok, kMeters);
    EXPECT_GE(report.throttled, 1u);
  }

  // Both slow clients were swept long ago (their deadlines are far below
  // the fleet's upload time); draining surfaces the deferred EOFs.
  EXPECT_TRUE(DrainUntilPeerClose(staller, 10'000));
  EXPECT_TRUE(DrainUntilPeerClose(idler, 10'000));
  ::close(staller);
  ::close(idler);

  // Deterministic admission overflow: five fresh connections race for four
  // slots, so exactly one is shed — watch for its close.
  {
    std::vector<int> conns;
    for (int i = 0; i < 5; ++i) {
      const int fd = DialLoopback(port);
      ASSERT_GE(fd, 0);
      conns.push_back(fd);
    }
    bool one_shed = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (!one_shed && std::chrono::steady_clock::now() < deadline) {
      for (int fd : conns) {
        pollfd p{fd, POLLIN, 0};
        if (::poll(&p, 1, 50) > 0 &&
            (p.revents & (POLLIN | POLLERR | POLLHUP))) {
          char buf[64];
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n >= 0) {
            one_shed = true;  // THROTTLE bytes or EOF: this one was refused
            break;
          }
        }
      }
    }
    EXPECT_TRUE(one_shed);
    for (int fd : conns) ::close(fd);
  }

  // The SIGUSR1 dump carries every overload counter.
  running.server->RequestStatsDump();
  for (int i = 0; i < 500 && running.server->stats_dumps() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(running.server->stats_dumps(), 1u);
  running.DrainAndJoin();
  ASSERT_OK(running.result);

  const std::string blob = stats.str();
  for (const char* key :
       {"connections_shed", "accepts_emfile", "throttles_sent",
        "rate_limited", "memory_throttled", "idle_drops",
        "write_stall_drops", "persists_paused", "circuit_opens",
        "ingest_memory_bytes"}) {
    EXPECT_NE(blob.find("\"" + std::string(key) + "\""), std::string::npos)
        << "missing counter in stats dump: " << key << "\n"
        << blob;
  }

  // Every engineered degradation actually fired.
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_GE(counters.connections_shed, 1u);
  EXPECT_GE(counters.throttles_sent, 1u);
  EXPECT_GE(counters.rate_limited, 1u);
  EXPECT_GE(counters.memory_throttled, 1u);
  EXPECT_GE(counters.idle_drops, 1u);
  EXPECT_GE(counters.write_stall_drops, 1u);
  EXPECT_GE(counters.persists_paused, 1u);
  EXPECT_GE(counters.circuit_opens, 1u);
  EXPECT_EQ(counters.households_persisted, kMeters);

  // And none of it dented durability: clean fsck, byte-identical archive.
  std::ostringstream out, err;
  EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out, err), 0)
      << out.str() << err.str();
  ExpectDirsBitIdentical(dir + "/offline", online);
}

}  // namespace
}  // namespace smeter
