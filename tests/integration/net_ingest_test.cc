// End-to-end drills for the ingestion daemon over real loopback sockets:
// a loadgen fleet streamed through ingestd must leave an archive
// byte-identical to the offline `encode-fleet` run on the same traces;
// dropped connections must reconnect and converge; and a damaged archive
// must come back through fsck --repair plus a --resume restart — the same
// crash-recovery contract the storage layer gives the offline pipeline.
//
// CI soaks the seeded test (NetIngestSoakTest) across many
// SMETER_FAULT_SEED values under ASan; see .github/workflows.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "common/fault_injection.h"
#include "common/sync.h"
#include "core/fleet_manifest.h"
#include "net/archive_sink.h"
#include "net/ingest_server.h"
#include "net/loadgen.h"
#include "testutil.h"

namespace smeter {
namespace {

constexpr size_t kMeters = 6;

std::string RunCliOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = cli::RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A fresh scratch dir with a simulated CER fleet at <dir>/meters.cer.
std::string MakeFleetDir(const std::string& name) {
  std::string dir = smeter::testing::TempPath(name);
  std::filesystem::remove_all(dir);
  RunCliOk({"simulate", "--format", "cer", "--out", dir, "--houses",
            std::to_string(kMeters), "--days", "2", "--seed", "17",
            "--outages", "1.0"});
  return dir;
}

// The offline reference: encode-fleet over the same CER file with the
// same sensor-side parameters the loadgen meters use.
void EncodeFleetOffline(const std::string& cer, const std::string& out_dir) {
  RunCliOk({"encode-fleet", "--input", cer, "--format", "cer", "--out",
            out_dir, "--window", "1800", "--sample-period", "1800",
            "--threads", "1", "--max-retries", "0"});
}

// Every artifact a completed kMeters CER fleet leaves behind (simulate
// numbers CER meters from 1000).
std::vector<std::string> NetArtifacts() {
  std::vector<std::string> names;
  for (size_t m = 0; m < kMeters; ++m) {
    names.push_back("meter_" + std::to_string(1000 + m) + ".table");
    names.push_back("meter_" + std::to_string(1000 + m) + ".symbols");
  }
  names.push_back("fleet.manifest");
  names.push_back("quality.json");
  return names;
}

void ExpectDirsBitIdentical(const std::string& a, const std::string& b) {
  for (const std::string& name : NetArtifacts()) {
    SCOPED_TRACE(name);
    std::string contents = ReadAll(a + "/" + name);
    EXPECT_FALSE(contents.empty());
    EXPECT_EQ(contents, ReadAll(b + "/" + name));
  }
}

// An ingest server running on its own thread; joins on destruction.
// Not movable: the serving thread holds `this`.
struct RunningServer {
  std::unique_ptr<net::IngestServer> server;
  std::thread thread;
  Status result;

  RunningServer() = default;
  RunningServer(const RunningServer&) = delete;
  RunningServer& operator=(const RunningServer&) = delete;

  void Start(net::IngestServerOptions options) {
    auto created = net::IngestServer::Create(std::move(options));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    if (!created.ok()) return;
    server = std::move(created.value());
    thread = std::thread([this] { result = server->Run(); });
  }

  // Like Start, but routes RequestStatsDump's JSON into `stats_out`
  // (redirected before the serving thread can claim the server role).
  void StartWithStats(net::IngestServerOptions options,
                      std::ostream* stats_out) {
    auto created = net::IngestServer::Create(std::move(options));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    if (!created.ok()) return;
    server = std::move(created.value());
    {
      ScopedThreadRole owner(server->role());
      server->set_stats_out(stats_out);
    }
    thread = std::thread([this] { result = server->Run(); });
  }

  void DrainAndJoin() {
    if (!thread.joinable()) return;
    server->RequestDrain();
    thread.join();
  }

  ~RunningServer() {
    if (thread.joinable()) {
      server->RequestDrain();
      thread.join();
    }
  }
};

net::IngestServerOptions ServerOptions(const std::string& archive_dir) {
  net::IngestServerOptions options;
  options.archive_dir = archive_dir;
  options.port = 0;  // ephemeral
  options.drain_grace_ms = 500;
  return options;
}

// Loadgen options mirroring EncodeFleetOffline's sensor-side parameters.
net::LoadgenOptions LoadgenOptions(uint16_t port, const std::string& cer) {
  net::LoadgenOptions options;
  options.port = port;
  options.input_cer = cer;
  options.encode.pipeline.window_seconds = 1800;
  options.encode.pipeline.window.sample_period_seconds = 1800;
  options.encode.gap_aware = true;
  options.batch_symbols = 16;  // several SYMBOL_BATCH frames per meter
  options.concurrency = 3;
  return options;
}

net::LoadgenReport RunLoadgenOk(const net::LoadgenOptions& options) {
  Result<net::LoadgenReport> report = net::RunLoadgen(options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report.value() : net::LoadgenReport{};
}

TEST(NetIngestTest, LoopbackArchiveMatchesOfflineEncodeFleet) {
  std::string dir = MakeFleetDir("net_ingest_equivalence");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();  // exit_after_households drains the server
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_total, kMeters);
  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_EQ(report.meters_failed, 0u);
  EXPECT_EQ(report.reconnects, 0u);
  EXPECT_GT(report.symbols_sent, 0u);

  // The serving thread has joined; the test thread owns the server again.
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters& counters = running.server->counters();
  EXPECT_EQ(counters.sessions_completed, kMeters);
  EXPECT_EQ(counters.households_persisted, kMeters);
  EXPECT_EQ(counters.symbols_persisted, report.symbols_sent);
  EXPECT_EQ(counters.decode_errors, 0u);

  // The tentpole acceptance bar: the networked archive is byte-identical
  // to the offline one, so fsck/decode/info tooling applies unchanged.
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, DroppedConnectionsReconnectAndConverge) {
  std::string dir = MakeFleetDir("net_ingest_reconnect");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    // Kill the socket under the 2nd and 3rd batch sends: the affected
    // meters die mid-upload and must reconnect and re-upload from scratch.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("loadgen.drop", 2, 3)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 2u);
  }
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);
  EXPECT_GE(report.batches_dropped, 1u);
  // The server saw the dropped sessions and quarantined them.
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().sessions_dropped, 1u);
  EXPECT_GT(running.server->counters().sessions_accepted, kMeters);

  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, AcceptFaultSeamCostsOneConnectionNotTheListener) {
  std::string dir = MakeFleetDir("net_ingest_accept_fault");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    // The seam fails the first accept: the server closes that socket, the
    // affected meter sees a dead connection and retries, and the listener
    // itself keeps serving the rest of the fleet.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("net.accept", 1, 1)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().sessions_dropped, 1u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, RefusedTableQuarantinesSessionNotDaemon) {
  std::string dir = MakeFleetDir("net_ingest_bad_table");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    // The first TABLE_ANNOUNCE the server validates is refused with
    // kBadTable; that meter's retry (and everyone else) goes through.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("session.table", 1, 1)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().sessions_dropped, 1u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, ReUploadedFleetIsAcknowledgedAsDuplicates) {
  std::string dir = MakeFleetDir("net_ingest_duplicate");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  RunningServer running;
  running.Start(ServerOptions(dir + "/online"));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  net::LoadgenReport first = RunLoadgenOk(loadgen);
  EXPECT_EQ(first.meters_ok, kMeters);
  // The whole fleet re-uploads (a fleet-wide reconnect after, say, a
  // power cut): every GOODBYE is acked OK without rewriting anything.
  net::LoadgenReport second = RunLoadgenOk(loadgen);
  EXPECT_EQ(second.meters_ok, kMeters);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters);
  EXPECT_EQ(running.server->counters().sessions_completed, 2 * kMeters);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

TEST(NetIngestTest, DrainedServerRefusesNewSessions) {
  std::string dir = MakeFleetDir("net_ingest_drain_partial");
  const std::string cer = dir + "/meters.cer";

  // The server stops after half the fleet; the rest of the meters find a
  // closed listen socket and report failure instead of hanging.
  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.exit_after_households = kMeters / 2;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.concurrency = 1;  // deterministic: meters land in name order
  loadgen.max_attempts = 1;
  Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report->meters_ok, kMeters / 2);
  EXPECT_EQ(report->meters_failed, kMeters - kMeters / 2);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters / 2);

  // The partial archive is valid as far as it goes: fsck grades it clean.
  std::ostringstream out, err;
  EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", dir + "/online"}, out,
                                err),
            0)
      << out.str() << err.str();
}

// The satellite drill: a partially-ingested archive is damaged on disk
// (torn manifest tail, a corrupted symbol file, a stray tmp), then
// fsck --repair plus a --resume restart plus a fleet-wide reconnect must
// converge to the bit-identical clean-run archive.
TEST(NetIngestTest, DamagedArchiveRepairsResumesAndConverges) {
  std::string dir = MakeFleetDir("net_ingest_crash_resume");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";

  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.exit_after_households = 3;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenOptions loadgen =
        LoadgenOptions(running.server->port(), cer);
    loadgen.concurrency = 1;
    loadgen.max_attempts = 1;
    Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    running.thread.join();
    ASSERT_OK(running.result);
    ScopedThreadRole owner(running.server->role());
    ASSERT_EQ(running.server->counters().households_persisted, 3u);
  }

  // Damage the partial archive the way a crash plus a bad disk would.
  {
    std::string symbols = ReadAll(online + "/meter_1001.symbols");
    ASSERT_FALSE(symbols.empty());
    symbols[symbols.size() / 2] ^= 0x20;  // silent media corruption
    std::ofstream(online + "/meter_1001.symbols", std::ios::binary)
        << symbols;
    std::ofstream(online + "/fleet.manifest", std::ios::app)
        << "{\"name\":\"meter_10";  // torn mid-record append
    std::ofstream(online + "/meter_1099.symbols.tmp") << "leftover";
  }

  // fsck --repair: issues found and repaired -> exit 1, resume required;
  // a second pass must grade the repaired archive clean.
  {
    std::ostringstream out, err;
    EXPECT_EQ(cli::RunCliExitCode(
                  {"fsck", "--dir", online, "--repair", "true"}, out, err),
              1)
        << out.str() << err.str();
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out2, err2), 0)
        << out2.str() << err2.str();
  }

  // Restart with --resume; the whole fleet reconnects. Households that
  // survived the repair are acked as duplicates, the rest re-upload.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.resume = true;
    server_options.exit_after_households = kMeters;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenReport report =
        RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    running.thread.join();
    ASSERT_OK(running.result);
    EXPECT_EQ(report.meters_ok, kMeters);
    // At least meter_1001 was re-persisted; at least meter_1000 carried.
    ScopedThreadRole owner(running.server->role());
    EXPECT_GE(running.server->counters().households_persisted, 1u);
    EXPECT_LT(running.server->counters().households_persisted, kMeters);
  }

  ExpectDirsBitIdentical(dir + "/offline", online);
}

// Meters whose hash-pinned home is each shard (simulate numbers CER
// meters from 1000, the same ids loadgen replays).
std::vector<uint64_t> HomesPerShard(int shards) {
  std::vector<uint64_t> counts(static_cast<size_t>(shards), 0);
  for (size_t m = 0; m < kMeters; ++m) {
    const std::string meter = "meter_" + std::to_string(1000 + m);
    ++counts[static_cast<size_t>(net::ShardForMeter(meter, shards))];
  }
  return counts;
}

// The multi-core tentpole acceptance bar: a --threads 4 run must leave an
// archive byte-identical to the offline single-threaded reference — shard
// logs unioned, records name-sorted, no per-shard files left behind.
TEST(NetIngestTest, ShardedArchiveIsByteIdenticalToSingleThreaded) {
  std::string dir = MakeFleetDir("net_ingest_sharded");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 4;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  EXPECT_EQ(running.server->shard_count(), 4);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);

  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_EQ(counters.sessions_completed, kMeters);
  EXPECT_EQ(counters.households_persisted, kMeters);
  EXPECT_EQ(counters.decode_errors, 0u);
  // Every connection re-homed by the HELLO peek was adopted somewhere.
  EXPECT_EQ(counters.handoffs_in, counters.handoffs_out);
  // Each meter persisted on its hash-pinned home shard, wherever the
  // kernel's SO_REUSEPORT choice first landed the connection.
  const std::vector<uint64_t> homes = HomesPerShard(4);
  for (int shard = 0; shard < 4; ++shard) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    EXPECT_EQ(running.server->shard_counters(shard).households_persisted,
              homes[static_cast<size_t>(shard)]);
  }

  EXPECT_FALSE(
      std::filesystem::exists(dir + "/online/fleet.manifest.shard0"));
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// Satellite regression: meter-hash pinning is stable across reconnects —
// a meter that dies mid-upload and reconnects lands back on the same
// shard, so its Session state machine always has the same single writer.
TEST(NetIngestTest, MeterHashPinningIsStableAcrossReconnects) {
  std::string dir = MakeFleetDir("net_ingest_pinning");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 4;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report;
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("loadgen.drop", 2, 3)});
    report = RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    EXPECT_EQ(plan.TotalInjected(), 2u);
  }
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_GE(report.reconnects, 1u);

  // The loadgen.drop seam fires before any persist, so each meter
  // persists exactly once — and the pinning hash puts that persist on the
  // meter's home shard no matter how many times it reconnected.
  ScopedThreadRole owner(running.server->role());
  const std::vector<uint64_t> homes = HomesPerShard(4);
  for (int shard = 0; shard < 4; ++shard) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    EXPECT_EQ(running.server->shard_counters(shard).households_persisted,
              homes[static_cast<size_t>(shard)]);
    EXPECT_EQ(running.server->shard_counters(shard).sessions_completed,
              homes[static_cast<size_t>(shard)]);
  }
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// The no-SO_REUSEPORT fallback: shard 0 owns the only listener and deals
// raw fds round-robin; the HELLO peek then re-homes each connection to its
// hash-pinned shard through the same mailbox.
TEST(NetIngestTest, SingleAcceptorFallbackRehomesByMeterHash) {
  std::string dir = MakeFleetDir("net_ingest_single_acceptor");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 3;
  server_options.force_single_acceptor = true;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);

  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  // All accepts happened on the dealing shard; with 3 shards at least some
  // fds were dealt or re-homed across the mailbox.
  EXPECT_EQ(running.server->shard_counters(1).sessions_accepted, 0u);
  EXPECT_EQ(running.server->shard_counters(2).sessions_accepted, 0u);
  EXPECT_GT(counters.handoffs_out, 0u);
  EXPECT_EQ(counters.handoffs_in, counters.handoffs_out);
  const std::vector<uint64_t> homes = HomesPerShard(3);
  for (int shard = 0; shard < 3; ++shard) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    EXPECT_EQ(running.server->shard_counters(shard).households_persisted,
              homes[static_cast<size_t>(shard)]);
  }
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// loadgen --connections: the fleet multiplexes over two persistent TCP
// connections, sessions back-to-back on each socket; the server resets
// the session to ExpectHello after every GOODBYE_ACK instead of closing.
TEST(NetIngestTest, MultiplexedConnectionsCarrySessionsBackToBack) {
  std::string dir = MakeFleetDir("net_ingest_multiplexed");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");

  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 2;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);

  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.connections = 2;
  net::LoadgenReport report = RunLoadgenOk(loadgen);
  running.thread.join();
  ASSERT_OK(running.result);

  EXPECT_EQ(report.meters_ok, kMeters);
  EXPECT_EQ(report.meters_failed, 0u);
  // Two sockets carried all six sessions.
  EXPECT_EQ(report.connections_opened, 2u);
  ScopedThreadRole owner(running.server->role());
  const net::IngestCounters counters = running.server->counters();
  EXPECT_EQ(counters.sessions_accepted, 2u);
  EXPECT_EQ(counters.sessions_completed, kMeters);
  // Completed keep-alive conversations are clean ends, not drops.
  EXPECT_EQ(counters.sessions_dropped, 0u);
  ExpectDirsBitIdentical(dir + "/offline", dir + "/online");
}

// SIGUSR1 path (the handler calls exactly RequestStatsDump): every shard
// snapshots its own counters and the last one to publish emits a single
// aggregated JSON blob.
TEST(NetIngestTest, StatsDumpAggregatesEveryShard) {
  std::string dir = MakeFleetDir("net_ingest_stats");
  const std::string cer = dir + "/meters.cer";

  std::ostringstream stats;
  net::IngestServerOptions server_options = ServerOptions(dir + "/online");
  server_options.threads = 3;
  RunningServer running;
  running.StartWithStats(std::move(server_options), &stats);
  ASSERT_NE(running.server, nullptr);

  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  EXPECT_EQ(report.meters_ok, kMeters);

  running.server->RequestStatsDump();
  for (int i = 0; i < 500 && running.server->stats_dumps() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(running.server->stats_dumps(), 1u);
  running.DrainAndJoin();
  ASSERT_OK(running.result);

  const std::string blob = stats.str();
  EXPECT_NE(blob.find("\"shards\": ["), std::string::npos) << blob;
  EXPECT_NE(blob.find("\"total\":"), std::string::npos) << blob;
  // Three shard objects plus the total, each with the full counter set.
  size_t occurrences = 0;
  for (size_t pos = blob.find("\"sessions_accepted\"");
       pos != std::string::npos;
       pos = blob.find("\"sessions_accepted\"", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 4u) << blob;
}

// Fabricates the on-disk signature of a --threads N daemon killed before
// Finalize: a partial single-log run is re-split so the main manifest
// holds one record and per-shard append logs hold the rest (one of them
// torn mid-append). Leaves 3 households durably checkpointed.
void FabricateShardedCrash(const std::string& online,
                           const std::string& cer) {
  net::IngestServerOptions server_options = ServerOptions(online);
  server_options.exit_after_households = 3;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  net::LoadgenOptions loadgen = LoadgenOptions(running.server->port(), cer);
  loadgen.concurrency = 1;  // deterministic: meters land in name order
  loadgen.max_attempts = 1;
  Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  running.thread.join();
  ASSERT_OK(running.result);

  Result<ManifestContents> manifest =
      LoadFleetManifest(online + "/fleet.manifest");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->reports.size(), 3u);
  // Main manifest keeps only the first record; the other two move into
  // shard logs, as if two shards had checkpointed them when the daemon
  // died. Shard 2's log is empty; shard 3's has a torn trailing append.
  std::ofstream(online + "/fleet.manifest", std::ios::binary)
      << BuildManifestLog({manifest->reports[0]});
  std::ofstream(online + "/" + net::ShardManifestFile(1), std::ios::binary)
      << BuildManifestLog({manifest->reports[1]});
  std::ofstream(online + "/" + net::ShardManifestFile(2), std::ios::binary)
      << BuildManifestLog({});
  std::ofstream(online + "/" + net::ShardManifestFile(3), std::ios::binary)
      << BuildManifestLog({manifest->reports[2]}) << "{\"name\":\"met";
}

// Kill-and-resume at --threads 4, sink-level recovery: Open(resume) unions
// the leftover shard logs directly (no fsck pass) and the restarted
// sharded daemon converges to the clean-run archive.
TEST(NetIngestTest, KilledShardedRunResumesDirectlyAndConverges) {
  std::string dir = MakeFleetDir("net_ingest_sharded_kill");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";
  FabricateShardedCrash(online, cer);

  net::IngestServerOptions server_options = ServerOptions(online);
  server_options.threads = 4;
  server_options.resume = true;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  // The three checkpointed households were carried, not re-persisted.
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, kMeters - 3);

  EXPECT_FALSE(std::filesystem::exists(online + "/" +
                                       net::ShardManifestFile(1)));
  ExpectDirsBitIdentical(dir + "/offline", online);
}

// Kill-and-resume via fsck: --repair unions the shard logs into the main
// manifest (torn tails contribute their valid prefix), removes them, and
// grades the archive clean on the second pass.
TEST(NetIngestTest, FsckMergesLeftoverShardLogs) {
  std::string dir = MakeFleetDir("net_ingest_sharded_fsck");
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";
  FabricateShardedCrash(online, cer);

  {
    std::ostringstream out, err;
    EXPECT_EQ(cli::RunCliExitCode(
                  {"fsck", "--dir", online, "--repair", "true"}, out, err),
              1)
        << out.str() << err.str();
    EXPECT_NE(out.str().find("shard_manifest"), std::string::npos)
        << out.str();
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out2, err2), 0)
        << out2.str() << err2.str();
  }
  for (int shard = 1; shard <= 3; ++shard) {
    EXPECT_FALSE(std::filesystem::exists(
        online + "/" + net::ShardManifestFile(shard)));
  }
  Result<ManifestContents> merged =
      LoadFleetManifest(online + "/fleet.manifest");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->reports.size(), 3u);

  // A resumed sharded daemon finishes the fleet from the merged manifest.
  net::IngestServerOptions server_options = ServerOptions(online);
  server_options.threads = 4;
  server_options.resume = true;
  server_options.exit_after_households = kMeters;
  RunningServer running;
  running.Start(std::move(server_options));
  ASSERT_NE(running.server, nullptr);
  net::LoadgenReport report =
      RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
  running.thread.join();
  ASSERT_OK(running.result);
  EXPECT_EQ(report.meters_ok, kMeters);
  ExpectDirsBitIdentical(dir + "/offline", online);
}

// Shard count for the randomized soak below: the storm and the recovery
// both run against a sharded server so every fault seam also fires across
// the handoff / per-shard-manifest paths. SMETER_SOAK_THREADS overrides
// (CI pins it to 4 explicitly; 1 reproduces the single-loop storm).
int SoakThreads() {
  if (const char* env = std::getenv("SMETER_SOAK_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1 && parsed <= 64) return parsed;
  }
  return 4;
}

// Seeded soak: a randomized storm of connection drops, refused tables,
// server I/O failures, and silent bit flips on archive writes — then
// repair + resume + reconnect must still converge. CI sweeps
// SMETER_FAULT_SEED.
TEST(NetIngestSoakTest, RandomizedFaultsThenRepairResumeConverge) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("SMETER_FAULT_SEED")) {
    uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) seed = parsed;
  }
  SCOPED_TRACE("SMETER_FAULT_SEED=" + std::to_string(seed));
  std::string dir =
      MakeFleetDir("net_ingest_soak_" + std::to_string(seed));
  const std::string cer = dir + "/meters.cer";
  EncodeFleetOffline(cer, dir + "/offline");
  const std::string online = dir + "/online";

  // Storm phase: any per-meter outcome is a legal crash signature; the
  // daemon itself must survive and drain cleanly.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.threads = SoakThreads();
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenOptions loadgen =
        LoadgenOptions(running.server->port(), cer);
    loadgen.max_attempts = 2;
    loadgen.io_timeout_ms = 2'000;
    {
      fault::ScopedFaultPlan plan(
          {fault::FaultRule::FailWithProbability("loadgen.drop", 0.05),
           fault::FaultRule::FailWithProbability("net.read", 0.02),
           fault::FaultRule::FailWithProbability("net.write", 0.02),
           fault::FaultRule::FailWithProbability("session.table", 0.1),
           fault::FaultRule::FailWithProbability("file.write", 0.05),
           fault::FaultRule::CorruptBytesWithProbability("io.write", 3,
                                                         0.1)},
          seed);
      Result<net::LoadgenReport> report = net::RunLoadgen(loadgen);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
    }
    running.DrainAndJoin();
    ASSERT_OK(running.result);
  }

  // Repair must converge: one --repair pass, then a clean bill.
  {
    std::ostringstream out, err;
    int code = cli::RunCliExitCode(
        {"fsck", "--dir", online, "--repair", "true"}, out, err);
    EXPECT_NE(code, 4) << out.str() << err.str();
    std::ostringstream out2, err2;
    EXPECT_EQ(cli::RunCliExitCode({"fsck", "--dir", online}, out2, err2), 0)
        << out2.str() << err2.str();
  }

  // Recovery: resume + full reconnect, no faults — sharded too, so the
  // resume path unions whatever per-shard logs the storm left behind.
  {
    net::IngestServerOptions server_options = ServerOptions(online);
    server_options.threads = SoakThreads();
    server_options.resume = true;
    server_options.exit_after_households = kMeters;
    RunningServer running;
    running.Start(std::move(server_options));
    ASSERT_NE(running.server, nullptr);
    net::LoadgenReport report =
        RunLoadgenOk(LoadgenOptions(running.server->port(), cer));
    running.thread.join();
    ASSERT_OK(running.result);
    EXPECT_EQ(report.meters_ok, kMeters);
  }

  ExpectDirsBitIdentical(dir + "/offline", online);
}

}  // namespace
}  // namespace smeter
