// End-to-end drills for the query daemon over real loopback sockets.
//
// The equivalence chain under test: a fleet streamed through the ingest
// daemon leaves an archive byte-identical to offline encode-fleet (proved
// by net_ingest_test); here we extend it one hop — store-build over both
// archives must produce byte-identical stores, and every answer queryd
// serves from one must equal a direct ArchiveStore read of the other.
//
// Also here: admission/memory THROTTLE behavior, drain + SIGUSR1-style
// stats dumps, the query.accept fault seam, exit_after_queries, and a
// seeded multi-client query storm against a store whose current table a
// live writer keeps appending to (CI soaks QueryStormSoakTest across many
// SMETER_FAULT_SEED values under ASan; see .github/workflows).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "common/fault_injection.h"
#include "common/io.h"
#include "common/sync.h"
#include "core/archive_store.h"
#include "net/ingest_server.h"
#include "net/loadgen.h"
#include "net/query_client.h"
#include "net/query_server.h"
#include "testutil.h"

namespace smeter {
namespace {

namespace fs = std::filesystem;

constexpr size_t kMeters = 4;

std::string RunCliOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = cli::RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

// simulate + offline encode-fleet; returns the scratch dir with
// meters.cer and <dir>/offline populated.
std::string MakeFleetDir(const std::string& name) {
  std::string dir = smeter::testing::TempPath(name);
  fs::remove_all(dir);
  RunCliOk({"simulate", "--format", "cer", "--out", dir, "--houses",
            std::to_string(kMeters), "--days", "2", "--seed", "17",
            "--outages", "1.0"});
  RunCliOk({"encode-fleet", "--input", dir + "/meters.cer", "--format",
            "cer", "--out", dir + "/offline", "--window", "1800",
            "--sample-period", "1800", "--threads", "1", "--max-retries",
            "0"});
  return dir;
}

std::map<std::string, std::string> SnapshotDir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files[fs::relative(entry.path(), dir).generic_string()] =
        io::ReadFileToString(entry.path().string()).value();
  }
  return files;
}

struct RunningQueryServer {
  std::unique_ptr<net::QueryServer> server;
  std::thread thread;
  Status result;

  RunningQueryServer() = default;
  RunningQueryServer(const RunningQueryServer&) = delete;
  RunningQueryServer& operator=(const RunningQueryServer&) = delete;

  void Start(net::QueryServerOptions options,
             std::ostream* stats_out = nullptr) {
    auto created = net::QueryServer::Create(std::move(options));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    server = std::move(created.value());
    if (stats_out != nullptr) {
      ScopedThreadRole owner(server->role());
      server->set_stats_out(stats_out);
    }
    thread = std::thread([this] { result = server->Run(); });
  }

  void DrainAndJoin() {
    if (!thread.joinable()) return;
    server->RequestDrain();
    thread.join();
  }

  ~RunningQueryServer() {
    if (thread.joinable()) {
      server->RequestDrain();
      thread.join();
    }
  }
};

net::QueryServerOptions QuerydOptions(const std::string& store_dir) {
  net::QueryServerOptions options;
  options.store_dir = store_dir;
  options.port = 0;  // ephemeral
  options.drain_grace_ms = 500;
  options.idle_timeout_ms = 0;  // tests drive their own lifecycle
  return options;
}

Result<std::unique_ptr<net::QueryClient>> ConnectTo(
    const RunningQueryServer& running) {
  net::QueryClientOptions options;
  options.port = running.server->port();
  return net::QueryClient::Connect(options);
}

TEST(QueryServingTest, ServedAnswersMatchDirectReadsOfTheOfflineStore) {
  std::string dir = MakeFleetDir("query_serving_equivalence");

  // The sharded ingest daemon writes the online archive from streamed
  // frames; net_ingest_test proves it byte-identical to offline — here we
  // carry that identity through store-build.
  {
    net::IngestServerOptions ingest;
    ingest.archive_dir = dir + "/online";
    ingest.port = 0;
    ingest.drain_grace_ms = 500;
    ingest.exit_after_households = kMeters;
    auto created = net::IngestServer::Create(std::move(ingest));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::thread serving(
        [&server = *created.value()] { (void)server.Run(); });
    net::LoadgenOptions loadgen;
    loadgen.port = created.value()->port();
    loadgen.input_cer = dir + "/meters.cer";
    loadgen.encode.pipeline.window_seconds = 1800;
    loadgen.encode.pipeline.window.sample_period_seconds = 1800;
    loadgen.encode.gap_aware = true;
    loadgen.batch_symbols = 16;
    loadgen.concurrency = 2;
    auto report = net::RunLoadgen(loadgen);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->meters_ok, kMeters);
    serving.join();
  }

  RunCliOk({"store-build", "--archive", dir + "/online", "--store",
            dir + "/store_online"});
  RunCliOk({"store-build", "--archive", dir + "/offline", "--store",
            dir + "/store_offline"});
  EXPECT_EQ(SnapshotDir(dir + "/store_online"),
            SnapshotDir(dir + "/store_offline"));

  // Serve the online store; cross-check every answer against direct reads
  // of the offline one.
  auto direct = ArchiveStore::Open(dir + "/store_offline");
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  RunningQueryServer running;
  running.Start(QuerydOptions(dir + "/store_online"));
  auto client = ConnectTo(running);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const TimeRange window = {0, 4 * kSecondsPerDay};
  for (size_t m = 0; m < kMeters; ++m) {
    const std::string meter = "meter_" + std::to_string(1000 + m);
    SCOPED_TRACE(meter);

    auto point = (*client)->Point(meter);
    ASSERT_TRUE(point.ok()) << point.status().ToString();
    ASSERT_EQ(point->status, net::WireStatus::kOk);
    auto latest = (*direct)->Latest(meter);
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(point->timestamp, latest->timestamp);
    EXPECT_EQ(point->level, latest->level);
    EXPECT_EQ(point->symbol, latest->symbol == kStoreGapSymbol
                                 ? net::kWireGapSymbol
                                 : latest->symbol);

    auto range = (*client)->Range(meter, window, /*level=*/0,
                                  /*max_symbols=*/200'000);
    ASSERT_TRUE(range.ok()) << range.status().ToString();
    ASSERT_EQ(range->status, net::WireStatus::kOk);
    auto scan = (*direct)->Scan(meter, window, 0, 200'000);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(range->start_timestamp, scan->start_timestamp);
    EXPECT_EQ(range->step_seconds, scan->step_seconds);
    EXPECT_EQ(range->level, scan->level);
    EXPECT_EQ(range->symbols,
              std::vector<uint16_t>(scan->symbols.begin(),
                                    scan->symbols.end()));
  }

  auto aggregate = (*client)->Aggregate(window, /*level=*/1);
  ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();
  ASSERT_EQ(aggregate->status, net::WireStatus::kOk);
  auto expect = (*direct)->Aggregate(window, 1);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(aggregate->meters, expect->meters);
  EXPECT_EQ(aggregate->windows, expect->windows);
  EXPECT_EQ(aggregate->gaps, expect->gaps);
  EXPECT_EQ(aggregate->histogram, expect->histogram);

  // Unknown meters are a per-query kNotFound, not a dropped connection.
  auto missing = (*client)->Point("meter_9999");
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(missing->status, net::WireStatus::kNotFound);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().queries_point, kMeters + 1);
  EXPECT_EQ(running.server->counters().queries_range, kMeters);
  EXPECT_EQ(running.server->counters().queries_aggregate, 1u);
  EXPECT_EQ(running.server->counters().connections_dropped, 0u);
}

TEST(QueryServingTest, AdmissionLimitShedsWithThrottle) {
  std::string dir = MakeFleetDir("query_admission");
  RunCliOk({"store-build", "--archive", dir + "/offline", "--store",
            dir + "/store"});
  net::QueryServerOptions options = QuerydOptions(dir + "/store");
  options.max_connections = 1;
  RunningQueryServer running;
  running.Start(std::move(options));

  auto first = ConnectTo(running);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The second connection is refused at accept with a THROTTLE frame the
  // client surfaces as a typed error, not a silent hangup.
  auto second = ConnectTo(running);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("admission"), std::string::npos)
      << second.status().ToString();
  // The admitted connection still serves.
  auto point = (*first)->Point("meter_1000");
  EXPECT_TRUE(point.ok()) << point.status().ToString();

  running.DrainAndJoin();
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().connections_shed, 1u);
  EXPECT_GE(running.server->counters().throttles_sent, 1u);
}

TEST(QueryServingTest, MemoryBudgetThrottlesOversizedReplies) {
  std::string dir = MakeFleetDir("query_memory");
  RunCliOk({"store-build", "--archive", dir + "/offline", "--store",
            dir + "/store"});
  net::QueryServerOptions options = QuerydOptions(dir + "/store");
  options.memory_budget = 256;  // smaller than any full-range reply
  RunningQueryServer running;
  running.Start(std::move(options));

  auto client = ConnectTo(running);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto range = (*client)->Range("meter_1000", {0, 4 * kSecondsPerDay}, 0,
                                200'000);
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.status().message().find("memory"), std::string::npos)
      << range.status().ToString();

  running.DrainAndJoin();
  ScopedThreadRole owner(running.server->role());
  EXPECT_GE(running.server->counters().memory_throttled, 1u);
}

TEST(QueryServingTest, AcceptFaultSeamDropsThatConnectionOnly) {
  std::string dir = MakeFleetDir("query_accept_seam");
  RunCliOk({"store-build", "--archive", dir + "/offline", "--store",
            dir + "/store"});
  RunningQueryServer running;
  running.Start(QuerydOptions(dir + "/store"));

  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("query.accept", 1, 1)});
    auto dropped = ConnectTo(running);
    EXPECT_FALSE(dropped.ok());
  }
  // The listener survives; the next connection is served normally.
  auto client = ConnectTo(running);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Point("meter_1000").ok());

  running.DrainAndJoin();
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().connections_dropped, 1u);
}

TEST(QueryServingTest, StatsDumpAndDeterministicExitAfterQueries) {
  std::string dir = MakeFleetDir("query_stats_exit");
  RunCliOk({"store-build", "--archive", dir + "/offline", "--store",
            dir + "/store"});
  net::QueryServerOptions options = QuerydOptions(dir + "/store");
  options.exit_after_queries = 3;
  std::ostringstream stats;
  RunningQueryServer running;
  running.Start(std::move(options), &stats);

  auto client = ConnectTo(running);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Point("meter_1000").ok());

  running.server->RequestStatsDump();
  while (running.server->stats_dumps() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  EXPECT_TRUE((*client)->Point("meter_1001").ok());
  (void)(*client)->Aggregate({0, kSecondsPerDay}, 1);
  running.thread.join();  // query #3 trips exit_after_queries
  ASSERT_OK(running.result);

  const std::string dumped = stats.str();
  EXPECT_NE(dumped.find("\"queries_point\""), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\"connections_accepted\""), std::string::npos);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().queries_point +
                running.server->counters().queries_range +
                running.server->counters().queries_aggregate,
            3u);
}

// Seeded storm: several clients fire randomized query mixes (valid and
// invalid meters, windows, and levels) while a live writer keeps appending
// to the store's current log — the refresh path runs against a moving
// file. CI sweeps SMETER_FAULT_SEED over this test under ASan.
TEST(QueryStormSoakTest, RandomizedStormAgainstLiveCurrentWrites) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("SMETER_FAULT_SEED")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) seed = parsed;
  }
  SCOPED_TRACE("SMETER_FAULT_SEED=" + std::to_string(seed));

  std::string dir =
      MakeFleetDir("query_storm_" + std::to_string(seed));
  RunCliOk({"store-build", "--archive", dir + "/offline", "--store",
            dir + "/store"});
  RunningQueryServer running;
  running.Start(QuerydOptions(dir + "/store"));

  constexpr int kClients = 3;
  constexpr int kQueriesPerClient = 40;

  std::atomic<bool> stop{false};
  std::thread live_writer([&] {
    auto writer = CurrentTableWriter::Open(dir + "/store");
    ASSERT_TRUE(writer.ok());
    CurrentRecord record;
    record.meter = "meter_1000";
    record.level = 1;
    record.symbol = 1;
    Timestamp now = 10 * kSecondsPerDay;
    while (!stop.load()) {
      record.timestamp = now;
      now += 1800;
      (void)(*writer)->Update(record);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    (void)(*writer)->Close();
  });

  std::atomic<uint64_t> served{0}, refused{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ConnectTo(running);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      std::mt19937_64 rng(seed * 1000 + static_cast<uint64_t>(c));
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::string meter =
            "meter_" + std::to_string(1000 + rng() % (kMeters + 2));
        const int64_t a =
            static_cast<int64_t>(rng() % (5 * kSecondsPerDay)) -
            kSecondsPerDay;
        const int64_t b = a + 1 + static_cast<int64_t>(
                                      rng() % (3 * kSecondsPerDay));
        Result<net::WireStatus> status = InternalError("unset");
        switch (rng() % 3) {
          case 0: {
            auto result = (*client)->Point(meter);
            if (result.ok()) status = result->status;
            break;
          }
          case 1: {
            auto result = (*client)->Range(
                meter, {a, b}, static_cast<int>(rng() % 3),
                1 + static_cast<uint32_t>(rng() % 4096));
            if (result.ok()) status = result->status;
            break;
          }
          default: {
            auto result =
                (*client)->Aggregate({a, b}, 1 + static_cast<int>(rng() % 2));
            if (result.ok()) status = result->status;
            break;
          }
        }
        // Every query must come back as a typed result frame — ok or a
        // per-query error status — never a dropped connection.
        ASSERT_TRUE(status.ok()) << status.status().ToString();
        (*status == net::WireStatus::kOk ? served : refused)++;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  live_writer.join();

  // The live writer's fresher row must be visible through the server.
  auto client = ConnectTo(running);
  ASSERT_TRUE(client.ok());
  auto point = (*client)->Point("meter_1000");
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  ASSERT_EQ(point->status, net::WireStatus::kOk);
  EXPECT_GE(point->timestamp, 10 * kSecondsPerDay);

  running.DrainAndJoin();
  ASSERT_OK(running.result);
  EXPECT_GT(served.load(), 0u);
  ScopedThreadRole owner(running.server->role());
  const net::QueryCounters counters = running.server->counters();
  EXPECT_EQ(counters.queries_point + counters.queries_range +
                counters.queries_aggregate,
            served.load() + refused.load() + 1);  // +1 final point check
  EXPECT_EQ(counters.connections_dropped, 0u);
}

}  // namespace
}  // namespace smeter
