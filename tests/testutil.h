// Shared helpers for the smeter test suite.

#ifndef SMETER_TESTS_TESTUTIL_H_
#define SMETER_TESTS_TESTUTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/time_series.h"

// Asserts that a Status is OK, printing the message otherwise. The status
// is copied so that `result.status()` on a temporary Result is safe.
#define ASSERT_OK(expr)                                            \
  do {                                                             \
    const ::smeter::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();         \
  } while (false)

#define EXPECT_OK(expr)                                            \
  do {                                                             \
    const ::smeter::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();         \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                           \
  ASSERT_OK_AND_ASSIGN_IMPL(SMETER_CONCAT(_res_, __LINE__), lhs, rexpr)
#define ASSERT_OK_AND_ASSIGN_IMPL(res, lhs, rexpr)                 \
  auto res = (rexpr);                                              \
  ASSERT_TRUE(res.ok()) << "status: " << res.status().ToString();  \
  lhs = std::move(res.value())
#define SMETER_CONCAT_INNER(a, b) a##b
#define SMETER_CONCAT(a, b) SMETER_CONCAT_INNER(a, b)

namespace smeter::testing {

// A gapless 1 Hz series with the given values starting at t = 0.
TimeSeries MakeSeries(const std::vector<double>& values);

// `n` log-normal draws (the smart-meter-like marginal), deterministic.
std::vector<double> LogNormalValues(size_t n, uint64_t seed, double mu = 5.0,
                                    double sigma = 1.0);

// A unique writable temp path under the test's scratch directory.
std::string TempPath(const std::string& name);

}  // namespace smeter::testing

#endif  // SMETER_TESTS_TESTUTIL_H_
