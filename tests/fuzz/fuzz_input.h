// Minimal structured-input helper for fuzz harnesses, in the spirit of
// LLVM's FuzzedDataProvider but dependency-free so the harnesses build with
// any toolchain. Consumes from the front of the buffer; every accessor is
// total (returns a default when the buffer runs dry) so harness control
// flow depends only on the input bytes.

#ifndef SMETER_TESTS_FUZZ_FUZZ_INPUT_H_
#define SMETER_TESTS_FUZZ_FUZZ_INPUT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace smeter::fuzz {

class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  uint8_t TakeByte() { return empty() ? 0 : data_[pos_++]; }

  // Little-endian fixed-width integer; zero-padded when bytes run out.
  uint64_t TakeUint64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(TakeByte()) << (8 * i);
    }
    return v;
  }

  // Uniform-ish value in [lo, hi] (inclusive); lo when the range is empty.
  int TakeIntInRange(int lo, int hi) {
    if (lo >= hi) return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(TakeUint64() % span);
  }

  // A finite double scaled into a plausible meter-reading magnitude, or a
  // raw bit pattern (possibly NaN/Inf) when `raw` draws true — harnesses
  // must survive both.
  double TakeDouble() {
    uint64_t bits = TakeUint64();
    if ((bits & 1) == 0) {
      // Scaled: keep the value within ~[-1e6, 1e6].
      return (static_cast<double>(bits >> 1) /
              static_cast<double>(UINT64_MAX >> 1)) *
                 2e6 -
             1e6;
    }
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Remaining bytes as a string (consumes everything).
  std::string TakeRemainingString() {
    std::string s(reinterpret_cast<const char*>(data_ + pos_), remaining());
    pos_ = size_;
    return s;
  }

  // Up to `n` bytes as a string.
  std::string TakeString(size_t n) {
    size_t take = n < remaining() ? n : remaining();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), take);
    pos_ += take;
    return s;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace smeter::fuzz

#endif  // SMETER_TESTS_FUZZ_FUZZ_INPUT_H_
