// Fuzz harness for the symbolic codec: lookup-table construction over
// arbitrary training data, encode→pack→unpack→decode round-trips, and the
// wire-format parser on raw bytes.
//
// Crash conditions (beyond sanitizer reports): a round-trip that does not
// reproduce the packed symbols, a reconstruction outside the symbol's
// range, or a Serialize blob its own Deserialize rejects.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/batch_encoder.h"
#include "core/codec.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "fuzz_input.h"

namespace smeter {
namespace {

using fuzz::FuzzInput;

// Raw bytes through the wire-format parser; a successful parse must
// re-pack to a blob that parses to the same series.
void FuzzUnpack(const std::string& blob) {
  Result<SymbolicSeries> series = UnpackSymbolicSeries(blob);
  if (!series.ok()) return;
  Result<std::string> repacked = PackSymbolicSeries(series.value());
  SMETER_CHECK(repacked.ok());
  Result<SymbolicSeries> again = UnpackSymbolicSeries(repacked.value());
  SMETER_CHECK(again.ok());
  SMETER_CHECK_EQ(again->size(), series->size());
  for (size_t i = 0; i < series->size(); ++i) {
    SMETER_CHECK((*series)[i] == (*again)[i]);
  }
}

// Arbitrary (level, method, training data) through table construction, then
// the full encode→pack→unpack→decode pipeline.
void FuzzTableRoundTrip(FuzzInput& in) {
  // Deliberately includes out-of-range levels and hostile values; those
  // must surface as Status errors, never UB.
  const int level = in.TakeIntInRange(0, kMaxSymbolLevel + 2);
  LookupTableOptions options;
  options.level = level;
  switch (in.TakeByte() % 3) {
    case 0: options.method = SeparatorMethod::kUniform; break;
    case 1: options.method = SeparatorMethod::kMedian; break;
    default: options.method = SeparatorMethod::kDistinctMedian; break;
  }
  const size_t n_train = static_cast<size_t>(in.TakeIntInRange(0, 64));
  std::vector<double> training;
  training.reserve(n_train);
  for (size_t i = 0; i < n_train; ++i) training.push_back(in.TakeDouble());

  Result<LookupTable> table = LookupTable::Build(training, options);
  if (!table.ok()) return;

  // Encode a short series at fixed cadence and round-trip it.
  SymbolicSeries series(table->level());
  const size_t n_values = static_cast<size_t>(in.TakeIntInRange(1, 32));
  Timestamp t = static_cast<Timestamp>(in.TakeIntInRange(0, 1 << 20));
  std::vector<double> readings;
  readings.reserve(n_values);
  for (size_t i = 0; i < n_values; ++i) {
    const double reading = in.TakeDouble();
    readings.push_back(reading);
    Result<Symbol> symbol = table->EncodeChecked(reading);
    if (!symbol.ok()) continue;  // non-finite reading
    SMETER_CHECK_OK(series.Append({t, symbol.value()}));
    t += 900;
  }

  // Batch/scalar oracle: the SoA kernel must stay byte-identical to the
  // scalar lookup. A NaN anywhere must surface as a Status error; any
  // other input (±inf included — Encode clamps, EncodeChecked rejects)
  // must produce exactly the symbols table->Encode would.
  bool has_nan = false;
  for (double v : readings) has_nan = has_nan || std::isnan(v);
  Result<std::vector<Symbol>> batch = EncodeBatch(*table, readings);
  SMETER_CHECK_EQ(batch.ok(), !has_nan);
  if (batch.ok()) {
    SMETER_CHECK_EQ(batch->size(), readings.size());
    for (size_t i = 0; i < readings.size(); ++i) {
      SMETER_CHECK((*batch)[i] == table->Encode(readings[i]));
    }
    Result<std::vector<double>> decoded =
        DecodeBatch(*table, *batch, ReconstructionMode::kRangeMean);
    SMETER_CHECK(decoded.ok());
    for (size_t i = 0; i < batch->size(); ++i) {
      Result<double> scalar =
          table->Reconstruct((*batch)[i], ReconstructionMode::kRangeMean);
      SMETER_CHECK(scalar.ok());
      SMETER_CHECK((*decoded)[i] == scalar.value());
    }
  }
  if (!series.empty()) {
    Result<std::string> packed = PackSymbolicSeries(series);
    SMETER_CHECK(packed.ok());
    Result<SymbolicSeries> unpacked = UnpackSymbolicSeries(packed.value());
    SMETER_CHECK(unpacked.ok());
    SMETER_CHECK_EQ(unpacked->size(), series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      SMETER_CHECK(series[i] == (*unpacked)[i]);
      // Decode side: the representative value must lie in the symbol range.
      Result<double> lo = table->RangeLow(series[i].symbol);
      Result<double> hi = table->RangeHigh(series[i].symbol);
      SMETER_CHECK(lo.ok() && hi.ok());
      Result<double> mid =
          table->Reconstruct(series[i].symbol, ReconstructionMode::kRangeMean);
      SMETER_CHECK(mid.ok());
      if (std::isfinite(lo.value()) && std::isfinite(hi.value())) {
        SMETER_CHECK_LE(lo.value(), mid.value());
        SMETER_CHECK_LE(mid.value(), hi.value());
      }
    }
  }

  // Wire format for the table itself.
  std::string blob = table->Serialize();
  Result<LookupTable> reread = LookupTable::Deserialize(blob);
  SMETER_CHECK(reread.ok());
  SMETER_CHECK_EQ(reread->level(), table->level());
  SMETER_CHECK_EQ(reread->separators().size(), table->separators().size());
}

// Arbitrary text through the lookup-table deserializer.
void FuzzTableDeserialize(const std::string& text) {
  Result<LookupTable> table = LookupTable::Deserialize(text);
  if (!table.ok()) return;
  Result<LookupTable> again = LookupTable::Deserialize(table->Serialize());
  SMETER_CHECK(again.ok());
}

// Expert-provided separators (possibly unsorted / non-finite).
void FuzzFromSeparators(FuzzInput& in) {
  const size_t n = static_cast<size_t>(in.TakeIntInRange(0, 33));
  std::vector<double> seps;
  seps.reserve(n);
  for (size_t i = 0; i < n; ++i) seps.push_back(in.TakeDouble());
  double lo = in.TakeDouble();
  double hi = in.TakeDouble();
  Result<LookupTable> table = LookupTable::FromSeparators(seps, lo, hi);
  if (!table.ok()) return;
  Result<Symbol> s = table->EncodeChecked(in.TakeDouble());
  if (s.ok()) {
    SMETER_CHECK_EQ(s->level(), table->level());
  }
}

// Gap-aware surfaces: a symbol stream with GAP sentinels must survive the
// version-2 wire format bit-exactly, and the gap-tolerant batch kernels
// must agree with the scalar encoder everywhere the scalar path is
// defined — NaN in, GAP out; GAP in, NaN out; nothing else remapped.
void FuzzGappySeries(FuzzInput& in) {
  const int level = in.TakeIntInRange(1, kMaxSymbolLevel);
  const size_t n = static_cast<size_t>(in.TakeIntInRange(1, 48));
  SymbolicSeries series(level);
  Timestamp t = static_cast<Timestamp>(in.TakeIntInRange(0, 1 << 20));
  for (size_t i = 0; i < n; ++i) {
    Symbol s =
        (in.TakeByte() % 4 == 0)
            ? Symbol::Gap(level)
            : Symbol::Create(level, static_cast<uint32_t>(in.TakeIntInRange(
                                        0, (1 << level) - 1)))
                  .value();
    SMETER_CHECK_OK(series.Append({t, s}));
    t += 60;
  }
  Result<std::string> packed = PackSymbolicSeries(series);
  SMETER_CHECK(packed.ok());
  Result<SymbolicSeries> unpacked = UnpackSymbolicSeries(packed.value());
  SMETER_CHECK(unpacked.ok());
  SMETER_CHECK_EQ(unpacked->size(), series.size());
  SMETER_CHECK_EQ(unpacked->GapCount(), series.GapCount());
  for (size_t i = 0; i < series.size(); ++i) {
    SMETER_CHECK(series[i] == (*unpacked)[i]);
  }

  LookupTableOptions options;
  options.level = level;
  options.method = SeparatorMethod::kUniform;
  const size_t n_train = static_cast<size_t>(in.TakeIntInRange(2, 32));
  std::vector<double> training;
  training.reserve(n_train);
  for (size_t i = 0; i < n_train; ++i) training.push_back(in.TakeDouble());
  Result<LookupTable> table = LookupTable::Build(training, options);
  if (!table.ok()) return;

  const size_t n_values = static_cast<size_t>(in.TakeIntInRange(1, 48));
  std::vector<double> values;
  values.reserve(n_values);
  for (size_t i = 0; i < n_values; ++i) {
    values.push_back(in.TakeByte() % 5 == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : in.TakeDouble());
  }
  Result<std::vector<Symbol>> gappy = EncodeBatchWithGaps(*table, values);
  SMETER_CHECK(gappy.ok());
  SMETER_CHECK_EQ(gappy->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) {
      SMETER_CHECK((*gappy)[i].is_gap());
    } else {
      SMETER_CHECK((*gappy)[i] == table->Encode(values[i]));
    }
  }
  Result<std::vector<double>> decoded =
      DecodeBatch(*table, *gappy, ReconstructionMode::kRangeCenter);
  SMETER_CHECK(decoded.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    SMETER_CHECK_EQ(std::isnan((*decoded)[i]), std::isnan(values[i]));
  }
}

// v3 framing and the salvage oracle: build a valid framed blob, damage it
// with fuzz-chosen bit flips and truncation, then require
//   (a) the strict parser never accepts modified bytes as different data,
//   (b) salvage never fabricates — every slot of a salvaged series is
//       either the original symbol or a GAP standing in for a damaged
//       block, on the original timebase.
void FuzzSalvageOracle(FuzzInput& in) {
  const int level = in.TakeIntInRange(1, kMaxSymbolLevel);
  const size_t n = static_cast<size_t>(in.TakeIntInRange(1, 96));
  const size_t block = static_cast<size_t>(in.TakeIntInRange(1, 32));
  SymbolicSeries series(level);
  Timestamp t = static_cast<Timestamp>(in.TakeIntInRange(0, 1 << 20));
  for (size_t i = 0; i < n; ++i) {
    Symbol s =
        (in.TakeByte() % 4 == 0)
            ? Symbol::Gap(level)
            : Symbol::Create(level, static_cast<uint32_t>(in.TakeIntInRange(
                                        0, (1 << level) - 1)))
                  .value();
    SMETER_CHECK_OK(series.Append({t, s}));
    t += 900;
  }
  Result<std::string> packed = PackSymbolicSeriesFramed(series, block);
  SMETER_CHECK(packed.ok());
  const std::string& blob = packed.value();

  // An undamaged blob must salvage to exactly the original series.
  SalvageSummary clean_summary;
  Result<SymbolicSeries> clean = SalvageSymbolicSeries(blob, &clean_summary);
  SMETER_CHECK(clean.ok());
  SMETER_CHECK_EQ(clean->size(), series.size());
  SMETER_CHECK_EQ(clean_summary.lost_slots, 0u);
  for (size_t i = 0; i < series.size(); ++i) {
    SMETER_CHECK(series[i] == (*clean)[i]);
  }

  // Damage: up to eight bit flips, then possibly a truncation.
  std::string damaged = blob;
  const int flips = in.TakeIntInRange(0, 8);
  for (int f = 0; f < flips; ++f) {
    const size_t pos = static_cast<size_t>(
        in.TakeIntInRange(0, static_cast<int>(damaged.size()) - 1));
    damaged[pos] = static_cast<char>(static_cast<unsigned char>(damaged[pos]) ^
                                     (1u << (in.TakeByte() % 8)));
  }
  if (in.TakeByte() % 4 == 0) {
    damaged = damaged.substr(
        0, static_cast<size_t>(
               in.TakeIntInRange(0, static_cast<int>(damaged.size()))));
  }
  if (damaged == blob) return;

  // Strict parse: accepting modified bytes is only legal if they decode to
  // the identical series (which a checksummed format cannot produce — so
  // in practice this demands rejection).
  Result<SymbolicSeries> strict = UnpackSymbolicSeries(damaged);
  if (strict.ok()) {
    SMETER_CHECK_EQ(strict->size(), series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      SMETER_CHECK(series[i] == (*strict)[i]);
    }
  }

  // Salvage: errors only when the header is beyond trust; a recovered
  // series is the original with GAPs where blocks were destroyed.
  SalvageSummary summary;
  Result<SymbolicSeries> salvaged = SalvageSymbolicSeries(damaged, &summary);
  if (!salvaged.ok()) return;
  SMETER_CHECK_EQ(salvaged->size(), series.size());
  SMETER_CHECK_EQ(summary.total_slots, series.size());
  SMETER_CHECK_EQ(summary.recovered_slots + summary.lost_slots,
                  summary.total_slots);
  for (size_t i = 0; i < series.size(); ++i) {
    SMETER_CHECK((*salvaged)[i].timestamp == series[i].timestamp);
    SMETER_CHECK((*salvaged)[i].symbol.is_gap() ||
                 (*salvaged)[i].symbol == series[i].symbol);
  }
}

}  // namespace
}  // namespace smeter

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  smeter::fuzz::FuzzInput in(data, size);
  switch (in.TakeByte() % 6) {
    case 0:
      smeter::FuzzUnpack(in.TakeRemainingString());
      break;
    case 1:
      smeter::FuzzTableRoundTrip(in);
      break;
    case 2:
      smeter::FuzzTableDeserialize(in.TakeRemainingString());
      break;
    case 3:
      smeter::FuzzFromSeparators(in);
      break;
    case 4:
      smeter::FuzzGappySeries(in);
      break;
    default:
      smeter::FuzzSalvageOracle(in);
      break;
  }
  return 0;
}
