// Fuzz harness for the ingestion wire protocol and the session state
// machine. Two attack surfaces:
//
//   * raw bytes through DecodeFrame and the typed payload parsers — an
//     accepted frame must re-encode to exactly the bytes consumed, and an
//     accepted payload must survive Make*/Parse* bit-exactly (the codec is
//     closed under fuzzing);
//   * decoded frames through Session::OnFrame — arbitrary frame sequences,
//     hostile or well-formed, must never crash the state machine, and a
//     session that reaches kComplete must hand over a series consistent
//     with its own counters.
//
// Crash conditions (beyond sanitizer reports): a round-trip mismatch, a
// decode that consumes bytes without producing a frame, a streaming decode
// that disagrees with the single-pass decode, or a completed session whose
// series disagrees with symbols_received()/gaps_received().

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "core/lookup_table.h"
#include "core/symbol.h"
#include "core/symbolic_series.h"
#include "fuzz_input.h"
#include "net/session.h"
#include "net/wire.h"

namespace smeter::net {
namespace {

using fuzz::FuzzInput;

// Raw bytes through the frame decoder. kFrame must consume exactly the
// bytes EncodeFrame would produce for the decoded frame; kNeedMore must
// consume nothing; typed parsers on an accepted frame must round-trip.
void FuzzDecodeFrame(const std::string& bytes) {
  DecodeResult result = DecodeFrame(bytes);
  switch (result.outcome) {
    case DecodeResult::Outcome::kNeedMore:
      SMETER_CHECK_EQ(result.consumed, 0u);
      return;
    case DecodeResult::Outcome::kError:
      SMETER_CHECK(!result.error.ok());
      return;
    case DecodeResult::Outcome::kFrame:
      break;
  }
  SMETER_CHECK_EQ(result.consumed,
                  kFrameHeaderBytes + result.frame.payload.size());
  SMETER_CHECK(EncodeFrame(result.frame) == bytes.substr(0, result.consumed));

  // Typed payload closure: whatever parses must rebuild to the same frame.
  switch (result.frame.type) {
    case FrameType::kHello: {
      Result<HelloPayload> p = ParseHello(result.frame);
      if (p.ok()) SMETER_CHECK(MakeHello(p.value()) == result.frame);
      break;
    }
    case FrameType::kHelloAck:
    case FrameType::kTableAck:
    case FrameType::kGoodbyeAck: {
      Result<AckPayload> p = ParseAck(result.frame);
      if (p.ok()) {
        SMETER_CHECK(MakeAck(result.frame.type, p.value()) == result.frame);
      }
      break;
    }
    case FrameType::kTableAnnounce: {
      Result<TableAnnouncePayload> p = ParseTableAnnounce(result.frame);
      if (p.ok()) SMETER_CHECK(MakeTableAnnounce(p.value()) == result.frame);
      break;
    }
    case FrameType::kSymbolBatch: {
      Result<SymbolBatchPayload> p = ParseSymbolBatch(result.frame);
      if (p.ok()) SMETER_CHECK(MakeSymbolBatch(p.value()) == result.frame);
      break;
    }
    case FrameType::kBatchAck: {
      Result<BatchAckPayload> p = ParseBatchAck(result.frame);
      if (p.ok()) SMETER_CHECK(MakeBatchAck(p.value()) == result.frame);
      break;
    }
    case FrameType::kPing:
    case FrameType::kPong: {
      Result<PingPayload> p = ParsePing(result.frame);
      if (p.ok()) {
        Frame rebuilt = result.frame.type == FrameType::kPing
                            ? MakePing(p->nonce)
                            : MakePong(p->nonce);
        SMETER_CHECK(rebuilt == result.frame);
      }
      break;
    }
    case FrameType::kGoodbye: {
      Result<GoodbyePayload> p = ParseGoodbye(result.frame);
      if (p.ok()) SMETER_CHECK(MakeGoodbye(p.value()) == result.frame);
      break;
    }
    case FrameType::kThrottle: {
      Result<ThrottlePayload> p = ParseThrottle(result.frame);
      if (p.ok()) SMETER_CHECK(MakeThrottle(p.value()) == result.frame);
      break;
    }
  }
}

// A fuzz-built (mostly in-domain) frame must survive encode→decode
// bit-exactly, every truncation must read as kNeedMore, and decoding a
// stream at fuzz-chosen split points must agree with the one-shot decode.
void FuzzEncodeDecodeClosure(FuzzInput& in) {
  std::vector<Frame> frames;
  const int n_frames = in.TakeIntInRange(1, 4);
  for (int f = 0; f < n_frames; ++f) {
    switch (in.TakeByte() % 9) {
      case 0: {
        HelloPayload p;
        p.protocol_version = static_cast<uint16_t>(in.TakeUint64());
        p.meter_id = in.TakeString(in.TakeIntInRange(0, 32));
        p.auth_token = in.TakeString(in.TakeIntInRange(0, 32));
        frames.push_back(MakeHello(p));
        break;
      }
      case 1: {
        AckPayload p;
        p.status = static_cast<WireStatus>(in.TakeByte() % 10);
        p.message = in.TakeString(in.TakeIntInRange(0, 48));
        FrameType t = (in.TakeByte() % 2) == 0 ? FrameType::kHelloAck
                                               : FrameType::kGoodbyeAck;
        frames.push_back(MakeAck(t, p));
        break;
      }
      case 2: {
        TableAnnouncePayload p;
        p.table_version = static_cast<uint32_t>(in.TakeUint64());
        p.table_blob = in.TakeString(in.TakeIntInRange(0, 256));
        frames.push_back(MakeTableAnnounce(p));
        break;
      }
      case 3: {
        SymbolBatchPayload p;
        p.seq = in.TakeUint64();
        p.start_timestamp = static_cast<int64_t>(in.TakeUint64());
        p.step_seconds = in.TakeIntInRange(1, 86400);
        p.level = static_cast<uint8_t>(in.TakeIntInRange(1, kMaxSymbolLevel));
        const int n = in.TakeIntInRange(1, 64);
        for (int i = 0; i < n; ++i) {
          p.symbols.push_back(
              (in.TakeByte() % 5 == 0)
                  ? kWireGapSymbol
                  : static_cast<uint16_t>(
                        in.TakeIntInRange(0, (1 << p.level) - 1)));
        }
        frames.push_back(MakeSymbolBatch(p));
        break;
      }
      case 4: {
        BatchAckPayload p;
        p.seq = in.TakeUint64();
        p.status = static_cast<WireStatus>(in.TakeByte() % 10);
        p.message = in.TakeString(in.TakeIntInRange(0, 48));
        frames.push_back(MakeBatchAck(p));
        break;
      }
      case 5:
        frames.push_back(MakePing(in.TakeUint64()));
        break;
      case 6:
        frames.push_back(MakePong(in.TakeUint64()));
        break;
      case 7: {
        ThrottlePayload p;
        p.retry_after_ms = static_cast<uint32_t>(in.TakeUint64());
        p.scope = static_cast<ThrottleScope>(in.TakeIntInRange(
            static_cast<int>(ThrottleScope::kAdmission),
            static_cast<int>(ThrottleScope::kDisk)));
        p.message = in.TakeString(in.TakeIntInRange(0, 48));
        frames.push_back(MakeThrottle(p));
        break;
      }
      default: {
        GoodbyePayload p;
        p.windows_valid = in.TakeUint64();
        p.windows_partial = in.TakeUint64();
        p.windows_gap = in.TakeUint64();
        frames.push_back(MakeGoodbye(p));
        break;
      }
    }
  }

  std::string stream;
  for (const Frame& frame : frames) stream += EncodeFrame(frame);

  // One-shot: each frame decodes back bit-exactly.
  {
    std::string_view view = stream;
    for (const Frame& frame : frames) {
      DecodeResult r = DecodeFrame(view);
      SMETER_CHECK(r.outcome == DecodeResult::Outcome::kFrame);
      SMETER_CHECK(r.frame == frame);
      view.remove_prefix(r.consumed);
    }
    SMETER_CHECK(view.empty());
  }

  // Every truncation of the first frame is kNeedMore, never an error.
  {
    const size_t first_len = kFrameHeaderBytes + frames[0].payload.size();
    const size_t cut =
        static_cast<size_t>(in.TakeIntInRange(0, static_cast<int>(first_len)));
    if (cut < first_len) {
      DecodeResult r = DecodeFrame(std::string_view(stream).substr(0, cut));
      SMETER_CHECK(r.outcome == DecodeResult::Outcome::kNeedMore);
    }
  }

  // Streaming: feed the bytes in fuzz-chosen slices; the decoded sequence
  // must equal the one-shot sequence.
  {
    std::string buffer;
    std::vector<Frame> decoded;
    size_t fed = 0;
    while (fed < stream.size()) {
      const size_t chunk = static_cast<size_t>(in.TakeIntInRange(
          1, static_cast<int>(stream.size() - fed)));
      buffer.append(stream, fed, chunk);
      fed += chunk;
      for (;;) {
        DecodeResult r = DecodeFrame(buffer);
        if (r.outcome != DecodeResult::Outcome::kFrame) {
          SMETER_CHECK(r.outcome == DecodeResult::Outcome::kNeedMore);
          break;
        }
        decoded.push_back(r.frame);
        buffer.erase(0, r.consumed);
      }
    }
    SMETER_CHECK(buffer.empty());
    SMETER_CHECK_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      SMETER_CHECK(decoded[i] == frames[i]);
    }
  }

  // Single bit flip anywhere: the stream must never yield a different
  // accepted first frame (the CRC catches payload/type damage; a length
  // flip reads as short/oversized).
  {
    std::string damaged = stream;
    const size_t pos = static_cast<size_t>(
        in.TakeIntInRange(0, static_cast<int>(damaged.size()) - 1));
    damaged[pos] = static_cast<char>(static_cast<unsigned char>(damaged[pos]) ^
                                     (1u << (in.TakeByte() % 8)));
    DecodeResult r = DecodeFrame(damaged);
    if (r.outcome == DecodeResult::Outcome::kFrame) {
      SMETER_CHECK(r.frame == frames[0]);  // only an identical re-read is ok
    }
  }
}

// A serialized table for session handshakes, built once.
const std::string& TestTableBlob() {
  static const std::string* blob = [] {
    std::vector<double> training;
    for (int i = 1; i <= 64; ++i) training.push_back(10.0 * i);
    LookupTableOptions options;
    options.level = 4;
    options.method = SeparatorMethod::kMedian;
    Result<LookupTable> table = LookupTable::Build(training, options);
    SMETER_CHECK(table.ok());
    return new std::string(table->Serialize());
  }();
  return *blob;
}

// Drives a Session with a fuzz-chosen frame sequence — a mix of protocol-
// shaped traffic and hostile garbage — and checks the machine's contract:
// it never crashes, terminal states are sticky decisions the driver sees,
// and a completed session's series matches its counters.
void FuzzSession(FuzzInput& in) {
  SessionOptions options;
  if (in.TakeByte() % 4 == 0) options.auth_token = "secret";
  if (in.TakeByte() % 8 == 0) options.max_session_symbols = 64;
  if (in.TakeByte() % 8 == 0) options.max_gap_fill = 4;
  Session session(options);
  // The fuzz driver is the session's single writer.
  ScopedThreadRole writer(session.writer_role());

  uint64_t seq = 1;
  int64_t next_start = 0;
  const int64_t step = 900;
  const int steps = in.TakeIntInRange(1, 12);
  for (int i = 0; i < steps; ++i) {
    if (session.state() == Session::State::kComplete ||
        session.state() == Session::State::kFailed) {
      break;
    }
    Frame frame;
    switch (in.TakeByte() % 8) {
      case 0: {
        HelloPayload p;
        p.protocol_version =
            (in.TakeByte() % 4 == 0) ? 0 : kProtocolVersion;
        p.meter_id = "meter_fuzz";
        p.auth_token = (in.TakeByte() % 3 == 0) ? "secret" : "";
        frame = MakeHello(p);
        break;
      }
      case 1: {
        TableAnnouncePayload p;
        p.table_version = 1;
        p.table_blob = TestTableBlob();
        if (in.TakeByte() % 4 == 0 && !p.table_blob.empty()) {
          p.table_blob[in.TakeIntInRange(
              0, static_cast<int>(p.table_blob.size()) - 1)] ^= 0x20;
        }
        frame = MakeTableAnnounce(p);
        break;
      }
      case 2: {
        SymbolBatchPayload p;
        p.seq = (in.TakeByte() % 4 == 0) ? in.TakeUint64() : seq;
        p.start_timestamp = (in.TakeByte() % 4 == 0)
                                ? static_cast<int64_t>(in.TakeUint64())
                                : next_start;
        p.step_seconds = (in.TakeByte() % 8 == 0) ? 60 : step;
        p.level = (in.TakeByte() % 8 == 0) ? 5 : 4;
        const int n = in.TakeIntInRange(1, 16);
        for (int k = 0; k < n; ++k) {
          p.symbols.push_back(
              (in.TakeByte() % 6 == 0)
                  ? kWireGapSymbol
                  : static_cast<uint16_t>(in.TakeIntInRange(0, 15)));
        }
        frame = MakeSymbolBatch(p);
        if (p.seq == seq) {
          ++seq;
          next_start = p.start_timestamp +
                       static_cast<int64_t>(p.symbols.size()) * p.step_seconds;
        }
        break;
      }
      case 3:
        frame = MakePing(in.TakeUint64());
        break;
      case 4: {
        GoodbyePayload p;
        p.windows_valid = static_cast<uint64_t>(in.TakeIntInRange(0, 64));
        p.windows_partial = 0;
        p.windows_gap = static_cast<uint64_t>(in.TakeIntInRange(0, 64));
        frame = MakeGoodbye(p);
        break;
      }
      case 5: {
        // Hostile: a server-side frame type the client must never send.
        frame = MakeBatchAck({seq, WireStatus::kOk, ""});
        break;
      }
      case 6: {
        // Hostile: a known type with an unparseable payload, or a future
        // type the session must refuse (kUnsupported) without desyncing.
        frame.type = static_cast<FrameType>(in.TakeIntInRange(1, 255));
        frame.payload = in.TakeString(in.TakeIntInRange(0, 24));
        break;
      }
      default: {
        // The happy-path prefix, so deep states are reachable often.
        if (session.state() == Session::State::kExpectHello) {
          frame = MakeHello({kProtocolVersion, "meter_fuzz",
                             options.auth_token});
        } else if (session.state() == Session::State::kExpectTable) {
          frame = MakeTableAnnounce({1, TestTableBlob()});
        } else {
          SymbolBatchPayload p;
          p.seq = seq++;
          p.start_timestamp = next_start;
          p.step_seconds = step;
          p.level = 4;
          const int n = in.TakeIntInRange(1, 8);
          for (int k = 0; k < n; ++k) {
            p.symbols.push_back(
                static_cast<uint16_t>(in.TakeIntInRange(0, 15)));
          }
          next_start += static_cast<int64_t>(n) * step;
          frame = MakeSymbolBatch(p);
        }
        break;
      }
    }

    std::vector<Frame> replies;
    session.OnFrame(frame, &replies);
    // Every reply the machine produces must itself be encodable and
    // re-decodable — the server sends these bytes to real sockets.
    for (const Frame& reply : replies) {
      DecodeResult r = DecodeFrame(EncodeFrame(reply));
      SMETER_CHECK(r.outcome == DecodeResult::Outcome::kFrame);
      SMETER_CHECK(r.frame == reply);
    }
    if (session.state() == Session::State::kFailed) {
      SMETER_CHECK(!session.error().ok());
      SMETER_CHECK(session.error_status() != WireStatus::kOk);
    }
  }

  SMETER_CHECK_LE(session.gaps_received(), session.symbols_received());
  if (session.state() == Session::State::kComplete) {
    const size_t total = session.symbols_received();
    Result<SymbolicSeries> series = session.TakeSeries();
    SMETER_CHECK(series.ok());
    SMETER_CHECK_EQ(series->size(), total);
  }
}

}  // namespace
}  // namespace smeter::net

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  smeter::fuzz::FuzzInput in(data, size);
  switch (in.TakeByte() % 3) {
    case 0:
      smeter::net::FuzzDecodeFrame(in.TakeRemainingString());
      break;
    case 1:
      smeter::net::FuzzEncodeDecodeClosure(in);
      break;
    default:
      smeter::net::FuzzSession(in);
      break;
  }
  return 0;
}
