// Fuzz harness for the ARFF reader/writer: arbitrary text through FromArff,
// and for inputs that parse, a ToArff→FromArff round-trip that must succeed
// and preserve the dataset shape.

#include <cstdint>
#include <string>

#include "common/check.h"
#include "fuzz_input.h"
#include "ml/arff.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  smeter::fuzz::FuzzInput in(data, size);
  const int class_index = in.TakeIntInRange(-1, 8);
  const std::string text = in.TakeRemainingString();

  smeter::Result<smeter::ml::Dataset> parsed =
      smeter::ml::FromArff(text, class_index);
  if (!parsed.ok()) return 0;

  const std::string rendered = smeter::ml::ToArff(parsed.value());
  smeter::Result<smeter::ml::Dataset> again =
      smeter::ml::FromArff(rendered, class_index);
  SMETER_CHECK(again.ok());
  SMETER_CHECK_EQ(again->num_attributes(), parsed->num_attributes());
  SMETER_CHECK_EQ(again->num_instances(), parsed->num_instances());
  return 0;
}
