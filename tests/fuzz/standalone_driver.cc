// Standalone driver for the fuzz harnesses, used when libFuzzer is not
// available (e.g. gcc-only environments). Links against the same
// LLVMFuzzerTestOneInput entry point the libFuzzer build uses.
//
// Usage:
//   fuzz_foo CORPUS_DIR_OR_FILE... [--seconds=N] [--max-len=N] [--seed=N]
//
// With --seconds=0 (default) every corpus input is executed once — a
// regression run. With --seconds=N the driver additionally loops for N
// seconds, feeding deterministic random mutations of corpus inputs through
// the harness: flip/insert/erase/truncate/splice, libFuzzer's basic
// mutation set. Any sanitizer report or SMETER_CHECK failure aborts the
// process, which is the crash signal CI looks for; the offending input is
// written to ./crash-input first, and replaying it is `fuzz_foo crash-input`.

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// The input currently inside LLVMFuzzerTestOneInput, dumped to
// `crash-input` (cwd) when the harness aborts so the failure is
// reproducible: `fuzz_foo crash-input` replays it.
const uint8_t* g_current_data = nullptr;
size_t g_current_size = 0;

void DumpCrashInput(int sig) {
  // Async-signal-safe only: open/write/close, no stdio buffering.
  int fd = ::open("crash-input", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    size_t off = 0;
    while (off < g_current_size) {
      ssize_t n = ::write(fd, g_current_data + off, g_current_size - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(fd);
    const char msg[] = "[driver] crashing input written to ./crash-input\n";
    ssize_t ignored = ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
    (void)ignored;
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int RunOne(const uint8_t* data, size_t size) {
  g_current_data = data;
  g_current_size = size;
  int rc = LLVMFuzzerTestOneInput(data, size);
  g_current_data = nullptr;
  g_current_size = 0;
  return rc;
}

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Mutate(std::vector<uint8_t>& data, std::mt19937_64& rng,
            size_t max_len) {
  const int rounds = 1 + static_cast<int>(rng() % 8);
  for (int r = 0; r < rounds; ++r) {
    switch (rng() % 5) {
      case 0:  // bit flip
        if (!data.empty()) {
          data[rng() % data.size()] ^=
              static_cast<uint8_t>(1u << (rng() % 8));
        }
        break;
      case 1:  // overwrite with random byte
        if (!data.empty()) {
          data[rng() % data.size()] = static_cast<uint8_t>(rng());
        }
        break;
      case 2:  // insert a random byte
        if (data.size() < max_len) {
          data.insert(data.begin() + static_cast<long>(rng() % (data.size() + 1)),
                      static_cast<uint8_t>(rng()));
        }
        break;
      case 3:  // erase a byte
        if (!data.empty()) {
          data.erase(data.begin() + static_cast<long>(rng() % data.size()));
        }
        break;
      case 4:  // truncate
        if (!data.empty()) {
          data.resize(rng() % data.size());
        }
        break;
    }
  }
  if (data.size() > max_len) data.resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGABRT, DumpCrashInput);
  std::signal(SIGSEGV, DumpCrashInput);
  long seconds = 0;
  size_t max_len = 1 << 16;
  uint64_t seed = 0x5eedf00dULL;
  std::vector<std::filesystem::path> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::stol(arg.substr(10));
    } else if (arg.rfind("--max-len=", 0) == 0) {
      max_len = static_cast<size_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }

  std::vector<std::vector<uint8_t>> corpus;
  corpus.reserve(inputs.size());
  for (const auto& path : inputs) corpus.push_back(ReadFile(path));

  // Regression pass: every corpus entry once, plus the empty input.
  RunOne(nullptr, 0);
  for (size_t i = 0; i < corpus.size(); ++i) {
    RunOne(corpus[i].data(), corpus[i].size());
  }
  std::fprintf(stderr, "[driver] %zu corpus inputs replayed cleanly\n",
               corpus.size());
  if (seconds <= 0) return 0;

  // Mutation loop.
  std::mt19937_64 rng(seed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  uint64_t execs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int batch = 0; batch < 512; ++batch) {
      std::vector<uint8_t> data;
      if (!corpus.empty() && rng() % 8 != 0) {
        data = corpus[rng() % corpus.size()];
      } else {
        data.resize(rng() % 256);
        for (auto& b : data) b = static_cast<uint8_t>(rng());
      }
      Mutate(data, rng, max_len);
      RunOne(data.data(), data.size());
      ++execs;
    }
  }
  std::fprintf(stderr, "[driver] %llu mutated executions, no crash\n",
               static_cast<unsigned long long>(execs));
  return 0;
}
