// Fuzz harness for the CSV/DSV parser: arbitrary bytes and parse options,
// plus a join→reparse consistency check (writing then reading a table with
// the same delimiter must preserve its shape when no field contains the
// delimiter or line breaks).

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/csv.h"
#include "fuzz_input.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  smeter::fuzz::FuzzInput in(data, size);
  smeter::CsvOptions options;
  options.delimiter = static_cast<char>(in.TakeByte());
  options.comment_char = static_cast<char>(in.TakeByte());
  options.skip_blank_lines = (in.TakeByte() & 1) != 0;
  const std::string content = in.TakeRemainingString();

  smeter::Result<smeter::CsvTable> table = smeter::ParseCsv(content, options);
  if (!table.ok()) return 0;

  // Join the parsed rows back with the same delimiter and reparse; rows
  // whose fields are free of structural characters must survive intact.
  std::string joined;
  for (const auto& row : table->rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) joined += options.delimiter;
      joined += row[i];
    }
    joined += '\n';
  }
  smeter::Result<smeter::CsvTable> again = smeter::ParseCsv(joined, options);
  SMETER_CHECK(again.ok());
  SMETER_CHECK_LE(again->num_rows(), table->num_rows());
  return 0;
}
