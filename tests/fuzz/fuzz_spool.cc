// Fuzz harness for the client spool format (client/spool.h). Three attack
// surfaces, selected by the first input byte:
//
//   * raw bytes through ParseSpoolRecord — an accepted payload must
//     re-encode to exactly the input bytes (the record codec is a strict
//     inverse pair, closed under fuzzing);
//   * a fuzz-built in-domain spool file through ReadSpool — the parsed
//     contents must match what was written bit-exactly, then the same file
//     is subjected to the two crash signatures fsck and Resume() must
//     survive: truncation at an arbitrary point (torn tail) and a single
//     bit flip (CRC-caught damage). An accepted damaged read may only ever
//     be a prefix of the original — never different data;
//   * hostile whole-file bytes through ReadSpool — must never crash, and
//     anything accepted must rebuild to the file's own valid prefix.
//
// Crash conditions (beyond sanitizer reports): any closure mismatch, or a
// damaged file that reads back as something other than a prefix of the
// bytes that were actually spooled.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "client/spool.h"
#include "common/check.h"
#include "common/io.h"
#include "core/symbol.h"
#include "fuzz_input.h"
#include "net/wire.h"

namespace smeter::client {
namespace {

using fuzz::FuzzInput;

// One scratch file per process; every iteration overwrites it. Plain
// (non-atomic) writes on purpose — the harness is the only writer and
// skipping the fsync keeps the fuzz loop fast.
const std::string& ScratchPath() {
  static const std::string* path = [] {
    return new std::string(
        (std::filesystem::temp_directory_path() /
         ("smeter_fuzz_spool_" + std::to_string(::getpid()) + ".spool"))
            .string());
  }();
  return *path;
}

void WriteScratch(const std::string& bytes) {
  std::ofstream out(ScratchPath(), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SMETER_CHECK(out.good());
}

// Raw bytes through the record codec: whatever parses must rebuild to the
// same bytes and re-parse to the same record.
void FuzzRecordClosure(const std::string& payload) {
  Result<SpoolRecord> record = ParseSpoolRecord(payload);
  if (!record.ok()) return;
  const std::string rebuilt = EncodeSpoolRecord(*record);
  SMETER_CHECK(rebuilt == payload);
  SMETER_CHECK(ParseSpoolRecord(rebuilt).ok());
}

// `damaged` on disk must read as nothing more than a prefix of the
// original contents: same header, a prefix of the batches, and flags only
// the surviving records can justify. Returns without checking when the
// read (correctly) refuses the file outright.
void ExpectPrefixRead(const SpoolHeader& header,
                      const std::vector<SpoolBatch>& batches) {
  Result<SpoolContents> read = ReadSpool(ScratchPath());
  if (!read.ok()) return;
  SMETER_CHECK(read->header == header);
  SMETER_CHECK_LE(read->batches.size(), batches.size());
  for (size_t i = 0; i < read->batches.size(); ++i) {
    SMETER_CHECK_EQ(read->batches[i].seq, batches[i].seq);
    SMETER_CHECK(read->batches[i].start_timestamp ==
                 batches[i].start_timestamp);
    SMETER_CHECK(read->batches[i].symbols == batches[i].symbols);
  }
}

// Builds an in-domain spool file from fuzz choices, checks ReadSpool's
// closure on the intact bytes, then drives the torn-tail and bit-flip
// oracles over the same file.
void FuzzWholeFile(FuzzInput& in) {
  SpoolHeader header;
  header.meter_id = "meter_" + std::to_string(in.TakeIntInRange(0, 999999));
  header.table_version = static_cast<uint32_t>(in.TakeUint64());
  header.level = static_cast<uint8_t>(in.TakeIntInRange(1, kMaxSymbolLevel));
  header.step_seconds = in.TakeIntInRange(1, 86'400);
  header.table_blob = in.TakeString(in.TakeIntInRange(0, 128));

  std::vector<SpoolBatch> batches;
  const int n_batches = in.TakeIntInRange(0, 6);
  for (int b = 0; b < n_batches; ++b) {
    SpoolBatch batch;
    batch.seq = static_cast<uint64_t>(b) + 1;
    batch.start_timestamp =
        static_cast<int64_t>(in.TakeUint64() % 1'000'000'000u);
    const int n_symbols = in.TakeIntInRange(1, 24);
    for (int s = 0; s < n_symbols; ++s) {
      batch.symbols.push_back(
          (in.TakeByte() % 6 == 0)
              ? net::kWireGapSymbol
              : static_cast<uint16_t>(
                    in.TakeIntInRange(0, (1 << header.level) - 1)));
    }
    batches.push_back(std::move(batch));
  }
  const bool sealed = !batches.empty() && in.TakeByte() % 2 == 0;
  SpoolSeal seal;
  if (sealed) {
    seal.windows_valid = in.TakeUint64() % 1'000;
    seal.windows_partial = in.TakeUint64() % 1'000;
    seal.windows_gap = in.TakeUint64() % 1'000;
  }
  const bool done = sealed && in.TakeByte() % 2 == 0;

  std::vector<std::string> payloads;
  {
    SpoolRecord record;
    record.type = SpoolRecordType::kHeader;
    record.header = header;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  for (const SpoolBatch& batch : batches) {
    SpoolRecord record;
    record.type = SpoolRecordType::kBatch;
    record.batch = batch;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  if (sealed) {
    SpoolRecord record;
    record.type = SpoolRecordType::kSeal;
    record.seal = seal;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  if (done) {
    SpoolRecord record;
    record.type = SpoolRecordType::kDone;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  const std::string file = io::BuildAppendLog(payloads);

  // Intact: the read must reproduce every field and re-encode to the very
  // bytes on disk.
  WriteScratch(file);
  Result<SpoolContents> read = ReadSpool(ScratchPath());
  SMETER_CHECK(read.ok());
  SMETER_CHECK(read->header == header);
  SMETER_CHECK_EQ(read->batches.size(), batches.size());
  SMETER_CHECK(read->sealed == sealed);
  SMETER_CHECK(read->done == done);
  SMETER_CHECK(!read->torn_tail);
  SMETER_CHECK_EQ(read->valid_bytes, file.size());
  if (sealed) {
    SMETER_CHECK(read->seal.windows_valid == seal.windows_valid);
    SMETER_CHECK(read->seal.windows_partial == seal.windows_partial);
    SMETER_CHECK(read->seal.windows_gap == seal.windows_gap);
  }

  // Torn tail: cut anywhere. The read either refuses the stump or returns
  // a strict prefix and a valid_bytes it is safe to truncate to.
  {
    const size_t cut = static_cast<size_t>(
        in.TakeIntInRange(0, static_cast<int>(file.size()) - 1));
    WriteScratch(file.substr(0, cut));
    Result<SpoolContents> torn = ReadSpool(ScratchPath());
    if (torn.ok()) SMETER_CHECK_LE(torn->valid_bytes, cut);
    ExpectPrefixRead(header, batches);
  }

  // Bit flip: CRC32C catches any single-bit error, so the flipped record
  // (and everything structural after it) must vanish from the read, never
  // mutate into different data.
  {
    std::string damaged = file;
    const size_t pos = static_cast<size_t>(
        in.TakeIntInRange(0, static_cast<int>(damaged.size()) - 1));
    damaged[pos] = static_cast<char>(
        static_cast<unsigned char>(damaged[pos]) ^ (1u << (in.TakeByte() % 8)));
    WriteScratch(damaged);
    ExpectPrefixRead(header, batches);
  }
}

// Arbitrary bytes as a whole file: ReadSpool must never crash, and an
// accepted read must rebuild to exactly the file's valid prefix — the
// reader cannot hallucinate records the bytes don't contain.
void FuzzHostileFile(FuzzInput& in) {
  const bool with_magic = in.TakeByte() % 2 == 0;
  std::string file;
  if (with_magic) {
    file.assign(io::kAppendLogMagic, io::kAppendLogMagicSize);
  }
  file += in.TakeRemainingString();
  WriteScratch(file);
  Result<SpoolContents> read = ReadSpool(ScratchPath());
  if (!read.ok()) return;

  std::vector<std::string> payloads;
  {
    SpoolRecord record;
    record.type = SpoolRecordType::kHeader;
    record.header = read->header;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  for (const SpoolBatch& batch : read->batches) {
    SpoolRecord record;
    record.type = SpoolRecordType::kBatch;
    record.batch = batch;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  if (read->sealed) {
    SpoolRecord record;
    record.type = SpoolRecordType::kSeal;
    record.seal = read->seal;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  if (read->done) {
    SpoolRecord record;
    record.type = SpoolRecordType::kDone;
    payloads.push_back(EncodeSpoolRecord(record));
  }
  SMETER_CHECK_LE(read->valid_bytes, file.size());
  SMETER_CHECK(io::BuildAppendLog(payloads) ==
               file.substr(0, read->valid_bytes));
}

}  // namespace
}  // namespace smeter::client

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  smeter::fuzz::FuzzInput in(data, size);
  switch (in.TakeByte() % 3) {
    case 0:
      smeter::client::FuzzRecordClosure(in.TakeRemainingString());
      break;
    case 1:
      smeter::client::FuzzWholeFile(in);
      break;
    default:
      smeter::client::FuzzHostileFile(in);
      break;
  }
  return 0;
}
