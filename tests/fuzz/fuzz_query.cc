// Fuzz harness for the query wire protocol and the QuerySession state
// machine. Three attack surfaces, selected by the first input byte:
//
//   * raw bytes through DecodeFrame and the eight typed query parsers —
//     an accepted payload must survive Make*/Parse* bit-exactly (the
//     codec is closed under fuzzing);
//   * fuzz-built (mostly in-domain) query frames through the encode →
//     decode → truncation → bit-flip oracles: every truncation reads as
//     kNeedMore, and no single bit flip may yield a different accepted
//     frame;
//   * decoded frames through QuerySession::OnFrame with no store behind
//     it — arbitrary sequences, hostile or well-formed, must never crash
//     the machine, every reply it emits must itself re-encode/decode, and
//     a failed session must carry a non-ok error.
//
// Crash conditions (beyond sanitizer reports) are SMETER_CHECK failures
// on any of those contracts.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "core/symbol.h"
#include "fuzz_input.h"
#include "net/query_session.h"
#include "net/query_wire.h"
#include "net/wire.h"

namespace smeter::net {
namespace {

using fuzz::FuzzInput;

// Typed payload closure: whatever parses must rebuild to the same frame.
void CheckQueryParserClosure(const Frame& frame) {
  switch (static_cast<QueryFrameType>(frame.type)) {
    case QueryFrameType::kQueryHello: {
      Result<QueryHelloPayload> p = ParseQueryHello(frame);
      if (p.ok()) SMETER_CHECK(MakeQueryHello(p.value()) == frame);
      break;
    }
    case QueryFrameType::kQueryAck: {
      Result<QueryAckPayload> p = ParseQueryAck(frame);
      if (p.ok()) SMETER_CHECK(MakeQueryAck(p.value()) == frame);
      break;
    }
    case QueryFrameType::kPointQuery: {
      Result<PointQueryPayload> p = ParsePointQuery(frame);
      if (p.ok()) SMETER_CHECK(MakePointQuery(p.value()) == frame);
      break;
    }
    case QueryFrameType::kPointResult: {
      Result<PointResultPayload> p = ParsePointResult(frame);
      if (p.ok()) SMETER_CHECK(MakePointResult(p.value()) == frame);
      break;
    }
    case QueryFrameType::kRangeQuery: {
      Result<RangeQueryPayload> p = ParseRangeQuery(frame);
      if (p.ok()) SMETER_CHECK(MakeRangeQuery(p.value()) == frame);
      break;
    }
    case QueryFrameType::kRangeResult: {
      Result<RangeResultPayload> p = ParseRangeResult(frame);
      if (p.ok()) SMETER_CHECK(MakeRangeResult(p.value()) == frame);
      break;
    }
    case QueryFrameType::kAggregateQuery: {
      Result<AggregateQueryPayload> p = ParseAggregateQuery(frame);
      if (p.ok()) SMETER_CHECK(MakeAggregateQuery(p.value()) == frame);
      break;
    }
    case QueryFrameType::kAggregateResult: {
      Result<AggregateResultPayload> p = ParseAggregateResult(frame);
      if (p.ok()) SMETER_CHECK(MakeAggregateResult(p.value()) == frame);
      break;
    }
  }
}

// Raw bytes through the frame decoder, then the typed query parsers.
void FuzzDecodeQueryFrame(const std::string& bytes) {
  DecodeResult result = DecodeFrame(bytes);
  switch (result.outcome) {
    case DecodeResult::Outcome::kNeedMore:
      SMETER_CHECK_EQ(result.consumed, 0u);
      return;
    case DecodeResult::Outcome::kError:
      SMETER_CHECK(!result.error.ok());
      return;
    case DecodeResult::Outcome::kFrame:
      break;
  }
  SMETER_CHECK_EQ(result.consumed,
                  kFrameHeaderBytes + result.frame.payload.size());
  SMETER_CHECK(EncodeFrame(result.frame) ==
               bytes.substr(0, result.consumed));
  if (IsQueryFrameType(static_cast<uint8_t>(result.frame.type))) {
    CheckQueryParserClosure(result.frame);
  }
}

// Builds one mostly-in-domain query frame from fuzz input.
Frame BuildQueryFrame(FuzzInput& in) {
  switch (in.TakeByte() % 8) {
    case 0: {
      QueryHelloPayload p;
      p.protocol_version = static_cast<uint16_t>(in.TakeUint64());
      p.auth_token = in.TakeString(in.TakeIntInRange(0, 32));
      return MakeQueryHello(p);
    }
    case 1: {
      QueryAckPayload p;
      p.status = static_cast<WireStatus>(in.TakeByte() % 11);
      p.message = in.TakeString(in.TakeIntInRange(0, 48));
      return MakeQueryAck(p);
    }
    case 2: {
      PointQueryPayload p;
      p.request_id = in.TakeUint64();
      p.meter_id = (in.TakeByte() % 4 == 0)
                       ? in.TakeString(in.TakeIntInRange(0, 16))
                       : "meter_" + std::to_string(in.TakeByte());
      return MakePointQuery(p);
    }
    case 3: {
      PointResultPayload p;
      p.request_id = in.TakeUint64();
      if (in.TakeByte() % 3 == 0) {
        p.status = static_cast<WireStatus>(1 + in.TakeByte() % 10);
        p.message = in.TakeString(in.TakeIntInRange(0, 24));
      } else {
        p.timestamp = in.TakeIntInRange(-86'400, 86'400 * 365);
        p.level = static_cast<uint8_t>(in.TakeIntInRange(1, kMaxSymbolLevel));
        p.symbol = (in.TakeByte() % 5 == 0)
                       ? kWireGapSymbol
                       : static_cast<uint16_t>(
                             in.TakeIntInRange(0, (1 << p.level) - 1));
      }
      return MakePointResult(p);
    }
    case 4: {
      RangeQueryPayload p;
      p.request_id = in.TakeUint64();
      p.meter_id = "meter_" + std::to_string(in.TakeByte());
      p.start = in.TakeIntInRange(-86'400, 86'400 * 30);
      p.end = p.start + in.TakeIntInRange(-10, 86'400 * 30);
      p.level = static_cast<uint8_t>(in.TakeIntInRange(0, kMaxSymbolLevel));
      p.max_symbols = static_cast<uint32_t>(in.TakeUint64());
      return MakeRangeQuery(p);
    }
    case 5: {
      RangeResultPayload p;
      p.request_id = in.TakeUint64();
      if (in.TakeByte() % 3 == 0) {
        p.status = static_cast<WireStatus>(1 + in.TakeByte() % 10);
        p.message = in.TakeString(in.TakeIntInRange(0, 24));
      } else {
        p.start_timestamp = in.TakeIntInRange(0, 86'400 * 30);
        p.step_seconds = in.TakeIntInRange(0, 86'400);
        p.level = static_cast<uint8_t>(in.TakeIntInRange(1, kMaxSymbolLevel));
        p.truncated = static_cast<uint8_t>(in.TakeByte() % 2);
        const int n = in.TakeIntInRange(0, 64);
        for (int i = 0; i < n; ++i) {
          p.symbols.push_back(
              (in.TakeByte() % 5 == 0)
                  ? kWireGapSymbol
                  : static_cast<uint16_t>(
                        in.TakeIntInRange(0, (1 << p.level) - 1)));
        }
      }
      return MakeRangeResult(p);
    }
    case 6: {
      AggregateQueryPayload p;
      p.request_id = in.TakeUint64();
      p.start = in.TakeIntInRange(-86'400, 86'400 * 30);
      p.end = p.start + in.TakeIntInRange(-10, 86'400 * 30);
      p.level = static_cast<uint8_t>(in.TakeIntInRange(0, kMaxSymbolLevel));
      return MakeAggregateQuery(p);
    }
    default: {
      AggregateResultPayload p;
      p.request_id = in.TakeUint64();
      if (in.TakeByte() % 3 == 0) {
        p.status = static_cast<WireStatus>(1 + in.TakeByte() % 10);
        p.message = in.TakeString(in.TakeIntInRange(0, 24));
      } else {
        p.level = static_cast<uint8_t>(in.TakeIntInRange(1, 6));
        p.meters = in.TakeUint64() % 100'000;
        p.windows = in.TakeUint64() % 1'000'000;
        p.gaps = p.windows == 0 ? 0 : in.TakeUint64() % p.windows;
        p.rollup_partitions = static_cast<uint32_t>(in.TakeByte());
        p.scanned_partitions = static_cast<uint32_t>(in.TakeByte());
        p.histogram.assign(size_t{1} << p.level, 0);
        for (uint64_t& bucket : p.histogram) bucket = in.TakeByte();
      }
      return MakeAggregateResult(p);
    }
  }
}

// Encode → decode closure plus the truncation and bit-flip oracles.
void FuzzQueryCodecClosure(FuzzInput& in) {
  const Frame frame = BuildQueryFrame(in);
  const std::string bytes = EncodeFrame(frame);

  // The frame layer must hand back exactly what was encoded...
  DecodeResult decoded = DecodeFrame(bytes);
  SMETER_CHECK(decoded.outcome == DecodeResult::Outcome::kFrame);
  SMETER_CHECK(decoded.frame == frame);
  SMETER_CHECK_EQ(decoded.consumed, bytes.size());
  // ...and whatever the typed parser accepts must rebuild bit-exactly.
  CheckQueryParserClosure(decoded.frame);

  // Truncation oracle: every strict prefix is kNeedMore, never a frame.
  {
    const size_t cut = static_cast<size_t>(
        in.TakeIntInRange(0, static_cast<int>(bytes.size()) - 1));
    DecodeResult r = DecodeFrame(std::string_view(bytes).substr(0, cut));
    SMETER_CHECK(r.outcome == DecodeResult::Outcome::kNeedMore);
  }

  // Bit-flip oracle: damage must never decode to a *different* frame.
  {
    std::string damaged = bytes;
    const size_t pos = static_cast<size_t>(
        in.TakeIntInRange(0, static_cast<int>(damaged.size()) - 1));
    damaged[pos] = static_cast<char>(
        static_cast<unsigned char>(damaged[pos]) ^ (1u << (in.TakeByte() % 8)));
    DecodeResult r = DecodeFrame(damaged);
    if (r.outcome == DecodeResult::Outcome::kFrame) {
      SMETER_CHECK(r.frame == frame);  // only an identical re-read is ok
    }
  }
}

// Drives a storeless QuerySession with a fuzz-chosen frame sequence — a
// mix of protocol-shaped traffic and hostile garbage.
void FuzzQuerySession(FuzzInput& in) {
  QuerySessionOptions options;
  if (in.TakeByte() % 4 == 0) options.auth_token = "secret";
  if (in.TakeByte() % 8 == 0) options.draining = true;
  if (in.TakeByte() % 8 == 0) options.max_scan_symbols = 16;
  QuerySession session(/*store=*/nullptr, options);
  // The fuzz driver is the session's single writer.
  ScopedThreadRole writer(session.writer_role());

  const int steps = in.TakeIntInRange(1, 12);
  for (int i = 0; i < steps; ++i) {
    if (session.state() == QuerySession::State::kFailed) break;
    Frame frame;
    switch (in.TakeByte() % 4) {
      case 0: {
        // The happy-path prefix so the serving state is reachable often.
        if (session.state() == QuerySession::State::kExpectHello) {
          QueryHelloPayload hello;
          hello.auth_token =
              (in.TakeByte() % 3 == 0) ? "secret" : options.auth_token;
          frame = MakeQueryHello(hello);
        } else {
          frame = BuildQueryFrame(in);
        }
        break;
      }
      case 1:
        frame = BuildQueryFrame(in);
        break;
      case 2: {
        // Hostile: a known query type with a garbage payload inside a
        // CRC-valid frame.
        frame = BuildQueryFrame(in);
        frame.payload = in.TakeString(in.TakeIntInRange(0, 24));
        break;
      }
      default: {
        // Hostile: an ingest frame or a future type; the session must
        // refuse per-frame without desyncing.
        frame.type = static_cast<FrameType>(in.TakeIntInRange(1, 255));
        frame.payload = in.TakeString(in.TakeIntInRange(0, 24));
        break;
      }
    }

    std::vector<Frame> replies;
    session.OnFrame(frame, &replies);
    // Every reply the machine produces must itself be encodable and
    // re-decodable — the server sends these bytes to real sockets — and
    // query-typed replies must satisfy their own parser closure.
    for (const Frame& reply : replies) {
      DecodeResult r = DecodeFrame(EncodeFrame(reply));
      SMETER_CHECK(r.outcome == DecodeResult::Outcome::kFrame);
      SMETER_CHECK(r.frame == reply);
      if (IsQueryFrameType(static_cast<uint8_t>(reply.type))) {
        CheckQueryParserClosure(reply);
      }
    }
    if (session.state() == QuerySession::State::kFailed) {
      SMETER_CHECK(!session.error().ok());
      // A failed session goes quiet: further frames produce no replies.
      std::vector<Frame> after;
      session.OnFrame(MakeQueryHello({}), &after);
      SMETER_CHECK(after.empty());
    }
  }
}

}  // namespace
}  // namespace smeter::net

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  smeter::fuzz::FuzzInput in(data, size);
  switch (in.TakeByte() % 3) {
    case 0:
      smeter::net::FuzzDecodeQueryFrame(in.TakeRemainingString());
      break;
    case 1:
      smeter::net::FuzzQueryCodecClosure(in);
      break;
    default:
      smeter::net::FuzzQuerySession(in);
      break;
  }
  return 0;
}
