#include "data/features.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "testutil.h"

namespace smeter::data {
namespace {

// A small fleet: 3 houses, 4 days, gapless (fast and deterministic).
std::vector<TimeSeries> SmallFleet() {
  GeneratorOptions options;
  options.num_houses = 3;
  options.duration_seconds = 4 * kSecondsPerDay;
  options.outages_per_day = 0.0;
  options.sparse_house = 99;
  options.seed = 11;
  return GenerateFleet(options).value();
}

ClassificationOptions HourlyOptions() {
  ClassificationOptions options;
  options.day.window_seconds = kSecondsPerHour;
  options.level = 3;
  options.method = SeparatorMethod::kMedian;
  return options;
}

TEST(BuildHouseTablesTest, OneTablePerHouse) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ASSERT_OK_AND_ASSIGN(std::vector<LookupTable> tables,
                       BuildHouseTables(fleet, HourlyOptions()));
  ASSERT_EQ(tables.size(), 3u);
  // Per-house tables must differ (houses have different statistics).
  EXPECT_NE(tables[0].separators(), tables[1].separators());
  EXPECT_NE(tables[1].separators(), tables[2].separators());
}

TEST(BuildHouseTablesTest, GlobalTableIsShared) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ClassificationOptions options = HourlyOptions();
  options.global_table = true;
  ASSERT_OK_AND_ASSIGN(std::vector<LookupTable> tables,
                       BuildHouseTables(fleet, options));
  ASSERT_EQ(tables.size(), 3u);
  EXPECT_EQ(tables[0].separators(), tables[1].separators());
  EXPECT_EQ(tables[0].separators(), tables[2].separators());
}

TEST(SymbolicDatasetTest, SchemaMatchesConfiguration) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ASSERT_OK_AND_ASSIGN(ml::Dataset data, BuildSymbolicClassificationDataset(
                                             fleet, HourlyOptions()));
  EXPECT_EQ(data.num_attributes(), 25u);  // 24 windows + class
  EXPECT_EQ(data.class_index(), 24u);
  EXPECT_EQ(data.num_classes(), 3u);
  for (size_t a = 0; a < 24; ++a) {
    EXPECT_TRUE(data.attribute(a).is_nominal());
    EXPECT_EQ(data.attribute(a).num_values(), 8u);  // level 3
    // Categories are bit strings.
    EXPECT_EQ(data.attribute(a).values()[0], "000");
    EXPECT_EQ(data.attribute(a).values()[7], "111");
  }
  // 3 houses x 4 full days.
  EXPECT_EQ(data.num_instances(), 12u);
}

TEST(SymbolicDatasetTest, FifteenMinuteWindows) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ClassificationOptions options = HourlyOptions();
  options.day.window_seconds = 900;
  ASSERT_OK_AND_ASSIGN(ml::Dataset data,
                       BuildSymbolicClassificationDataset(fleet, options));
  EXPECT_EQ(data.num_attributes(), 97u);
}

TEST(SymbolicDatasetTest, ClassLabelsMatchHouseOrder) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ASSERT_OK_AND_ASSIGN(ml::Dataset data, BuildSymbolicClassificationDataset(
                                             fleet, HourlyOptions()));
  // Instances are appended house by house: 4 days each.
  EXPECT_EQ(data.ClassOf(0).value(), 0u);
  EXPECT_EQ(data.ClassOf(4).value(), 1u);
  EXPECT_EQ(data.ClassOf(8).value(), 2u);
  EXPECT_EQ(data.class_attribute().values()[2], "house3");
}

TEST(RawDatasetTest, NumericAttributes) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ASSERT_OK_AND_ASSIGN(ml::Dataset data, BuildRawClassificationDataset(
                                             fleet, HourlyOptions()));
  EXPECT_EQ(data.num_attributes(), 25u);
  EXPECT_TRUE(data.attribute(0).is_numeric());
  EXPECT_EQ(data.num_instances(), 12u);
  // Values are plausible watts.
  for (size_t r = 0; r < data.num_instances(); ++r) {
    for (size_t a = 0; a < 24; ++a) {
      double v = data.value(r, a);
      if (!ml::IsMissing(v)) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 10000.0);
      }
    }
  }
}

TEST(ClassificationDatasetTest, RejectsDegenerateInput) {
  std::vector<TimeSeries> one_house(1);
  EXPECT_FALSE(
      BuildSymbolicClassificationDataset(one_house, HourlyOptions()).ok());
  // Empty traces fail when learning tables.
  std::vector<TimeSeries> empty_fleet(3);
  EXPECT_FALSE(
      BuildSymbolicClassificationDataset(empty_fleet, HourlyOptions()).ok());
}

TEST(CoarsenSymbolicDatasetTest, EqualsDirectCoarseEncoding) {
  // The Figure-1 nesting property end to end: encode at level 4 and
  // coarsen the dataset == encode directly at level 2.
  std::vector<TimeSeries> fleet = SmallFleet();
  ClassificationOptions fine = HourlyOptions();
  fine.level = 4;
  ClassificationOptions coarse = HourlyOptions();
  coarse.level = 2;
  ASSERT_OK_AND_ASSIGN(ml::Dataset fine_data,
                       BuildSymbolicClassificationDataset(fleet, fine));
  ASSERT_OK_AND_ASSIGN(ml::Dataset coarse_data,
                       BuildSymbolicClassificationDataset(fleet, coarse));
  ASSERT_OK_AND_ASSIGN(ml::Dataset converted,
                       CoarsenSymbolicDataset(fine_data, 4, 2));
  ASSERT_EQ(converted.num_instances(), coarse_data.num_instances());
  ASSERT_EQ(converted.num_attributes(), coarse_data.num_attributes());
  for (size_t a = 0; a < converted.num_attributes(); ++a) {
    EXPECT_EQ(converted.attribute(a).num_values(),
              coarse_data.attribute(a).num_values());
  }
  for (size_t r = 0; r < converted.num_instances(); ++r) {
    for (size_t a = 0; a < converted.num_attributes(); ++a) {
      if (ml::IsMissing(coarse_data.value(r, a))) {
        EXPECT_TRUE(ml::IsMissing(converted.value(r, a)));
      } else {
        EXPECT_DOUBLE_EQ(converted.value(r, a), coarse_data.value(r, a))
            << "row " << r << " attr " << a;
      }
    }
  }
}

TEST(CoarsenSymbolicDatasetTest, SameLevelIsIdentity) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ASSERT_OK_AND_ASSIGN(ml::Dataset data, BuildSymbolicClassificationDataset(
                                             fleet, HourlyOptions()));
  ASSERT_OK_AND_ASSIGN(ml::Dataset same, CoarsenSymbolicDataset(data, 3, 3));
  for (size_t r = 0; r < data.num_instances(); ++r) {
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      if (!ml::IsMissing(data.value(r, a))) {
        EXPECT_DOUBLE_EQ(same.value(r, a), data.value(r, a));
      }
    }
  }
}

TEST(CoarsenSymbolicDatasetTest, Validates) {
  std::vector<TimeSeries> fleet = SmallFleet();
  ASSERT_OK_AND_ASSIGN(ml::Dataset data, BuildSymbolicClassificationDataset(
                                             fleet, HourlyOptions()));
  EXPECT_FALSE(CoarsenSymbolicDataset(data, 3, 0).ok());
  EXPECT_FALSE(CoarsenSymbolicDataset(data, 2, 3).ok());  // to > from
  // Wrong declared from-level: attributes have 8 categories, not 16.
  EXPECT_FALSE(CoarsenSymbolicDataset(data, 4, 2).ok());
  // Raw (numeric) datasets are not symbolic.
  ASSERT_OK_AND_ASSIGN(ml::Dataset raw, BuildRawClassificationDataset(
                                            fleet, HourlyOptions()));
  EXPECT_FALSE(CoarsenSymbolicDataset(raw, 3, 2).ok());
}

TEST(MakeSymbolicLagDatasetTest, BuildsLagRows) {
  std::vector<uint32_t> symbols = {0, 1, 2, 3, 0, 1, 2, 3};
  ASSERT_OK_AND_ASSIGN(ml::Dataset data,
                       MakeSymbolicLagDataset(symbols, 3, 2, 0, 8));
  // Targets at positions 3..7 -> 5 rows, 3 lag attrs + class.
  EXPECT_EQ(data.num_instances(), 5u);
  EXPECT_EQ(data.num_attributes(), 4u);
  EXPECT_EQ(data.class_index(), 3u);
  // Row 0: lags (0,1,2) -> target 3.
  EXPECT_DOUBLE_EQ(data.value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(data.value(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(data.value(0, 2), 2.0);
  EXPECT_EQ(data.ClassOf(0).value(), 3u);
}

TEST(MakeSymbolicLagDatasetTest, RangeSelectsTestRows) {
  std::vector<uint32_t> symbols(20, 1);
  ASSERT_OK_AND_ASSIGN(ml::Dataset train,
                       MakeSymbolicLagDataset(symbols, 4, 1, 0, 15));
  ASSERT_OK_AND_ASSIGN(ml::Dataset test,
                       MakeSymbolicLagDataset(symbols, 4, 1, 15, 20));
  EXPECT_EQ(train.num_instances(), 11u);  // targets 4..14
  EXPECT_EQ(test.num_instances(), 5u);    // targets 15..19
}

TEST(MakeSymbolicLagDatasetTest, Validates) {
  std::vector<uint32_t> symbols = {0, 1, 5};
  EXPECT_FALSE(MakeSymbolicLagDataset(symbols, 0, 2, 0, 3).ok());
  EXPECT_FALSE(MakeSymbolicLagDataset(symbols, 1, 2, 0, 9).ok());
  // Symbol 5 exceeds a level-2 alphabet.
  EXPECT_FALSE(MakeSymbolicLagDataset(symbols, 1, 2, 0, 3).ok());
}

TEST(BuildLagMatrixTest, BuildsWindows) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  ASSERT_OK(BuildLagMatrix(values, 2, 0, 5, &x, &y));
  ASSERT_EQ(x.size(), 3u);
  EXPECT_EQ(x[0], (std::vector<double>{1, 2}));
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_EQ(x[2], (std::vector<double>{3, 4}));
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(BuildLagMatrixTest, Validates) {
  std::vector<double> values = {1, 2, 3};
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  EXPECT_FALSE(BuildLagMatrix(values, 0, 0, 3, &x, &y).ok());
  EXPECT_FALSE(BuildLagMatrix(values, 1, 0, 9, &x, &y).ok());
  EXPECT_FALSE(BuildLagMatrix(values, 1, 0, 3, nullptr, &y).ok());
}

}  // namespace
}  // namespace smeter::data
