#include "data/redd.h"

#include <fstream>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::data {
namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

TEST(ReddChannelTest, ParsesTimestampWattPairs) {
  std::string path = smeter::testing::TempPath("channel.dat");
  WriteFile(path, "1303132929 241.30\n1303132930 245.00\n1303132932 60.5\n");
  ASSERT_OK_AND_ASSIGN(TimeSeries s, LoadReddChannel(path));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].timestamp, 1303132929);
  EXPECT_DOUBLE_EQ(s[0].value, 241.30);
  EXPECT_DOUBLE_EQ(s[2].value, 60.5);
}

// A logger killed mid-write leaves a torn final record ("1303132931 2" for
// what would have been "1303132931 250.0"). The torn row's fields look
// numeric, so only the missing terminator betrays it — drop that one row,
// keep the rest of the channel.
TEST(ReddChannelTest, DropsTruncatedFinalRecord) {
  std::string path = smeter::testing::TempPath("torn.dat");
  WriteFile(path, "1303132929 241.30\n1303132930 245.00\n1303132931 2");
  ASSERT_OK_AND_ASSIGN(TimeSeries s, LoadReddChannel(path));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1].timestamp, 1303132930);
}

// The torn tail can even be a half-written timestamp with no value field;
// that must not surface as a "fewer than 2 fields" error.
TEST(ReddChannelTest, TruncatedSingleFieldTailIsDroppedNotRejected) {
  std::string path = smeter::testing::TempPath("torn_short.dat");
  WriteFile(path, "1303132929 241.30\n13031329");
  ASSERT_OK_AND_ASSIGN(TimeSeries s, LoadReddChannel(path));
  ASSERT_EQ(s.size(), 1u);
}

TEST(ReddChannelTest, RejectsMalformedRows) {
  std::string path = smeter::testing::TempPath("bad.dat");
  WriteFile(path, "1303132929 241.30\nnot_a_number 10\n");
  EXPECT_FALSE(LoadReddChannel(path).ok());
}

TEST(ReddChannelTest, RejectsShortRows) {
  std::string path = smeter::testing::TempPath("short.dat");
  WriteFile(path, "1303132929\n");
  EXPECT_FALSE(LoadReddChannel(path).ok());
}

TEST(ReddChannelTest, RejectsTimestampRegression) {
  std::string path = smeter::testing::TempPath("regress.dat");
  WriteFile(path, "100 1.0\n99 2.0\n");
  Result<TimeSeries> r = LoadReddChannel(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("row 1"), std::string::npos);
}

TEST(ReddChannelTest, MissingFileIsNotFound) {
  Result<TimeSeries> r = LoadReddChannel("/no/such/file.dat");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ReddHouseTest, SumsTheTwoMains) {
  std::string dir = smeter::testing::TempPath("house_1");
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  WriteFile(dir + "/channel_1.dat", "100 10.0\n101 20.0\n102 30.0\n");
  WriteFile(dir + "/channel_2.dat", "100 1.0\n101 2.0\n102 3.0\n");
  ASSERT_OK_AND_ASSIGN(TimeSeries total, LoadReddHouseMains(dir));
  ASSERT_EQ(total.size(), 3u);
  EXPECT_DOUBLE_EQ(total[0].value, 11.0);
  EXPECT_DOUBLE_EQ(total[2].value, 33.0);
}

TEST(ReddHouseTest, AlignsOnSharedTimestampsOnly) {
  std::string dir = smeter::testing::TempPath("house_2");
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  // Channel 2 misses timestamp 101 and has an extra 103.
  WriteFile(dir + "/channel_1.dat", "100 10.0\n101 20.0\n102 30.0\n");
  WriteFile(dir + "/channel_2.dat", "100 1.0\n102 3.0\n103 4.0\n");
  ASSERT_OK_AND_ASSIGN(TimeSeries total, LoadReddHouseMains(dir));
  ASSERT_EQ(total.size(), 2u);
  EXPECT_EQ(total[0].timestamp, 100);
  EXPECT_EQ(total[1].timestamp, 102);
}

TEST(ReddHouseTest, ErrorsWhenNoOverlap) {
  std::string dir = smeter::testing::TempPath("house_3");
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  WriteFile(dir + "/channel_1.dat", "100 10.0\n");
  WriteFile(dir + "/channel_2.dat", "200 1.0\n");
  EXPECT_FALSE(LoadReddHouseMains(dir).ok());
}

TEST(ReddHouseTest, MissingChannelIsNotFound) {
  std::string dir = smeter::testing::TempPath("house_4");
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  WriteFile(dir + "/channel_1.dat", "100 10.0\n");
  Result<TimeSeries> r = LoadReddHouseMains(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace smeter::data
