#include "data/household.h"

#include <gtest/gtest.h>

#include "core/quantile.h"
#include "testutil.h"

namespace smeter::data {
namespace {

// Simulates `seconds` of a house and returns the values.
std::vector<double> Simulate(Household& house, int64_t seconds,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(seconds));
  for (Timestamp t = 0; t < seconds; ++t) {
    values.push_back(house.Step(t, rng));
  }
  return values;
}

TEST(HouseholdTest, PowerIsNonNegativeAndBounded) {
  Household house = MakeHousehold(0, 1);
  std::vector<double> values = Simulate(house, 2 * kSecondsPerHour, 2);
  for (double v : values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 20000.0);  // sanity: well under 20 kW
  }
}

TEST(HouseholdTest, BaseLoadIsAlwaysPresent) {
  Household house = MakeHousehold(0, 1);
  std::vector<double> values = Simulate(house, kSecondsPerDay, 3);
  // The standby appliance keeps the minimum clearly above zero.
  double min = *std::min_element(values.begin(), values.end());
  EXPECT_GT(min, 10.0);
}

TEST(HouseholdTest, SixPersonalitiesHaveDistinctMedians) {
  // The classification experiment requires per-house statistics to differ;
  // check pairwise median separation over a simulated day.
  std::vector<double> medians;
  for (size_t id = 0; id < 6; ++id) {
    Household house = MakeHousehold(id, 7);
    std::vector<double> values = Simulate(house, kSecondsPerDay, 100 + id);
    medians.push_back(Quantile(values, 0.5).value());
  }
  for (size_t a = 0; a < medians.size(); ++a) {
    for (size_t b = a + 1; b < medians.size(); ++b) {
      EXPECT_GT(std::abs(medians[a] - medians[b]),
                0.02 * std::max(medians[a], medians[b]))
          << "houses " << a << " and " << b << " are statistically identical";
    }
  }
}

TEST(HouseholdTest, DifferentSeedsPerturbParameters) {
  Household a = MakeHousehold(1, 1);
  Household b = MakeHousehold(1, 2);
  std::vector<double> va = Simulate(a, kSecondsPerHour, 5);
  std::vector<double> vb = Simulate(b, kSecondsPerHour, 5);
  EXPECT_NE(va, vb);
}

TEST(HouseholdTest, SameSeedIsDeterministic) {
  Household a = MakeHousehold(2, 9);
  Household b = MakeHousehold(2, 9);
  std::vector<double> va = Simulate(a, kSecondsPerHour, 5);
  std::vector<double> vb = Simulate(b, kSecondsPerHour, 5);
  EXPECT_EQ(va, vb);
}

TEST(HouseholdTest, ExoticIdsReusePersonalities) {
  Household h8 = MakeHousehold(8, 1);
  EXPECT_GT(h8.num_appliances(), 0u);
  EXPECT_EQ(h8.name(), "house 9");
}

TEST(HouseholdTest, EvCommuterChargesAtNight) {
  // Personality 6: the EV charger concentrates large draws into the night
  // hours, unlike the family house (personality 0).
  Household ev = MakeHousehold(6, 3);
  Household family = MakeHousehold(0, 3);
  auto night_heavy_seconds = [](Household& house, uint64_t seed) {
    Rng rng(seed);
    size_t heavy = 0;
    for (Timestamp t = 0; t < 7 * kSecondsPerDay; ++t) {
      double w = house.Step(t, rng);
      int hour = static_cast<int>((t % kSecondsPerDay) / kSecondsPerHour);
      if ((hour < 6 || hour >= 22) && w > 3000.0) ++heavy;
    }
    return heavy;
  };
  EXPECT_GT(night_heavy_seconds(ev, 5), 5 * night_heavy_seconds(family, 5));
}

TEST(HouseholdTest, StudioConsumesFarLessThanFamilyHouse) {
  Household studio = MakeHousehold(7, 3);
  Household family = MakeHousehold(0, 3);
  std::vector<double> studio_values = Simulate(studio, kSecondsPerDay, 9);
  std::vector<double> family_values = Simulate(family, kSecondsPerDay, 9);
  double studio_mean = 0.0, family_mean = 0.0;
  for (double v : studio_values) studio_mean += v;
  for (double v : family_values) family_mean += v;
  EXPECT_LT(studio_mean, 0.5 * family_mean);
}

TEST(HouseholdTest, HeavyTailInDailyDistribution) {
  // Peak power must far exceed the median (log-normal-like shape,
  // Figure 2): big appliances fire rarely.
  Household house = MakeHousehold(0, 11);
  std::vector<double> values = Simulate(house, kSecondsPerDay, 13);
  double median = Quantile(values, 0.5).value();
  double p999 = Quantile(values, 0.999).value();
  EXPECT_GT(p999, 4.0 * median);
}

}  // namespace
}  // namespace smeter::data
