#include "data/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::data {
namespace {

GeneratorOptions ShortOptions() {
  GeneratorOptions options;
  options.num_houses = 3;
  options.duration_seconds = 2 * kSecondsPerHour;
  options.seed = 7;
  options.sparse_house = 99;  // disabled
  return options;
}

TEST(GeneratorTest, ProducesOrderedGappySeries) {
  ASSERT_OK_AND_ASSIGN(TimeSeries s, GenerateHouseSeries(0, ShortOptions()));
  ASSERT_FALSE(s.empty());
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_GT(s[i].timestamp, s[i - 1].timestamp);
  }
  EXPECT_GE(s.front().timestamp, 0);
  EXPECT_LT(s.back().timestamp, ShortOptions().duration_seconds);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  ASSERT_OK_AND_ASSIGN(TimeSeries a, GenerateHouseSeries(1, ShortOptions()));
  ASSERT_OK_AND_ASSIGN(TimeSeries b, GenerateHouseSeries(1, ShortOptions()));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GeneratorTest, DifferentHousesDiffer) {
  ASSERT_OK_AND_ASSIGN(TimeSeries a, GenerateHouseSeries(0, ShortOptions()));
  ASSERT_OK_AND_ASSIGN(TimeSeries b, GenerateHouseSeries(1, ShortOptions()));
  bool differ = a.size() != b.size();
  if (!differ) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].value != b[i].value) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorTest, StreamingMatchesMaterialized) {
  GeneratorOptions options = ShortOptions();
  ASSERT_OK_AND_ASSIGN(TimeSeries materialized,
                       GenerateHouseSeries(2, options));
  std::vector<Sample> streamed;
  ASSERT_OK(ForEachHouseSample(2, options, [&](const Sample& s) {
    streamed.push_back(s);
  }));
  ASSERT_EQ(streamed.size(), materialized.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], materialized[i]);
  }
}

TEST(GeneratorTest, OutagesCreateGaps) {
  GeneratorOptions options = ShortOptions();
  options.duration_seconds = kSecondsPerDay;
  options.outages_per_day = 10.0;
  options.outage_mean_seconds = 600.0;
  ASSERT_OK_AND_ASSIGN(TimeSeries s, GenerateHouseSeries(0, options));
  std::vector<TimeRange> gaps = s.FindGaps(1);
  EXPECT_FALSE(gaps.empty());
  // With ~10 outages of ~10 min, coverage should drop noticeably but the
  // series must still hold most of the day.
  EXPECT_LT(s.size(), static_cast<size_t>(kSecondsPerDay));
  EXPECT_GT(s.size(), static_cast<size_t>(kSecondsPerDay) / 2);
}

TEST(GeneratorTest, ZeroOutageRateIsGapless) {
  GeneratorOptions options = ShortOptions();
  options.outages_per_day = 0.0;
  ASSERT_OK_AND_ASSIGN(TimeSeries s, GenerateHouseSeries(0, options));
  EXPECT_EQ(s.size(), static_cast<size_t>(options.duration_seconds));
  EXPECT_TRUE(s.FindGaps(1).empty());
}

TEST(GeneratorTest, SparseHouseLosesMostData) {
  GeneratorOptions options = ShortOptions();
  options.num_houses = 6;
  options.duration_seconds = kSecondsPerDay;
  options.sparse_house = 4;
  ASSERT_OK_AND_ASSIGN(TimeSeries normal, GenerateHouseSeries(0, options));
  ASSERT_OK_AND_ASSIGN(TimeSeries sparse, GenerateHouseSeries(4, options));
  EXPECT_LT(static_cast<double>(sparse.size()),
            0.65 * static_cast<double>(normal.size()));
}

TEST(GeneratorTest, FleetHasOneSeriesPerHouse) {
  ASSERT_OK_AND_ASSIGN(std::vector<TimeSeries> fleet,
                       GenerateFleet(ShortOptions()));
  EXPECT_EQ(fleet.size(), 3u);
  for (const TimeSeries& s : fleet) EXPECT_FALSE(s.empty());
}

TEST(GeneratorTest, ValidatesOptions) {
  GeneratorOptions options = ShortOptions();
  options.num_houses = 0;
  EXPECT_FALSE(GenerateFleet(options).ok());
  options = ShortOptions();
  options.duration_seconds = 0;
  EXPECT_FALSE(GenerateHouseSeries(0, options).ok());
  options = ShortOptions();
  EXPECT_FALSE(GenerateHouseSeries(99, options).ok());
  options = ShortOptions();
  options.outages_per_day = -1.0;
  EXPECT_FALSE(GenerateHouseSeries(0, options).ok());
}

TEST(GeneratorTest, MeterQuantizationRoundsToResolution) {
  GeneratorOptions options = ShortOptions();
  options.outages_per_day = 0.0;
  options.resolution_watts = 5.0;
  ASSERT_OK_AND_ASSIGN(TimeSeries s, GenerateHouseSeries(0, options));
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(std::fmod(s[i].value, 5.0), 0.0);
  }
}

TEST(GeneratorTest, SeasonalModulationScalesConsumption) {
  GeneratorOptions options;
  options.num_houses = 1;
  options.duration_seconds = 365 * kSecondsPerDay;
  options.sample_period_seconds = 1800;  // keep it cheap
  options.outages_per_day = 0.0;
  options.sparse_house = 99;
  options.seasonal_amplitude = 0.4;
  options.seasonal_peak_day = 15;
  options.seed = 3;
  ASSERT_OK_AND_ASSIGN(TimeSeries s, GenerateHouseSeries(0, options));
  // Mean consumption in the peak month must clearly exceed the trough
  // month (day 15 + 182).
  double winter = s.Slice({0, 30 * kSecondsPerDay}).MeanValue().value();
  double summer = s.Slice({182 * kSecondsPerDay, 212 * kSecondsPerDay})
                      .MeanValue()
                      .value();
  EXPECT_GT(winter, 1.5 * summer);
}

TEST(GeneratorTest, SeasonalOptionsValidated) {
  GeneratorOptions options = ShortOptions();
  options.seasonal_amplitude = 1.0;
  EXPECT_FALSE(GenerateHouseSeries(0, options).ok());
  options = ShortOptions();
  options.seasonal_amplitude = -0.1;
  EXPECT_FALSE(GenerateHouseSeries(0, options).ok());
  options = ShortOptions();
  options.seasonal_amplitude = 0.2;
  options.seasonal_period_days = 0;
  EXPECT_FALSE(GenerateHouseSeries(0, options).ok());
}

TEST(GeneratorTest, NonUnitSamplePeriod) {
  GeneratorOptions options = ShortOptions();
  options.sample_period_seconds = 30;
  options.outages_per_day = 0.0;
  ASSERT_OK_AND_ASSIGN(TimeSeries s, GenerateHouseSeries(0, options));
  EXPECT_EQ(s.size(),
            static_cast<size_t>(options.duration_seconds / 30));
  EXPECT_EQ(s[1].timestamp - s[0].timestamp, 30);
}

}  // namespace
}  // namespace smeter::data
