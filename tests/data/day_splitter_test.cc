#include "data/day_splitter.h"

#include <gtest/gtest.h>

#include "ml/instances.h"
#include "testutil.h"

namespace smeter::data {
namespace {

// A gapless 1 Hz day of constant `watts` starting at `day_start`.
void AppendFullDay(std::vector<Sample>& samples, Timestamp day_start,
                   double watts) {
  for (int64_t s = 0; s < kSecondsPerDay; ++s) {
    samples.push_back({day_start + s, watts});
  }
}

TEST(EnumerateDaysTest, CoversSpannedDays) {
  ASSERT_OK_AND_ASSIGN(
      TimeSeries s,
      TimeSeries::FromSamples({{10, 1.0}, {2 * kSecondsPerDay + 5, 2.0}}));
  std::vector<TimeRange> days = EnumerateDays(s);
  ASSERT_EQ(days.size(), 3u);
  EXPECT_EQ(days[0].begin, 0);
  EXPECT_EQ(days[2].end, 3 * kSecondsPerDay);
}

TEST(EnumerateDaysTest, EmptySeries) {
  EXPECT_TRUE(EnumerateDays(TimeSeries()).empty());
}

TEST(DayVectorTest, FullDayProducesFullVector) {
  std::vector<Sample> samples;
  AppendFullDay(samples, 0, 100.0);
  ASSERT_OK_AND_ASSIGN(TimeSeries s, TimeSeries::FromSamples(samples));
  DayVectorOptions options;
  options.window_seconds = kSecondsPerHour;
  ASSERT_OK_AND_ASSIGN(std::vector<DayVector> days,
                       BuildDayVectors(s, options));
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].day_start, 0);
  ASSERT_EQ(days[0].values.size(), 24u);
  EXPECT_EQ(days[0].windows_present, 24u);
  for (double v : days[0].values) EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(DayVectorTest, FifteenMinuteWindowsYield96Cells) {
  std::vector<Sample> samples;
  AppendFullDay(samples, 0, 50.0);
  ASSERT_OK_AND_ASSIGN(TimeSeries s, TimeSeries::FromSamples(samples));
  DayVectorOptions options;
  options.window_seconds = 900;
  ASSERT_OK_AND_ASSIGN(std::vector<DayVector> days,
                       BuildDayVectors(s, options));
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].values.size(), 96u);
}

TEST(DayVectorTest, SparseDayIsRejected) {
  // Only 10 hours of data: below the paper's 20 h threshold.
  std::vector<Sample> samples;
  for (int64_t s = 0; s < 10 * kSecondsPerHour; ++s) {
    samples.push_back({s, 10.0});
  }
  ASSERT_OK_AND_ASSIGN(TimeSeries series, TimeSeries::FromSamples(samples));
  DayVectorOptions options;
  ASSERT_OK_AND_ASSIGN(std::vector<DayVector> days,
                       BuildDayVectors(series, options));
  EXPECT_TRUE(days.empty());
}

TEST(DayVectorTest, TwentyHourDayIsKeptWithMissingCells) {
  // 21 hours present (above threshold), 3 hours missing.
  std::vector<Sample> samples;
  for (int64_t s = 0; s < 21 * kSecondsPerHour; ++s) {
    samples.push_back({s, 10.0});
  }
  ASSERT_OK_AND_ASSIGN(TimeSeries series, TimeSeries::FromSamples(samples));
  DayVectorOptions options;
  options.window_seconds = kSecondsPerHour;
  ASSERT_OK_AND_ASSIGN(std::vector<DayVector> days,
                       BuildDayVectors(series, options));
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].windows_present, 21u);
  EXPECT_TRUE(ml::IsMissing(days[0].values[23]));
  EXPECT_FALSE(ml::IsMissing(days[0].values[0]));
}

TEST(DayVectorTest, MultipleDaysSplitCorrectly) {
  std::vector<Sample> samples;
  AppendFullDay(samples, 0, 10.0);
  AppendFullDay(samples, kSecondsPerDay, 20.0);
  ASSERT_OK_AND_ASSIGN(TimeSeries s, TimeSeries::FromSamples(samples));
  DayVectorOptions options;
  ASSERT_OK_AND_ASSIGN(std::vector<DayVector> days, BuildDayVectors(s, options));
  ASSERT_EQ(days.size(), 2u);
  EXPECT_DOUBLE_EQ(days[0].values[5], 10.0);
  EXPECT_DOUBLE_EQ(days[1].values[5], 20.0);
  EXPECT_EQ(days[1].day_start, kSecondsPerDay);
}

TEST(DayVectorTest, UnderCoveredWindowIsMissing) {
  // One hour has only 40% of its samples: below the 0.5 default coverage.
  std::vector<Sample> samples;
  for (int64_t s = 0; s < kSecondsPerDay; ++s) {
    bool in_thin_hour = s >= 5 * kSecondsPerHour && s < 6 * kSecondsPerHour;
    if (in_thin_hour && s % 3600 >= 1440) continue;  // keep 40%
    samples.push_back({s, 10.0});
  }
  ASSERT_OK_AND_ASSIGN(TimeSeries series, TimeSeries::FromSamples(samples));
  DayVectorOptions options;
  options.window_seconds = kSecondsPerHour;
  ASSERT_OK_AND_ASSIGN(std::vector<DayVector> days,
                       BuildDayVectors(series, options));
  ASSERT_EQ(days.size(), 1u);
  EXPECT_TRUE(ml::IsMissing(days[0].values[5]));
  EXPECT_EQ(days[0].windows_present, 23u);
}

TEST(DayVectorTest, RejectsBadOptions) {
  TimeSeries s;
  DayVectorOptions options;
  options.window_seconds = 7;  // does not divide 86400
  EXPECT_FALSE(BuildDayVectors(s, options).ok());
  options = {};
  options.min_hours = 25.0;
  EXPECT_FALSE(BuildDayVectors(s, options).ok());
  options = {};
  options.sample_period_seconds = 0;
  EXPECT_FALSE(BuildDayVectors(s, options).ok());
}

}  // namespace
}  // namespace smeter::data
