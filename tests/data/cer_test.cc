#include "data/cer.h"

#include <fstream>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::data {
namespace {

TEST(CerTest, ParsesBasicRecords) {
  // Meter 1392, day 1 slots 1-2, and meter 1000 day 2 slot 1.
  std::string content =
      "1392 00101 0.140\n"
      "1392 00102 0.138\n"
      "1000 00201 1.0\n";
  ASSERT_OK_AND_ASSIGN(auto meters, ParseCer(content));
  ASSERT_EQ(meters.size(), 2u);
  EXPECT_EQ(meters[0].first, 1000);  // ascending meter id
  EXPECT_EQ(meters[1].first, 1392);
  const TimeSeries& m1392 = meters[1].second;
  ASSERT_EQ(m1392.size(), 2u);
  EXPECT_EQ(m1392[0].timestamp, 0);
  EXPECT_EQ(m1392[1].timestamp, 1800);
  // kWh per half hour -> average watts (x2000).
  EXPECT_DOUBLE_EQ(m1392[0].value, 280.0);
  const TimeSeries& m1000 = meters[0].second;
  EXPECT_EQ(m1000[0].timestamp, kSecondsPerDay);
}

TEST(CerTest, KeepsKwhWhenRequested) {
  CerOptions options;
  options.convert_to_watts = false;
  ASSERT_OK_AND_ASSIGN(auto meters, ParseCer("1 00101 0.5\n", options));
  EXPECT_DOUBLE_EQ(meters[0].second[0].value, 0.5);
}

TEST(CerTest, SortsOutOfOrderRecords) {
  std::string content =
      "5 00105 0.3\n"
      "5 00101 0.1\n"
      "5 00103 0.2\n";
  ASSERT_OK_AND_ASSIGN(auto meters, ParseCer(content));
  const TimeSeries& s = meters[0].second;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].timestamp, 0);
  EXPECT_EQ(s[1].timestamp, 2 * 1800);
  EXPECT_EQ(s[2].timestamp, 4 * 1800);
}

TEST(CerTest, AcceptsDstSlots49And50) {
  EXPECT_OK(ParseCer("7 00149 0.1\n7 00150 0.1\n").status());
}

TEST(CerTest, RejectsMalformedRows) {
  EXPECT_FALSE(ParseCer("1 001 0.1\n").ok());         // short code
  EXPECT_FALSE(ParseCer("1 0010x 0.1\n").ok());       // non-numeric slot
  EXPECT_FALSE(ParseCer("1 00151 0.1\n").ok());       // slot 51
  EXPECT_FALSE(ParseCer("1 00001 0.1\n").ok());       // day 0
  EXPECT_FALSE(ParseCer("1 00101\n").ok());           // missing value
  EXPECT_FALSE(ParseCer("x 00101 0.1\n").ok());       // bad meter id
  EXPECT_FALSE(ParseCer("1 00101 watts\n").ok());     // bad value
}

TEST(CerTest, EmptyContentYieldsNoMeters) {
  ASSERT_OK_AND_ASSIGN(auto meters, ParseCer(""));
  EXPECT_TRUE(meters.empty());
}

TEST(CerTest, FormatRoundTrip) {
  TimeSeries series;
  ASSERT_OK(series.Append({0, 250.0}));
  ASSERT_OK(series.Append({1800, 500.0}));
  ASSERT_OK(series.Append({kSecondsPerDay, 125.0}));
  ASSERT_OK_AND_ASSIGN(std::string text, FormatCer({{42, series}}));
  ASSERT_OK_AND_ASSIGN(auto meters, ParseCer(text));
  ASSERT_EQ(meters.size(), 1u);
  EXPECT_EQ(meters[0].first, 42);
  const TimeSeries& round = meters[0].second;
  ASSERT_EQ(round.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(round[i].timestamp, series[i].timestamp);
    EXPECT_NEAR(round[i].value, series[i].value, 0.1);
  }
}

TEST(CerTest, FormatValidatesTimestamps) {
  TimeSeries misaligned;
  ASSERT_OK(misaligned.Append({17, 100.0}));
  EXPECT_FALSE(FormatCer({{1, misaligned}}).ok());
  TimeSeries too_late;
  ASSERT_OK(too_late.Append({1000 * kSecondsPerDay, 100.0}));
  EXPECT_FALSE(FormatCer({{1, too_late}}).ok());
}

TEST(CerTest, LoadFromFile) {
  std::string path = smeter::testing::TempPath("cer.txt");
  {
    std::ofstream out(path);
    out << "10 00101 0.25\n10 00102 0.5\n";
  }
  ASSERT_OK_AND_ASSIGN(auto meters, LoadCerFile(path));
  ASSERT_EQ(meters.size(), 1u);
  EXPECT_EQ(meters[0].second.size(), 2u);
  EXPECT_FALSE(LoadCerFile("/no/such/cer.txt").ok());
}

}  // namespace
}  // namespace smeter::data
