#include "data/appliance.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::data {
namespace {

TEST(IsWeekendTest, WeekStartsMonday) {
  EXPECT_FALSE(IsWeekend(0));                      // Monday
  EXPECT_FALSE(IsWeekend(4 * kSecondsPerDay));     // Friday
  EXPECT_TRUE(IsWeekend(5 * kSecondsPerDay));      // Saturday
  EXPECT_TRUE(IsWeekend(6 * kSecondsPerDay + 1));  // Sunday
  EXPECT_FALSE(IsWeekend(7 * kSecondsPerDay));     // next Monday
}

TEST(IsWeekendTest, NegativeTimestamps) {
  // t = -1 is the last second of the previous Sunday.
  EXPECT_TRUE(IsWeekend(-1));
  EXPECT_TRUE(IsWeekend(-2 * kSecondsPerDay));  // Saturday
  EXPECT_FALSE(IsWeekend(-3 * kSecondsPerDay));
}

TEST(HourProfilesTest, AllPositive) {
  for (const HourProfile& p :
       {EveningPeakProfile(), DoublePeakProfile(), FlatProfile(),
        NightProfile()}) {
    for (double v : p) EXPECT_GT(v, 0.0);
  }
}

TEST(AlwaysOnTest, DrawsAroundNominalWatts) {
  Appliance a = Appliance::AlwaysOn("standby", 100.0, 5.0);
  Rng rng(1);
  double sum = 0.0;
  const int n = 10000;
  for (int t = 0; t < n; ++t) {
    double w = a.Step(t, rng);
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(AlwaysOnTest, NoNoiseIsExact) {
  Appliance a = Appliance::AlwaysOn("standby", 60.0, 0.0);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(a.Step(0, rng), 60.0);
}

TEST(ThermostaticTest, CyclesBetweenOnAndOff) {
  Appliance fridge = Appliance::Thermostatic("fridge", 120.0, 600.0, 1200.0,
                                             0.0);
  Rng rng(3);
  int on_seconds = 0;
  const int n = 18000;  // 10 nominal cycles
  for (int t = 0; t < n; ++t) {
    double w = fridge.Step(t, rng);
    EXPECT_TRUE(w == 0.0 || w == 120.0);
    if (w > 0.0) ++on_seconds;
  }
  // Duty cycle 600/1800 = 1/3.
  EXPECT_NEAR(static_cast<double>(on_seconds) / n, 1.0 / 3.0, 0.05);
}

TEST(ThermostaticTest, JitterVariesCycleLengths) {
  Appliance fridge = Appliance::Thermostatic("fridge", 100.0, 100.0, 100.0,
                                             0.3);
  Rng rng(4);
  // Measure the lengths of the first several on-phases.
  std::vector<int> on_lengths;
  int current = 0;
  bool was_on = false;
  for (int t = 0; t < 5000; ++t) {
    bool on = fridge.Step(t, rng) > 0.0;
    if (on) {
      ++current;
    } else if (was_on) {
      on_lengths.push_back(current);
      current = 0;
    }
    was_on = on;
  }
  ASSERT_GE(on_lengths.size(), 3u);
  bool varied = false;
  for (size_t i = 1; i < on_lengths.size(); ++i) {
    if (on_lengths[i] != on_lengths[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(StochasticTest, EventsFollowHourProfile) {
  // Rate concentrated exclusively in hour 19; the appliance must never run
  // outside it (events can spill over a little past the hour).
  HourProfile profile{};
  profile.fill(0.0);
  profile[19] = 24.0;
  Appliance tv = Appliance::Stochastic("tv", 200.0, 0.1, 60.0, 200.0, profile,
                                       1.0);
  Rng rng(5);
  double in_hour = 0.0, out_hour = 0.0;
  for (int t = 0; t < 2 * kSecondsPerDay; ++t) {
    double w = tv.Step(t, rng);
    int hour = (t % kSecondsPerDay) / kSecondsPerHour;
    if (hour >= 19 && hour <= 20) {
      in_hour += w;
    } else {
      out_hour += w;
    }
  }
  EXPECT_GT(in_hour, 0.0);
  EXPECT_DOUBLE_EQ(out_hour, 0.0);
}

TEST(StochasticTest, WeekendMultiplierChangesActivity) {
  Appliance washer = Appliance::Stochastic("washer", 500.0, 0.1, 600.0, 2.0,
                                           FlatProfile(), 4.0);
  Rng rng(6);
  double weekday_energy = 0.0, weekend_energy = 0.0;
  // Days 0-4 weekday, 5-6 weekend.
  for (int t = 0; t < 7 * kSecondsPerDay; ++t) {
    double w = washer.Step(t, rng);
    if (IsWeekend(t)) {
      weekend_energy += w;
    } else {
      weekday_energy += w;
    }
  }
  // Weekend rate is 4x but only 2 of 7 days; per-day energy should still
  // be clearly higher.
  EXPECT_GT(weekend_energy / 2.0, weekday_energy / 5.0);
}

TEST(StochasticTest, EventPowersVaryLogNormally) {
  Appliance oven = Appliance::Stochastic("oven", 2000.0, 0.3, 300.0, 50.0,
                                         FlatProfile(), 1.0);
  Rng rng(7);
  std::vector<double> powers;
  double last = 0.0;
  for (int t = 0; t < kSecondsPerDay && powers.size() < 40; ++t) {
    double w = oven.Step(t, rng);
    if (w > 0.0 && w != last) powers.push_back(w);
    last = w;
  }
  ASSERT_GE(powers.size(), 10u);
  bool varied = false;
  for (double p : powers) {
    EXPECT_GT(p, 0.0);
    if (std::abs(p - powers[0]) > 1.0) varied = true;
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace smeter::data
