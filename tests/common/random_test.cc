#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace smeter {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ZeroSeedIsNotDegenerate) {
  Rng rng(0);
  uint64_t first = rng.Next();
  uint64_t second = rng.Next();
  EXPECT_NE(first, second);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(7)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalIsPositiveWithExpectedMedian) {
  Rng rng(23);
  std::vector<double> values;
  const int n = 50001;
  for (int i = 0; i < n; ++i) {
    double v = rng.LogNormal(5.0, 1.0);
    EXPECT_GT(v, 0.0);
    values.push_back(v);
  }
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  // Median of LogNormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(values[n / 2], std::exp(5.0), std::exp(5.0) * 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng b = a.Fork();
  // The fork and the parent should diverge immediately.
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

}  // namespace
}  // namespace smeter
