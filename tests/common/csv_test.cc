#include "common/csv.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(CsvTest, ParsesSimpleContent) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("a,b\n1,2\n"));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("# header\n\n1,2\n  \n# x\n3,4"));
  ASSERT_EQ(t.num_rows(), 2u);
}

TEST(CsvTest, HandlesCrlf) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1,2\r\n3,4\r\n"));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(CsvTest, SpaceDelimiter) {
  CsvOptions options;
  options.delimiter = ' ';
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1 200.5\n2 300.25\n", options));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[1][1], "300.25");
}

TEST(CsvTest, NoTrailingNewline) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1,2"));
  ASSERT_EQ(t.num_rows(), 1u);
}

TEST(CsvTest, EmptyContent) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv(""));
  EXPECT_EQ(t.num_rows(), 0u);
}

// Found by the fuzz harness: '\n' must terminate lines, not separate them,
// or a write→read round-trip grows a phantom empty row when blank-line
// skipping is disabled.
TEST(CsvTest, TrailingNewlineDoesNotAddARow) {
  CsvOptions options;
  options.skip_blank_lines = false;
  ASSERT_OK_AND_ASSIGN(CsvTable unterminated, ParseCsv("a,b", options));
  ASSERT_OK_AND_ASSIGN(CsvTable terminated, ParseCsv("a,b\n", options));
  EXPECT_EQ(unterminated.num_rows(), 1u);
  EXPECT_EQ(terminated.num_rows(), 1u);
  EXPECT_EQ(unterminated.rows, terminated.rows);
  // An explicitly blank interior line still counts when skipping is off.
  ASSERT_OK_AND_ASSIGN(CsvTable blank, ParseCsv("a,b\n\nc,d\n", options));
  EXPECT_EQ(blank.num_rows(), 3u);
}

TEST(CsvTest, CommentCharDisabled) {
  CsvOptions options;
  options.comment_char = '\0';
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("#not,comment\n", options));
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows[0][0], "#not");
}

// A final record without a line terminator is the signature of a
// truncated write; the row still parses but the flag lets loaders drop it.
TEST(CsvTest, FlagsTruncatedFinalRecord) {
  ASSERT_OK_AND_ASSIGN(CsvTable torn, ParseCsv("1,2\n3,"));
  ASSERT_EQ(torn.num_rows(), 2u);
  EXPECT_TRUE(torn.last_row_unterminated);
  ASSERT_OK_AND_ASSIGN(CsvTable clean, ParseCsv("1,2\n3,4\n"));
  EXPECT_FALSE(clean.last_row_unterminated);
  // A trailing comment or blank after a terminated data row does not flag:
  // the torn tail is not a data record.
  ASSERT_OK_AND_ASSIGN(CsvTable comment_tail, ParseCsv("1,2\n# partial com"));
  ASSERT_EQ(comment_tail.num_rows(), 1u);
  EXPECT_FALSE(comment_tail.last_row_unterminated);
}

// CRLF appearing mid-file (a file assembled from chunks with mixed line
// endings) must not leave '\r' glued onto field values or split rows
// wrongly.
TEST(CsvTest, MixedLineEndingsMidFile) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1,2\r\n3,4\n5,6\r\n7,8"));
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(t.rows[2], (std::vector<std::string>{"5", "6"}));
  EXPECT_EQ(t.rows[3], (std::vector<std::string>{"7", "8"}));
  EXPECT_TRUE(t.last_row_unterminated);
}

// Classic-Mac exports terminate lines with a lone '\r'.
TEST(CsvTest, LoneCarriageReturnTerminatesLines) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1,2\r3,4\r"));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"3", "4"}));
  EXPECT_FALSE(t.last_row_unterminated);
}

TEST(CsvTest, CrLfPairIsOneTerminatorNotTwo) {
  CsvOptions options;
  options.skip_blank_lines = false;
  // "\r\n" must produce one line break; "\n\r" is two breaks (an empty
  // line between them).
  ASSERT_OK_AND_ASSIGN(CsvTable crlf, ParseCsv("a\r\nb\n", options));
  EXPECT_EQ(crlf.num_rows(), 2u);
  ASSERT_OK_AND_ASSIGN(CsvTable lfcr, ParseCsv("a\n\rb\n", options));
  EXPECT_EQ(lfcr.num_rows(), 3u);
}

TEST(CsvFileTest, RoundTrip) {
  std::string path = testing::TempPath("roundtrip.csv");
  std::vector<std::vector<std::string>> rows = {{"a", "b"}, {"1", "2"}};
  ASSERT_OK(WriteCsvFile(path, rows));
  ASSERT_OK_AND_ASSIGN(CsvTable t, ReadCsvFile(path));
  EXPECT_EQ(t.rows, rows);
}

TEST(CsvFileTest, MissingFileReturnsNotFound) {
  Result<CsvTable> r = ReadCsvFile("/nonexistent/path/x.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace smeter
