#include "common/csv.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(CsvTest, ParsesSimpleContent) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("a,b\n1,2\n"));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("# header\n\n1,2\n  \n# x\n3,4"));
  ASSERT_EQ(t.num_rows(), 2u);
}

TEST(CsvTest, HandlesCrlf) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1,2\r\n3,4\r\n"));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(CsvTest, SpaceDelimiter) {
  CsvOptions options;
  options.delimiter = ' ';
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1 200.5\n2 300.25\n", options));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[1][1], "300.25");
}

TEST(CsvTest, NoTrailingNewline) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("1,2"));
  ASSERT_EQ(t.num_rows(), 1u);
}

TEST(CsvTest, EmptyContent) {
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv(""));
  EXPECT_EQ(t.num_rows(), 0u);
}

// Found by the fuzz harness: '\n' must terminate lines, not separate them,
// or a write→read round-trip grows a phantom empty row when blank-line
// skipping is disabled.
TEST(CsvTest, TrailingNewlineDoesNotAddARow) {
  CsvOptions options;
  options.skip_blank_lines = false;
  ASSERT_OK_AND_ASSIGN(CsvTable unterminated, ParseCsv("a,b", options));
  ASSERT_OK_AND_ASSIGN(CsvTable terminated, ParseCsv("a,b\n", options));
  EXPECT_EQ(unterminated.num_rows(), 1u);
  EXPECT_EQ(terminated.num_rows(), 1u);
  EXPECT_EQ(unterminated.rows, terminated.rows);
  // An explicitly blank interior line still counts when skipping is off.
  ASSERT_OK_AND_ASSIGN(CsvTable blank, ParseCsv("a,b\n\nc,d\n", options));
  EXPECT_EQ(blank.num_rows(), 3u);
}

TEST(CsvTest, CommentCharDisabled) {
  CsvOptions options;
  options.comment_char = '\0';
  ASSERT_OK_AND_ASSIGN(CsvTable t, ParseCsv("#not,comment\n", options));
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows[0][0], "#not");
}

TEST(CsvFileTest, RoundTrip) {
  std::string path = testing::TempPath("roundtrip.csv");
  std::vector<std::vector<std::string>> rows = {{"a", "b"}, {"1", "2"}};
  ASSERT_OK(WriteCsvFile(path, rows));
  ASSERT_OK_AND_ASSIGN(CsvTable t, ReadCsvFile(path));
  EXPECT_EQ(t.rows, rows);
}

TEST(CsvFileTest, MissingFileReturnsNotFound) {
  Result<CsvTable> r = ReadCsvFile("/nonexistent/path/x.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace smeter
