#include "common/fault_injection.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter::fault {
namespace {

TEST(FaultInjectionTest, NoPlanMeansEveryCheckPasses) {
  EXPECT_FALSE(Active());
  ASSERT_OK(Check("csv.read"));
  ASSERT_OK(Check("anything.at.all"));
}

TEST(FaultInjectionTest, FailsExactlyTheNthCall) {
  ScopedFaultPlan plan({FaultRule::FailCalls("csv.read", 2, 2)});
  EXPECT_TRUE(Active());
  ASSERT_OK(Check("csv.read"));
  Status second = Check("csv.read");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kInternal);
  EXPECT_NE(second.message().find("csv.read"), std::string::npos);
  ASSERT_OK(Check("csv.read"));
  EXPECT_EQ(plan.CallCount("csv.read"), 3u);
  EXPECT_EQ(plan.InjectedCount("csv.read"), 1u);
  EXPECT_EQ(plan.TotalInjected(), 1u);
}

TEST(FaultInjectionTest, OpenEndedRangeFailsForever) {
  ScopedFaultPlan plan({FaultRule::FailCalls("table.build", 1)});
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(Check("table.build").ok());
  }
  EXPECT_EQ(plan.InjectedCount("table.build"), 5u);
}

TEST(FaultInjectionTest, CountersArePerSeam) {
  ScopedFaultPlan plan({FaultRule::FailCalls("a", 1, 1)});
  EXPECT_FALSE(Check("a").ok());
  ASSERT_OK(Check("b"));
  ASSERT_OK(Check("a"));
  EXPECT_EQ(plan.CallCount("a"), 2u);
  EXPECT_EQ(plan.CallCount("b"), 1u);
  EXPECT_EQ(plan.InjectedCount("b"), 0u);
}

TEST(FaultInjectionTest, PrefixWildcardMatchesDottedFamilies) {
  ScopedFaultPlan plan({FaultRule::FailCalls("fleet.*", 1)});
  EXPECT_FALSE(Check("fleet.household").ok());
  EXPECT_FALSE(Check("fleet.manifest").ok());
  ASSERT_OK(Check("csv.read"));
}

TEST(FaultInjectionTest, CustomCodeAndMessageSurviveInjection) {
  FaultRule rule = FaultRule::FailCalls("file.write", 1);
  rule.code = StatusCode::kNotFound;
  rule.message = "disk fell off";
  ScopedFaultPlan plan({rule});
  Status st = Check("file.write");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "disk fell off");
}

TEST(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    ScopedFaultPlan plan({FaultRule::FailWithProbability("p", 0.5)},
                         seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!Check("p").ok());
    return fired;
  };
  std::vector<bool> a = run(7);
  std::vector<bool> b = run(7);
  std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 flake odds; a different seed draws differently
  // A 0.5 coin over 64 draws lands strictly inside (0, 64) with near
  // certainty — all-pass or all-fail would mean the probability path is
  // broken.
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST(FaultInjectionTest, PlanTeardownRestoresCleanPassthrough) {
  {
    ScopedFaultPlan plan({FaultRule::FailCalls("x", 1)});
    EXPECT_FALSE(Check("x").ok());
  }
  EXPECT_FALSE(Active());
  ASSERT_OK(Check("x"));
}

TEST(FaultInjectionTest, ConcurrentChecksInjectExactlyTheConfiguredRange) {
  ScopedFaultPlan plan({FaultRule::FailCalls("mt", 1, 10)});
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        if (!Check("mt").ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(plan.CallCount("mt"), 200u);
  EXPECT_EQ(failures.load(), 10);
  EXPECT_EQ(plan.InjectedCount("mt"), 10u);
}

int CountBitFlips(const std::string& a, const std::string& b) {
  EXPECT_EQ(a.size(), b.size());
  int bits = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    unsigned char x = static_cast<unsigned char>(a[i]) ^
                      static_cast<unsigned char>(b[i]);
    while (x != 0) {
      bits += x & 1;
      x >>= 1;
    }
  }
  return bits;
}

TEST(FaultCorruptionTest, NoPlanMeansNoCorruption) {
  std::string out = "untouched";
  EXPECT_FALSE(MaybeCorrupt("io.write", "payload", &out));
  EXPECT_EQ(out, "untouched");
}

TEST(FaultCorruptionTest, FlipsExactlyTheConfiguredDistinctBits) {
  const std::string data(64, '\0');
  for (int bits : {1, 2, 3, 8}) {
    SCOPED_TRACE(bits);
    ScopedFaultPlan plan({FaultRule::CorruptBytes("io.write", bits, 1, 1)});
    std::string out;
    ASSERT_TRUE(MaybeCorrupt("io.write", data, &out));
    EXPECT_EQ(CountBitFlips(data, out), bits);
    EXPECT_EQ(plan.InjectedCount("io.write"), 1u);
  }
}

TEST(FaultCorruptionTest, RespectsTheCallRange) {
  ScopedFaultPlan plan({FaultRule::CorruptBytes("io.write", 2, 2, 3)});
  const std::string data = "some payload bytes";
  std::string out;
  EXPECT_FALSE(MaybeCorrupt("io.write", data, &out));  // call 1
  EXPECT_TRUE(MaybeCorrupt("io.write", data, &out));   // call 2
  EXPECT_EQ(CountBitFlips(data, out), 2);
  EXPECT_TRUE(MaybeCorrupt("io.write", data, &out));   // call 3
  EXPECT_FALSE(MaybeCorrupt("io.write", data, &out));  // call 4
  EXPECT_EQ(plan.CallCount("io.write"), 4u);
  EXPECT_EQ(plan.InjectedCount("io.write"), 2u);
}

TEST(FaultCorruptionTest, DeterministicPerSeed) {
  const std::string data(128, '\x5a');
  auto corrupt_once = [&](uint64_t seed) {
    ScopedFaultPlan plan({FaultRule::CorruptBytes("io.write", 4)}, seed);
    std::string out;
    EXPECT_TRUE(MaybeCorrupt("io.write", data, &out));
    return out;
  };
  std::string a = corrupt_once(7);
  std::string b = corrupt_once(7);
  std::string c = corrupt_once(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed draws different bit offsets
}

TEST(FaultCorruptionTest, EmptyPayloadIsNeverCorrupted) {
  ScopedFaultPlan plan({FaultRule::CorruptBytes("io.write", 3)});
  std::string out = "untouched";
  EXPECT_FALSE(MaybeCorrupt("io.write", "", &out));
  EXPECT_EQ(out, "untouched");
  EXPECT_EQ(plan.InjectedCount("io.write"), 0u);
}

TEST(FaultCorruptionTest, ErrorAndCorruptionRulesDoNotCrossFire) {
  // One plan can mix "this call fails" with "that payload lands damaged";
  // Check() must ignore corruption rules and MaybeCorrupt() error rules.
  ScopedFaultPlan plan({FaultRule::CorruptBytes("io.write", 3),
                        FaultRule::FailCalls("io.fsync", 1)});
  ASSERT_OK(Check("io.write"));  // corruption rule never fails a Check
  std::string out;
  EXPECT_FALSE(MaybeCorrupt("io.fsync", "data", &out));  // and vice versa
  EXPECT_FALSE(Check("io.fsync").ok());
  EXPECT_TRUE(MaybeCorrupt("io.write", "data", &out));
}

}  // namespace
}  // namespace smeter::fault
