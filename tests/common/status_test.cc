#include "common/status.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("abc");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "abc");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abcd");
  EXPECT_EQ(r->size(), 4u);
}

Status FailsThenPropagates() {
  SMETER_RETURN_IF_ERROR(InternalError("inner"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace smeter
