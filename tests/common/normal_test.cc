#include "common/normal.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(InverseNormalCdfTest, KnownQuantiles) {
  ASSERT_OK_AND_ASSIGN(double median, InverseNormalCdf(0.5));
  EXPECT_NEAR(median, 0.0, 1e-9);
  ASSERT_OK_AND_ASSIGN(double q975, InverseNormalCdf(0.975));
  EXPECT_NEAR(q975, 1.959963985, 1e-6);
  ASSERT_OK_AND_ASSIGN(double q25, InverseNormalCdf(0.25));
  EXPECT_NEAR(q25, -0.6744897502, 1e-6);
}

TEST(InverseNormalCdfTest, Symmetry) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    ASSERT_OK_AND_ASSIGN(double lo, InverseNormalCdf(p));
    ASSERT_OK_AND_ASSIGN(double hi, InverseNormalCdf(1.0 - p));
    EXPECT_NEAR(lo, -hi, 1e-8);
  }
}

TEST(InverseNormalCdfTest, MonotoneIncreasing) {
  double prev = -1e9;
  for (double p = 0.001; p < 1.0; p += 0.001) {
    ASSERT_OK_AND_ASSIGN(double z, InverseNormalCdf(p));
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(InverseNormalCdfTest, ConsistentWithErfc) {
  // Phi(InverseNormalCdf(p)) == p, using the std::erfc-based CDF.
  for (double p : {0.001, 0.02, 0.2, 0.5, 0.8, 0.99, 0.9999}) {
    ASSERT_OK_AND_ASSIGN(double z, InverseNormalCdf(p));
    double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-7) << "p=" << p;
  }
}

TEST(InverseNormalCdfTest, TailValues) {
  ASSERT_OK_AND_ASSIGN(double z, InverseNormalCdf(1e-10));
  EXPECT_LT(z, -6.0);
  EXPECT_TRUE(std::isfinite(z));
}

TEST(InverseNormalCdfTest, RejectsOutOfDomain) {
  EXPECT_FALSE(InverseNormalCdf(0.0).ok());
  EXPECT_FALSE(InverseNormalCdf(1.0).ok());
  EXPECT_FALSE(InverseNormalCdf(-0.1).ok());
  EXPECT_FALSE(InverseNormalCdf(1.5).ok());
}

}  // namespace
}  // namespace smeter
