#include "common/io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "testutil.h"

namespace smeter::io {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteRaw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good());
}

int BitsDiffering(const std::string& a, const std::string& b) {
  EXPECT_EQ(a.size(), b.size());
  int bits = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    unsigned char x = static_cast<unsigned char>(a[i]) ^
                      static_cast<unsigned char>(b[i]);
    while (x != 0) {
      bits += x & 1;
      x >>= 1;
    }
  }
  return bits;
}

// --- CRC-32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The standard CRC-32C check values (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, HardwareAndSoftwareAgree) {
  Rng rng(41);
  std::string buf(4096, '\0');
  for (char& c : buf) c = static_cast<char>(rng.UniformInt(256));
  // All lengths up to a few words, then a sweep of offsets to exercise
  // every alignment of the 8-byte fast path.
  for (size_t len = 0; len <= 64; ++len) {
    std::string_view s(buf.data(), len);
    ASSERT_EQ(Crc32c(s), Crc32cSoftware(s)) << "len " << len;
  }
  for (size_t off = 0; off < 16; ++off) {
    std::string_view s(buf.data() + off, buf.size() - off);
    ASSERT_EQ(Crc32c(s), Crc32cSoftware(s)) << "offset " << off;
  }
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.substr(0, split));
    crc = Crc32c(data.substr(split), crc);
    ASSERT_EQ(crc, whole) << "split " << split;
    uint32_t soft = Crc32cSoftware(data.substr(0, split));
    soft = Crc32cSoftware(data.substr(split), soft);
    ASSERT_EQ(soft, whole) << "split " << split;
  }
}

// --- AtomicWriteFile --------------------------------------------------------

TEST(AtomicWriteFileTest, WritesAndReplaces) {
  std::string dir = smeter::testing::TempPath("io_atomic_write");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/artifact.bin";

  ASSERT_OK(AtomicWriteFile(path, "first"));
  EXPECT_EQ(ReadAll(path), "first");
  ASSERT_OK(AtomicWriteFile(path, "second, longer content"));
  EXPECT_EQ(ReadAll(path), "second, longer content");
  EXPECT_FALSE(std::filesystem::exists(path + kTmpSuffix));

  ASSERT_OK_AND_ASSIGN(std::string read, ReadFileToString(path));
  EXPECT_EQ(read, "second, longer content");
}

TEST(AtomicWriteFileTest, MissingFileReadsAsNotFound) {
  std::string dir = smeter::testing::TempPath("io_read_missing");
  Result<std::string> missing = ReadFileToString(dir + "/nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(AtomicWriteFileTest, FailurePreservesOldContentAndRemovesTmp) {
  std::string dir = smeter::testing::TempPath("io_atomic_fail");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/artifact.bin";
  ASSERT_OK(AtomicWriteFile(path, "durable old bytes"));

  for (const char* seam : {"file.write", "io.fsync", "io.rename"}) {
    SCOPED_TRACE(seam);
    fault::ScopedFaultPlan plan({fault::FaultRule::FailCalls(seam, 1, 1)});
    Status status = AtomicWriteFile(path, "never visible");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(plan.InjectedCount(seam), 1u);
    // The old bytes survive and no scratch file is left behind.
    EXPECT_EQ(ReadAll(path), "durable old bytes");
    EXPECT_FALSE(std::filesystem::exists(path + kTmpSuffix));
  }
}

TEST(AtomicWriteFileTest, CorruptionSeamFlipsExactlyTheConfiguredBits) {
  std::string dir = smeter::testing::TempPath("io_atomic_corrupt");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/artifact.bin";
  const std::string payload(256, 'x');
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::CorruptBytes("io.write", 3, 1, 1)});
    ASSERT_OK(AtomicWriteFile(path, payload));
    EXPECT_EQ(plan.InjectedCount("io.write"), 1u);
  }
  std::string on_disk = ReadAll(path);
  ASSERT_EQ(on_disk.size(), payload.size());
  EXPECT_EQ(BitsDiffering(on_disk, payload), 3);
}

// --- append log -------------------------------------------------------------

TEST(AppendLogTest, RoundTripsRecords) {
  std::string dir = smeter::testing::TempPath("io_append_roundtrip");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/log";

  std::vector<std::string> records = {"alpha", "", R"({"json":1})",
                                      std::string(1000, 'z')};
  ASSERT_OK(AtomicWriteFile(path, BuildAppendLog(records)));
  ASSERT_OK_AND_ASSIGN(AppendLogContents log, ReadAppendLog(path));
  EXPECT_TRUE(log.clean());
  EXPECT_EQ(log.records, records);
  EXPECT_EQ(log.valid_bytes, std::filesystem::file_size(path));

  // An empty log is just the magic.
  ASSERT_OK(AtomicWriteFile(path, BuildAppendLog({})));
  ASSERT_OK_AND_ASSIGN(AppendLogContents empty, ReadAppendLog(path));
  EXPECT_TRUE(empty.clean());
  EXPECT_TRUE(empty.records.empty());
  EXPECT_EQ(empty.valid_bytes, kAppendLogMagicSize);
}

TEST(AppendLogTest, RejectsBadMagic) {
  std::string dir = smeter::testing::TempPath("io_append_magic");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/log";
  WriteRaw(path, "XXLG1\n");
  EXPECT_FALSE(ReadAppendLog(path).ok());
  WriteRaw(path, "SM");  // shorter than the magic
  EXPECT_FALSE(ReadAppendLog(path).ok());
}

TEST(AppendLogTest, TornTailIsDetectedAndTruncatable) {
  std::string dir = smeter::testing::TempPath("io_append_torn");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/log";

  const std::string intact = BuildAppendLog({"one", "two"});
  const std::string last = EncodeAppendRecord("three");
  // Every strict prefix of the final frame is a legal kill -9 signature.
  for (size_t cut = 0; cut < last.size(); ++cut) {
    SCOPED_TRACE(cut);
    WriteRaw(path, intact + last.substr(0, cut));
    ASSERT_OK_AND_ASSIGN(AppendLogContents log, ReadAppendLog(path));
    EXPECT_EQ(log.records, (std::vector<std::string>{"one", "two"}));
    EXPECT_EQ(log.torn_tail, cut != 0);
    EXPECT_FALSE(log.corrupt_midfile);
    EXPECT_EQ(log.valid_bytes, intact.size());
  }

  // Truncating to valid_bytes restores a clean log.
  WriteRaw(path, intact + last.substr(0, last.size() - 1));
  ASSERT_OK_AND_ASSIGN(AppendLogContents torn, ReadAppendLog(path));
  ASSERT_TRUE(torn.torn_tail);
  ASSERT_OK(TruncateFile(path, torn.valid_bytes));
  ASSERT_OK_AND_ASSIGN(AppendLogContents fixed, ReadAppendLog(path));
  EXPECT_TRUE(fixed.clean());
  EXPECT_EQ(fixed.records, (std::vector<std::string>{"one", "two"}));
}

TEST(AppendLogTest, MidfileBitFlipIsCorruptionNotATornTail) {
  std::string dir = smeter::testing::TempPath("io_append_midfile");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/log";

  std::string bytes = BuildAppendLog({"record one", "record two"});
  // Flip a payload bit inside the FIRST frame: the damage sits strictly
  // before more well-formed bytes, so this is mid-file corruption.
  bytes[kAppendLogMagicSize + 8 + 2] ^= 0x10;
  WriteRaw(path, bytes);
  ASSERT_OK_AND_ASSIGN(AppendLogContents log, ReadAppendLog(path));
  EXPECT_TRUE(log.records.empty());
  EXPECT_TRUE(log.corrupt_midfile);
  EXPECT_EQ(log.valid_bytes, kAppendLogMagicSize);

  // The same flip in the LAST frame reaches end-of-file, which is
  // indistinguishable from a torn final append — flagged as such.
  bytes = BuildAppendLog({"record one", "record two"});
  bytes[bytes.size() - 3] ^= 0x10;
  WriteRaw(path, bytes);
  ASSERT_OK_AND_ASSIGN(AppendLogContents tail, ReadAppendLog(path));
  EXPECT_EQ(tail.records, (std::vector<std::string>{"record one"}));
  EXPECT_TRUE(tail.torn_tail);
  EXPECT_FALSE(tail.corrupt_midfile);
}

TEST(AppendLogTest, OversizedLengthFieldNeverAllocates) {
  std::string dir = smeter::testing::TempPath("io_append_huge");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/log";

  std::string bytes = BuildAppendLog({"ok"});
  std::string frame(8, '\0');
  frame[0] = '\xff';  // length 0xFFFFFFFF, far past kMaxAppendRecordBytes
  frame[1] = '\xff';
  frame[2] = '\xff';
  frame[3] = '\xff';
  WriteRaw(path, bytes + frame);
  ASSERT_OK_AND_ASSIGN(AppendLogContents log, ReadAppendLog(path));
  EXPECT_EQ(log.records, (std::vector<std::string>{"ok"}));
  EXPECT_FALSE(log.clean());
  EXPECT_EQ(log.valid_bytes, bytes.size());
}

TEST(AppendLogWriterTest, AppendsMatchTheBatchBuilderByteForByte) {
  std::string dir = smeter::testing::TempPath("io_append_writer");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/log";

  ASSERT_OK(AtomicWriteFile(path, BuildAppendLog({"seed"})));
  {
    ASSERT_OK_AND_ASSIGN(AppendLogWriter writer,
                         AppendLogWriter::OpenForAppend(path));
    ASSERT_OK(writer.Append("second"));
    ASSERT_OK(writer.Append("third"));
    ASSERT_OK(writer.Close());
    EXPECT_FALSE(writer.Append("after close").ok());
  }
  EXPECT_EQ(ReadAll(path), BuildAppendLog({"seed", "second", "third"}));
  ASSERT_OK_AND_ASSIGN(AppendLogContents log, ReadAppendLog(path));
  EXPECT_TRUE(log.clean());
  EXPECT_EQ(log.records,
            (std::vector<std::string>{"seed", "second", "third"}));
}

TEST(AppendLogWriterTest, AppendFailuresAreLoud) {
  std::string dir = smeter::testing::TempPath("io_append_writer_fault");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/log";
  ASSERT_OK(AtomicWriteFile(path, BuildAppendLog({})));

  ASSERT_OK_AND_ASSIGN(AppendLogWriter writer,
                       AppendLogWriter::OpenForAppend(path));
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("manifest.append", 1, 1)});
    EXPECT_FALSE(writer.Append("checkpoint").ok());
    EXPECT_EQ(plan.InjectedCount("manifest.append"), 1u);
  }
  // The failed append wrote nothing; the next one lands normally.
  ASSERT_OK(writer.Append("checkpoint"));
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(AppendLogContents log, ReadAppendLog(path));
  EXPECT_TRUE(log.clean());
  EXPECT_EQ(log.records, (std::vector<std::string>{"checkpoint"}));
}

TEST(AppendLogWriterTest, OpenForAppendRequiresAnExistingLog) {
  std::string dir = smeter::testing::TempPath("io_append_writer_missing");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(AppendLogWriter::OpenForAppend(dir + "/absent").ok());
}

}  // namespace
}  // namespace smeter::io
