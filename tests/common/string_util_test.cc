#include "common/string_util.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, OtherDelimiter) {
  EXPECT_EQ(Split("1 2 3", ' '), (std::vector<std::string>{"1", "2", "3"}));
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  ASSERT_OK_AND_ASSIGN(double v, ParseDouble("3.5"));
  EXPECT_DOUBLE_EQ(v, 3.5);
  ASSERT_OK_AND_ASSIGN(double w, ParseDouble(" -1e3 "));
  EXPECT_DOUBLE_EQ(w, -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
}

// Found by the fuzz harness: strtod reports underflow via the same ERANGE
// as overflow, but a subnormal is a perfectly representable double (and
// Serialize can legitimately emit one). Only ±HUGE_VAL is an error.
TEST(ParseDoubleTest, AcceptsSubnormalsRejectsOverflow) {
  ASSERT_OK_AND_ASSIGN(double sub, ParseDouble("8.7432969301635788e-318"));
  EXPECT_GT(sub, 0.0);
  EXPECT_LT(sub, 1e-300);
  ASSERT_OK_AND_ASSIGN(double zero, ParseDouble("1e-5000"));
  EXPECT_EQ(zero, 0.0);
  EXPECT_FALSE(ParseDouble("1e5000").ok());
  EXPECT_FALSE(ParseDouble("-1e5000").ok());
}

TEST(ParseIntTest, ParsesValidIntegers) {
  ASSERT_OK_AND_ASSIGN(int64_t v, ParseInt("-42"));
  EXPECT_EQ(v, -42);
  ASSERT_OK_AND_ASSIGN(int64_t big, ParseInt("123456789012"));
  EXPECT_EQ(big, 123456789012ll);
}

TEST(ParseIntTest, RejectsGarbageAndOverflow) {
  EXPECT_FALSE(ParseInt("12.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("999999999999999999999999").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("@attribute x", "@attribute"));
  EXPECT_FALSE(StartsWith("@attr", "@attribute"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("AbC@1"), "abc@1");
}

}  // namespace
}  // namespace smeter
