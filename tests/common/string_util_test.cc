#include "common/string_util.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, OtherDelimiter) {
  EXPECT_EQ(Split("1 2 3", ' '), (std::vector<std::string>{"1", "2", "3"}));
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  ASSERT_OK_AND_ASSIGN(double v, ParseDouble("3.5"));
  EXPECT_DOUBLE_EQ(v, 3.5);
  ASSERT_OK_AND_ASSIGN(double w, ParseDouble(" -1e3 "));
  EXPECT_DOUBLE_EQ(w, -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
}

TEST(ParseIntTest, ParsesValidIntegers) {
  ASSERT_OK_AND_ASSIGN(int64_t v, ParseInt("-42"));
  EXPECT_EQ(v, -42);
  ASSERT_OK_AND_ASSIGN(int64_t big, ParseInt("123456789012"));
  EXPECT_EQ(big, 123456789012ll);
}

TEST(ParseIntTest, RejectsGarbageAndOverflow) {
  EXPECT_FALSE(ParseInt("12.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("999999999999999999999999").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("@attribute x", "@attribute"));
  EXPECT_FALSE(StartsWith("@attr", "@attribute"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("AbC@1"), "abc@1");
}

}  // namespace
}  // namespace smeter
