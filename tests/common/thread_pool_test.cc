#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "testutil.h"

namespace smeter {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ASSERT_OK(pool.ParallelFor(0, n, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Ok();
  }));
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ChunkBoundsCoverExactlyTheRange) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  ASSERT_OK(pool.ParallelFor(7, 1000, 13, [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end, 1000u);
    EXPECT_LE(end - begin, 13u);
    total.fetch_add(end - begin, std::memory_order_relaxed);
    return Status::Ok();
  }));
  EXPECT_EQ(total.load(), 1000u - 7u);
}

TEST(ThreadPoolTest, EmptyAndSingleElementRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ASSERT_OK(pool.ParallelFor(5, 5, 1, [&](size_t, size_t) {
    calls.fetch_add(1);
    return Status::Ok();
  }));
  EXPECT_EQ(calls.load(), 0);
  ASSERT_OK(pool.ParallelFor(5, 6, 1, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 5u);
    EXPECT_EQ(end, 6u);
    calls.fetch_add(1);
    return Status::Ok();
  }));
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ASSERT_OK(pool.ParallelFor(0, 10, 1000, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    calls.fetch_add(1);
    return Status::Ok();
  }));
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ZeroGrainIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  ASSERT_OK(pool.ParallelFor(0, 100, 0, [&](size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);
    total.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }));
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPoolTest, FirstErrorByChunkIndexWinsAndAllChunksDrain) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> ran(100);
  Status status = pool.ParallelFor(0, 100, 1, [&](size_t begin, size_t) {
    ran[begin].fetch_add(1, std::memory_order_relaxed);
    if (begin == 17 || begin == 63) {
      return InvalidArgumentError("chunk " + std::to_string(begin));
    }
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  // Deterministic: the lowest-indexed failure is reported, never chunk 63.
  EXPECT_EQ(status.message(), "chunk 17");
  // No cancellation: every chunk still ran exactly once.
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    ASSERT_OK(pool.ParallelFor(0, 1000, 7, [&](size_t begin, size_t end) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += static_cast<int64_t>(i);
      }
      sum.fetch_add(local, std::memory_order_relaxed);
      return Status::Ok();
    }));
    EXPECT_EQ(sum.load(), 999 * 1000 / 2);
  }
}

TEST(ThreadPoolTest, CountersAreZeroAtQuiescence) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.InFlight(), 0u);
  ASSERT_OK(pool.ParallelFor(0, 100, 1, [](size_t, size_t) {
    return Status::Ok();
  }));
  // ParallelFor returns at the completion barrier, but helper tasks the
  // workers never got to may still sit in the queue as stale no-ops; give
  // the workers a moment to drain them before asserting quiescence.
  for (int i = 0; i < 10000 && pool.QueueDepth() > 0; ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.InFlight(), 0u);
}

TEST(ThreadPoolTest, InFlightVisibleFromInsideAChunk) {
  // Covers both the pooled and the serial inline path: a lane running a
  // chunk must always see itself in the gauge.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    std::atomic<size_t> min_seen{SIZE_MAX};
    std::atomic<size_t> max_seen{0};
    ASSERT_OK(pool.ParallelFor(0, 32, 1, [&](size_t, size_t) {
      const size_t now = pool.InFlight();
      size_t prev = min_seen.load();
      while (now < prev && !min_seen.compare_exchange_weak(prev, now)) {
      }
      prev = max_seen.load();
      while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
      }
      return Status::Ok();
    }));
    EXPECT_GE(min_seen.load(), 1u) << threads;
    EXPECT_LE(max_seen.load(), pool.num_threads()) << threads;
  }
}

TEST(ThreadPoolTest, QueueDepthCountsWaitingHelperTasks) {
  // Two lanes total (caller + one worker). One ParallelFor occupies both
  // lanes; a second call from another thread then enqueues a helper task
  // the busy worker cannot pick up, which QueueDepth must report.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<size_t> entered{0};
  auto blocker = [&](size_t, size_t) {
    entered.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    return Status::Ok();
  };
  std::thread first([&] { EXPECT_OK(pool.ParallelFor(0, 2, 1, blocker)); });
  // Wait until both of the first call's chunks hold both lanes.
  while (entered.load() < 2) std::this_thread::yield();
  EXPECT_EQ(pool.InFlight(), 2u);

  std::thread second([&] { EXPECT_OK(pool.ParallelFor(0, 2, 1, blocker)); });
  // The second caller runs one chunk itself and parks one helper task in
  // the queue behind the blocked worker.
  while (entered.load() < 3) std::this_thread::yield();
  EXPECT_EQ(pool.QueueDepth(), 1u);
  EXPECT_EQ(pool.InFlight(), 3u);

  release.store(true);
  first.join();
  second.join();
  // The second call's helper task may still be queued briefly after the
  // call itself returned (the caller ran every chunk); the freed worker
  // drains it to a no-op.
  while (pool.QueueDepth() > 0) std::this_thread::yield();
  EXPECT_EQ(pool.InFlight(), 0u);
}

TEST(ThreadPoolTest, ReusableAfterAnError) {
  ThreadPool pool(2);
  Status failed = pool.ParallelFor(0, 10, 1, [](size_t, size_t) {
    return InternalError("boom");
  });
  EXPECT_FALSE(failed.ok());
  std::atomic<int> calls{0};
  ASSERT_OK(pool.ParallelFor(0, 10, 1, [&](size_t, size_t) {
    calls.fetch_add(1);
    return Status::Ok();
  }));
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  ASSERT_OK(pool.ParallelFor(0, 20, 3, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return Status::Ok();
  }));
}

TEST(ThreadPoolTest, ReentrantParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<size_t> inner_total{0};
  ASSERT_OK(pool.ParallelFor(0, 8, 1, [&](size_t, size_t) {
    return pool.ParallelFor(0, 16, 1, [&](size_t, size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    });
  }));
  EXPECT_EQ(inner_total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> calls{0};
  ASSERT_OK(pool.ParallelFor(0, 5, 1, [&](size_t, size_t) {
    calls.fetch_add(1);
    return Status::Ok();
  }));
  EXPECT_EQ(calls.load(), 5);
}

// Injected chunk failures exercise the same contract as hand-rolled error
// returns, across serial and parallel pool shapes: the lowest-indexed
// failing chunk's error is reported, every chunk runs to completion, and
// no chunk's work is consumed after the error (the output below is only
// read when the call succeeds).
class ThreadPoolFaultTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ThreadPoolFaultTest, InjectedChunkFailuresKeepLowestIndexContract) {
  ThreadPool pool(GetParam());
  // Per-chunk seam names make injection scheduling-independent: chunks 5
  // and 11 fail no matter which worker runs them or in what order.
  fault::ScopedFaultPlan plan({
      fault::FaultRule::FailCalls("pool.chunk.5", 1),
      fault::FaultRule::FailCalls("pool.chunk.11", 1),
  });
  const size_t n = 16;
  std::vector<std::atomic<int>> ran(n);
  std::vector<int> results(n, 0);
  Status status = pool.ParallelFor(0, n, 1, [&](size_t begin, size_t) {
    ran[begin].fetch_add(1, std::memory_order_relaxed);
    SMETER_FAULT_POINT("pool.chunk." + std::to_string(begin));
    results[begin] = static_cast<int>(begin) + 1;
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Deterministic winner: chunk 5, never chunk 11, at every pool size.
  EXPECT_NE(status.message().find("pool.chunk.5"), std::string::npos);
  EXPECT_EQ(status.message().find("pool.chunk.11"), std::string::npos);
  // No cancellation: every chunk ran exactly once, and exactly the two
  // injected chunks produced no result.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << i;
    if (i == 5 || i == 11) {
      EXPECT_EQ(results[i], 0) << i;
    } else {
      EXPECT_EQ(results[i], static_cast<int>(i) + 1) << i;
    }
  }
  EXPECT_EQ(plan.TotalInjected(), 2u);
}

TEST_P(ThreadPoolFaultTest, PoolHealsAfterInjectionPlanEnds) {
  ThreadPool pool(GetParam());
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("pool.chunk.*", 1)});
    Status status = pool.ParallelFor(0, 8, 1, [&](size_t begin, size_t) {
      SMETER_FAULT_POINT("pool.chunk." + std::to_string(begin));
      return Status::Ok();
    });
    EXPECT_FALSE(status.ok());
  }
  // Same pool, no plan: clean run.
  std::atomic<int> calls{0};
  ASSERT_OK(pool.ParallelFor(0, 8, 1, [&](size_t, size_t) {
    calls.fetch_add(1);
    return Status::Ok();
  }));
  EXPECT_EQ(calls.load(), 8);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ThreadPoolFaultTest,
                         ::testing::Values(1, 2, 8));

TEST(ThreadPoolTest, SharedPoolIsUsable) {
  std::atomic<int> calls{0};
  ASSERT_OK(ThreadPool::Shared().ParallelFor(0, 4, 1, [&](size_t, size_t) {
    calls.fetch_add(1);
    return Status::Ok();
  }));
  EXPECT_EQ(calls.load(), 4);
}

}  // namespace
}  // namespace smeter
