// Tests for `smeter fsck`: archive verification, the fsck(8)-style exit
// codes (0 clean / 1 repaired / 4 unrepaired), the JSON report, and the
// repair -> resume convergence contract on every damage class.

#include "core/fsck.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.h"
#include "client/spool.h"
#include "common/io.h"
#include "core/fleet_manifest.h"
#include "testutil.h"

namespace smeter {
namespace {

std::string RunCliOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = cli::RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

int RunExit(const std::vector<std::string>& args, std::string* stdout_text,
            std::string* stderr_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  int code = cli::RunCliExitCode(args, out, err);
  if (stdout_text != nullptr) *stdout_text = out.str();
  if (stderr_text != nullptr) *stderr_text = err.str();
  return code;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteRaw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good());
}

// One simulated two-house fleet plus a pristine encode of it; each test
// damages a fresh copy of the encoded archive.
class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = smeter::testing::TempPath(
        std::string("fsck_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    RunCliOk({"simulate", "--out", root_, "--houses", "2", "--days", "1",
              "--seed", "5", "--outages", "0"});
    clean_ = root_ + "/clean";
    RunCliOk(FleetArgs(clean_));
    work_ = root_ + "/work";
    std::filesystem::create_directories(work_);
    for (const auto& entry : std::filesystem::directory_iterator(clean_)) {
      std::filesystem::copy(entry.path(), work_ + "/" +
                                              entry.path().filename().string());
    }
  }

  std::vector<std::string> FleetArgs(const std::string& out_dir) const {
    return {"encode-fleet", "--input", root_,       "--out",
            out_dir,        "--threads", "1",       "--max-retries",
            "0"};
  }

  void ResumeAndExpectCleanArchive() {
    std::vector<std::string> args = FleetArgs(work_);
    args.insert(args.end(), {"--resume", "true"});
    RunCliOk(args);
    for (const char* name : {"house_1.table", "house_1.symbols",
                             "house_2.table", "house_2.symbols",
                             "fleet.manifest", "quality.json"}) {
      SCOPED_TRACE(name);
      EXPECT_EQ(ReadAll(work_ + "/" + name), ReadAll(clean_ + "/" + name));
    }
    ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
    EXPECT_TRUE(report.clean()) << FsckReportToJson(report);
  }

  std::string root_;
  std::string clean_;
  std::string work_;
};

TEST_F(FsckTest, CleanArchivePassesWithExitZero) {
  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(FsckExitCode(report), 0);
  EXPECT_EQ(report.symbols_ok, 2u);
  EXPECT_EQ(report.tables_ok, 2u);
  EXPECT_EQ(report.manifest_records, 2u);

  std::string json = FsckReportToJson(report);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":0"), std::string::npos);
  EXPECT_NE(json.find("\"issues\":[]"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  std::string out;
  EXPECT_EQ(RunExit({"fsck", "--dir", work_}, &out), 0);
  EXPECT_NE(out.find("\"clean\":true"), std::string::npos) << out;
}

TEST_F(FsckTest, TruncatedSymbolsReportedThenQuarantinedAndReEncoded) {
  std::string blob = ReadAll(work_ + "/house_1.symbols");
  WriteRaw(work_ + "/house_1.symbols", blob.substr(0, blob.size() - 5));

  // Report-only: the damage is named but nothing moves; exit 4.
  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].path, "house_1.symbols");
  EXPECT_EQ(report.issues[0].kind, "corrupt_symbols");
  EXPECT_FALSE(report.issues[0].repaired);
  EXPECT_EQ(FsckExitCode(report), 4);
  EXPECT_TRUE(std::filesystem::exists(work_ + "/house_1.symbols"));

  // Repair: quarantine the blob, drop its manifest record; exit 1.
  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1) << FsckReportToJson(repaired);
  EXPECT_FALSE(std::filesystem::exists(work_ + "/house_1.symbols"));
  EXPECT_TRUE(std::filesystem::exists(work_ + "/house_1.symbols.corrupt"));
  ASSERT_OK_AND_ASSIGN(ManifestContents manifest,
                       LoadFleetManifest(work_ + "/" + kFleetManifestFile));
  EXPECT_TRUE(manifest.clean());
  EXPECT_EQ(CarriedHouseholds(manifest).count("house_1"), 0u);
  EXPECT_EQ(CarriedHouseholds(manifest).count("house_2"), 1u);

  std::filesystem::remove(work_ + "/house_1.symbols.corrupt");
  ResumeAndExpectCleanArchive();
}

TEST_F(FsckTest, BitFlippedTableIsDetected) {
  std::string table = ReadAll(work_ + "/house_2.table");
  table[table.size() / 2] =
      static_cast<char>(static_cast<unsigned char>(table[table.size() / 2]) ^
                        0x20);
  WriteRaw(work_ + "/house_2.table", table);

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].path, "house_2.table");
  EXPECT_EQ(report.issues[0].kind, "corrupt_table");
  EXPECT_EQ(FsckExitCode(report), 4);

  std::string out;
  EXPECT_EQ(RunExit({"fsck", "--dir", work_}, &out), 4);
  EXPECT_NE(out.find("corrupt_table"), std::string::npos) << out;

  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1);
  std::filesystem::remove(work_ + "/house_2.table.corrupt");
  ResumeAndExpectCleanArchive();
}

TEST_F(FsckTest, MissingArtifactDropsTheManifestRecord) {
  std::filesystem::remove(work_ + "/house_1.symbols");

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, "missing_artifact");
  EXPECT_EQ(FsckExitCode(report), 4);

  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1);
  ASSERT_OK_AND_ASSIGN(ManifestContents manifest,
                       LoadFleetManifest(work_ + "/" + kFleetManifestFile));
  EXPECT_EQ(CarriedHouseholds(manifest).count("house_1"), 0u);
  ResumeAndExpectCleanArchive();
}

TEST_F(FsckTest, StrayTmpFilesAreRemovedByRepair) {
  WriteRaw(work_ + "/house_9.table.tmp", "half-written scratch bytes");

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].path, "house_9.table.tmp");
  EXPECT_EQ(report.issues[0].kind, "stray_tmp");
  EXPECT_EQ(FsckExitCode(report), 4);
  EXPECT_TRUE(std::filesystem::exists(work_ + "/house_9.table.tmp"));

  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1);
  EXPECT_FALSE(std::filesystem::exists(work_ + "/house_9.table.tmp"));
  ResumeAndExpectCleanArchive();
}

TEST_F(FsckTest, TornManifestTailIsTruncated) {
  std::string manifest_path = work_ + "/" + kFleetManifestFile;
  std::string partial = io::EncodeAppendRecord("{\"name\":\"hou");
  WriteRaw(manifest_path,
           ReadAll(manifest_path) + partial.substr(0, partial.size() - 4));

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, "torn_manifest");
  EXPECT_EQ(FsckExitCode(report), 4);

  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1);
  // Truncation kept both completed records; nothing is re-encoded.
  ASSERT_OK_AND_ASSIGN(ManifestContents manifest,
                       LoadFleetManifest(manifest_path));
  EXPECT_TRUE(manifest.clean());
  EXPECT_EQ(CarriedHouseholds(manifest).size(), 2u);
  ResumeAndExpectCleanArchive();
}

TEST_F(FsckTest, CorruptManifestIsRewrittenFromItsValidRecords) {
  std::string manifest_path = work_ + "/" + kFleetManifestFile;
  std::string bytes = ReadAll(manifest_path);
  // Flip a bit inside the first frame: everything after it is untrusted, so
  // repair rewrites the manifest from the (empty) valid prefix and resume
  // re-encodes both households.
  bytes[io::kAppendLogMagicSize + 10] =
      static_cast<char>(
          static_cast<unsigned char>(bytes[io::kAppendLogMagicSize + 10]) ^
          0x01);
  WriteRaw(manifest_path, bytes);

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  bool found = false;
  for (const FsckIssue& issue : report.issues) {
    found |= issue.kind == "corrupt_manifest";
  }
  EXPECT_TRUE(found) << FsckReportToJson(report);
  EXPECT_EQ(FsckExitCode(report), 4);

  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1) << FsckReportToJson(repaired);
  ASSERT_OK_AND_ASSIGN(ManifestContents manifest,
                       LoadFleetManifest(manifest_path));
  EXPECT_TRUE(manifest.clean());
  ResumeAndExpectCleanArchive();
}

TEST_F(FsckTest, ReportFlagWritesTheJsonToAFile) {
  std::string report_path = root_ + "/fsck_report.json";
  std::string out;
  EXPECT_EQ(RunExit({"fsck", "--dir", work_, "--report", report_path}, &out),
            0);
  std::string json = ReadAll(report_path);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":0"), std::string::npos);
}

TEST_F(FsckTest, RepairFlagDrivesTheExitOneContract) {
  std::string blob = ReadAll(work_ + "/house_1.symbols");
  WriteRaw(work_ + "/house_1.symbols", blob.substr(0, blob.size() - 3));
  std::string out;
  EXPECT_EQ(RunExit({"fsck", "--dir", work_, "--repair", "true"}, &out), 1);
  EXPECT_NE(out.find("\"repair_attempted\":true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"repaired\":true"), std::string::npos);
}

// A sealed single-batch client spool at `path`, for the spool-triage
// cases below.
void WriteTestSpool(const std::string& path) {
  client::SpoolHeader header;
  header.meter_id = "meter_7";
  header.level = 4;
  header.step_seconds = 900;
  header.table_blob = "serialized-table-bytes";
  ASSERT_OK_AND_ASSIGN(client::Spool spool,
                       client::Spool::Create(path, header));
  client::SpoolBatch batch;
  batch.seq = 1;
  batch.start_timestamp = 1'000;
  batch.symbols = {1, 5, 14};
  ASSERT_OK(spool.AppendBatch(batch));
  ASSERT_OK(spool.Seal({3, 0, 0}));
}

TEST_F(FsckTest, TornSpoolTailIsTruncatedNotQuarantined) {
  const std::string path = work_ + "/meter_7.spool";
  WriteTestSpool(path);
  // kill -9 mid-append: a partial record runs to end-of-file.
  std::string partial = io::EncodeAppendRecord("half-a-batch-record");
  WriteRaw(path, ReadAll(path) + partial.substr(0, partial.size() - 6));

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].path, "meter_7.spool");
  EXPECT_EQ(report.issues[0].kind, "torn_spool");
  EXPECT_EQ(FsckExitCode(report), 4);

  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1) << FsckReportToJson(repaired);
  // The intact prefix survived: the spool reads clean and kept its data.
  ASSERT_OK_AND_ASSIGN(client::SpoolContents contents,
                       client::ReadSpool(path));
  EXPECT_FALSE(contents.torn_tail);
  EXPECT_TRUE(contents.sealed);
  ASSERT_EQ(contents.batches.size(), 1u);
  EXPECT_EQ(contents.batches[0].symbols.size(), 3u);

  ASSERT_OK_AND_ASSIGN(FsckReport clean, FsckArchive(work_, {}));
  EXPECT_TRUE(clean.clean()) << FsckReportToJson(clean);
  EXPECT_EQ(clean.spools_ok, 1u);
}

TEST_F(FsckTest, MidFileCorruptSpoolIsQuarantined) {
  const std::string path = work_ + "/meter_7.spool";
  WriteTestSpool(path);
  // Flip a byte inside the FIRST record's payload: damage before the
  // tail, so the whole file is untrustworthy.
  std::string bytes = ReadAll(path);
  bytes[io::kAppendLogMagicSize + 8 + 2] ^= 0x40;
  WriteRaw(path, bytes);

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(work_, {}));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, "corrupt_spool");
  EXPECT_EQ(FsckExitCode(report), 4);

  FsckOptions repair;
  repair.repair = true;
  ASSERT_OK_AND_ASSIGN(FsckReport repaired, FsckArchive(work_, repair));
  EXPECT_EQ(FsckExitCode(repaired), 1);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));

  std::filesystem::remove(path + ".corrupt");
  ASSERT_OK_AND_ASSIGN(FsckReport clean, FsckArchive(work_, {}));
  EXPECT_TRUE(clean.clean());
}

TEST_F(FsckTest, SpoolOnlyDirectoryNeedsNoManifest) {
  // A client's spool dir fsck'd directly: spools are client artifacts, so
  // their presence must not demand a fleet manifest.
  const std::string dir = root_ + "/spool_only";
  std::filesystem::create_directories(dir);
  WriteTestSpool(dir + "/meter_7.spool");

  ASSERT_OK_AND_ASSIGN(FsckReport report, FsckArchive(dir, {}));
  EXPECT_TRUE(report.clean()) << FsckReportToJson(report);
  EXPECT_EQ(FsckExitCode(report), 0);
  EXPECT_EQ(report.spools_ok, 1u);
  EXPECT_NE(FsckReportToJson(report).find("\"spools_ok\":1"),
            std::string::npos);
}

TEST(FsckCliTest, UsageErrorsExitOne) {
  std::string out;
  std::string err;
  EXPECT_EQ(RunExit({"fsck"}, &out, &err), 1);  // --dir is required
  EXPECT_NE(err.find("error"), std::string::npos) << err;
  EXPECT_EQ(RunExit({"fsck", "--dir", smeter::testing::TempPath(
                                          "fsck_cli_no_such_dir")},
                    &out, &err),
            1);
}

}  // namespace
}  // namespace smeter
