#include "core/drift.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

DriftOptions SmallWindow() {
  DriftOptions options;
  options.window_size = 200;
  options.min_samples = 50;
  options.psi_threshold = 0.25;
  return options;
}

TEST(DriftDetectorTest, CreateValidates) {
  EXPECT_FALSE(DriftDetector::Create({}, SmallWindow()).ok());
  EXPECT_FALSE(DriftDetector::Create({0, 0, 0, 0}, SmallWindow()).ok());
  DriftOptions bad = SmallWindow();
  bad.window_size = 0;
  EXPECT_FALSE(DriftDetector::Create({10, 10}, bad).ok());
  bad = SmallWindow();
  bad.psi_threshold = 0.0;
  EXPECT_FALSE(DriftDetector::Create({10, 10}, bad).ok());
}

TEST(DriftDetectorTest, NoVerdictBeforeMinSamples) {
  ASSERT_OK_AND_ASSIGN(DriftDetector detector,
                       DriftDetector::Create({100, 100}, SmallWindow()));
  // Extreme skew, but below min_samples: PSI must stay 0.
  for (int i = 0; i < 49; ++i) detector.Observe(0);
  EXPECT_DOUBLE_EQ(detector.Psi(), 0.0);
  EXPECT_FALSE(detector.DriftDetected());
}

TEST(DriftDetectorTest, MatchingDistributionStaysCalm) {
  ASSERT_OK_AND_ASSIGN(DriftDetector detector,
                       DriftDetector::Create({100, 100, 100, 100},
                                             SmallWindow()));
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    detector.Observe(static_cast<uint32_t>(rng.UniformInt(4)));
  }
  EXPECT_LT(detector.Psi(), 0.05);
  EXPECT_FALSE(detector.DriftDetected());
}

TEST(DriftDetectorTest, ShiftedDistributionFires) {
  ASSERT_OK_AND_ASSIGN(DriftDetector detector,
                       DriftDetector::Create({100, 100, 100, 100},
                                             SmallWindow()));
  // All mass collapses onto symbol 3: strong drift.
  for (int i = 0; i < 200; ++i) detector.Observe(3);
  EXPECT_GT(detector.Psi(), 1.0);
  EXPECT_TRUE(detector.DriftDetected());
}

TEST(DriftDetectorTest, WindowEvictsOldObservations) {
  ASSERT_OK_AND_ASSIGN(DriftDetector detector,
                       DriftDetector::Create({100, 100}, SmallWindow()));
  // Skewed prefix, then matching suffix long enough to flush the window.
  for (int i = 0; i < 200; ++i) detector.Observe(1);
  EXPECT_TRUE(detector.DriftDetected());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    detector.Observe(static_cast<uint32_t>(rng.UniformInt(2)));
  }
  EXPECT_FALSE(detector.DriftDetected());
  EXPECT_EQ(detector.window_count(), 200u);
}

TEST(DriftDetectorTest, ForeignSymbolIgnored) {
  ASSERT_OK_AND_ASSIGN(DriftDetector detector,
                       DriftDetector::Create({10, 10}, SmallWindow()));
  detector.Observe(99);  // out of alphabet: ignored, not a crash
  EXPECT_EQ(detector.window_count(), 0u);
}

TEST(DriftDetectorTest, RebaseResetsWindow) {
  ASSERT_OK_AND_ASSIGN(DriftDetector detector,
                       DriftDetector::Create({100, 100}, SmallWindow()));
  for (int i = 0; i < 200; ++i) detector.Observe(1);
  EXPECT_TRUE(detector.DriftDetected());
  ASSERT_OK(detector.Rebase({50, 150}));
  EXPECT_EQ(detector.window_count(), 0u);
  EXPECT_FALSE(detector.DriftDetected());
}

TEST(DriftDetectorTest, RebaseValidates) {
  ASSERT_OK_AND_ASSIGN(DriftDetector detector,
                       DriftDetector::Create({100, 100}, SmallWindow()));
  EXPECT_FALSE(detector.Rebase({1, 2, 3}).ok());  // size change
  EXPECT_FALSE(detector.Rebase({0, 0}).ok());
}

}  // namespace
}  // namespace smeter
