// Durability tests for the checksummed storage formats: the v3 framed
// symbol codec (header + per-block CRC32C + sync markers) and the v2
// lookup-table footer. The contract under test is zero false negatives —
// no single-bit flip or truncation of a checksummed artifact may ever
// parse as valid data — plus salvage: every intact v3 block is
// recoverable from a damaged blob, with destroyed slots returned as GAPs.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/codec.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "testutil.h"

namespace smeter {
namespace {

SymbolicSeries MakeValueSeries(int level, const std::vector<uint32_t>& indices,
                               Timestamp start = 0, int64_t step = 900) {
  SymbolicSeries series(level);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_OK(series.Append({start + static_cast<int64_t>(i) * step,
                             Symbol::Create(level, indices[i]).value()}));
  }
  return series;
}

SymbolicSeries MakeRandomSeries(int level, size_t count, double gap_rate,
                                uint64_t seed, Timestamp start = 0,
                                int64_t step = 900) {
  Rng rng(seed);
  SymbolicSeries series(level);
  for (size_t i = 0; i < count; ++i) {
    Symbol s = rng.Uniform() < gap_rate
                   ? Symbol::Gap(level)
                   : Symbol::Create(level, static_cast<uint32_t>(rng.UniformInt(
                                               1u << level)))
                         .value();
    EXPECT_OK(
        series.Append({start + static_cast<int64_t>(i) * step, s}));
  }
  return series;
}

void ExpectSeriesEqual(const SymbolicSeries& got, const SymbolicSeries& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got.level(), want.level());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].timestamp, want[i].timestamp) << "slot " << i;
    ASSERT_EQ(got[i].symbol, want[i].symbol) << "slot " << i;
  }
}

// --- v3 round trips ---------------------------------------------------------

TEST(CodecV3Test, RoundTripsGaplessAndGappySeries) {
  for (double gap_rate : {0.0, 0.25, 1.0}) {
    SCOPED_TRACE(gap_rate);
    SymbolicSeries original = MakeRandomSeries(4, 200, gap_rate, 29, 86400);
    ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeriesFramed(original));
    EXPECT_EQ(static_cast<unsigned char>(blob[4]), 3u);  // version byte
    ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
    ExpectSeriesEqual(decoded, original);
  }
}

TEST(CodecV3Test, RoundTripsAcrossBlockBoundaries) {
  // Small blocks force many frames; gaps land on both sides of the edges.
  SymbolicSeries original = MakeRandomSeries(5, 100, 0.3, 31);
  for (size_t block : {1ul, 7ul, 16ul, 100ul, kDefaultBlockSlots}) {
    SCOPED_TRACE(block);
    ASSERT_OK_AND_ASSIGN(std::string blob,
                         PackSymbolicSeriesFramed(original, block));
    ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
    ExpectSeriesEqual(decoded, original);
  }
}

TEST(CodecV3Test, RoundTripsAllLevelsAndSingleSample) {
  for (int level = 1; level <= kMaxSymbolLevel; ++level) {
    SymbolicSeries original = MakeRandomSeries(level, 50, 0.2, 100 + level);
    ASSERT_OK_AND_ASSIGN(std::string blob,
                         PackSymbolicSeriesFramed(original, 16));
    ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
    ExpectSeriesEqual(decoded, original);
  }
  SymbolicSeries single = MakeValueSeries(3, {5}, 1234);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeriesFramed(single));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  ExpectSeriesEqual(decoded, single);
}

TEST(CodecV3Test, DecodesIdenticallyToTheLegacyFormats) {
  for (double gap_rate : {0.0, 0.3}) {
    SymbolicSeries original = MakeRandomSeries(4, 96, gap_rate, 47, 3600);
    ASSERT_OK_AND_ASSIGN(std::string legacy, PackSymbolicSeries(original));
    ASSERT_OK_AND_ASSIGN(std::string framed,
                         PackSymbolicSeriesFramed(original, 32));
    ASSERT_OK_AND_ASSIGN(SymbolicSeries from_legacy,
                         UnpackSymbolicSeries(legacy));
    ASSERT_OK_AND_ASSIGN(SymbolicSeries from_framed,
                         UnpackSymbolicSeries(framed));
    ExpectSeriesEqual(from_framed, from_legacy);
  }
}

TEST(CodecV3Test, RejectsEmptyIrregularAndOversizedBlocks) {
  SymbolicSeries empty(4);
  EXPECT_FALSE(PackSymbolicSeriesFramed(empty).ok());

  SymbolicSeries irregular(2);
  ASSERT_OK(irregular.Append({0, Symbol::Create(2, 0).value()}));
  ASSERT_OK(irregular.Append({900, Symbol::Create(2, 1).value()}));
  ASSERT_OK(irregular.Append({2700, Symbol::Create(2, 2).value()}));
  EXPECT_FALSE(PackSymbolicSeriesFramed(irregular).ok());

  SymbolicSeries fine = MakeValueSeries(2, {1, 2, 3});
  EXPECT_FALSE(PackSymbolicSeriesFramed(fine, 0).ok());
  EXPECT_FALSE(PackSymbolicSeriesFramed(fine, kMaxBlockSlots + 1).ok());
}

// --- corruption detection ---------------------------------------------------

TEST(CodecV3Test, EverySingleBitFlipIsDetected) {
  // The zero-false-negatives contract: each byte of a v3 blob sits under
  // the header CRC, a block CRC, or the sync marker, so any single flipped
  // bit must fail the strict parse. 60 slots in 16-slot blocks keeps the
  // sweep cheap while covering header, sync, fields, bitmap, and payload.
  SymbolicSeries original = MakeRandomSeries(4, 60, 0.2, 53);
  ASSERT_OK_AND_ASSIGN(std::string blob,
                       PackSymbolicSeriesFramed(original, 16));
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = blob;
      damaged[byte] =
          static_cast<char>(static_cast<unsigned char>(damaged[byte]) ^
                            (1u << bit));
      ASSERT_FALSE(UnpackSymbolicSeries(damaged).ok())
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(CodecV3Test, StrictErrorsNameTheDamagedBlock) {
  SymbolicSeries original = MakeRandomSeries(4, 64, 0.0, 59);
  ASSERT_OK_AND_ASSIGN(std::string blob,
                       PackSymbolicSeriesFramed(original, 16));
  // Gapless blocks are 28 bytes here (20 header + 8 payload, no bitmap);
  // flip a payload bit of block 2.
  const size_t block2 = 30 + 2 * 28;
  std::string damaged = blob;
  damaged[block2 + 25] ^= 0x40;
  Result<SymbolicSeries> result = UnpackSymbolicSeries(damaged);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("v3 block 2"), std::string::npos)
      << result.status().ToString();

  std::string bad_header = blob;
  bad_header[10] ^= 0x01;
  Result<SymbolicSeries> header_result = UnpackSymbolicSeries(bad_header);
  ASSERT_FALSE(header_result.ok());
  EXPECT_EQ(header_result.status().code(), StatusCode::kDataLoss);
}

TEST(CodecV3Test, GaplessBlocksOmitTheGapBitmap) {
  // Wire-size contract: a gapless block is header + value payload only, so
  // v3 costs just 20 bytes per block over v1 on clean data. A gappy block
  // pays for its bitmap; a gapless block in the same series does not.
  SymbolicSeries gapless = MakeRandomSeries(4, 64, 0.0, 73);
  ASSERT_OK_AND_ASSIGN(std::string framed,
                       PackSymbolicSeriesFramed(gapless, 16));
  // 30-byte file header + 4 blocks of (20 header + 16*4/8 payload).
  EXPECT_EQ(framed.size(), 30u + 4 * (20u + 8u));

  SymbolicSeries mixed(4);
  for (size_t i = 0; i < 32; ++i) {
    // First block gapless, second all-GAP.
    Symbol s = i < 16 ? Symbol::Create(4, 5).value() : Symbol::Gap(4);
    ASSERT_OK(mixed.Append({static_cast<Timestamp>(1000 + 900 * i), s}));
  }
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeriesFramed(mixed, 16));
  // Block 0: 20 + 8 value bytes. Block 1: 20 + 2 bitmap bytes + 0 values.
  EXPECT_EQ(blob.size(), 30u + (20u + 8u) + (20u + 2u));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries back, UnpackSymbolicSeries(blob));
  ExpectSeriesEqual(back, mixed);
}

TEST(CodecV3Test, TrailingBytesAreRejected) {
  SymbolicSeries original = MakeRandomSeries(3, 20, 0.0, 61);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeriesFramed(original));
  EXPECT_FALSE(UnpackSymbolicSeries(blob + "x").ok());
}

TEST(CodecTruncationTest, EveryPrefixOfEveryVersionFailsCleanly) {
  // Satellite contract: no prefix of a valid blob — v1, v2, or v3 — may
  // crash, read out of bounds, or parse as a valid series.
  SymbolicSeries gapless = MakeValueSeries(4, {0, 15, 7, 8, 3, 12, 1, 9});
  SymbolicSeries gappy = MakeRandomSeries(4, 40, 0.3, 67);
  std::vector<std::string> blobs = {
      PackSymbolicSeries(gapless).value(),               // v1
      PackSymbolicSeries(gappy).value(),                 // v2
      PackSymbolicSeriesFramed(gappy, 16).value(),       // v3, multi-block
      PackSymbolicSeriesFramed(gapless).value(),         // v3, single block
  };
  for (size_t b = 0; b < blobs.size(); ++b) {
    const std::string& blob = blobs[b];
    for (size_t cut = 0; cut < blob.size(); ++cut) {
      ASSERT_FALSE(UnpackSymbolicSeries(blob.substr(0, cut)).ok())
          << "blob " << b << " prefix " << cut;
    }
    ASSERT_OK(UnpackSymbolicSeries(blob).status());
  }
}

// --- salvage ----------------------------------------------------------------

TEST(CodecSalvageTest, CleanBlobSalvagesToTheFullSeries) {
  SymbolicSeries original = MakeRandomSeries(4, 64, 0.2, 71, 7200);
  ASSERT_OK_AND_ASSIGN(std::string blob,
                       PackSymbolicSeriesFramed(original, 16));
  SalvageSummary summary;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries salvaged,
                       SalvageSymbolicSeries(blob, &summary));
  ExpectSeriesEqual(salvaged, original);
  EXPECT_EQ(summary.total_slots, 64u);
  EXPECT_EQ(summary.recovered_slots, 64u);
  EXPECT_EQ(summary.lost_slots, 0u);
  EXPECT_EQ(summary.recovered_blocks, 4u);
}

TEST(CodecSalvageTest, DamagedBlockBecomesGapsNeighborsSurvive) {
  SymbolicSeries original = MakeValueSeries(4, std::vector<uint32_t>(64, 9));
  ASSERT_OK_AND_ASSIGN(std::string blob,
                       PackSymbolicSeriesFramed(original, 16));
  // Flip a payload bit inside block 1 (slots 16..31); gapless blocks are
  // 28 bytes (20 header + 8 payload).
  std::string damaged = blob;
  damaged[30 + 28 + 25] ^= 0x08;
  ASSERT_FALSE(UnpackSymbolicSeries(damaged).ok());

  SalvageSummary summary;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries salvaged,
                       SalvageSymbolicSeries(damaged, &summary));
  ASSERT_EQ(salvaged.size(), original.size());
  for (size_t i = 0; i < salvaged.size(); ++i) {
    ASSERT_EQ(salvaged[i].timestamp, original[i].timestamp) << i;
    if (i >= 16 && i < 32) {
      EXPECT_TRUE(salvaged[i].symbol.is_gap()) << i;
    } else {
      EXPECT_EQ(salvaged[i].symbol, original[i].symbol) << i;
    }
  }
  EXPECT_EQ(summary.total_slots, 64u);
  EXPECT_EQ(summary.recovered_slots, 48u);
  EXPECT_EQ(summary.lost_slots, 16u);
  EXPECT_EQ(summary.recovered_blocks, 3u);
}

TEST(CodecSalvageTest, TruncatedTailSalvagesThePrefix) {
  SymbolicSeries original = MakeValueSeries(4, std::vector<uint32_t>(64, 3));
  ASSERT_OK_AND_ASSIGN(std::string blob,
                       PackSymbolicSeriesFramed(original, 16));
  // Cut mid-way through block 2's header: blocks 0 and 1 (28 bytes each,
  // gapless) survive, 2 and 3 are gone.
  std::string torn = blob.substr(0, 30 + 2 * 28 + 10);
  SalvageSummary summary;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries salvaged,
                       SalvageSymbolicSeries(torn, &summary));
  ASSERT_EQ(salvaged.size(), 64u);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(salvaged[i].symbol, original[i].symbol) << i;
  }
  for (size_t i = 32; i < 64; ++i) {
    EXPECT_TRUE(salvaged[i].symbol.is_gap()) << i;
  }
  EXPECT_EQ(summary.recovered_slots, 32u);
  EXPECT_EQ(summary.lost_slots, 32u);
  EXPECT_EQ(summary.recovered_blocks, 2u);
}

TEST(CodecSalvageTest, NoFlipSurvivesAsWrongData) {
  // Flip every bit of a small blob: salvage must either error out or
  // return a series in which every slot is the original symbol or a GAP —
  // a flip may destroy data, never fabricate it.
  SymbolicSeries original = MakeRandomSeries(4, 48, 0.25, 73);
  ASSERT_OK_AND_ASSIGN(std::string blob,
                       PackSymbolicSeriesFramed(original, 16));
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = blob;
      damaged[byte] =
          static_cast<char>(static_cast<unsigned char>(damaged[byte]) ^
                            (1u << bit));
      Result<SymbolicSeries> salvaged = SalvageSymbolicSeries(damaged);
      if (!salvaged.ok()) continue;  // header damage: nothing to rebuild on
      ASSERT_EQ(salvaged->size(), original.size())
          << "byte " << byte << " bit " << bit;
      for (size_t i = 0; i < original.size(); ++i) {
        ASSERT_TRUE(salvaged.value()[i].symbol.is_gap() ||
                    salvaged.value()[i].symbol == original[i].symbol)
            << "fabricated slot " << i << " after flip at byte " << byte
            << " bit " << bit;
      }
    }
  }
}

TEST(CodecSalvageTest, RefusesNonV3AndDamagedHeaders) {
  SymbolicSeries series = MakeValueSeries(4, {1, 2, 3, 4});
  std::string v1 = PackSymbolicSeries(series).value();
  EXPECT_FALSE(SalvageSymbolicSeries(v1).ok());

  std::string v3 = PackSymbolicSeriesFramed(series).value();
  std::string bad_header = v3;
  bad_header[8] ^= 0x01;  // count field; header CRC no longer matches
  Result<SymbolicSeries> result = SalvageSymbolicSeries(bad_header);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

// --- lookup table v2 footer -------------------------------------------------

LookupTable MakeTable(int level = 4, uint64_t seed = 7) {
  std::vector<double> training = testing::LogNormalValues(500, seed);
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = level;
  return LookupTable::Build(training, options).value();
}

TEST(LookupTableDurabilityTest, SerializeEmitsTheChecksummedFooter) {
  LookupTable table = MakeTable();
  std::string text = table.Serialize();
  EXPECT_EQ(text.rfind("smeter-lookup-table v2", 0), 0u);
  // Canonical trailer: "crc32c " + 8 hex + newline, ending the blob.
  const size_t footer = text.rfind("\ncrc32c ");
  ASSERT_NE(footer, std::string::npos);
  EXPECT_EQ(text.size() - (footer + 1), 16u);
  EXPECT_EQ(text.back(), '\n');

  ASSERT_OK_AND_ASSIGN(LookupTable decoded, LookupTable::Deserialize(text));
  EXPECT_EQ(decoded.Serialize(), text);  // byte-identical re-serialization
}

TEST(LookupTableDurabilityTest, EverySingleBitFlipIsDetected) {
  std::string text = MakeTable(3, 11).Serialize();
  for (size_t byte = 0; byte < text.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = text;
      damaged[byte] =
          static_cast<char>(static_cast<unsigned char>(damaged[byte]) ^
                            (1u << bit));
      ASSERT_FALSE(LookupTable::Deserialize(damaged).ok())
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(LookupTableDurabilityTest, EveryTruncationFailsCleanly) {
  std::string text = MakeTable(4, 13).Serialize();
  for (size_t cut = 0; cut < text.size(); ++cut) {
    Result<LookupTable> result = LookupTable::Deserialize(text.substr(0, cut));
    ASSERT_FALSE(result.ok()) << "prefix " << cut;
  }
}

TEST(LookupTableDurabilityTest, ChecksumFailuresAreDataLossNotBadInput) {
  std::string text = MakeTable().Serialize();
  std::string flipped = text;
  flipped[text.size() / 2] ^= 0x04;
  Result<LookupTable> result = LookupTable::Deserialize(flipped);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);

  Result<LookupTable> truncated =
      LookupTable::Deserialize(text.substr(0, text.size() - 8));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
}

TEST(LookupTableDurabilityTest, LegacyV1BlobsStayReadable) {
  // A v1 blob is the v2 body with the old version line and no footer.
  LookupTable table = MakeTable();
  std::string v2 = table.Serialize();
  const size_t footer = v2.rfind("\ncrc32c ");
  ASSERT_NE(footer, std::string::npos);
  std::string v1 = v2.substr(0, footer + 1);
  const std::string v2_line = "smeter-lookup-table v2";
  v1.replace(0, v2_line.size(), "smeter-lookup-table v1");
  ASSERT_OK_AND_ASSIGN(LookupTable decoded, LookupTable::Deserialize(v1));
  EXPECT_EQ(decoded.Serialize(), v2);  // identical table, re-emitted as v2
}

}  // namespace
}  // namespace smeter
