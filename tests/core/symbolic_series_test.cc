#include "core/symbolic_series.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

Symbol Sym(const std::string& bits) { return Symbol::FromBits(bits).value(); }

TEST(SymbolicSeriesTest, AppendChecksLevel) {
  SymbolicSeries series(2);
  ASSERT_OK(series.Append({0, Sym("01")}));
  Status bad = series.Append({1, Sym("011")});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(series.size(), 1u);
}

TEST(SymbolicSeriesTest, AppendChecksTimestampOrder) {
  SymbolicSeries series(1);
  ASSERT_OK(series.Append({10, Sym("0")}));
  EXPECT_FALSE(series.Append({5, Sym("1")}).ok());
}

TEST(SymbolicSeriesTest, SliceHalfOpen) {
  SymbolicSeries series(1);
  for (int t = 0; t < 5; ++t) {
    ASSERT_OK(series.Append({t, Sym(t % 2 == 0 ? "0" : "1")}));
  }
  SymbolicSeries mid = series.Slice({1, 4});
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0].timestamp, 1);
  EXPECT_EQ(mid[2].timestamp, 3);
}

TEST(SymbolicSeriesTest, CoarsenTruncatesEverySymbol) {
  SymbolicSeries series(3);
  ASSERT_OK(series.Append({0, Sym("101")}));
  ASSERT_OK(series.Append({1, Sym("010")}));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries coarse, series.Coarsen(1));
  EXPECT_EQ(coarse.level(), 1);
  EXPECT_EQ(coarse[0].symbol.ToBits(), "1");
  EXPECT_EQ(coarse[1].symbol.ToBits(), "0");
  EXPECT_EQ(coarse[0].timestamp, 0);
}

TEST(SymbolicSeriesTest, CoarsenToSameLevelIsIdentity) {
  SymbolicSeries series(2);
  ASSERT_OK(series.Append({0, Sym("10")}));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries same, series.Coarsen(2));
  EXPECT_EQ(same[0].symbol, series[0].symbol);
}

TEST(SymbolicSeriesTest, CoarsenRejectsFinerTarget) {
  SymbolicSeries series(2);
  EXPECT_FALSE(series.Coarsen(3).ok());
  EXPECT_FALSE(series.Coarsen(0).ok());
}

TEST(SymbolicSeriesTest, ToBitString) {
  SymbolicSeries series(3);
  ASSERT_OK(series.Append({0, Sym("000")}));
  ASSERT_OK(series.Append({1, Sym("101")}));
  EXPECT_EQ(series.ToBitString(), "000 101");
}

TEST(SymbolicSeriesTest, HistogramCountsIndices) {
  SymbolicSeries series(2);
  ASSERT_OK(series.Append({0, Sym("01")}));
  ASSERT_OK(series.Append({1, Sym("01")}));
  ASSERT_OK(series.Append({2, Sym("11")}));
  std::vector<size_t> hist = series.Histogram();
  EXPECT_EQ(hist, (std::vector<size_t>{0, 2, 0, 1}));
}

TEST(SymbolicSeriesTest, EmptySeries) {
  SymbolicSeries series(2);
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.ToBitString(), "");
  EXPECT_EQ(series.Histogram(), (std::vector<size_t>{0, 0, 0, 0}));
}

}  // namespace
}  // namespace smeter
