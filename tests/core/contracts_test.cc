// Regression tests for the contract-check layer: degenerate inputs that
// used to be silent UB (or silently wrong) must now fail with a Status, and
// the full encode→pack→unpack→decode round-trip must hold at every
// resolution level for every separator-learning method.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/codec.h"
#include "core/encoder.h"
#include "core/lookup_table.h"
#include "core/separators.h"
#include "testutil.h"

namespace smeter {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<SeparatorMethod> AllMethods() {
  return {SeparatorMethod::kUniform, SeparatorMethod::kMedian,
          SeparatorMethod::kDistinctMedian};
}

// --- Full-pipeline round-trip at every level and method -------------------

TEST(CodecRoundTripTest, EveryLevelAndMethodRoundTrips) {
  std::vector<double> training = testing::LogNormalValues(512, 17);
  std::vector<double> readings = testing::LogNormalValues(96, 18);
  TimeSeries raw = testing::MakeSeries(readings);

  for (SeparatorMethod method : AllMethods()) {
    for (int level = 1; level <= kMaxSymbolLevel; ++level) {
      SCOPED_TRACE(SeparatorMethodName(method) + " level " +
                   std::to_string(level));
      LookupTableOptions options;
      options.method = method;
      options.level = level;
      ASSERT_OK_AND_ASSIGN(LookupTable table,
                           LookupTable::Build(training, options));
      ASSERT_OK_AND_ASSIGN(SymbolicSeries encoded, Encode(raw, table));
      ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(encoded));
      ASSERT_OK_AND_ASSIGN(SymbolicSeries unpacked,
                           UnpackSymbolicSeries(blob));
      ASSERT_EQ(unpacked.size(), encoded.size());
      for (size_t i = 0; i < encoded.size(); ++i) {
        EXPECT_EQ(unpacked[i], encoded[i]) << "at " << i;
      }
      // Decode side: every reconstruction stays within its symbol's range.
      ASSERT_OK_AND_ASSIGN(
          TimeSeries decoded,
          Decode(unpacked, table, ReconstructionMode::kRangeMean));
      ASSERT_EQ(decoded.size(), raw.size());
      for (size_t i = 0; i < decoded.size(); ++i) {
        ASSERT_OK_AND_ASSIGN(double lo, table.RangeLow(unpacked[i].symbol));
        ASSERT_OK_AND_ASSIGN(double hi, table.RangeHigh(unpacked[i].symbol));
        EXPECT_GE(decoded[i].value, lo) << "at " << i;
        EXPECT_LE(decoded[i].value, hi) << "at " << i;
      }
    }
  }
}

// --- Separator learning on degenerate histories ---------------------------

TEST(SeparatorDegenerateTest, ConstantHistoryWorksForAllMethods) {
  std::vector<double> constant(64, 2.5);
  for (SeparatorMethod method : AllMethods()) {
    SCOPED_TRACE(SeparatorMethodName(method));
    for (int level = 1; level <= 4; ++level) {
      ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                           LearnSeparators(constant, method, level));
      ASSERT_EQ(seps.size(), (size_t{1} << level) - 1);
      // A constant history still yields a usable (if trivial) table.
      LookupTableOptions options;
      options.method = method;
      options.level = level;
      ASSERT_OK_AND_ASSIGN(LookupTable table,
                           LookupTable::Build(constant, options));
      Symbol s = table.Encode(2.5);
      EXPECT_EQ(s.level(), level);
    }
  }
}

TEST(SeparatorDegenerateTest, SingleValueHistoryWorks) {
  for (SeparatorMethod method : AllMethods()) {
    SCOPED_TRACE(SeparatorMethodName(method));
    ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                         LearnSeparators({7.0}, method, 3));
    EXPECT_EQ(seps.size(), 7u);
  }
}

TEST(SeparatorDegenerateTest, EmptyHistoryFails) {
  for (SeparatorMethod method : AllMethods()) {
    SCOPED_TRACE(SeparatorMethodName(method));
    Result<std::vector<double>> r = LearnSeparators({}, method, 3);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(SeparatorDegenerateTest, NanReadingFailsForAllMethods) {
  for (SeparatorMethod method : AllMethods()) {
    SCOPED_TRACE(SeparatorMethodName(method));
    Result<std::vector<double>> r =
        LearnSeparators({1.0, kNan, 3.0}, method, 2);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SeparatorDegenerateTest, InfiniteReadingFailsForAllMethods) {
  for (SeparatorMethod method : AllMethods()) {
    SCOPED_TRACE(SeparatorMethodName(method));
    Result<std::vector<double>> r =
        LearnSeparators({1.0, kInf, 3.0}, method, 2);
    ASSERT_FALSE(r.ok());
  }
}

TEST(SeparatorDegenerateTest, NegativeReadingFailsForUniformOnly) {
  Result<std::vector<double>> uniform =
      LearnSeparators({-1.0, 2.0, 3.0}, SeparatorMethod::kUniform, 2);
  ASSERT_FALSE(uniform.ok());
  EXPECT_EQ(uniform.status().code(), StatusCode::kInvalidArgument);

  // Quantile-based methods handle negative values fine.
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> median,
      LearnSeparators({-1.0, 2.0, 3.0}, SeparatorMethod::kMedian, 2));
  EXPECT_TRUE(std::is_sorted(median.begin(), median.end()));
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> distinct,
      LearnSeparators({-1.0, 2.0, 3.0}, SeparatorMethod::kDistinctMedian, 2));
  EXPECT_TRUE(std::is_sorted(distinct.begin(), distinct.end()));
}

TEST(SeparatorDegenerateTest, LevelZeroFails) {
  for (SeparatorMethod method : AllMethods()) {
    EXPECT_FALSE(LearnSeparators({1.0, 2.0}, method, 0).ok());
    EXPECT_FALSE(LearnSeparators({1.0, 2.0}, method, -3).ok());
    EXPECT_FALSE(
        LearnSeparators({1.0, 2.0}, method, kMaxSymbolLevel + 1).ok());
  }
}

// --- LookupTable contracts -------------------------------------------------

TEST(LookupTableContractTest, SingleSymbolAlphabetFails) {
  // k = 1 would need a level-0 symbol, which neither the Symbol type nor
  // the wire format can represent.
  Result<LookupTable> r = LookupTable::FromSeparators({}, 0.0, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(LookupTableContractTest, NonFiniteSeparatorsFail) {
  EXPECT_FALSE(LookupTable::FromSeparators({kNan}, 0.0, 1.0).ok());
  EXPECT_FALSE(LookupTable::FromSeparators({kInf}, 0.0, 1.0).ok());
  EXPECT_FALSE(LookupTable::FromSeparators({0.5}, kNan, 1.0).ok());
  EXPECT_FALSE(LookupTable::FromSeparators({0.5}, 0.0, kInf).ok());
}

TEST(LookupTableContractTest, EncodeCheckedRejectsNan) {
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::FromSeparators({1.0}, 0.0, 2.0));
  Result<Symbol> r = table.EncodeChecked(kNan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(LookupTableContractTest, EncodeCheckedClampsInfinities) {
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::FromSeparators({1.0}, 0.0, 2.0));
  ASSERT_OK_AND_ASSIGN(Symbol lo, table.EncodeChecked(-kInf));
  EXPECT_EQ(lo.index(), 0u);
  ASSERT_OK_AND_ASSIGN(Symbol hi, table.EncodeChecked(kInf));
  EXPECT_EQ(hi.index(), 1u);
}

TEST(LookupTableContractTest, AttachTrainingDataRejectsNonFinite) {
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::FromSeparators({1.0}, 0.0, 2.0));
  for (double hostile : {kNan, kInf, -kInf}) {
    Status st = table.AttachTrainingData({0.5, hostile});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

// Found by the fuzz harness: summing finite values near DBL_MAX overflowed
// the bucket-mean accumulator to inf, so Serialize produced a blob its own
// Deserialize rejected. The running-mean accumulation keeps the mean finite.
TEST(LookupTableContractTest, HugeFiniteTrainingKeepsSerializeClosed) {
  constexpr double kHuge = 1.7e308;
  LookupTableOptions options;
  options.level = 1;
  options.method = SeparatorMethod::kMedian;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build({kHuge, kHuge, kHuge}, options));
  for (double m : table.bucket_means()) {
    EXPECT_TRUE(std::isfinite(m)) << m;
  }
  ASSERT_OK_AND_ASSIGN(LookupTable reread,
                       LookupTable::Deserialize(table.Serialize()));
  EXPECT_EQ(reread.level(), table.level());
}

TEST(LookupTableContractTest, BuildRejectsNanTraining) {
  LookupTableOptions options;
  for (SeparatorMethod method : AllMethods()) {
    options.method = method;
    EXPECT_FALSE(LookupTable::Build({1.0, kNan}, options).ok());
  }
}

TEST(LookupTableContractTest, DeserializeRejectsHostileNumerics) {
  // Template blob; each case patches one line.
  auto blob = [](const std::string& domain, const std::string& seps,
                 const std::string& means) {
    return "smeter-lookup-table v1\nmethod median\nlevel 1\ndomain " + domain +
           "\nseparators " + seps + "\nmeans " + means + "\ncounts 1 1\n";
  };
  EXPECT_TRUE(LookupTable::Deserialize(blob("0 2", "1", "0.5 1.5")).ok());
  EXPECT_FALSE(LookupTable::Deserialize(blob("0 nan", "1", "0.5 1.5")).ok());
  EXPECT_FALSE(LookupTable::Deserialize(blob("2 0", "1", "0.5 1.5")).ok());
  EXPECT_FALSE(LookupTable::Deserialize(blob("0 2", "inf", "0.5 1.5")).ok());
  EXPECT_FALSE(LookupTable::Deserialize(blob("0 2", "1", "nan 1.5")).ok());
  // A separator outside [domain_min, domain_max] would invert a symbol's
  // range interval.
  EXPECT_FALSE(LookupTable::Deserialize(blob("0 2", "5", "0.5 1.5")).ok());
  EXPECT_FALSE(LookupTable::Deserialize(blob("0 2", "-1", "0.5 1.5")).ok());
}

TEST(LookupTableContractTest, FromSeparatorsRejectsSeparatorOutsideDomain) {
  EXPECT_FALSE(LookupTable::FromSeparators({5.0}, 0.0, 2.0).ok());
  EXPECT_FALSE(LookupTable::FromSeparators({-1.0}, 0.0, 2.0).ok());
  EXPECT_TRUE(LookupTable::FromSeparators({0.0}, 0.0, 2.0).ok());
  EXPECT_TRUE(LookupTable::FromSeparators({2.0}, 0.0, 2.0).ok());
}

// Found by the fuzz harness: accumulation rounding let the weighted bucket
// mean overshoot RangeHigh by an ulp; Reconstruct must clamp into the
// symbol's range for every mode.
TEST(LookupTableContractTest, ReconstructStaysInsideSymbolRange) {
  // Values whose running mean rounds above the value itself (0.1 is the
  // classic non-representable case).
  std::vector<double> training(3, 0.1);
  training.insert(training.end(), 3, 0.05);
  LookupTableOptions options;
  options.level = 1;
  options.method = SeparatorMethod::kMedian;
  ASSERT_OK_AND_ASSIGN(LookupTable table, LookupTable::Build(training, options));
  for (uint32_t i = 0; i < table.alphabet_size(); ++i) {
    ASSERT_OK_AND_ASSIGN(Symbol s, Symbol::Create(table.level(), i));
    ASSERT_OK_AND_ASSIGN(double lo, table.RangeLow(s));
    ASSERT_OK_AND_ASSIGN(double hi, table.RangeHigh(s));
    for (ReconstructionMode mode :
         {ReconstructionMode::kRangeCenter, ReconstructionMode::kRangeMean}) {
      ASSERT_OK_AND_ASSIGN(double mid, table.Reconstruct(s, mode));
      EXPECT_GE(mid, lo);
      EXPECT_LE(mid, hi);
    }
  }
}

// --- Codec overflow contracts ---------------------------------------------

TEST(CodecContractTest, AdversarialTimestampRangeIsRejected) {
  // Hand-build a header whose (start, step, count) triple overflows int64:
  // start = INT64_MAX - 1, step = INT64_MAX / 2, count = 3.
  std::string blob = "SMSY";
  blob.push_back(1);  // version
  blob.push_back(1);  // level
  auto append_le = [&blob](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      blob.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  append_le(3, 4);                                            // count
  append_le(static_cast<uint64_t>(INT64_MAX - 1), 8);         // start
  append_le(static_cast<uint64_t>(INT64_MAX / 2), 8);         // step
  blob.push_back('\x00');  // payload: 3 symbols * 1 bit, padded
  Result<SymbolicSeries> r = UnpackSymbolicSeries(blob);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace smeter
