#include "core/symbol.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(SymbolTest, CreateValidatesRange) {
  EXPECT_TRUE(Symbol::Create(1, 0).ok());
  EXPECT_TRUE(Symbol::Create(4, 15).ok());
  EXPECT_FALSE(Symbol::Create(0, 0).ok());
  EXPECT_FALSE(Symbol::Create(kMaxSymbolLevel + 1, 0).ok());
  EXPECT_FALSE(Symbol::Create(2, 4).ok());  // index out of 2^2
}

TEST(SymbolTest, BitStringRoundTrip) {
  ASSERT_OK_AND_ASSIGN(Symbol s, Symbol::FromBits("0101"));
  EXPECT_EQ(s.level(), 4);
  EXPECT_EQ(s.index(), 5u);
  EXPECT_EQ(s.ToBits(), "0101");
}

TEST(SymbolTest, ToBitsPadsLeadingZeros) {
  ASSERT_OK_AND_ASSIGN(Symbol s, Symbol::Create(3, 1));
  EXPECT_EQ(s.ToBits(), "001");
}

TEST(SymbolTest, FromBitsRejectsBadInput) {
  EXPECT_FALSE(Symbol::FromBits("").ok());
  EXPECT_FALSE(Symbol::FromBits("012").ok());
  EXPECT_FALSE(Symbol::FromBits(std::string(kMaxSymbolLevel + 1, '0')).ok());
}

TEST(SymbolTest, AlphabetSize) {
  ASSERT_OK_AND_ASSIGN(Symbol s, Symbol::Create(4, 0));
  EXPECT_EQ(s.AlphabetSize(), 16u);
}

TEST(SymbolTest, CoarsenTruncatesBits) {
  ASSERT_OK_AND_ASSIGN(Symbol s, Symbol::FromBits("1011"));
  ASSERT_OK_AND_ASSIGN(Symbol c2, s.Coarsen(2));
  EXPECT_EQ(c2.ToBits(), "10");
  ASSERT_OK_AND_ASSIGN(Symbol c4, s.Coarsen(4));
  EXPECT_EQ(c4, s);
  EXPECT_FALSE(s.Coarsen(5).ok());
  EXPECT_FALSE(s.Coarsen(0).ok());
}

TEST(SymbolTest, AncestorIsPrefix) {
  // The paper: '0' equals (covers) '01', '00', and so on.
  ASSERT_OK_AND_ASSIGN(Symbol zero, Symbol::FromBits("0"));
  ASSERT_OK_AND_ASSIGN(Symbol zero_one, Symbol::FromBits("01"));
  ASSERT_OK_AND_ASSIGN(Symbol one_zero, Symbol::FromBits("10"));
  EXPECT_TRUE(zero.IsAncestorOf(zero_one));
  EXPECT_TRUE(zero.IsAncestorOf(zero));
  EXPECT_FALSE(zero.IsAncestorOf(one_zero));
  EXPECT_FALSE(zero_one.IsAncestorOf(zero));
}

TEST(SymbolTest, CompareAcrossResolutions) {
  ASSERT_OK_AND_ASSIGN(Symbol zero, Symbol::FromBits("0"));
  ASSERT_OK_AND_ASSIGN(Symbol ten, Symbol::FromBits("10"));
  ASSERT_OK_AND_ASSIGN(Symbol zero_one, Symbol::FromBits("01"));
  EXPECT_EQ(zero.Compare(ten), -1);
  EXPECT_EQ(ten.Compare(zero), 1);
  EXPECT_EQ(zero.Compare(zero_one), 0);  // refinement-related
  EXPECT_EQ(zero_one.Compare(zero), 0);
  EXPECT_EQ(zero.Compare(zero), 0);
}

TEST(SymbolTest, SameLevelOrdering) {
  ASSERT_OK_AND_ASSIGN(Symbol a, Symbol::FromBits("001"));
  ASSERT_OK_AND_ASSIGN(Symbol b, Symbol::FromBits("100"));
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a == b);
}

TEST(SymbolTest, CoarsenCommutesWithCompare) {
  // If two fine symbols are strictly ordered and remain in different
  // coarse buckets, the coarse symbols are equally ordered.
  ASSERT_OK_AND_ASSIGN(Symbol a, Symbol::FromBits("0010"));
  ASSERT_OK_AND_ASSIGN(Symbol b, Symbol::FromBits("1101"));
  ASSERT_OK_AND_ASSIGN(Symbol ca, a.Coarsen(1));
  ASSERT_OK_AND_ASSIGN(Symbol cb, b.Coarsen(1));
  EXPECT_EQ(a.Compare(b), -1);
  EXPECT_EQ(ca.Compare(cb), -1);
}

TEST(SymbolGapTest, GapIsOutOfAlphabetButCarriesALevel) {
  Symbol gap = Symbol::Gap(4);
  EXPECT_TRUE(gap.is_gap());
  EXPECT_EQ(gap.level(), 4);
  EXPECT_EQ(gap.ToBits(), "____");
  // No value symbol is a gap, at any index.
  ASSERT_OK_AND_ASSIGN(Symbol last, Symbol::Create(4, 15));
  EXPECT_FALSE(last.is_gap());
  // Create never yields the sentinel.
  EXPECT_FALSE(Symbol::Create(4, 0xffffffffu).ok());
}

TEST(SymbolGapTest, GapEqualityAndOrdering) {
  Symbol gap = Symbol::Gap(3);
  EXPECT_EQ(gap, Symbol::Gap(3));
  EXPECT_FALSE(gap == Symbol::Gap(2));
  // Within a level, GAP sorts after every value symbol.
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(Symbol::Create(3, i).value() < gap) << i;
  }
}

TEST(SymbolGapTest, GapCoarsensToGap) {
  ASSERT_OK_AND_ASSIGN(Symbol coarse, Symbol::Gap(4).Coarsen(2));
  EXPECT_TRUE(coarse.is_gap());
  EXPECT_EQ(coarse.level(), 2);
}

TEST(SymbolGapTest, GapHasNoRangeRelations) {
  Symbol gap = Symbol::Gap(2);
  ASSERT_OK_AND_ASSIGN(Symbol value, Symbol::Create(1, 0));
  EXPECT_FALSE(gap.IsAncestorOf(value));
  EXPECT_FALSE(value.IsAncestorOf(gap));
  EXPECT_EQ(gap.Compare(value), 0);
  EXPECT_EQ(value.Compare(gap), 0);
  EXPECT_EQ(gap.Compare(Symbol::Gap(2)), 0);
}

}  // namespace
}  // namespace smeter
