#include "core/anomaly.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

// A strongly diurnal symbolic stream at hourly cadence: low symbols at
// night, high in the evening, with mild jitter.
SymbolicSeries DiurnalStream(size_t days, uint64_t seed, int level = 3) {
  Rng rng(seed);
  SymbolicSeries series(level);
  uint32_t k = 1u << level;
  for (size_t h = 0; h < days * 24; ++h) {
    size_t hour = h % 24;
    double base;
    if (hour < 6) {
      base = 0.5;
    } else if (hour < 17) {
      base = 2.5;
    } else if (hour < 22) {
      base = 5.5;
    } else {
      base = 1.5;
    }
    int jitter = static_cast<int>(rng.UniformInt(2));
    uint32_t index = static_cast<uint32_t>(
        std::min<double>(std::max(base + jitter, 0.0), k - 1));
    EXPECT_OK(series.Append(
        {static_cast<Timestamp>(h) * kSecondsPerHour,
         Symbol::Create(level, index).value()}));
  }
  return series;
}

AnomalyOptions TestOptions() {
  AnomalyOptions options;
  options.time_buckets = 4;
  options.ema_alpha = 0.6;
  options.threshold_bits = 2.8;
  return options;
}

TEST(AnomalyDetectorTest, FitValidates) {
  SymbolicSeries reference = DiurnalStream(3, 1);
  AnomalyOptions options = TestOptions();
  options.time_buckets = 5;  // does not divide 24
  EXPECT_FALSE(AnomalyDetector::Fit(reference, options).ok());
  options = TestOptions();
  options.smoothing = 0.0;
  EXPECT_FALSE(AnomalyDetector::Fit(reference, options).ok());
  options = TestOptions();
  options.ema_alpha = 0.0;
  EXPECT_FALSE(AnomalyDetector::Fit(reference, options).ok());
  options = TestOptions();
  options.threshold_bits = 0.0;
  EXPECT_FALSE(AnomalyDetector::Fit(reference, options).ok());
  SymbolicSeries tiny(3);
  EXPECT_FALSE(AnomalyDetector::Fit(tiny, TestOptions()).ok());
}

TEST(AnomalyDetectorTest, TypicalBehaviourScoresLow) {
  SymbolicSeries reference = DiurnalStream(14, 3);
  ASSERT_OK_AND_ASSIGN(AnomalyDetector detector,
                       AnomalyDetector::Fit(reference, TestOptions()));
  // A fresh realization of the same routine must raise no alarms.
  SymbolicSeries normal_day = DiurnalStream(2, 99);
  ASSERT_OK_AND_ASSIGN(std::vector<TimeRange> ranges,
                       detector.AnomalousRanges(normal_day));
  EXPECT_TRUE(ranges.empty());
}

TEST(AnomalyDetectorTest, NightTimeBlastIsFlagged) {
  SymbolicSeries reference = DiurnalStream(14, 5);
  ASSERT_OK_AND_ASSIGN(AnomalyDetector detector,
                       AnomalyDetector::Fit(reference, TestOptions()));
  // Day 1 normal, day 2: maximum consumption all night (0-6 h).
  SymbolicSeries stream(3);
  Rng rng(7);
  for (size_t h = 0; h < 48; ++h) {
    size_t hour = h % 24;
    uint32_t index;
    if (h >= 24 && hour < 6) {
      index = 7;  // anomaly: full blast at night
    } else if (hour < 6) {
      index = static_cast<uint32_t>(rng.UniformInt(2));
    } else if (hour < 17) {
      index = 2 + static_cast<uint32_t>(rng.UniformInt(2));
    } else if (hour < 22) {
      index = 5 + static_cast<uint32_t>(rng.UniformInt(2));
    } else {
      index = 1 + static_cast<uint32_t>(rng.UniformInt(2));
    }
    ASSERT_OK(stream.Append({static_cast<Timestamp>(h) * kSecondsPerHour,
                             Symbol::Create(3, index).value()}));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<TimeRange> ranges,
                       detector.AnomalousRanges(stream));
  ASSERT_FALSE(ranges.empty());
  // The flagged region must overlap the injected night window (24-30 h).
  bool overlaps = false;
  for (const TimeRange& r : ranges) {
    if (r.begin < 30 * kSecondsPerHour && r.end > 24 * kSecondsPerHour) {
      overlaps = true;
    }
  }
  EXPECT_TRUE(overlaps);
}

TEST(AnomalyDetectorTest, SurprisalReflectsModelProbabilities) {
  // Reference alternates 0,1,0,1 ... : transition 0->1 is certain; a 0->0
  // repeat must be highly surprising.
  SymbolicSeries reference(1);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(reference.Append(
        {i * kSecondsPerHour,
         Symbol::Create(1, static_cast<uint32_t>(i % 2)).value()}));
  }
  AnomalyOptions options = TestOptions();
  options.time_buckets = 1;
  ASSERT_OK_AND_ASSIGN(AnomalyDetector detector,
                       AnomalyDetector::Fit(reference, options));
  SymbolicSeries probe(1);
  ASSERT_OK(probe.Append({0, Symbol::Create(1, 0).value()}));
  ASSERT_OK(probe.Append({kSecondsPerHour, Symbol::Create(1, 1).value()}));
  ASSERT_OK(probe.Append({2 * kSecondsPerHour, Symbol::Create(1, 1).value()}));
  ASSERT_OK_AND_ASSIGN(std::vector<AnomalyScore> scores,
                       detector.Score(probe));
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_LT(scores[1].surprisal_bits, 0.1);   // expected transition
  EXPECT_GT(scores[2].surprisal_bits, 5.0);   // never-seen repeat
}

TEST(AnomalyDetectorTest, ScoreRejectsLevelMismatch) {
  SymbolicSeries reference = DiurnalStream(3, 9);
  ASSERT_OK_AND_ASSIGN(AnomalyDetector detector,
                       AnomalyDetector::Fit(reference, TestOptions()));
  SymbolicSeries wrong(2);
  ASSERT_OK(wrong.Append({0, Symbol::Create(2, 0).value()}));
  EXPECT_FALSE(detector.Score(wrong).ok());
}

TEST(AnomalyDetectorTest, RangesMergeConsecutiveFlags) {
  SymbolicSeries reference = DiurnalStream(10, 11);
  AnomalyOptions options = TestOptions();
  options.ema_alpha = 1.0;  // no smoothing: every symbol judged alone
  options.threshold_bits = 2.5;
  ASSERT_OK_AND_ASSIGN(AnomalyDetector detector,
                       AnomalyDetector::Fit(reference, options));
  // Three consecutive impossible night symbols -> exactly one range.
  SymbolicSeries stream(3);
  for (int h = 0; h < 6; ++h) {
    uint32_t index = (h >= 2 && h <= 4) ? 7 : 0;
    ASSERT_OK(stream.Append({h * kSecondsPerHour,
                             Symbol::Create(3, index).value()}));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<TimeRange> ranges,
                       detector.AnomalousRanges(stream));
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 2 * kSecondsPerHour);
}

}  // namespace
}  // namespace smeter
