#include "core/online_encoder.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

OnlineEncoderOptions BaseOptions() {
  OnlineEncoderOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 2;
  options.warmup_seconds = 40;
  options.window_seconds = 10;
  options.window.sample_period_seconds = 1;
  options.window.min_coverage = 0.5;
  return options;
}

// Pushes a gapless 1 Hz ramp of `n` samples, returning all events.
std::vector<EncoderEvent> PushRamp(OnlineEncoder& encoder, int n,
                                   double scale = 1.0) {
  std::vector<EncoderEvent> events;
  for (int t = 0; t < n; ++t) {
    auto batch = encoder.Push({t, scale * static_cast<double>(t % 40)});
    EXPECT_TRUE(batch.ok());
    for (const auto& e : batch.value()) events.push_back(e);
  }
  return events;
}

TEST(OnlineEncoderTest, CreateValidates) {
  OnlineEncoderOptions options = BaseOptions();
  options.level = 0;
  EXPECT_FALSE(OnlineEncoder::Create(options).ok());
  options = BaseOptions();
  options.warmup_seconds = 5;  // shorter than one window
  EXPECT_FALSE(OnlineEncoder::Create(options).ok());
  options = BaseOptions();
  options.window_seconds = 0;
  EXPECT_FALSE(OnlineEncoder::Create(options).ok());
}

TEST(OnlineEncoderTest, NoSymbolsBeforeWarmup) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  std::vector<EncoderEvent> events = PushRamp(encoder, 39);
  EXPECT_TRUE(events.empty());
  EXPECT_FALSE(encoder.warmed_up());
}

TEST(OnlineEncoderTest, TableEmittedBeforeFirstSymbol) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  std::vector<EncoderEvent> events = PushRamp(encoder, 100);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].type, EncoderEvent::Type::kTableReady);
  EXPECT_EQ(events[0].table_version, 1);
  bool symbol_seen = false;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].type, EncoderEvent::Type::kSymbol);
    EXPECT_EQ(events[i].table_version, 1);
    symbol_seen = true;
  }
  EXPECT_TRUE(symbol_seen);
  EXPECT_TRUE(encoder.warmed_up());
  EXPECT_EQ(encoder.table()->level(), 2);
}

TEST(OnlineEncoderTest, SymbolTimestampsAreWindowEnds) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  std::vector<EncoderEvent> events = PushRamp(encoder, 71);
  // Warm-up covers windows ending at 10..40; symbols start with the window
  // ending at 50.
  std::vector<Timestamp> stamps;
  for (const auto& e : events) {
    if (e.type == EncoderEvent::Type::kSymbol) {
      stamps.push_back(e.symbol.timestamp);
    }
  }
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 50);
  EXPECT_EQ(stamps[1], 60);
  EXPECT_EQ(stamps[2], 70);
}

TEST(OnlineEncoderTest, FlushEmitsFinalPartialWindow) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  PushRamp(encoder, 76);  // 6 samples into the window [70, 80)
  ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> events, encoder.Flush());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EncoderEvent::Type::kSymbol);
  EXPECT_EQ(events[0].symbol.timestamp, 80);
}

TEST(OnlineEncoderTest, FlushDropsUnderCoveredWindow) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  PushRamp(encoder, 73);  // only 3 of 10 samples in the last window
  ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> events, encoder.Flush());
  EXPECT_TRUE(events.empty());
}

TEST(OnlineEncoderTest, RejectsRegressingTimestamps) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  ASSERT_OK(encoder.Push({100, 1.0}).status());
  EXPECT_FALSE(encoder.Push({99, 1.0}).ok());
}

TEST(OnlineEncoderTest, RejectsNonFiniteValues) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  EXPECT_FALSE(encoder.Push({0, std::nan("")}).ok());
}

TEST(OnlineEncoderTest, DriftTriggersTableRebuild) {
  OnlineEncoderOptions options = BaseOptions();
  DriftOptions drift;
  drift.window_size = 50;
  drift.min_samples = 20;
  drift.psi_threshold = 0.25;
  options.drift = drift;
  options.rebuild_history_windows = 60;
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder, OnlineEncoder::Create(options));

  // Warm up on a ramp in [0, 40).
  int t = 0;
  for (; t < 60; ++t) {
    ASSERT_OK(encoder.Push({t, static_cast<double>(t % 40)}).status());
  }
  ASSERT_TRUE(encoder.warmed_up());
  EXPECT_EQ(encoder.table_version(), 1);

  // Distribution jumps 100x: drift must eventually rebuild the table.
  bool rebuilt = false;
  for (; t < 2000 && !rebuilt; ++t) {
    ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> events,
                         encoder.Push({t, 4000.0 + (t % 40)}));
    for (const auto& e : events) {
      if (e.type == EncoderEvent::Type::kTableReady && e.table_version == 2) {
        rebuilt = true;
      }
    }
  }
  EXPECT_TRUE(rebuilt);
  EXPECT_GE(encoder.table_version(), 2);
  // The rebuilt table must cover the new regime.
  EXPECT_GT(encoder.table()->domain_max(), 3000.0);
}

TEST(OnlineEncoderTest, GapsProduceNoSymbolsForMissingWindows) {
  ASSERT_OK_AND_ASSIGN(OnlineEncoder encoder,
                       OnlineEncoder::Create(BaseOptions()));
  int t = 0;
  for (; t < 50; ++t) {
    ASSERT_OK(encoder.Push({t, 1.0}).status());
  }
  // Jump over two full windows.
  std::vector<EncoderEvent> all;
  for (t = 80; t < 100; ++t) {
    ASSERT_OK_AND_ASSIGN(std::vector<EncoderEvent> events,
                         encoder.Push({t, 1.0}));
    for (const auto& e : events) all.push_back(e);
  }
  for (const auto& e : all) {
    if (e.type != EncoderEvent::Type::kSymbol) continue;
    EXPECT_TRUE(e.symbol.timestamp <= 60 || e.symbol.timestamp >= 90)
        << "symbol emitted for a gapped window at " << e.symbol.timestamp;
  }
}

}  // namespace
}  // namespace smeter
