#include "core/symbolic_index.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

LookupTable UniformTable(double max, int level) {
  LookupTableOptions options;
  options.method = SeparatorMethod::kUniform;
  options.level = level;
  return LookupTable::Build({0.0, max}, options).value();
}

std::vector<Symbol> WordOf(const LookupTable& table,
                           const std::vector<double>& values) {
  std::vector<Symbol> word;
  for (double v : values) word.push_back(table.Encode(v));
  return word;
}

TEST(SymbolRangeGapTest, OverlapAndGapCases) {
  LookupTable table = UniformTable(160.0, 4);  // ranges of width 10
  ASSERT_OK_AND_ASSIGN(Symbol s0, Symbol::Create(4, 0));
  ASSERT_OK_AND_ASSIGN(Symbol s1, Symbol::Create(4, 1));
  ASSERT_OK_AND_ASSIGN(Symbol s5, Symbol::Create(4, 5));
  ASSERT_OK_AND_ASSIGN(double self, SymbolRangeGap(s0, s0, table));
  EXPECT_DOUBLE_EQ(self, 0.0);
  ASSERT_OK_AND_ASSIGN(double adjacent, SymbolRangeGap(s0, s1, table));
  EXPECT_DOUBLE_EQ(adjacent, 0.0);  // ranges touch
  ASSERT_OK_AND_ASSIGN(double far, SymbolRangeGap(s0, s5, table));
  EXPECT_DOUBLE_EQ(far, 40.0);  // [0,10] vs [50,60]
  ASSERT_OK_AND_ASSIGN(double sym, SymbolRangeGap(s5, s0, table));
  EXPECT_DOUBLE_EQ(sym, far);
}

TEST(SymbolRangeGapTest, CoarseningNeverIncreasesGap) {
  std::vector<double> training = testing::LogNormalValues(3000, 5);
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  LookupTable table = LookupTable::Build(training, options).value();
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    Symbol a = table.Encode(rng.Uniform(0.0, 1000.0));
    Symbol b = table.Encode(rng.Uniform(0.0, 1000.0));
    ASSERT_OK_AND_ASSIGN(double fine, SymbolRangeGap(a, b, table));
    for (int level = 1; level < 4; ++level) {
      ASSERT_OK_AND_ASSIGN(
          double coarse,
          SymbolRangeGap(a.Coarsen(level).value(), b.Coarsen(level).value(),
                         table));
      EXPECT_LE(coarse, fine + 1e-12);
    }
  }
}

TEST(WordDistanceTest, L2OfGaps) {
  LookupTable table = UniformTable(160.0, 4);
  std::vector<Symbol> a = WordOf(table, {5.0, 5.0});
  std::vector<Symbol> b = WordOf(table, {55.0, 5.0});
  ASSERT_OK_AND_ASSIGN(double d, WordLowerBoundDistance(a, b, table));
  EXPECT_DOUBLE_EQ(d, 40.0);
  EXPECT_FALSE(WordLowerBoundDistance(a, WordOf(table, {5.0}), table).ok());
}

SymbolicIndex DayIndex(int n_words, const LookupTable& table) {
  SymbolicIndex index = SymbolicIndex::Create(table, 4).value();
  Rng rng(11);
  for (int i = 0; i < n_words; ++i) {
    double base = rng.Uniform(0.0, 150.0);
    std::vector<double> values = {base, base + 5.0, base - 5.0, base};
    EXPECT_OK(index.InsertValues(static_cast<uint64_t>(i), values));
  }
  return index;
}

TEST(SymbolicIndexTest, InsertValidates) {
  LookupTable table = UniformTable(160.0, 4);
  ASSERT_OK_AND_ASSIGN(SymbolicIndex index, SymbolicIndex::Create(table, 2));
  ASSERT_OK(index.InsertValues(1, {10.0, 20.0}));
  EXPECT_FALSE(index.InsertValues(1, {10.0, 20.0}).ok());  // duplicate id
  EXPECT_FALSE(index.InsertValues(2, {10.0}).ok());        // wrong length
  ASSERT_OK_AND_ASSIGN(Symbol coarse, Symbol::Create(1, 0));
  EXPECT_FALSE(index.Insert(3, {coarse, coarse}).ok());    // wrong level
  EXPECT_EQ(index.size(), 1u);
}

TEST(SymbolicIndexTest, CreateValidates) {
  LookupTable table = UniformTable(160.0, 4);
  EXPECT_FALSE(SymbolicIndex::Create(table, 0).ok());
  SymbolicIndex::Options options;
  options.prune_level = 9;
  EXPECT_FALSE(SymbolicIndex::Create(table, 2, options).ok());
}

TEST(SymbolicIndexTest, NearestNeighborMatchesBruteForce) {
  LookupTable table = UniformTable(160.0, 4);
  SymbolicIndex index = DayIndex(200, table);

  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    double base = rng.Uniform(0.0, 150.0);
    std::vector<double> query_values = {base, base, base, base};
    std::vector<Symbol> query = WordOf(table, query_values);
    ASSERT_OK_AND_ASSIGN(std::vector<IndexMatch> top,
                         index.NearestNeighbors(query, 5));
    ASSERT_EQ(top.size(), 5u);
    // Brute force: radius query with huge radius gives the full ranking.
    ASSERT_OK_AND_ASSIGN(std::vector<IndexMatch> all,
                         index.RangeQuery(query, 1e18));
    ASSERT_EQ(all.size(), index.size());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i], all[i]) << "trial " << trial << " rank " << i;
    }
    // Distances ascend.
    for (size_t i = 1; i < top.size(); ++i) {
      EXPECT_GE(top[i].distance, top[i - 1].distance);
    }
  }
}

TEST(SymbolicIndexTest, PruningSkipsBuckets) {
  LookupTable table = UniformTable(160.0, 4);
  // A finer prune level separates the coarse signatures enough that
  // distant buckets have a positive lower bound.
  SymbolicIndex::Options options;
  options.prune_level = 3;
  ASSERT_OK_AND_ASSIGN(SymbolicIndex index,
                       SymbolicIndex::Create(table, 4, options));
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    double base = rng.Uniform(0.0, 150.0);
    ASSERT_OK(index.InsertValues(static_cast<uint64_t>(i),
                                 {base, base + 5.0, base - 5.0, base}));
  }
  ASSERT_GT(index.num_buckets(), 4u);
  std::vector<Symbol> query = WordOf(table, {5.0, 5.0, 5.0, 5.0});
  ASSERT_OK_AND_ASSIGN(std::vector<IndexMatch> top,
                       index.NearestNeighbors(query, 3));
  ASSERT_EQ(top.size(), 3u);
  EXPECT_LT(index.last_buckets_examined(), index.num_buckets());
  // Pruning must not change the result: compare with an unpruned ranking.
  ASSERT_OK_AND_ASSIGN(std::vector<IndexMatch> all,
                       index.RangeQuery(query, 1e18));
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i], all[i]);
  }
}

TEST(SymbolicIndexTest, RangeQueryFiltersByRadius) {
  LookupTable table = UniformTable(160.0, 4);
  ASSERT_OK_AND_ASSIGN(SymbolicIndex index, SymbolicIndex::Create(table, 1));
  ASSERT_OK(index.InsertValues(0, {5.0}));
  ASSERT_OK(index.InsertValues(1, {55.0}));
  ASSERT_OK(index.InsertValues(2, {155.0}));
  std::vector<Symbol> query = WordOf(table, {5.0});
  ASSERT_OK_AND_ASSIGN(std::vector<IndexMatch> near,
                       index.RangeQuery(query, 45.0));
  ASSERT_EQ(near.size(), 2u);  // itself (0) and 40 away (1)
  EXPECT_EQ(near[0].id, 0u);
  EXPECT_EQ(near[1].id, 1u);
  EXPECT_FALSE(index.RangeQuery(query, -1.0).ok());
}

TEST(SymbolicIndexTest, KLargerThanIndexReturnsAll) {
  LookupTable table = UniformTable(160.0, 4);
  ASSERT_OK_AND_ASSIGN(SymbolicIndex index, SymbolicIndex::Create(table, 1));
  ASSERT_OK(index.InsertValues(7, {5.0}));
  std::vector<Symbol> query = WordOf(table, {5.0});
  ASSERT_OK_AND_ASSIGN(std::vector<IndexMatch> top,
                       index.NearestNeighbors(query, 10));
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 7u);
  EXPECT_FALSE(index.NearestNeighbors(query, 0).ok());
}

}  // namespace
}  // namespace smeter
