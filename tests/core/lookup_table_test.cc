#include "core/lookup_table.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

LookupTable MakeUniformTable(double max, int level) {
  std::vector<double> training = {0.0, max};
  LookupTableOptions options;
  options.method = SeparatorMethod::kUniform;
  options.level = level;
  return LookupTable::Build(training, options).value();
}

TEST(LookupTableTest, BuildLearnsSeparators) {
  std::vector<double> training = testing::LogNormalValues(1000, 7);
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  EXPECT_EQ(table.level(), 4);
  EXPECT_EQ(table.alphabet_size(), 16u);
  EXPECT_EQ(table.separators().size(), 15u);
  EXPECT_EQ(table.method(), SeparatorMethod::kMedian);
}

TEST(LookupTableTest, EncodeFollowsDefinitionThree) {
  // Separators at 25, 50, 75 over [0, 100].
  LookupTable table = MakeUniformTable(100.0, 2);
  // Rule (iii): beta_{j-1} < v <= beta_j -> a_j. Boundary inclusive above.
  EXPECT_EQ(table.Encode(10.0).index(), 0u);
  EXPECT_EQ(table.Encode(25.0).index(), 0u);   // v <= beta_1
  EXPECT_EQ(table.Encode(25.001).index(), 1u);
  EXPECT_EQ(table.Encode(50.0).index(), 1u);
  EXPECT_EQ(table.Encode(75.0).index(), 2u);
  EXPECT_EQ(table.Encode(76.0).index(), 3u);
}

TEST(LookupTableTest, EncodeClampsOutOfRange) {
  LookupTable table = MakeUniformTable(100.0, 2);
  EXPECT_EQ(table.Encode(-50.0).index(), 0u);   // rule (i)
  EXPECT_EQ(table.Encode(1e9).index(), 3u);     // rule (ii)
}

TEST(LookupTableTest, EncodeMonotone) {
  std::vector<double> training = testing::LogNormalValues(5000, 11);
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double a = rng.Uniform(0.0, 1000.0);
    double b = rng.Uniform(0.0, 1000.0);
    if (a > b) std::swap(a, b);
    EXPECT_LE(table.Encode(a).index(), table.Encode(b).index());
  }
}

TEST(LookupTableTest, EncodeAtLevelEqualsCoarsenedEncode) {
  // The Figure-1 nesting property.
  std::vector<double> training = testing::LogNormalValues(5000, 13);
  for (SeparatorMethod method :
       {SeparatorMethod::kUniform, SeparatorMethod::kMedian,
        SeparatorMethod::kDistinctMedian}) {
    LookupTableOptions options;
    options.method = method;
    options.level = 4;
    ASSERT_OK_AND_ASSIGN(LookupTable table,
                         LookupTable::Build(training, options));
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
      double v = rng.Uniform(-10.0, 1500.0);
      for (int level = 1; level <= 4; ++level) {
        ASSERT_OK_AND_ASSIGN(Symbol direct, table.EncodeAtLevel(v, level));
        ASSERT_OK_AND_ASSIGN(Symbol coarse, table.Encode(v).Coarsen(level));
        EXPECT_EQ(direct, coarse) << "method "
                                  << SeparatorMethodName(method) << " v=" << v;
      }
    }
  }
}

TEST(LookupTableTest, SeparatorsAtLevelAreNestedSubsets) {
  std::vector<double> training = testing::LogNormalValues(2000, 19);
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  ASSERT_OK_AND_ASSIGN(std::vector<double> level3,
                       table.SeparatorsAtLevel(3));
  ASSERT_EQ(level3.size(), 7u);
  // Every level-3 separator must appear among the level-4 separators.
  const std::vector<double>& fine = table.separators();
  for (double s : level3) {
    EXPECT_TRUE(std::find(fine.begin(), fine.end(), s) != fine.end());
  }
  ASSERT_OK_AND_ASSIGN(std::vector<double> level1,
                       table.SeparatorsAtLevel(1));
  ASSERT_EQ(level1.size(), 1u);
  EXPECT_DOUBLE_EQ(level1[0], fine[7]);  // the middle separator
}

TEST(LookupTableTest, RangeBoundsBracketEncodeInput) {
  std::vector<double> training = testing::LogNormalValues(3000, 23);
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 3;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  Rng rng(29);
  for (int i = 0; i < 300; ++i) {
    double v = rng.Uniform(table.domain_min(), table.domain_max());
    Symbol s = table.Encode(v);
    ASSERT_OK_AND_ASSIGN(double lo, table.RangeLow(s));
    ASSERT_OK_AND_ASSIGN(double hi, table.RangeHigh(s));
    EXPECT_LE(lo, v + 1e-9);
    EXPECT_GE(hi, v - 1e-9);
  }
}

TEST(LookupTableTest, ReconstructCenterIsRangeMidpoint) {
  LookupTable table = MakeUniformTable(100.0, 2);
  ASSERT_OK_AND_ASSIGN(Symbol s, Symbol::Create(2, 1));
  ASSERT_OK_AND_ASSIGN(double center,
                       table.Reconstruct(s, ReconstructionMode::kRangeCenter));
  EXPECT_DOUBLE_EQ(center, 37.5);  // (25 + 50) / 2
}

TEST(LookupTableTest, ReconstructMeanUsesTrainingData) {
  // Training values 10 and 20 both land in symbol 0 of [0, 100] k=2.
  std::vector<double> training = {10.0, 20.0, 100.0};
  LookupTableOptions options;
  options.method = SeparatorMethod::kUniform;
  options.level = 1;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  ASSERT_OK_AND_ASSIGN(Symbol s0, Symbol::Create(1, 0));
  ASSERT_OK_AND_ASSIGN(double mean,
                       table.Reconstruct(s0, ReconstructionMode::kRangeMean));
  EXPECT_DOUBLE_EQ(mean, 15.0);
}

TEST(LookupTableTest, ReconstructMeanFallsBackToCenterOnEmptyBucket) {
  // With max = 100 and k = 4, no training value lies in (25, 50].
  std::vector<double> training = {10.0, 100.0};
  LookupTableOptions options;
  options.method = SeparatorMethod::kUniform;
  options.level = 2;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  ASSERT_OK_AND_ASSIGN(Symbol s1, Symbol::Create(2, 1));
  ASSERT_OK_AND_ASSIGN(double v,
                       table.Reconstruct(s1, ReconstructionMode::kRangeMean));
  EXPECT_DOUBLE_EQ(v, 37.5);
}

TEST(LookupTableTest, ReconstructCoarseSymbolAggregatesBuckets) {
  std::vector<double> training = {10.0, 20.0, 40.0, 90.0};
  LookupTableOptions options;
  options.method = SeparatorMethod::kUniform;
  options.level = 2;  // separators 22.5, 45, 67.5
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  ASSERT_OK_AND_ASSIGN(Symbol low_half, Symbol::Create(1, 0));
  ASSERT_OK_AND_ASSIGN(
      double mean, table.Reconstruct(low_half, ReconstructionMode::kRangeMean));
  // Values <= 45: 10, 20, 40 -> mean 70/3.
  EXPECT_NEAR(mean, 70.0 / 3.0, 1e-9);
}

TEST(LookupTableTest, RejectsSymbolFinerThanTable) {
  LookupTable table = MakeUniformTable(100.0, 2);
  ASSERT_OK_AND_ASSIGN(Symbol fine, Symbol::Create(3, 0));
  EXPECT_FALSE(table.RangeLow(fine).ok());
  EXPECT_FALSE(table.Reconstruct(fine, ReconstructionMode::kRangeCenter).ok());
  EXPECT_FALSE(table.EncodeAtLevel(10.0, 3).ok());
  EXPECT_FALSE(table.EncodeAtLevel(10.0, 0).ok());
}

TEST(LookupTableTest, FromSeparatorsExpertTable) {
  // The Section 3.2 example: a 2-symbol low/high segmentation.
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::FromSeparators({500.0}, 0.0, 3000.0));
  EXPECT_EQ(table.level(), 1);
  EXPECT_EQ(table.method(), SeparatorMethod::kCustom);
  EXPECT_EQ(table.Encode(100.0).ToBits(), "0");
  EXPECT_EQ(table.Encode(2000.0).ToBits(), "1");
}

TEST(LookupTableTest, FromSeparatorsValidates) {
  EXPECT_FALSE(LookupTable::FromSeparators({1.0, 2.0}, 0, 10).ok());  // k=3
  EXPECT_FALSE(LookupTable::FromSeparators({2.0, 1.0, 3.0}, 0, 10).ok());
  EXPECT_FALSE(LookupTable::FromSeparators({1.0}, 10.0, 0.0).ok());
}

TEST(LookupTableTest, SerializeDeserializeRoundTrip) {
  std::vector<double> training = testing::LogNormalValues(500, 31);
  LookupTableOptions options;
  options.method = SeparatorMethod::kDistinctMedian;
  options.level = 3;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  std::string blob = table.Serialize();
  ASSERT_OK_AND_ASSIGN(LookupTable restored, LookupTable::Deserialize(blob));
  EXPECT_EQ(restored.level(), table.level());
  EXPECT_EQ(restored.method(), table.method());
  EXPECT_EQ(restored.separators(), table.separators());
  EXPECT_DOUBLE_EQ(restored.domain_min(), table.domain_min());
  EXPECT_DOUBLE_EQ(restored.domain_max(), table.domain_max());
  // Same encode and reconstruct behaviour.
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    double v = rng.Uniform(0.0, 1000.0);
    EXPECT_EQ(restored.Encode(v), table.Encode(v));
    Symbol s = table.Encode(v);
    EXPECT_DOUBLE_EQ(
        restored.Reconstruct(s, ReconstructionMode::kRangeMean).value(),
        table.Reconstruct(s, ReconstructionMode::kRangeMean).value());
  }
}

TEST(LookupTableTest, DeserializeRejectsCorruptBlobs) {
  EXPECT_FALSE(LookupTable::Deserialize("").ok());
  EXPECT_FALSE(LookupTable::Deserialize("garbage\n\n\n\n\n\n\n").ok());
  LookupTable table = MakeUniformTable(10.0, 1);
  std::string blob = table.Serialize();
  // Corrupt the separator count.
  std::string bad = blob;
  bad.replace(bad.find("separators"), 10, "separatorz");
  EXPECT_FALSE(LookupTable::Deserialize(bad).ok());
}

TEST(LookupTableTest, BucketCountsSumToTrainingSize) {
  std::vector<double> training = testing::LogNormalValues(999, 41);
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(training, options));
  size_t total = 0;
  for (size_t c : table.bucket_counts()) total += c;
  EXPECT_EQ(total, training.size());
}

TEST(LookupTableTest, BuildRejectsBadOptions) {
  EXPECT_FALSE(LookupTable::Build({}, {}).ok());
  LookupTableOptions options;
  options.level = 0;
  EXPECT_FALSE(LookupTable::Build({1.0}, options).ok());
}

}  // namespace
}  // namespace smeter
