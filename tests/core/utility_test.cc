#include "core/utility.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(LloydMaxTest, ValidatesInput) {
  EXPECT_FALSE(LloydMaxSeparators({}, {}).ok());
  LloydMaxOptions options;
  options.level = 0;
  EXPECT_FALSE(LloydMaxSeparators({1.0}, options).ok());
  options.level = kMaxSymbolLevel + 1;
  EXPECT_FALSE(LloydMaxSeparators({1.0}, options).ok());
}

TEST(LloydMaxTest, ConstantDataDegeneratesGracefully) {
  LloydMaxOptions options;
  options.level = 2;
  ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                       LloydMaxSeparators(std::vector<double>(10, 5.0),
                                          options));
  ASSERT_EQ(seps.size(), 3u);
  for (double s : seps) EXPECT_DOUBLE_EQ(s, 5.0);
}

TEST(LloydMaxTest, SeparatorsAreSortedAndInRange) {
  std::vector<double> values = testing::LogNormalValues(5000, 3);
  LloydMaxOptions options;
  options.level = 4;
  ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                       LloydMaxSeparators(values, options));
  ASSERT_EQ(seps.size(), 15u);
  EXPECT_TRUE(std::is_sorted(seps.begin(), seps.end()));
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  EXPECT_GE(seps.front(), lo);
  EXPECT_LE(seps.back(), hi);
}

TEST(LloydMaxTest, TwoWellSeparatedClustersSplitBetweenThem) {
  // Mass at ~10 and ~100: the single k=2 separator must fall between.
  std::vector<double> values;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.Gaussian(10.0, 0.5));
    values.push_back(rng.Gaussian(100.0, 0.5));
  }
  LloydMaxOptions options;
  options.level = 1;
  ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                       LloydMaxSeparators(values, options));
  ASSERT_EQ(seps.size(), 1u);
  EXPECT_GT(seps[0], 20.0);
  EXPECT_LT(seps[0], 90.0);
}

TEST(LloydMaxTest, MinimizesDistortionAgainstOtherMethods) {
  // On skewed data, Lloyd-Max must beat both uniform and median in mean
  // squared reconstruction error (its objective).
  std::vector<double> values = testing::LogNormalValues(20000, 11);
  LloydMaxOptions lm;
  lm.level = 3;
  ASSERT_OK_AND_ASSIGN(LookupTable lloyd, BuildLloydMaxTable(values, lm));

  LookupTableOptions options;
  options.level = 3;
  options.method = SeparatorMethod::kUniform;
  ASSERT_OK_AND_ASSIGN(LookupTable uniform,
                       LookupTable::Build(values, options));
  options.method = SeparatorMethod::kMedian;
  ASSERT_OK_AND_ASSIGN(LookupTable median, LookupTable::Build(values, options));

  ASSERT_OK_AND_ASSIGN(
      double lloyd_mse,
      MeanSquaredDistortion(lloyd, values, ReconstructionMode::kRangeMean));
  ASSERT_OK_AND_ASSIGN(
      double uniform_mse,
      MeanSquaredDistortion(uniform, values, ReconstructionMode::kRangeMean));
  ASSERT_OK_AND_ASSIGN(
      double median_mse,
      MeanSquaredDistortion(median, values, ReconstructionMode::kRangeMean));
  EXPECT_LE(lloyd_mse, uniform_mse * 1.001);
  EXPECT_LE(lloyd_mse, median_mse * 1.001);
}

TEST(LloydMaxTest, TableHasTrainingStatsAttached) {
  std::vector<double> values = testing::LogNormalValues(2000, 13);
  ASSERT_OK_AND_ASSIGN(LookupTable table, BuildLloydMaxTable(values, {}));
  size_t total = 0;
  for (size_t c : table.bucket_counts()) total += c;
  EXPECT_EQ(total, values.size());
  EXPECT_EQ(table.method(), SeparatorMethod::kCustom);
}

TEST(LloydMaxTest, IterationImprovesOverInitialization) {
  // Lloyd-Max starts from the median solution; after convergence its
  // distortion must not be worse.
  std::vector<double> values = testing::LogNormalValues(10000, 17);
  LloydMaxOptions zero_iters;
  zero_iters.level = 4;
  zero_iters.max_iterations = 0;
  LloydMaxOptions full = zero_iters;
  full.max_iterations = 100;
  ASSERT_OK_AND_ASSIGN(LookupTable init, BuildLloydMaxTable(values, zero_iters));
  ASSERT_OK_AND_ASSIGN(LookupTable converged, BuildLloydMaxTable(values, full));
  ASSERT_OK_AND_ASSIGN(
      double init_mse,
      MeanSquaredDistortion(init, values, ReconstructionMode::kRangeMean));
  ASSERT_OK_AND_ASSIGN(
      double conv_mse,
      MeanSquaredDistortion(converged, values,
                            ReconstructionMode::kRangeMean));
  EXPECT_LE(conv_mse, init_mse * 1.001);
}

TEST(MeanSquaredDistortionTest, ValidatesInput) {
  std::vector<double> values = {1.0, 2.0};
  ASSERT_OK_AND_ASSIGN(LookupTable table, BuildLloydMaxTable(values, {}));
  EXPECT_FALSE(
      MeanSquaredDistortion(table, {}, ReconstructionMode::kRangeMean).ok());
}

}  // namespace
}  // namespace smeter
