#include "core/entropy.h"

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "testutil.h"

namespace smeter {
namespace {

TEST(EntropyBitsTest, UniformCountsAreMaximal) {
  ASSERT_OK_AND_ASSIGN(double h, EntropyBits({10, 10, 10, 10}));
  EXPECT_DOUBLE_EQ(h, 2.0);
}

TEST(EntropyBitsTest, DegenerateDistributionIsZero) {
  ASSERT_OK_AND_ASSIGN(double h, EntropyBits({0, 42, 0, 0}));
  EXPECT_DOUBLE_EQ(h, 0.0);
}

TEST(EntropyBitsTest, KnownMixedValue) {
  // {3/4, 1/4}: H = 0.811278...
  ASSERT_OK_AND_ASSIGN(double h, EntropyBits({3, 1}));
  EXPECT_NEAR(h, 0.8112781245, 1e-9);
}

TEST(EntropyBitsTest, EmptyCountsError) {
  EXPECT_FALSE(EntropyBits({}).ok());
  EXPECT_FALSE(EntropyBits({0, 0}).ok());
}

TEST(SymbolEntropyTest, MedianEncodingMaximizesEntropy) {
  // Section 2.2b: median "aims to maximize the entropy of the generated
  // symbols". On skewed data it must beat uniform by a wide margin.
  std::vector<double> values = testing::LogNormalValues(20000, 77);
  TimeSeries series = testing::MakeSeries(values);

  LookupTableOptions options;
  options.level = 4;
  options.method = SeparatorMethod::kMedian;
  ASSERT_OK_AND_ASSIGN(LookupTable median_table,
                       LookupTable::Build(values, options));
  options.method = SeparatorMethod::kUniform;
  ASSERT_OK_AND_ASSIGN(LookupTable uniform_table,
                       LookupTable::Build(values, options));

  ASSERT_OK_AND_ASSIGN(SymbolicSeries median_series,
                       Encode(series, median_table));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries uniform_series,
                       Encode(series, uniform_table));

  ASSERT_OK_AND_ASSIGN(double h_median, SymbolEntropyBits(median_series));
  ASSERT_OK_AND_ASSIGN(double h_uniform, SymbolEntropyBits(uniform_series));
  EXPECT_GT(h_median, h_uniform);
  EXPECT_GT(h_median, 3.95);  // near-maximal 4 bits
  EXPECT_LE(h_median, 4.0 + 1e-9);
}

TEST(SymbolEntropyTest, NormalizedEntropyInUnitInterval) {
  std::vector<double> values = testing::LogNormalValues(5000, 83);
  TimeSeries series = testing::MakeSeries(values);
  LookupTableOptions options;
  options.level = 3;
  options.method = SeparatorMethod::kMedian;
  ASSERT_OK_AND_ASSIGN(LookupTable table, LookupTable::Build(values, options));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries encoded, Encode(series, table));
  ASSERT_OK_AND_ASSIGN(double norm, NormalizedSymbolEntropy(encoded));
  EXPECT_GT(norm, 0.95);
  EXPECT_LE(norm, 1.0 + 1e-9);
}

TEST(SymbolEntropyTest, EmptySeriesErrors) {
  SymbolicSeries empty(3);
  EXPECT_FALSE(SymbolEntropyBits(empty).ok());
}

}  // namespace
}  // namespace smeter
