#include "core/compression.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(CompressionTest, PaperHeadlineNumbers) {
  // Section 2.3: doubles at 1 Hz ~ 680 kB/day; 16 symbols @ 15 min -> 384
  // bits/day, three orders of magnitude lower.
  CompressionModelOptions options;
  options.sample_period_seconds = 1;
  options.window_seconds = 900;
  options.symbol_bits = 4;
  ASSERT_OK_AND_ASSIGN(CompressionReport report,
                       EvaluateCompression(options));
  EXPECT_DOUBLE_EQ(report.raw_bits_per_day, 86400.0 * 64.0);
  EXPECT_NEAR(report.raw_bits_per_day / 8.0 / 1024.0, 675.0, 1.0);  // ~680 kB
  EXPECT_DOUBLE_EQ(report.symbolic_bits_per_day, 96.0 * 4.0);  // 384 bit
  EXPECT_NEAR(report.ratio, 14400.0, 1e-9);
  EXPECT_GT(report.ratio, 1000.0);  // three orders of magnitude
}

TEST(CompressionTest, OneHourTwoSymbols) {
  CompressionModelOptions options;
  options.window_seconds = 3600;
  options.symbol_bits = 1;
  ASSERT_OK_AND_ASSIGN(CompressionReport report,
                       EvaluateCompression(options));
  EXPECT_DOUBLE_EQ(report.symbolic_bits_per_day, 24.0);
}

TEST(CompressionTest, TableAmortizationAddsOverhead) {
  CompressionModelOptions options;
  options.window_seconds = 900;
  options.symbol_bits = 4;
  options.table_bits = 16 * 64;  // 16 doubles
  options.table_amortization_days = 0.0;
  ASSERT_OK_AND_ASSIGN(CompressionReport no_table,
                       EvaluateCompression(options));
  options.table_amortization_days = 30.0;
  ASSERT_OK_AND_ASSIGN(CompressionReport with_table,
                       EvaluateCompression(options));
  EXPECT_GT(with_table.symbolic_bits_per_day, no_table.symbolic_bits_per_day);
  EXPECT_LT(with_table.ratio, no_table.ratio);
  EXPECT_NEAR(with_table.symbolic_bits_per_day,
              384.0 + 1024.0 / 30.0, 1e-9);
}

TEST(CompressionTest, CoarserWindowsCompressMore) {
  CompressionModelOptions options;
  options.symbol_bits = 4;
  options.window_seconds = 900;
  ASSERT_OK_AND_ASSIGN(CompressionReport fifteen,
                       EvaluateCompression(options));
  options.window_seconds = 3600;
  ASSERT_OK_AND_ASSIGN(CompressionReport hour, EvaluateCompression(options));
  EXPECT_GT(hour.ratio, fifteen.ratio);
}

TEST(CompressionTest, RejectsBadOptions) {
  CompressionModelOptions options;
  options.sample_period_seconds = 0;
  EXPECT_FALSE(EvaluateCompression(options).ok());
  options = {};
  options.window_seconds = 0;
  EXPECT_FALSE(EvaluateCompression(options).ok());
  options = {};
  options.symbol_bits = 0;
  EXPECT_FALSE(EvaluateCompression(options).ok());
  options = {};
  options.symbol_bits = 65;
  EXPECT_FALSE(EvaluateCompression(options).ok());
  options = {};
  options.raw_sample_bits = 0;
  EXPECT_FALSE(EvaluateCompression(options).ok());
  options = {};
  options.table_amortization_days = -1.0;
  EXPECT_FALSE(EvaluateCompression(options).ok());
  options = {};
  options.sample_period_seconds = 3600;
  options.window_seconds = 900;  // window < sample period
  EXPECT_FALSE(EvaluateCompression(options).ok());
}

}  // namespace
}  // namespace smeter
