#include "core/time_series.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(TimeSeriesTest, FromValuesBuildsGaplessSeries) {
  TimeSeries s = TimeSeries::FromValues({1.0, 2.0, 3.0}, 100, 2);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].timestamp, 100);
  EXPECT_EQ(s[2].timestamp, 104);
  EXPECT_DOUBLE_EQ(s[1].value, 2.0);
}

TEST(TimeSeriesTest, FromSamplesValidatesOrdering) {
  Result<TimeSeries> bad =
      TimeSeries::FromSamples({{10, 1.0}, {5, 2.0}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(TimeSeriesTest, FromSamplesAllowsEqualTimestamps) {
  ASSERT_OK_AND_ASSIGN(TimeSeries s,
                       TimeSeries::FromSamples({{5, 1.0}, {5, 2.0}}));
  EXPECT_EQ(s.size(), 2u);
}

TEST(TimeSeriesTest, FromSamplesRejectsNonFinite) {
  EXPECT_FALSE(TimeSeries::FromSamples({{1, std::nan("")}}).ok());
  EXPECT_FALSE(TimeSeries::FromSamples({{1, INFINITY}}).ok());
}

TEST(TimeSeriesTest, AppendEnforcesOrdering) {
  TimeSeries s;
  ASSERT_OK(s.Append({10, 1.0}));
  ASSERT_OK(s.Append({10, 2.0}));
  Status st = s.Append({9, 3.0});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(s.size(), 2u);  // failed append does not mutate
}

TEST(TimeSeriesTest, ValuesColumn) {
  TimeSeries s = TimeSeries::FromValues({1.5, 2.5});
  EXPECT_EQ(s.Values(), (std::vector<double>{1.5, 2.5}));
}

TEST(TimeSeriesTest, SliceHalfOpen) {
  TimeSeries s = TimeSeries::FromValues({0, 1, 2, 3, 4, 5});
  TimeSeries mid = s.Slice({2, 5});
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.front().timestamp, 2);
  EXPECT_EQ(mid.back().timestamp, 4);
}

TEST(TimeSeriesTest, SliceOutsideRangeIsEmpty) {
  TimeSeries s = TimeSeries::FromValues({0, 1, 2});
  EXPECT_TRUE(s.Slice({10, 20}).empty());
  EXPECT_TRUE(s.Slice({-5, 0}).empty());
}

TEST(TimeSeriesTest, FindGaps) {
  ASSERT_OK_AND_ASSIGN(
      TimeSeries s,
      TimeSeries::FromSamples({{0, 1.0}, {1, 1.0}, {100, 1.0}, {101, 1.0}}));
  std::vector<TimeRange> gaps = s.FindGaps(1);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].begin, 1);
  EXPECT_EQ(gaps[0].end, 100);
}

TEST(TimeSeriesTest, FindGapsNoneWhenDense) {
  TimeSeries s = TimeSeries::FromValues({1, 2, 3});
  EXPECT_TRUE(s.FindGaps(1).empty());
}

TEST(TimeSeriesTest, MinMaxMean) {
  TimeSeries s = TimeSeries::FromValues({3.0, 1.0, 2.0});
  ASSERT_OK_AND_ASSIGN(double lo, s.MinValue());
  ASSERT_OK_AND_ASSIGN(double hi, s.MaxValue());
  ASSERT_OK_AND_ASSIGN(double mean, s.MeanValue());
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 3.0);
  EXPECT_DOUBLE_EQ(mean, 2.0);
}

TEST(TimeSeriesTest, StatsOnEmptySeriesFail) {
  TimeSeries s;
  EXPECT_FALSE(s.MinValue().ok());
  EXPECT_FALSE(s.MaxValue().ok());
  EXPECT_FALSE(s.MeanValue().ok());
}

TEST(TimeSeriesTest, CoverageSeconds) {
  TimeSeries s = TimeSeries::FromValues({1, 2, 3});
  EXPECT_EQ(s.CoverageSeconds(2), 6);
}

TEST(SumAlignedTest, SumsMatchingTimestamps) {
  TimeSeries a = TimeSeries::FromValues({1, 2, 3});
  TimeSeries b = TimeSeries::FromValues({10, 20, 30});
  ASSERT_OK_AND_ASSIGN(TimeSeries sum, SumAligned(a, b));
  EXPECT_DOUBLE_EQ(sum[1].value, 22.0);
}

TEST(SumAlignedTest, RejectsSizeMismatch) {
  TimeSeries a = TimeSeries::FromValues({1, 2});
  TimeSeries b = TimeSeries::FromValues({1});
  EXPECT_FALSE(SumAligned(a, b).ok());
}

TEST(SumAlignedTest, RejectsTimestampMismatch) {
  TimeSeries a = TimeSeries::FromValues({1.0, 2.0}, 0, 1);
  TimeSeries b = TimeSeries::FromValues({1.0, 2.0}, 0, 2);
  EXPECT_FALSE(SumAligned(a, b).ok());
}

}  // namespace
}  // namespace smeter
