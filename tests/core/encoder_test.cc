#include "core/encoder.h"

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "testutil.h"

namespace smeter {
namespace {

LookupTable UniformTable(double max, int level) {
  LookupTableOptions options;
  options.method = SeparatorMethod::kUniform;
  options.level = level;
  return LookupTable::Build({0.0, max}, options).value();
}

TEST(EncodeTest, EncodesEverySample) {
  LookupTable table = UniformTable(100.0, 2);
  TimeSeries s = TimeSeries::FromValues({10.0, 30.0, 60.0, 90.0});
  ASSERT_OK_AND_ASSIGN(SymbolicSeries out, Encode(s, table));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.ToBitString(), "00 01 10 11");
  EXPECT_EQ(out[2].timestamp, 2);
}

TEST(EncodeTest, EmptySeriesYieldsEmptySymbolicSeries) {
  LookupTable table = UniformTable(100.0, 2);
  ASSERT_OK_AND_ASSIGN(SymbolicSeries out, Encode(TimeSeries(), table));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.level(), 2);
}

TEST(EncodeAtLevelTest, MatchesCoarsenedFullEncode) {
  LookupTable table = UniformTable(100.0, 3);
  TimeSeries s = TimeSeries::FromValues({5, 20, 45, 70, 95});
  ASSERT_OK_AND_ASSIGN(SymbolicSeries full, Encode(s, table));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries coarse, EncodeAtLevel(s, table, 1));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries derived, full.Coarsen(1));
  ASSERT_EQ(coarse.size(), derived.size());
  for (size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_EQ(coarse[i].symbol, derived[i].symbol);
  }
}

TEST(EncodeAtLevelTest, RejectsBadLevel) {
  LookupTable table = UniformTable(100.0, 2);
  TimeSeries s = TimeSeries::FromValues({1.0});
  EXPECT_FALSE(EncodeAtLevel(s, table, 3).ok());
  EXPECT_FALSE(EncodeAtLevel(s, table, 0).ok());
}

TEST(DecodeTest, RangeCenterRoundTripStaysInRange) {
  LookupTable table = UniformTable(100.0, 2);
  TimeSeries s = TimeSeries::FromValues({10.0, 30.0, 60.0, 90.0});
  ASSERT_OK_AND_ASSIGN(SymbolicSeries encoded, Encode(s, table));
  ASSERT_OK_AND_ASSIGN(
      TimeSeries decoded,
      Decode(encoded, table, ReconstructionMode::kRangeCenter));
  ASSERT_EQ(decoded.size(), s.size());
  EXPECT_DOUBLE_EQ(decoded[0].value, 12.5);
  EXPECT_DOUBLE_EQ(decoded[1].value, 37.5);
  EXPECT_DOUBLE_EQ(decoded[3].value, 87.5);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(decoded[i].timestamp, s[i].timestamp);
  }
}

TEST(DecodeTest, CoarseSeriesDecodableByFineTable) {
  // Section 4 flexibility: symbols of lower resolution are still
  // meaningful under the finer table.
  LookupTable table = UniformTable(100.0, 3);
  TimeSeries s = TimeSeries::FromValues({10.0, 90.0});
  ASSERT_OK_AND_ASSIGN(SymbolicSeries fine, Encode(s, table));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries coarse, fine.Coarsen(1));
  ASSERT_OK_AND_ASSIGN(
      TimeSeries decoded,
      Decode(coarse, table, ReconstructionMode::kRangeCenter));
  EXPECT_DOUBLE_EQ(decoded[0].value, 25.0);
  EXPECT_DOUBLE_EQ(decoded[1].value, 75.0);
}

TEST(EncodePipelineTest, VerticalThenHorizontal) {
  LookupTable table = UniformTable(100.0, 1);
  // 1 Hz, 60 s of 10 W then 60 s of 90 W; 60 s windows.
  std::vector<double> values(120, 10.0);
  for (size_t i = 60; i < 120; ++i) values[i] = 90.0;
  TimeSeries raw = TimeSeries::FromValues(values);
  PipelineOptions options;
  options.window_seconds = 60;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries out, EncodePipeline(raw, table, options));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.ToBitString(), "0 1");
}

TEST(EncodePipelineTest, PropagatesWindowErrors) {
  LookupTable table = UniformTable(100.0, 1);
  PipelineOptions options;
  options.window_seconds = 0;
  EXPECT_FALSE(EncodePipeline(TimeSeries(), table, options).ok());
}

// --- gap-aware pipeline -----------------------------------------------------

TEST(EncodePipelineWithGapsTest, OutageBecomesGapSymbolsNotMissingWindows) {
  LookupTable table = UniformTable(100.0, 2);
  // 60 s windows: [0,60) at 10 W, [60,120) missing entirely, [120,180) at
  // 90 W.
  std::vector<Sample> samples;
  for (int t = 0; t < 60; ++t) samples.push_back({t, 10.0});
  for (int t = 120; t < 180; ++t) samples.push_back({t, 90.0});
  TimeSeries raw = TimeSeries::FromSamples(std::move(samples)).value();
  PipelineOptions options;
  options.window_seconds = 60;
  ASSERT_OK_AND_ASSIGN(QualityEncoding out,
                       EncodePipelineWithGaps(raw, table, options));
  ASSERT_EQ(out.symbols.size(), 3u);
  EXPECT_FALSE(out.symbols[0].symbol.is_gap());
  EXPECT_TRUE(out.symbols[1].symbol.is_gap());
  EXPECT_FALSE(out.symbols[2].symbol.is_gap());
  EXPECT_EQ(out.quality.windows_valid, 2u);
  EXPECT_EQ(out.quality.windows_gap, 1u);
  EXPECT_EQ(out.quality.windows_partial, 0u);
  EXPECT_DOUBLE_EQ(out.quality.gap_ratio(), 1.0 / 3.0);
  // The cadence is fixed, so the gappy encoding packs into one wire blob.
  EXPECT_EQ(out.symbols[1].timestamp - out.symbols[0].timestamp, 60);
  EXPECT_EQ(out.symbols[2].timestamp - out.symbols[1].timestamp, 60);
}

TEST(EncodePipelineWithGapsTest, MatchesStrictPipelineOnCleanTraces) {
  LookupTable table = UniformTable(100.0, 3);
  TimeSeries raw = TimeSeries::FromValues(
      smeter::testing::LogNormalValues(600, 5, 3.0, 0.5));
  PipelineOptions options;
  options.window_seconds = 60;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries strict,
                       EncodePipeline(raw, table, options));
  ASSERT_OK_AND_ASSIGN(QualityEncoding gap_aware,
                       EncodePipelineWithGaps(raw, table, options));
  ASSERT_EQ(gap_aware.symbols.size(), strict.size());
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ(gap_aware.symbols[i], strict[i]) << i;
  }
  EXPECT_EQ(gap_aware.quality.windows_gap, 0u);
  EXPECT_EQ(gap_aware.quality.windows_partial, 0u);
}

TEST(EncodePipelineTest, PipelineFaultSeamFailsBothEntryPoints) {
  LookupTable table = UniformTable(100.0, 3);
  TimeSeries raw = TimeSeries::FromValues(
      smeter::testing::LogNormalValues(600, 5, 3.0, 0.5));
  PipelineOptions options;
  options.window_seconds = 60;
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("encode.pipeline", 1, 1)});
    EXPECT_FALSE(EncodePipeline(raw, table, options).ok());
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("encode.pipeline", 1, 1)});
    EXPECT_FALSE(EncodePipelineWithGaps(raw, table, options).ok());
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  // With the seam disarmed both entry points work again: the failure was
  // injected, not structural.
  EXPECT_TRUE(EncodePipeline(raw, table, options).ok());
}

TEST(DecodeTest, GapSymbolsProduceNoOutputSamples) {
  LookupTable table = UniformTable(100.0, 2);
  SymbolicSeries series(2);
  ASSERT_OK(series.Append({60, Symbol::Create(2, 1).value()}));
  ASSERT_OK(series.Append({120, Symbol::Gap(2)}));
  ASSERT_OK(series.Append({180, Symbol::Create(2, 3).value()}));
  ASSERT_OK_AND_ASSIGN(
      TimeSeries decoded,
      Decode(series, table, ReconstructionMode::kRangeCenter));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].timestamp, 60);
  EXPECT_EQ(decoded[1].timestamp, 180);
}

}  // namespace
}  // namespace smeter
