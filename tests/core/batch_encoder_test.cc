#include "core/batch_encoder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "testutil.h"

namespace smeter {
namespace {

LookupTable MedianTable(int level, uint64_t seed = 42, size_t n = 5000) {
  Rng rng(seed);
  std::vector<double> training;
  training.reserve(n);
  for (size_t i = 0; i < n; ++i) training.push_back(rng.LogNormal(5.0, 1.0));
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = level;
  return LookupTable::Build(training, options).value();
}

TEST(EncodeBatchTest, MatchesScalarEncodeOnRandomData) {
  for (int level = 1; level <= 8; ++level) {
    LookupTable table = MedianTable(level);
    Rng rng(7);
    std::vector<double> values;
    for (size_t i = 0; i < 2000; ++i) {
      values.push_back(rng.LogNormal(5.0, 1.5));
    }
    ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch,
                         EncodeBatch(table, values));
    ASSERT_EQ(batch.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(batch[i], table.Encode(values[i]))
          << "level " << level << " index " << i << " value " << values[i];
    }
  }
}

TEST(EncodeBatchTest, MatchesScalarOnSeparatorsAndExtremes) {
  LookupTable table = MedianTable(4);
  std::vector<double> values;
  for (double s : table.separators()) {
    values.push_back(s);  // ties go to the lower bucket (v <= beta_j)
    values.push_back(std::nextafter(s, -1e300));
    values.push_back(std::nextafter(s, 1e300));
  }
  values.push_back(table.domain_min());
  values.push_back(table.domain_max());
  values.push_back(-std::numeric_limits<double>::infinity());
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(-1e300);
  values.push_back(1e300);
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch, EncodeBatch(table, values));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(batch[i], table.Encode(values[i])) << "value " << values[i];
  }
}

TEST(EncodeBatchTest, MatchesScalarOnDuplicateSeparators) {
  // Constant-ish training data produces runs of equal separators; the
  // branchless descent must agree with lower_bound on them.
  ASSERT_OK_AND_ASSIGN(
      LookupTable table,
      LookupTable::FromSeparators({5.0, 5.0, 5.0}, 0.0, 10.0));
  std::vector<double> values = {4.0, 5.0, 5.0000001, 6.0, 0.0, 10.0};
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch, EncodeBatch(table, values));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(batch[i], table.Encode(values[i])) << "value " << values[i];
  }
}

TEST(EncodeBatchTest, EmptyInput) {
  LookupTable table = MedianTable(4);
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch,
                       EncodeBatch(table, std::vector<double>{}));
  EXPECT_TRUE(batch.empty());
}

TEST(EncodeBatchTest, NanIsAnErrorNamingTheFirstIndex) {
  LookupTable table = MedianTable(4);
  std::vector<double> values(100, 1.0);
  values[37] = std::numeric_limits<double>::quiet_NaN();
  values[90] = std::numeric_limits<double>::quiet_NaN();
  Result<std::vector<Symbol>> batch = EncodeBatch(table, values);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("index 37"), std::string::npos)
      << batch.status().message();
}

TEST(EncodeBatchAtLevelTest, MatchesScalarEncodeAtLevel) {
  LookupTable table = MedianTable(6);
  Rng rng(9);
  std::vector<double> values;
  for (size_t i = 0; i < 500; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  for (int level = 1; level <= 6; ++level) {
    std::vector<Symbol> batch(values.size());
    ASSERT_OK(EncodeBatchAtLevel(table, values, level, batch.data()));
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(Symbol scalar,
                           table.EncodeAtLevel(values[i], level));
      EXPECT_EQ(batch[i], scalar) << "level " << level << " index " << i;
    }
  }
}

TEST(EncodeBatchAtLevelTest, RejectsBadLevels) {
  LookupTable table = MedianTable(3);
  std::vector<double> values = {1.0};
  std::vector<Symbol> out(1);
  EXPECT_FALSE(EncodeBatchAtLevel(table, values, 0, out.data()).ok());
  EXPECT_FALSE(EncodeBatchAtLevel(table, values, 4, out.data()).ok());
}

TEST(DecodeBatchTest, MatchesScalarReconstructBothModes) {
  LookupTable table = MedianTable(5);
  Rng rng(11);
  std::vector<double> values;
  for (size_t i = 0; i < 1000; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> symbols,
                       EncodeBatch(table, values));
  for (ReconstructionMode mode :
       {ReconstructionMode::kRangeCenter, ReconstructionMode::kRangeMean}) {
    ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                         DecodeBatch(table, symbols, mode));
    ASSERT_EQ(decoded.size(), symbols.size());
    for (size_t i = 0; i < symbols.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(double scalar,
                           table.Reconstruct(symbols[i], mode));
      EXPECT_EQ(decoded[i], scalar) << i;
    }
  }
}

TEST(DecodeBatchTest, DecodesCoarserSymbols) {
  LookupTable table = MedianTable(4);
  std::vector<Symbol> symbols = {Symbol::Create(2, 0).value(),
                                 Symbol::Create(2, 3).value()};
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> decoded,
      DecodeBatch(table, symbols, ReconstructionMode::kRangeCenter));
  for (size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(decoded[i],
              table.Reconstruct(symbols[i], ReconstructionMode::kRangeCenter)
                  .value());
  }
}

TEST(DecodeBatchTest, RejectsFinerThanTableAndMixedLevels) {
  LookupTable table = MedianTable(2);
  std::vector<Symbol> finer = {Symbol::Create(3, 0).value()};
  std::vector<double> out(2);
  EXPECT_FALSE(
      DecodeBatch(table, finer, ReconstructionMode::kRangeCenter, out.data())
          .ok());
  std::vector<Symbol> mixed = {Symbol::Create(2, 0).value(),
                               Symbol::Create(1, 1).value()};
  Status status =
      DecodeBatch(table, mixed, ReconstructionMode::kRangeCenter, out.data());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("index 1"), std::string::npos)
      << status.message();
}

TEST(DecodeBatchTest, EmptyInput) {
  LookupTable table = MedianTable(2);
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> decoded,
      DecodeBatch(table, std::vector<Symbol>{},
                  ReconstructionMode::kRangeMean));
  EXPECT_TRUE(decoded.empty());
}

}  // namespace
}  // namespace smeter
