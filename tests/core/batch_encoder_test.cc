#include "core/batch_encoder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "testutil.h"

namespace smeter {
namespace {

LookupTable MedianTable(int level, uint64_t seed = 42, size_t n = 5000) {
  Rng rng(seed);
  std::vector<double> training;
  training.reserve(n);
  for (size_t i = 0; i < n; ++i) training.push_back(rng.LogNormal(5.0, 1.0));
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = level;
  return LookupTable::Build(training, options).value();
}

TEST(EncodeBatchTest, MatchesScalarEncodeOnRandomData) {
  for (int level = 1; level <= 8; ++level) {
    LookupTable table = MedianTable(level);
    Rng rng(7);
    std::vector<double> values;
    for (size_t i = 0; i < 2000; ++i) {
      values.push_back(rng.LogNormal(5.0, 1.5));
    }
    ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch,
                         EncodeBatch(table, values));
    ASSERT_EQ(batch.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(batch[i], table.Encode(values[i]))
          << "level " << level << " index " << i << " value " << values[i];
    }
  }
}

TEST(EncodeBatchTest, MatchesScalarOnSeparatorsAndExtremes) {
  LookupTable table = MedianTable(4);
  std::vector<double> values;
  for (double s : table.separators()) {
    values.push_back(s);  // ties go to the lower bucket (v <= beta_j)
    values.push_back(std::nextafter(s, -1e300));
    values.push_back(std::nextafter(s, 1e300));
  }
  values.push_back(table.domain_min());
  values.push_back(table.domain_max());
  values.push_back(-std::numeric_limits<double>::infinity());
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(-1e300);
  values.push_back(1e300);
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch, EncodeBatch(table, values));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(batch[i], table.Encode(values[i])) << "value " << values[i];
  }
}

TEST(EncodeBatchTest, MatchesScalarOnDuplicateSeparators) {
  // Constant-ish training data produces runs of equal separators; the
  // branchless descent must agree with lower_bound on them.
  ASSERT_OK_AND_ASSIGN(
      LookupTable table,
      LookupTable::FromSeparators({5.0, 5.0, 5.0}, 0.0, 10.0));
  std::vector<double> values = {4.0, 5.0, 5.0000001, 6.0, 0.0, 10.0};
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch, EncodeBatch(table, values));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(batch[i], table.Encode(values[i])) << "value " << values[i];
  }
}

TEST(EncodeBatchTest, EmptyInput) {
  LookupTable table = MedianTable(4);
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> batch,
                       EncodeBatch(table, std::vector<double>{}));
  EXPECT_TRUE(batch.empty());
}

TEST(EncodeBatchTest, NanIsAnErrorNamingTheFirstIndex) {
  LookupTable table = MedianTable(4);
  std::vector<double> values(100, 1.0);
  values[37] = std::numeric_limits<double>::quiet_NaN();
  values[90] = std::numeric_limits<double>::quiet_NaN();
  Result<std::vector<Symbol>> batch = EncodeBatch(table, values);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("index 37"), std::string::npos)
      << batch.status().message();
}

TEST(EncodeBatchAtLevelTest, MatchesScalarEncodeAtLevel) {
  LookupTable table = MedianTable(6);
  Rng rng(9);
  std::vector<double> values;
  for (size_t i = 0; i < 500; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  for (int level = 1; level <= 6; ++level) {
    std::vector<Symbol> batch(values.size());
    ASSERT_OK(EncodeBatchAtLevel(table, values, level, batch.data()));
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(Symbol scalar,
                           table.EncodeAtLevel(values[i], level));
      EXPECT_EQ(batch[i], scalar) << "level " << level << " index " << i;
    }
  }
}

TEST(EncodeBatchAtLevelTest, RejectsBadLevels) {
  LookupTable table = MedianTable(3);
  std::vector<double> values = {1.0};
  std::vector<Symbol> out(1);
  EXPECT_FALSE(EncodeBatchAtLevel(table, values, 0, out.data()).ok());
  EXPECT_FALSE(EncodeBatchAtLevel(table, values, 4, out.data()).ok());
}

TEST(DecodeBatchTest, MatchesScalarReconstructBothModes) {
  LookupTable table = MedianTable(5);
  Rng rng(11);
  std::vector<double> values;
  for (size_t i = 0; i < 1000; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> symbols,
                       EncodeBatch(table, values));
  for (ReconstructionMode mode :
       {ReconstructionMode::kRangeCenter, ReconstructionMode::kRangeMean}) {
    ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                         DecodeBatch(table, symbols, mode));
    ASSERT_EQ(decoded.size(), symbols.size());
    for (size_t i = 0; i < symbols.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(double scalar,
                           table.Reconstruct(symbols[i], mode));
      EXPECT_EQ(decoded[i], scalar) << i;
    }
  }
}

TEST(DecodeBatchTest, DecodesCoarserSymbols) {
  LookupTable table = MedianTable(4);
  std::vector<Symbol> symbols = {Symbol::Create(2, 0).value(),
                                 Symbol::Create(2, 3).value()};
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> decoded,
      DecodeBatch(table, symbols, ReconstructionMode::kRangeCenter));
  for (size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(decoded[i],
              table.Reconstruct(symbols[i], ReconstructionMode::kRangeCenter)
                  .value());
  }
}

TEST(DecodeBatchTest, RejectsFinerThanTableAndMixedLevels) {
  LookupTable table = MedianTable(2);
  std::vector<Symbol> finer = {Symbol::Create(3, 0).value()};
  std::vector<double> out(2);
  EXPECT_FALSE(
      DecodeBatch(table, finer, ReconstructionMode::kRangeCenter, out.data())
          .ok());
  std::vector<Symbol> mixed = {Symbol::Create(2, 0).value(),
                               Symbol::Create(1, 1).value()};
  Status status =
      DecodeBatch(table, mixed, ReconstructionMode::kRangeCenter, out.data());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("index 1"), std::string::npos)
      << status.message();
}

TEST(DecodeBatchTest, EmptyInput) {
  LookupTable table = MedianTable(2);
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> decoded,
      DecodeBatch(table, std::vector<Symbol>{},
                  ReconstructionMode::kRangeMean));
  EXPECT_TRUE(decoded.empty());
}

// --- gap-aware kernels ------------------------------------------------------

TEST(EncodeBatchGapTest, NansBecomeGapSymbolsOthersMatchStrictKernel) {
  LookupTable table = MedianTable(4);
  Rng rng(21);
  std::vector<double> values;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < 9000; ++i) {
    values.push_back(rng.Uniform() < 0.25 ? nan : rng.LogNormal(5.0, 1.0));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> gappy,
                       EncodeBatchWithGaps(table, values));
  ASSERT_EQ(gappy.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) {
      EXPECT_TRUE(gappy[i].is_gap()) << i;
      EXPECT_EQ(gappy[i].level(), 4) << i;
    } else {
      EXPECT_EQ(gappy[i], table.Encode(values[i])) << i;
    }
  }
}

TEST(EncodeBatchGapTest, StrictKernelStillRejectsNans) {
  LookupTable table = MedianTable(3);
  std::vector<double> values = {1.0,
                                std::numeric_limits<double>::quiet_NaN()};
  std::vector<Symbol> out(values.size());
  Status strict = EncodeBatch(table, values, out.data());
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.message().find("index 1"), std::string::npos);
}

TEST(EncodeBatchGapTest, GapFreeInputMatchesStrictKernelExactly) {
  LookupTable table = MedianTable(5);
  Rng rng(3);
  std::vector<double> values;
  for (size_t i = 0; i < 5000; ++i) values.push_back(rng.LogNormal(5.0, 1.2));
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> strict,
                       EncodeBatch(table, values));
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> gappy,
                       EncodeBatchWithGaps(table, values));
  EXPECT_EQ(strict, gappy);
}

TEST(DecodeBatchGapTest, GapSymbolsDecodeToNan) {
  LookupTable table = MedianTable(4);
  std::vector<Symbol> symbols;
  for (uint32_t i = 0; i < 16; ++i) {
    symbols.push_back(Symbol::Create(4, i).value());
    symbols.push_back(Symbol::Gap(4));
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> decoded,
      DecodeBatch(table, symbols, ReconstructionMode::kRangeCenter));
  ASSERT_EQ(decoded.size(), symbols.size());
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i].is_gap()) {
      EXPECT_TRUE(std::isnan(decoded[i])) << i;
    } else {
      EXPECT_FALSE(std::isnan(decoded[i])) << i;
      EXPECT_DOUBLE_EQ(
          decoded[i],
          table.Reconstruct(symbols[i], ReconstructionMode::kRangeCenter)
              .value())
          << i;
    }
  }
}

TEST(DecodeBatchGapTest, EncodeDecodeRoundTripPreservesNanPositions) {
  LookupTable table = MedianTable(6);
  Rng rng(33);
  std::vector<double> values;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < 4097; ++i) {  // crosses a chunk boundary
    values.push_back(i % 7 == 0 ? nan : rng.LogNormal(5.0, 1.0));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<Symbol> symbols,
                       EncodeBatchWithGaps(table, values));
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> decoded,
      DecodeBatch(table, symbols, ReconstructionMode::kRangeMean));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::isnan(decoded[i]), std::isnan(values[i])) << i;
  }
}

}  // namespace
}  // namespace smeter
