#include "core/vertical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "testutil.h"

namespace smeter {
namespace {

TEST(VerticalByCountTest, AveragesGroupsOfN) {
  TimeSeries s = TimeSeries::FromValues({1, 2, 3, 4, 5, 6});
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByCount(s, 2));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.5);
  EXPECT_DOUBLE_EQ(out[1].value, 3.5);
  EXPECT_DOUBLE_EQ(out[2].value, 5.5);
}

TEST(VerticalByCountTest, StampsLastTimestampOfWindow) {
  // Definition 2: \bar{t}_i = t_{i*n}.
  TimeSeries s = TimeSeries::FromValues({1, 2, 3, 4}, 100, 10);
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByCount(s, 2));
  EXPECT_EQ(out[0].timestamp, 110);
  EXPECT_EQ(out[1].timestamp, 130);
}

TEST(VerticalByCountTest, DropsTrailingPartialWindow) {
  TimeSeries s = TimeSeries::FromValues({1, 2, 3, 4, 5});
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByCount(s, 2));
  EXPECT_EQ(out.size(), 2u);
}

TEST(VerticalByCountTest, NEqualsOneIsIdentity) {
  TimeSeries s = TimeSeries::FromValues({1, 2, 3});
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByCount(s, 1));
  EXPECT_EQ(out.Values(), s.Values());
}

TEST(VerticalByCountTest, RejectsZeroN) {
  TimeSeries s = TimeSeries::FromValues({1});
  EXPECT_FALSE(VerticalSegmentByCount(s, 0).ok());
}

TEST(VerticalByCountTest, OtherAggregations) {
  TimeSeries s = TimeSeries::FromValues({1, 5, 2, 8});
  VerticalOptions options;
  options.aggregation = Aggregation::kMax;
  ASSERT_OK_AND_ASSIGN(TimeSeries mx, VerticalSegmentByCount(s, 2, options));
  EXPECT_DOUBLE_EQ(mx[0].value, 5.0);
  EXPECT_DOUBLE_EQ(mx[1].value, 8.0);
  options.aggregation = Aggregation::kMin;
  ASSERT_OK_AND_ASSIGN(TimeSeries mn, VerticalSegmentByCount(s, 2, options));
  EXPECT_DOUBLE_EQ(mn[0].value, 1.0);
  options.aggregation = Aggregation::kSum;
  ASSERT_OK_AND_ASSIGN(TimeSeries sm, VerticalSegmentByCount(s, 2, options));
  EXPECT_DOUBLE_EQ(sm[1].value, 10.0);
}

TEST(VerticalByWindowTest, AggregatesAlignedWindows) {
  // 1 Hz data over [0, 20): windows of 10 s.
  std::vector<double> values(20, 1.0);
  values[15] = 21.0;  // second window mean: (19*1 + 21)/10... within window 2
  TimeSeries s = TimeSeries::FromValues(values);
  WindowOptions options;
  options.sample_period_seconds = 1;
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByWindow(s, 10, options));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].timestamp, 10);  // stamped with window end
  EXPECT_EQ(out[1].timestamp, 20);
  EXPECT_DOUBLE_EQ(out[0].value, 1.0);
  EXPECT_DOUBLE_EQ(out[1].value, 3.0);
}

TEST(VerticalByWindowTest, SkipsUnderCoveredWindows) {
  // Window [0,10) has only 3 of 10 expected samples -> dropped at 0.5 cov.
  ASSERT_OK_AND_ASSIGN(
      TimeSeries s, TimeSeries::FromSamples(
                        {{0, 1.0}, {1, 1.0}, {2, 1.0},
                         {10, 2.0}, {11, 2.0}, {12, 2.0}, {13, 2.0},
                         {14, 2.0}, {15, 2.0}}));
  WindowOptions options;
  options.min_coverage = 0.5;
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByWindow(s, 10, options));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp, 20);
}

TEST(VerticalByWindowTest, ZeroCoverageKeepsAnySample) {
  ASSERT_OK_AND_ASSIGN(TimeSeries s,
                       TimeSeries::FromSamples({{3, 5.0}}));
  WindowOptions options;
  options.min_coverage = 0.0;
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByWindow(s, 10, options));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 5.0);
}

TEST(VerticalByWindowTest, GapSpanningWindows) {
  // Samples in windows 0 and 3 only; windows 1-2 produce nothing.
  std::vector<Sample> samples;
  for (int t = 0; t < 10; ++t) samples.push_back({t, 1.0});
  for (int t = 30; t < 40; ++t) samples.push_back({t, 2.0});
  ASSERT_OK_AND_ASSIGN(TimeSeries s, TimeSeries::FromSamples(samples));
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByWindow(s, 10));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].timestamp, 10);
  EXPECT_EQ(out[1].timestamp, 40);
}

TEST(VerticalByWindowTest, NegativeTimestampsAlignCorrectly) {
  ASSERT_OK_AND_ASSIGN(
      TimeSeries s,
      TimeSeries::FromSamples({{-15, 2.0}, {-12, 4.0}, {-5, 10.0}}));
  WindowOptions options;
  options.min_coverage = 0.0;
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByWindow(s, 10, options));
  // Windows [-20,-10) and [-10,0).
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].timestamp, -10);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_EQ(out[1].timestamp, 0);
}

TEST(VerticalByWindowTest, RejectsBadOptions) {
  TimeSeries s = TimeSeries::FromValues({1});
  EXPECT_FALSE(VerticalSegmentByWindow(s, 0).ok());
  WindowOptions options;
  options.min_coverage = 1.5;
  EXPECT_FALSE(VerticalSegmentByWindow(s, 10, options).ok());
  options.min_coverage = 0.5;
  options.sample_period_seconds = 0;
  EXPECT_FALSE(VerticalSegmentByWindow(s, 10, options).ok());
}

TEST(VerticalByWindowTest, EmptyInputYieldsEmptyOutput) {
  TimeSeries s;
  ASSERT_OK_AND_ASSIGN(TimeSeries out, VerticalSegmentByWindow(s, 10));
  EXPECT_TRUE(out.empty());
}

// --- gap-aware segmentation -------------------------------------------------

TEST(VerticalWithGapsTest, EmitsEveryAlignedWindowIncludingGaps) {
  // 1 Hz samples covering [0, 10) and [30, 40): windows of 10 s. The
  // strict path emits 2 windows; the gap-aware path emits all 4 aligned
  // windows, with [10,20) and [20,30) as explicit gaps.
  std::vector<Sample> samples;
  for (int t = 0; t < 10; ++t) samples.push_back({t, 1.0});
  for (int t = 30; t < 40; ++t) samples.push_back({t, 3.0});
  TimeSeries s = TimeSeries::FromSamples(std::move(samples)).value();
  ASSERT_OK_AND_ASSIGN(std::vector<AggregatedWindow> windows,
                       VerticalSegmentByWindowWithGaps(s, 10));
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].quality, WindowQuality::kValid);
  EXPECT_DOUBLE_EQ(windows[0].value, 1.0);
  EXPECT_EQ(windows[0].timestamp, 10);
  EXPECT_EQ(windows[1].quality, WindowQuality::kGap);
  EXPECT_TRUE(std::isnan(windows[1].value));
  EXPECT_EQ(windows[1].timestamp, 20);
  EXPECT_EQ(windows[2].quality, WindowQuality::kGap);
  EXPECT_EQ(windows[3].quality, WindowQuality::kValid);
  EXPECT_DOUBLE_EQ(windows[3].value, 3.0);
  EXPECT_EQ(windows[3].timestamp, 40);
}

TEST(VerticalWithGapsTest, UnderCoveredWindowIsPartialNotDropped) {
  // 3 of 10 expected samples in the second window: below the 0.5 default.
  std::vector<Sample> samples;
  for (int t = 0; t < 10; ++t) samples.push_back({t, 2.0});
  for (int t = 10; t < 13; ++t) samples.push_back({t, 8.0});
  TimeSeries s = TimeSeries::FromSamples(std::move(samples)).value();
  ASSERT_OK_AND_ASSIGN(std::vector<AggregatedWindow> windows,
                       VerticalSegmentByWindowWithGaps(s, 10));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].quality, WindowQuality::kValid);
  EXPECT_EQ(windows[1].quality, WindowQuality::kPartial);
  EXPECT_DOUBLE_EQ(windows[1].value, 8.0);  // still aggregated
  EXPECT_NEAR(windows[1].coverage, 0.3, 1e-12);
}

TEST(VerticalWithGapsTest, MatchesStrictPathOnGaplessTraces) {
  TimeSeries s = TimeSeries::FromValues(
      smeter::testing::LogNormalValues(600, 11), 0, 1);
  ASSERT_OK_AND_ASSIGN(TimeSeries strict, VerticalSegmentByWindow(s, 60));
  ASSERT_OK_AND_ASSIGN(std::vector<AggregatedWindow> gap_aware,
                       VerticalSegmentByWindowWithGaps(s, 60));
  ASSERT_EQ(gap_aware.size(), strict.size());
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ(gap_aware[i].timestamp, strict[i].timestamp) << i;
    EXPECT_DOUBLE_EQ(gap_aware[i].value, strict[i].value) << i;
    EXPECT_EQ(gap_aware[i].quality, WindowQuality::kValid) << i;
  }
}

TEST(VerticalWithGapsTest, EmptySeriesYieldsNoWindows) {
  TimeSeries empty;
  ASSERT_OK_AND_ASSIGN(std::vector<AggregatedWindow> windows,
                       VerticalSegmentByWindowWithGaps(empty, 10));
  EXPECT_TRUE(windows.empty());
}

TEST(VerticalWithGapsTest, RejectsBadArgumentsAndSparseBlowups) {
  TimeSeries s = TimeSeries::FromValues({1, 2, 3});
  EXPECT_FALSE(VerticalSegmentByWindowWithGaps(s, 0).ok());
  EXPECT_FALSE(VerticalSegmentByWindowWithGaps(s, -5).ok());

  // Two samples eons apart would enumerate billions of aligned windows;
  // the max_windows guard rejects instead of allocating.
  TimeSeries sparse =
      TimeSeries::FromSamples({{0, 1.0}, {int64_t{1} << 40, 2.0}}).value();
  Result<std::vector<AggregatedWindow>> blown =
      VerticalSegmentByWindowWithGaps(sparse, 10);
  ASSERT_FALSE(blown.ok());
  EXPECT_EQ(blown.status().code(), StatusCode::kInvalidArgument);

  // A tight explicit budget rejects even modest traces...
  GapAwareWindowOptions tight;
  tight.max_windows = 2;
  TimeSeries modest = TimeSeries::FromValues({1, 2, 3, 4, 5, 6}, 0, 10);
  EXPECT_FALSE(VerticalSegmentByWindowWithGaps(modest, 10, tight).ok());
  // ...and a sufficient one admits them.
  tight.max_windows = 6;
  EXPECT_TRUE(VerticalSegmentByWindowWithGaps(modest, 10, tight).ok());
}

}  // namespace
}  // namespace smeter
