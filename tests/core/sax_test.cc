#include "core/sax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(GaussianBreakpointsTest, KnownTableForFourSymbols) {
  // The SAX paper's table for a = 4: {-0.6745, 0, 0.6745}.
  ASSERT_OK_AND_ASSIGN(std::vector<double> b, GaussianBreakpoints(4));
  ASSERT_EQ(b.size(), 3u);
  EXPECT_NEAR(b[0], -0.6745, 1e-3);
  EXPECT_NEAR(b[1], 0.0, 1e-9);
  EXPECT_NEAR(b[2], 0.6745, 1e-3);
}

TEST(GaussianBreakpointsTest, RejectsTooSmallAlphabet) {
  EXPECT_FALSE(GaussianBreakpoints(1).ok());
}

TEST(SaxEncodeTest, EquiprobableSymbolsOnGaussianData) {
  std::vector<double> values;
  Rng rng(3);
  for (int i = 0; i < 40000; ++i) values.push_back(rng.Gaussian(100.0, 15.0));
  TimeSeries series = testing::MakeSeries(values);
  SaxOptions options;
  options.level = 2;
  options.paa_frame = 1;  // no smoothing: direct discretization
  ASSERT_OK_AND_ASSIGN(SymbolicSeries word, SaxEncode(series, options));
  std::vector<size_t> hist = word.Histogram();
  for (size_t c : hist) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 400.0);
  }
}

TEST(SaxEncodeTest, PaaReducesLength) {
  TimeSeries series = testing::MakeSeries(testing::LogNormalValues(100, 5));
  SaxOptions options;
  options.level = 3;
  options.paa_frame = 10;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries word, SaxEncode(series, options));
  EXPECT_EQ(word.size(), 10u);
  EXPECT_EQ(word.level(), 3);
}

TEST(SaxEncodeTest, NormalizationErasesScale) {
  // Figure 3's critique: a small and a big consumer with the same shape
  // normalize to identical SAX words.
  std::vector<double> shape = {1, 1, 5, 5, 2, 2, 8, 8, 1, 1};
  std::vector<double> scaled;
  for (double v : shape) scaled.push_back(100.0 * v);
  SaxOptions options;
  options.level = 2;
  options.paa_frame = 2;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries small,
                       SaxEncode(testing::MakeSeries(shape), options));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries big,
                       SaxEncode(testing::MakeSeries(scaled), options));
  EXPECT_EQ(small.ToBitString(), big.ToBitString());
}

TEST(SaxEncodeTest, WithoutNormalizationScaleSurvives) {
  // Values straddling the Gaussian breakpoints keep their structure; the
  // 100x-scaled copy saturates into the extreme symbols instead.
  std::vector<double> shape = {-0.8, -0.8, 0.1, 0.1, -0.2, -0.2, 0.9, 0.9,
                               -0.7, -0.7};
  std::vector<double> scaled;
  for (double v : shape) scaled.push_back(100.0 * v);
  SaxOptions options;
  options.level = 2;
  options.paa_frame = 2;
  options.normalize = false;
  ASSERT_OK_AND_ASSIGN(SymbolicSeries small,
                       SaxEncode(testing::MakeSeries(shape), options));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries big,
                       SaxEncode(testing::MakeSeries(scaled), options));
  EXPECT_NE(small.ToBitString(), big.ToBitString());
}

TEST(SaxEncodeTest, RejectsConstantSeriesWhenNormalizing) {
  TimeSeries series = testing::MakeSeries(std::vector<double>(50, 3.0));
  SaxOptions options;
  EXPECT_FALSE(SaxEncode(series, options).ok());
  options.normalize = false;
  options.paa_frame = 5;
  EXPECT_OK(SaxEncode(series, options).status());
}

TEST(SaxEncodeTest, RejectsBadOptions) {
  TimeSeries series = testing::MakeSeries({1.0, 2.0});
  SaxOptions options;
  options.level = 0;
  EXPECT_FALSE(SaxEncode(series, options).ok());
  options = {};
  options.paa_frame = 0;
  EXPECT_FALSE(SaxEncode(series, options).ok());
  EXPECT_FALSE(SaxEncode(TimeSeries(), {}).ok());
}

TEST(SaxMinDistTest, ZeroForAdjacentSymbols) {
  // MINDIST treats symbols <= 1 apart as distance 0.
  SymbolicSeries a(2), b(2);
  ASSERT_OK(a.Append({0, Symbol::Create(2, 1).value()}));
  ASSERT_OK(b.Append({0, Symbol::Create(2, 2).value()}));
  ASSERT_OK_AND_ASSIGN(double d, SaxMinDist(a, b, 8));
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(SaxMinDistTest, PositiveForDistantSymbols) {
  SymbolicSeries a(2), b(2);
  ASSERT_OK(a.Append({0, Symbol::Create(2, 0).value()}));
  ASSERT_OK(b.Append({0, Symbol::Create(2, 3).value()}));
  ASSERT_OK_AND_ASSIGN(double d, SaxMinDist(a, b, 8));
  // dist = beta_3 - beta_1 = 0.6745 - (-0.6745), scaled by sqrt(8/1).
  EXPECT_NEAR(d, std::sqrt(8.0) * 1.349, 0.01);
}

TEST(SaxMinDistTest, SymmetricAndSelfZero) {
  SymbolicSeries a(3), b(3);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(a.Append({i, Symbol::Create(3, (i * 3) % 8).value()}));
    ASSERT_OK(b.Append({i, Symbol::Create(3, (i * 5) % 8).value()}));
  }
  ASSERT_OK_AND_ASSIGN(double ab, SaxMinDist(a, b, 16));
  ASSERT_OK_AND_ASSIGN(double ba, SaxMinDist(b, a, 16));
  ASSERT_OK_AND_ASSIGN(double aa, SaxMinDist(a, a, 16));
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_DOUBLE_EQ(aa, 0.0);
}

TEST(SaxMinDistTest, RejectsMismatchedWords) {
  SymbolicSeries a(2), b(3), c(2);
  ASSERT_OK(a.Append({0, Symbol::Create(2, 0).value()}));
  ASSERT_OK(b.Append({0, Symbol::Create(3, 0).value()}));
  EXPECT_FALSE(SaxMinDist(a, b, 8).ok());   // different alphabets
  EXPECT_FALSE(SaxMinDist(a, c, 8).ok());   // different lengths
  EXPECT_FALSE(SaxMinDist(a, a, 0).ok());   // bad original length
}

}  // namespace
}  // namespace smeter
