#include "core/reconstruction.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

LookupTable MedianTable(const std::vector<double>& training, int level) {
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = level;
  return LookupTable::Build(training, options).value();
}

TEST(CompareSeriesTest, ComputesErrorStatistics) {
  TimeSeries a = TimeSeries::FromValues({1.0, 2.0, 3.0});
  TimeSeries b = TimeSeries::FromValues({1.5, 2.0, 1.0});
  ASSERT_OK_AND_ASSIGN(ReconstructionError err, CompareSeries(a, b));
  EXPECT_DOUBLE_EQ(err.mae, (0.5 + 0.0 + 2.0) / 3.0);
  EXPECT_DOUBLE_EQ(err.max_abs, 2.0);
  EXPECT_NEAR(err.rmse, std::sqrt((0.25 + 4.0) / 3.0), 1e-12);
  EXPECT_EQ(err.count, 3u);
}

TEST(CompareSeriesTest, RejectsMismatch) {
  TimeSeries a = TimeSeries::FromValues({1.0, 2.0});
  TimeSeries b = TimeSeries::FromValues({1.0});
  EXPECT_FALSE(CompareSeries(a, b).ok());
  TimeSeries c = TimeSeries::FromValues({1.0, 2.0}, 5, 1);
  EXPECT_FALSE(CompareSeries(a, c).ok());
  EXPECT_FALSE(CompareSeries(TimeSeries(), TimeSeries()).ok());
}

TEST(RoundTripErrorTest, ErrorBoundedByLargestRange) {
  std::vector<double> values = testing::LogNormalValues(2000, 3);
  TimeSeries series = testing::MakeSeries(values);
  LookupTable table = MedianTable(values, 4);
  ASSERT_OK_AND_ASSIGN(
      ReconstructionError err,
      RoundTripError(series, table, ReconstructionMode::kRangeCenter));
  // Every error is at most half the widest range.
  double max_range = 0.0;
  for (uint32_t i = 0; i < table.alphabet_size(); ++i) {
    Symbol s = Symbol::Create(4, i).value();
    double width = table.RangeHigh(s).value() - table.RangeLow(s).value();
    max_range = std::max(max_range, width);
  }
  EXPECT_LE(err.max_abs, max_range / 2.0 + 1e-9);
  EXPECT_GT(err.mae, 0.0);
}

TEST(RoundTripErrorTest, FinerAlphabetNeverWorse) {
  std::vector<double> values = testing::LogNormalValues(3000, 9);
  TimeSeries series = testing::MakeSeries(values);
  double previous_mae = 1e300;
  for (int level = 1; level <= 4; ++level) {
    LookupTable table = MedianTable(values, level);
    ASSERT_OK_AND_ASSIGN(
        ReconstructionError err,
        RoundTripError(series, table, ReconstructionMode::kRangeMean));
    EXPECT_LT(err.mae, previous_mae * 1.05)
        << "level " << level << " degraded reconstruction";
    previous_mae = err.mae;
  }
}

TEST(RoundTripErrorTest, RangeMeanBeatsRangeCenterOnSkewedData) {
  // On log-normal data the in-range mean is a better representative than
  // the midpoint (the mass sits near the low edge of wide high buckets).
  std::vector<double> values = testing::LogNormalValues(5000, 21);
  TimeSeries series = testing::MakeSeries(values);
  LookupTable table = MedianTable(values, 3);
  ASSERT_OK_AND_ASSIGN(
      ReconstructionError center,
      RoundTripError(series, table, ReconstructionMode::kRangeCenter));
  ASSERT_OK_AND_ASSIGN(
      ReconstructionError mean,
      RoundTripError(series, table, ReconstructionMode::kRangeMean));
  EXPECT_LT(mean.mae, center.mae);
}

TEST(MeanAbsoluteErrorTest, Basics) {
  ASSERT_OK_AND_ASSIGN(double mae,
                       MeanAbsoluteError({1.0, 2.0, 3.0}, {2.0, 2.0, 1.0}));
  EXPECT_DOUBLE_EQ(mae, 1.0);
}

TEST(MeanAbsoluteErrorTest, RejectsBadInput) {
  EXPECT_FALSE(MeanAbsoluteError({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(MeanAbsoluteError({}, {}).ok());
}

}  // namespace
}  // namespace smeter
