#include "core/quantile.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

TEST(QuantileTest, MedianOfOddCount) {
  ASSERT_OK_AND_ASSIGN(double m, Quantile({3, 1, 2}, 0.5));
  EXPECT_DOUBLE_EQ(m, 2.0);
}

TEST(QuantileTest, MedianOfEvenCountInterpolates) {
  ASSERT_OK_AND_ASSIGN(double m, Quantile({1, 2, 3, 4}, 0.5));
  EXPECT_DOUBLE_EQ(m, 2.5);
}

TEST(QuantileTest, Extremes) {
  ASSERT_OK_AND_ASSIGN(double lo, Quantile({5, 1, 9}, 0.0));
  ASSERT_OK_AND_ASSIGN(double hi, Quantile({5, 1, 9}, 1.0));
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 9.0);
}

TEST(QuantileTest, SingleValue) {
  ASSERT_OK_AND_ASSIGN(double q, Quantile({7.0}, 0.3));
  EXPECT_DOUBLE_EQ(q, 7.0);
}

TEST(QuantileTest, RejectsEmptyAndBadQ) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

TEST(EqualFrequencySeparatorsTest, QuartilesOfUniformRamp) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                       EqualFrequencySeparators(values, 3));
  ASSERT_EQ(seps.size(), 3u);
  EXPECT_NEAR(seps[0], 25.75, 1e-9);
  EXPECT_NEAR(seps[1], 50.5, 1e-9);
  EXPECT_NEAR(seps[2], 75.25, 1e-9);
}

TEST(EqualFrequencySeparatorsTest, SeparatorsSplitMassEvenly) {
  std::vector<double> values = testing::LogNormalValues(20000, 99);
  ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                       EqualFrequencySeparators(values, 7));
  // Each of the 8 buckets should hold ~1/8 of the data.
  std::vector<size_t> counts(8, 0);
  for (double v : values) {
    size_t b = static_cast<size_t>(
        std::lower_bound(seps.begin(), seps.end(), v) - seps.begin());
    ++counts[b];
  }
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 2500.0, 150.0);
  }
}

TEST(EqualFrequencySeparatorsTest, NonDecreasing) {
  std::vector<double> values = testing::LogNormalValues(1000, 3);
  ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                       EqualFrequencySeparators(values, 15));
  EXPECT_TRUE(std::is_sorted(seps.begin(), seps.end()));
}

TEST(DistinctSeparatorsTest, IgnoresMultiplicity) {
  // 0 appears overwhelmingly often; distinct-median must not collapse all
  // separators onto 0.
  std::vector<double> values(1000, 0.0);
  for (int i = 1; i <= 10; ++i) values.push_back(i);
  ASSERT_OK_AND_ASSIGN(std::vector<double> plain,
                       EqualFrequencySeparators(values, 3));
  ASSERT_OK_AND_ASSIGN(std::vector<double> distinct,
                       DistinctEqualFrequencySeparators(values, 3));
  EXPECT_DOUBLE_EQ(plain[0], 0.0);
  EXPECT_DOUBLE_EQ(plain[2], 0.0);
  EXPECT_GT(distinct[0], 0.0);  // quantiles of {0,1,...,10}
  EXPECT_GT(distinct[2], distinct[0]);
}

TEST(DistinctSeparatorsTest, EqualsPlainWhenAllValuesDistinct) {
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) values.push_back(i * 1.5);
  ASSERT_OK_AND_ASSIGN(std::vector<double> plain,
                       EqualFrequencySeparators(values, 7));
  ASSERT_OK_AND_ASSIGN(std::vector<double> distinct,
                       DistinctEqualFrequencySeparators(values, 7));
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain[i], distinct[i]);
  }
}

TEST(RunningStatsTest, TracksBasicMoments) {
  RunningStats stats;
  for (double v : {4.0, 2.0, 6.0, 8.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
}

TEST(RunningStatsTest, MedianMatchesBatchQuantile) {
  std::vector<double> values = testing::LogNormalValues(5001, 17);
  RunningStats stats;
  for (double v : values) stats.Add(v);
  ASSERT_OK_AND_ASSIGN(double running, stats.Median());
  ASSERT_OK_AND_ASSIGN(double batch, Quantile(values, 0.5));
  EXPECT_NEAR(running, batch, 1e-9);
}

TEST(RunningStatsTest, RunningQuantileMatchesBatch) {
  std::vector<double> values = testing::LogNormalValues(4000, 23);
  RunningStats stats;
  for (double v : values) stats.Add(v);
  for (double q : {0.1, 0.25, 0.75, 0.9}) {
    ASSERT_OK_AND_ASSIGN(double running, stats.RunningQuantile(q));
    ASSERT_OK_AND_ASSIGN(double batch, Quantile(values, q));
    EXPECT_NEAR(running, batch, 1e-9) << "q=" << q;
  }
}

TEST(RunningStatsTest, DistinctMedianDiffersUnderSkew) {
  RunningStats stats;
  for (int i = 0; i < 100; ++i) stats.Add(0.0);
  for (int i = 1; i <= 4; ++i) stats.Add(i);
  ASSERT_OK_AND_ASSIGN(double median, stats.Median());
  ASSERT_OK_AND_ASSIGN(double distinct, stats.DistinctMedian());
  EXPECT_DOUBLE_EQ(median, 0.0);
  EXPECT_DOUBLE_EQ(distinct, 2.0);  // median of {0,1,2,3,4}
}

TEST(RunningStatsTest, EmptyStreamErrors) {
  RunningStats stats;
  EXPECT_FALSE(stats.Median().ok());
  EXPECT_FALSE(stats.DistinctMedian().ok());
  EXPECT_FALSE(stats.RunningQuantile(0.5).ok());
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.0);
  ASSERT_OK_AND_ASSIGN(double m, stats.Median());
  EXPECT_DOUBLE_EQ(m, 3.0);
  ASSERT_OK_AND_ASSIGN(double d, stats.DistinctMedian());
  EXPECT_DOUBLE_EQ(d, 3.0);
}

}  // namespace
}  // namespace smeter
