#include "core/privacy.h"

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "testutil.h"

namespace smeter {
namespace {

// A 1 Hz square-wave trace: `low` watts with a `high`-watt pulse of
// `pulse_seconds` starting every `period` seconds.
TimeSeries PulseTrace(int64_t total_seconds, int64_t period,
                      int64_t pulse_seconds, double low, double high) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(total_seconds));
  for (int64_t t = 0; t < total_seconds; ++t) {
    values.push_back(t % period < pulse_seconds ? high : low);
  }
  return TimeSeries::FromValues(values);
}

LookupTable UniformTable(double max, int level) {
  LookupTableOptions options;
  options.method = SeparatorMethod::kUniform;
  options.level = level;
  return LookupTable::Build({0.0, max}, options).value();
}

TEST(EventObscurityTest, LongPulsesStayVisible) {
  // Pulses spanning several windows flip the window means -> symbol
  // changes across the pulse edges are visible.
  TimeSeries raw = PulseTrace(4 * 3600, 3600, 1800, 100.0, 2000.0);
  LookupTable table = UniformTable(2000.0, 2);
  PipelineOptions pipeline;
  pipeline.window_seconds = 900;
  SymbolicSeries symbols = EncodePipeline(raw, table, pipeline).value();
  EventObscurityOptions options;
  options.window_seconds = 900;
  ASSERT_OK_AND_ASSIGN(EventObscurityReport report,
                       EvaluateEventObscurity(raw, symbols, options));
  // Falls at 1800, 5400, 9000, 12600 and rises at 3600, 7200, 10800.
  EXPECT_EQ(report.raw_events, 7u);
  EXPECT_GT(report.visibility, 0.5);
}

TEST(EventObscurityTest, ShortPulsesVanishInCoarseWindows) {
  // 10-second pulses inside 15-minute windows barely move the mean: with
  // a coarse 4-symbol table the events disappear from the symbol stream.
  TimeSeries raw = PulseTrace(4 * 3600, 900, 10, 100.0, 2000.0);
  LookupTable table = UniformTable(2000.0, 2);
  PipelineOptions pipeline;
  pipeline.window_seconds = 900;
  SymbolicSeries symbols = EncodePipeline(raw, table, pipeline).value();
  ASSERT_OK_AND_ASSIGN(EventObscurityReport report,
                       EvaluateEventObscurity(raw, symbols, {}));
  EXPECT_GT(report.raw_events, 20u);
  EXPECT_LT(report.visibility, 0.1);
}

TEST(EventObscurityTest, NoEventsYieldsZeroVisibility) {
  TimeSeries raw = PulseTrace(3600, 900, 0, 100.0, 100.0);
  LookupTable table = UniformTable(2000.0, 2);
  SymbolicSeries symbols =
      EncodePipeline(raw, table, {}).value();
  ASSERT_OK_AND_ASSIGN(EventObscurityReport report,
                       EvaluateEventObscurity(raw, symbols, {}));
  EXPECT_EQ(report.raw_events, 0u);
  EXPECT_DOUBLE_EQ(report.visibility, 0.0);
}

TEST(EventObscurityTest, Validates) {
  TimeSeries raw = PulseTrace(3600, 900, 10, 100.0, 2000.0);
  SymbolicSeries symbols(2);
  EventObscurityOptions options;
  options.jump_threshold_watts = 0.0;
  EXPECT_FALSE(EvaluateEventObscurity(raw, symbols, options).ok());
  options = {};
  options.window_seconds = 0;
  EXPECT_FALSE(EvaluateEventObscurity(raw, symbols, options).ok());
}

TEST(ConditionalEntropyTest, ConstantStreamIsFullyPredictable) {
  SymbolicSeries series(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(series.Append({i, Symbol::Create(2, 1).value()}));
  }
  ASSERT_OK_AND_ASSIGN(double h, ConditionalEntropyBits(series));
  EXPECT_DOUBLE_EQ(h, 0.0);
}

TEST(ConditionalEntropyTest, DeterministicCycleIsPredictable) {
  // 0,1,2,3,0,1,2,3... each symbol fully determines the next.
  SymbolicSeries series(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(series.Append(
        {i, Symbol::Create(2, static_cast<uint32_t>(i % 4)).value()}));
  }
  ASSERT_OK_AND_ASSIGN(double h, ConditionalEntropyBits(series));
  EXPECT_NEAR(h, 0.0, 1e-12);
}

TEST(ConditionalEntropyTest, RandomStreamApproachesLevelBits) {
  SymbolicSeries series(2);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_OK(series.Append(
        {i, Symbol::Create(2, static_cast<uint32_t>(rng.UniformInt(4)))
                .value()}));
  }
  ASSERT_OK_AND_ASSIGN(double h, ConditionalEntropyBits(series));
  EXPECT_GT(h, 1.95);
  EXPECT_LE(h, 2.0 + 1e-9);
}

TEST(ConditionalEntropyTest, BelowMarginalEntropyForStructuredStreams) {
  // A sticky chain (repeat previous symbol with high probability) has low
  // conditional entropy but near-uniform marginals.
  SymbolicSeries series(2);
  Rng rng(7);
  uint32_t state = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.05)) {
      state = static_cast<uint32_t>(rng.UniformInt(4));
    }
    ASSERT_OK(series.Append({i, Symbol::Create(2, state).value()}));
  }
  ASSERT_OK_AND_ASSIGN(double conditional, ConditionalEntropyBits(series));
  EXPECT_LT(conditional, 0.6);
}

TEST(ConditionalEntropyTest, NeedsTwoSymbols) {
  SymbolicSeries series(2);
  EXPECT_FALSE(ConditionalEntropyBits(series).ok());
  ASSERT_OK(series.Append({0, Symbol::Create(2, 0).value()}));
  EXPECT_FALSE(ConditionalEntropyBits(series).ok());
}

}  // namespace
}  // namespace smeter
