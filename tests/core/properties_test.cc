// Property-style parameterized sweeps over (separator method, alphabet
// level) for the core encoding invariants.

#include <tuple>

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/entropy.h"
#include "core/reconstruction.h"
#include "testutil.h"

namespace smeter {
namespace {

using PropertyParam = std::tuple<SeparatorMethod, int>;

class EncodingPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  SeparatorMethod method() const { return std::get<0>(GetParam()); }
  int level() const { return std::get<1>(GetParam()); }

  LookupTable BuildTable(const std::vector<double>& training) {
    LookupTableOptions options;
    options.method = method();
    options.level = level();
    Result<LookupTable> table = LookupTable::Build(training, options);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    return std::move(table.value());
  }
};

TEST_P(EncodingPropertyTest, EncodeIsMonotoneInValue) {
  std::vector<double> training = testing::LogNormalValues(4000, 100 + level());
  LookupTable table = BuildTable(training);
  Rng rng(55);
  for (int i = 0; i < 400; ++i) {
    double a = rng.Uniform(-10.0, 2000.0);
    double b = rng.Uniform(-10.0, 2000.0);
    if (a > b) std::swap(a, b);
    EXPECT_LE(table.Encode(a).index(), table.Encode(b).index())
        << "a=" << a << " b=" << b;
  }
}

TEST_P(EncodingPropertyTest, CoarsenCommutesWithEncode) {
  std::vector<double> training = testing::LogNormalValues(4000, 200 + level());
  LookupTable table = BuildTable(training);
  Rng rng(66);
  for (int i = 0; i < 300; ++i) {
    double v = rng.Uniform(-5.0, 2500.0);
    for (int l = 1; l <= level(); ++l) {
      ASSERT_OK_AND_ASSIGN(Symbol direct, table.EncodeAtLevel(v, l));
      ASSERT_OK_AND_ASSIGN(Symbol derived, table.Encode(v).Coarsen(l));
      ASSERT_EQ(direct, derived) << "v=" << v << " l=" << l;
    }
  }
}

TEST_P(EncodingPropertyTest, DecodedValueLiesInSymbolRange) {
  std::vector<double> training = testing::LogNormalValues(4000, 300 + level());
  LookupTable table = BuildTable(training);
  for (uint32_t idx = 0; idx < table.alphabet_size(); ++idx) {
    ASSERT_OK_AND_ASSIGN(Symbol s, Symbol::Create(level(), idx));
    ASSERT_OK_AND_ASSIGN(double lo, table.RangeLow(s));
    ASSERT_OK_AND_ASSIGN(double hi, table.RangeHigh(s));
    for (ReconstructionMode mode :
         {ReconstructionMode::kRangeCenter, ReconstructionMode::kRangeMean}) {
      ASSERT_OK_AND_ASSIGN(double v, table.Reconstruct(s, mode));
      EXPECT_GE(v, lo - 1e-9);
      EXPECT_LE(v, hi + 1e-9);
    }
  }
}

TEST_P(EncodingPropertyTest, ReEncodingDecodedValueIsStable) {
  // encode(decode(encode(x))) == encode(x): the representative value of a
  // symbol must itself encode to that symbol (when the bucket is
  // non-degenerate).
  std::vector<double> training = testing::LogNormalValues(6000, 400 + level());
  LookupTable table = BuildTable(training);
  TimeSeries series = testing::MakeSeries(training);
  ASSERT_OK_AND_ASSIGN(SymbolicSeries encoded, Encode(series, table));
  ASSERT_OK_AND_ASSIGN(
      TimeSeries decoded,
      Decode(encoded, table, ReconstructionMode::kRangeMean));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries re_encoded, Encode(decoded, table));
  size_t mismatches = 0;
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (!(encoded[i].symbol == re_encoded[i].symbol)) ++mismatches;
  }
  // Ties exactly on separators can flip a bucket; allow a tiny fraction.
  EXPECT_LT(static_cast<double>(mismatches),
            0.01 * static_cast<double>(encoded.size()));
}

TEST_P(EncodingPropertyTest, RoundTripErrorShrinksWithFinerTables) {
  if (level() == 1) GTEST_SKIP() << "needs a coarser comparison point";
  std::vector<double> training = testing::LogNormalValues(6000, 500);
  TimeSeries series = testing::MakeSeries(training);
  LookupTableOptions options;
  options.method = method();
  options.level = level();
  ASSERT_OK_AND_ASSIGN(LookupTable fine, LookupTable::Build(training, options));
  options.level = level() - 1;
  ASSERT_OK_AND_ASSIGN(LookupTable coarse,
                       LookupTable::Build(training, options));
  ASSERT_OK_AND_ASSIGN(
      ReconstructionError fine_err,
      RoundTripError(series, fine, ReconstructionMode::kRangeMean));
  ASSERT_OK_AND_ASSIGN(
      ReconstructionError coarse_err,
      RoundTripError(series, coarse, ReconstructionMode::kRangeMean));
  EXPECT_LE(fine_err.mae, coarse_err.mae * 1.02);
}

TEST_P(EncodingPropertyTest, SerializationPreservesEncoding) {
  std::vector<double> training = testing::LogNormalValues(2000, 600 + level());
  LookupTable table = BuildTable(training);
  ASSERT_OK_AND_ASSIGN(LookupTable restored,
                       LookupTable::Deserialize(table.Serialize()));
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(-100.0, 3000.0);
    EXPECT_EQ(table.Encode(v), restored.Encode(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAndLevels, EncodingPropertyTest,
    ::testing::Combine(::testing::Values(SeparatorMethod::kUniform,
                                         SeparatorMethod::kMedian,
                                         SeparatorMethod::kDistinctMedian),
                       ::testing::Values(1, 2, 3, 4, 6)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return SeparatorMethodName(std::get<0>(info.param)) + "_level" +
             std::to_string(std::get<1>(info.param));
    });

// Entropy-ordering property: median >= distinctmedian-ish >= uniform on
// skewed data, for every alphabet size.
class EntropyOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(EntropyOrderingTest, MedianDominatesUniform) {
  int level = GetParam();
  std::vector<double> values = testing::LogNormalValues(20000, 900 + level);
  TimeSeries series = testing::MakeSeries(values);
  auto entropy_for = [&](SeparatorMethod method) {
    LookupTableOptions options;
    options.method = method;
    options.level = level;
    LookupTable table = LookupTable::Build(values, options).value();
    SymbolicSeries encoded = Encode(series, table).value();
    return SymbolEntropyBits(encoded).value();
  };
  double h_median = entropy_for(SeparatorMethod::kMedian);
  double h_uniform = entropy_for(SeparatorMethod::kUniform);
  EXPECT_GT(h_median, h_uniform);
  EXPECT_GT(h_median, 0.97 * level);  // near-maximal by construction
}

INSTANTIATE_TEST_SUITE_P(Levels, EntropyOrderingTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace smeter
