#include "core/separators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/symbol.h"

#include "testutil.h"

namespace smeter {
namespace {

TEST(SeparatorMethodNameTest, PaperNames) {
  EXPECT_EQ(SeparatorMethodName(SeparatorMethod::kUniform), "uniform");
  EXPECT_EQ(SeparatorMethodName(SeparatorMethod::kMedian), "median");
  EXPECT_EQ(SeparatorMethodName(SeparatorMethod::kDistinctMedian),
            "distinctmedian");
  EXPECT_EQ(SeparatorMethodName(SeparatorMethod::kCustom), "custom");
}

TEST(LearnSeparatorsTest, UniformDividesZeroToMax) {
  // Section 2.2a: beta_i = i * max / k.
  std::vector<double> values = {1.0, 7.0, 3.0, 8.0};
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> seps,
      LearnSeparators(values, SeparatorMethod::kUniform, 2));  // k = 4
  ASSERT_EQ(seps.size(), 3u);
  EXPECT_DOUBLE_EQ(seps[0], 2.0);
  EXPECT_DOUBLE_EQ(seps[1], 4.0);
  EXPECT_DOUBLE_EQ(seps[2], 6.0);
}

TEST(LearnSeparatorsTest, UniformIgnoresMinimum) {
  // The paper's uniform range starts at zero regardless of the data min.
  std::vector<double> values = {100.0, 200.0};
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> seps,
      LearnSeparators(values, SeparatorMethod::kUniform, 1));  // k = 2
  ASSERT_EQ(seps.size(), 1u);
  EXPECT_DOUBLE_EQ(seps[0], 100.0);  // max/2
}

TEST(LearnSeparatorsTest, MedianYieldsEqualFrequency) {
  std::vector<double> values = testing::LogNormalValues(8000, 5);
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> seps,
      LearnSeparators(values, SeparatorMethod::kMedian, 3));  // k = 8
  ASSERT_EQ(seps.size(), 7u);
  std::vector<size_t> counts(8, 0);
  for (double v : values) {
    size_t b = static_cast<size_t>(
        std::lower_bound(seps.begin(), seps.end(), v) - seps.begin());
    ++counts[b];
  }
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 80.0);
  }
}

TEST(LearnSeparatorsTest, DistinctMedianAvoidsFrequentValueBias) {
  std::vector<double> values(5000, 60.0);  // standby power dominates
  for (int i = 0; i < 50; ++i) values.push_back(500.0 + i * 40.0);
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> median_seps,
      LearnSeparators(values, SeparatorMethod::kMedian, 2));
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> distinct_seps,
      LearnSeparators(values, SeparatorMethod::kDistinctMedian, 2));
  // Plain median collapses onto the frequent value; distinct does not.
  EXPECT_DOUBLE_EQ(median_seps[0], 60.0);
  EXPECT_DOUBLE_EQ(median_seps[1], 60.0);
  EXPECT_GT(distinct_seps[0], 60.0);
  EXPECT_LT(distinct_seps[0], distinct_seps[2]);
}

TEST(LearnSeparatorsTest, MethodsCoincideOnUniformFixedRangeData) {
  // Section 2.2: "if the distribution is perfectly uniform and limited to
  // a fixed range, these three methods are equivalent." Use an exact
  // arithmetic ramp over [0, max].
  std::vector<double> values;
  for (int i = 0; i <= 1000; ++i) values.push_back(i * 0.8);
  ASSERT_OK_AND_ASSIGN(std::vector<double> uniform,
                       LearnSeparators(values, SeparatorMethod::kUniform, 2));
  ASSERT_OK_AND_ASSIGN(std::vector<double> median,
                       LearnSeparators(values, SeparatorMethod::kMedian, 2));
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> distinct,
      LearnSeparators(values, SeparatorMethod::kDistinctMedian, 2));
  for (size_t i = 0; i < uniform.size(); ++i) {
    EXPECT_NEAR(uniform[i], median[i], 1.0);
    EXPECT_NEAR(median[i], distinct[i], 1e-9);
  }
}

TEST(LearnSeparatorsTest, CountMatchesAlphabetSize) {
  std::vector<double> values = testing::LogNormalValues(100, 1);
  for (int level = 1; level <= 4; ++level) {
    ASSERT_OK_AND_ASSIGN(
        std::vector<double> seps,
        LearnSeparators(values, SeparatorMethod::kMedian, level));
    EXPECT_EQ(seps.size(), (size_t{1} << level) - 1);
  }
}

TEST(LearnSeparatorsTest, RejectsBadInput) {
  EXPECT_FALSE(LearnSeparators({}, SeparatorMethod::kMedian, 2).ok());
  EXPECT_FALSE(LearnSeparators({1.0}, SeparatorMethod::kMedian, 0).ok());
  EXPECT_FALSE(
      LearnSeparators({1.0}, SeparatorMethod::kMedian, kMaxSymbolLevel + 1)
          .ok());
  EXPECT_FALSE(LearnSeparators({1.0}, SeparatorMethod::kCustom, 2).ok());
}

TEST(LearnSeparatorsTest, ConstantSeriesDegeneratesGracefully) {
  std::vector<double> values(100, 42.0);
  ASSERT_OK_AND_ASSIGN(std::vector<double> seps,
                       LearnSeparators(values, SeparatorMethod::kMedian, 2));
  for (double s : seps) EXPECT_DOUBLE_EQ(s, 42.0);
}

}  // namespace
}  // namespace smeter
