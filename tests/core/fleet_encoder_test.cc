#include "core/fleet_encoder.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "testutil.h"

namespace smeter {
namespace {

TimeSeries SyntheticTrace(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  return TimeSeries::FromValues(values);
}

std::vector<TimeSeries> SyntheticFleet(size_t households, size_t n) {
  std::vector<TimeSeries> fleet;
  fleet.reserve(households);
  for (size_t h = 0; h < households; ++h) {
    fleet.push_back(SyntheticTrace(100 + h, n));
  }
  return fleet;
}

FleetEncodeOptions SmallOptions() {
  FleetEncodeOptions options;
  options.table.level = 3;
  options.pipeline.window_seconds = 60;
  return options;
}

void ExpectSameEncoding(const HouseholdEncoding& a,
                        const HouseholdEncoding& b) {
  EXPECT_EQ(a.table.separators(), b.table.separators());
  EXPECT_EQ(a.symbols.level(), b.symbols.level());
  EXPECT_EQ(a.symbols.samples(), b.symbols.samples());
}

TEST(FleetEncoderTest, MatchesPerHouseholdPipeline) {
  std::vector<TimeSeries> fleet = SyntheticFleet(4, 600);
  FleetEncodeOptions options = SmallOptions();
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> encoded,
                       EncodeFleet(fleet, options));
  ASSERT_EQ(encoded.size(), fleet.size());
  for (size_t h = 0; h < fleet.size(); ++h) {
    std::vector<double> training;
    for (const Sample& s : fleet[h]) training.push_back(s.value);
    ASSERT_OK_AND_ASSIGN(LookupTable table,
                         LookupTable::Build(training, options.table));
    EXPECT_EQ(encoded[h].table.separators(), table.separators());
    ASSERT_OK_AND_ASSIGN(SymbolicSeries symbols,
                         EncodePipeline(fleet[h], table, options.pipeline));
    EXPECT_EQ(encoded[h].symbols.samples(), symbols.samples()) << "house " << h;
  }
}

TEST(FleetEncoderTest, ParallelMatchesSerialForAnyPoolSize) {
  std::vector<TimeSeries> fleet = SyntheticFleet(7, 400);
  FleetEncodeOptions options = SmallOptions();
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> serial,
                       EncodeFleet(fleet, options, /*pool=*/nullptr));
  for (size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> parallel,
                         EncodeFleet(fleet, options, &pool));
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t h = 0; h < serial.size(); ++h) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " house=" + std::to_string(h));
      ExpectSameEncoding(parallel[h], serial[h]);
    }
  }
}

TEST(FleetEncoderTest, ZeroAndOneHouseholds) {
  FleetEncodeOptions options = SmallOptions();
  ThreadPool pool(4);
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> none,
                       EncodeFleet({}, options, &pool));
  EXPECT_TRUE(none.empty());
  ASSERT_OK_AND_ASSIGN(
      std::vector<HouseholdEncoding> one,
      EncodeFleet({SyntheticTrace(1, 300)}, options, &pool));
  EXPECT_EQ(one.size(), 1u);
}

TEST(FleetEncoderTest, ErrorNamesLowestFailingHousehold) {
  // Households 2 and 5 are empty; the reported error must name household 2
  // regardless of scheduling, matching what a serial loop would report.
  std::vector<TimeSeries> fleet = SyntheticFleet(8, 200);
  fleet[2] = TimeSeries();
  fleet[5] = TimeSeries();
  FleetEncodeOptions options = SmallOptions();
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(4);
    Result<std::vector<HouseholdEncoding>> encoded =
        EncodeFleet(fleet, options, &pool);
    ASSERT_FALSE(encoded.ok());
    EXPECT_NE(encoded.status().message().find("household 2"),
              std::string::npos)
        << encoded.status().message();
    EXPECT_EQ(encoded.status().message().find("household 5"),
              std::string::npos)
        << encoded.status().message();
  }
}

TEST(FleetEncoderTest, HistorySecondsLimitsTableTraining) {
  TimeSeries trace = SyntheticTrace(3, 1000);
  FleetEncodeOptions options = SmallOptions();
  options.history_seconds = 250;  // 1 Hz trace -> first 250 samples
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> encoded,
                       EncodeFleet({trace}, options));
  std::vector<double> history;
  for (size_t i = 0; i < 250; ++i) history.push_back(trace[i].value);
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(history, options.table));
  EXPECT_EQ(encoded[0].table.separators(), table.separators());
  // The whole-trace table differs, proving the slice mattered.
  std::vector<double> all;
  for (const Sample& s : trace) all.push_back(s.value);
  ASSERT_OK_AND_ASSIGN(LookupTable full_table,
                       LookupTable::Build(all, options.table));
  EXPECT_NE(encoded[0].table.separators(), full_table.separators());
}

}  // namespace
}  // namespace smeter
