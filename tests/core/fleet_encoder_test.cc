#include "core/fleet_encoder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "testutil.h"

namespace smeter {
namespace {

TimeSeries SyntheticTrace(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  return TimeSeries::FromValues(values);
}

std::vector<TimeSeries> SyntheticFleet(size_t households, size_t n) {
  std::vector<TimeSeries> fleet;
  fleet.reserve(households);
  for (size_t h = 0; h < households; ++h) {
    fleet.push_back(SyntheticTrace(100 + h, n));
  }
  return fleet;
}

FleetEncodeOptions SmallOptions() {
  FleetEncodeOptions options;
  options.table.level = 3;
  options.pipeline.window_seconds = 60;
  return options;
}

void ExpectSameEncoding(const HouseholdEncoding& a,
                        const HouseholdEncoding& b) {
  EXPECT_EQ(a.table.separators(), b.table.separators());
  EXPECT_EQ(a.symbols.level(), b.symbols.level());
  EXPECT_EQ(a.symbols.samples(), b.symbols.samples());
}

TEST(FleetEncoderTest, MatchesPerHouseholdPipeline) {
  std::vector<TimeSeries> fleet = SyntheticFleet(4, 600);
  FleetEncodeOptions options = SmallOptions();
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> encoded,
                       EncodeFleet(fleet, options));
  ASSERT_EQ(encoded.size(), fleet.size());
  for (size_t h = 0; h < fleet.size(); ++h) {
    std::vector<double> training;
    for (const Sample& s : fleet[h]) training.push_back(s.value);
    ASSERT_OK_AND_ASSIGN(LookupTable table,
                         LookupTable::Build(training, options.table));
    EXPECT_EQ(encoded[h].table.separators(), table.separators());
    ASSERT_OK_AND_ASSIGN(SymbolicSeries symbols,
                         EncodePipeline(fleet[h], table, options.pipeline));
    EXPECT_EQ(encoded[h].symbols.samples(), symbols.samples()) << "house " << h;
  }
}

TEST(FleetEncoderTest, ParallelMatchesSerialForAnyPoolSize) {
  std::vector<TimeSeries> fleet = SyntheticFleet(7, 400);
  FleetEncodeOptions options = SmallOptions();
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> serial,
                       EncodeFleet(fleet, options, /*pool=*/nullptr));
  for (size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> parallel,
                         EncodeFleet(fleet, options, &pool));
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t h = 0; h < serial.size(); ++h) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " house=" + std::to_string(h));
      ExpectSameEncoding(parallel[h], serial[h]);
    }
  }
}

TEST(FleetEncoderTest, ZeroAndOneHouseholds) {
  FleetEncodeOptions options = SmallOptions();
  ThreadPool pool(4);
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> none,
                       EncodeFleet({}, options, &pool));
  EXPECT_TRUE(none.empty());
  ASSERT_OK_AND_ASSIGN(
      std::vector<HouseholdEncoding> one,
      EncodeFleet({SyntheticTrace(1, 300)}, options, &pool));
  EXPECT_EQ(one.size(), 1u);
}

TEST(FleetEncoderTest, ErrorNamesLowestFailingHousehold) {
  // Households 2 and 5 are empty; the reported error must name household 2
  // regardless of scheduling, matching what a serial loop would report.
  std::vector<TimeSeries> fleet = SyntheticFleet(8, 200);
  fleet[2] = TimeSeries();
  fleet[5] = TimeSeries();
  FleetEncodeOptions options = SmallOptions();
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(4);
    Result<std::vector<HouseholdEncoding>> encoded =
        EncodeFleet(fleet, options, &pool);
    ASSERT_FALSE(encoded.ok());
    EXPECT_NE(encoded.status().message().find("household 2"),
              std::string::npos)
        << encoded.status().message();
    EXPECT_EQ(encoded.status().message().find("household 5"),
              std::string::npos)
        << encoded.status().message();
  }
}

TEST(FleetEncoderTest, HistorySecondsLimitsTableTraining) {
  TimeSeries trace = SyntheticTrace(3, 1000);
  FleetEncodeOptions options = SmallOptions();
  options.history_seconds = 250;  // 1 Hz trace -> first 250 samples
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdEncoding> encoded,
                       EncodeFleet({trace}, options));
  std::vector<double> history;
  for (size_t i = 0; i < 250; ++i) history.push_back(trace[i].value);
  ASSERT_OK_AND_ASSIGN(LookupTable table,
                       LookupTable::Build(history, options.table));
  EXPECT_EQ(encoded[0].table.separators(), table.separators());
  // The whole-trace table differs, proving the slice mattered.
  std::vector<double> all;
  for (const Sample& s : trace) all.push_back(s.value);
  ASSERT_OK_AND_ASSIGN(LookupTable full_table,
                       LookupTable::Build(all, options.table));
  EXPECT_NE(encoded[0].table.separators(), full_table.separators());
}

// --- tolerant path ----------------------------------------------------------

std::vector<FleetInput> SyntheticInputs(size_t households, size_t n) {
  std::vector<FleetInput> inputs;
  for (size_t h = 0; h < households; ++h) {
    inputs.push_back({"house_" + std::to_string(h + 1),
                      SyntheticTrace(100 + h, n)});
  }
  return inputs;
}

// A 1 Hz trace with a dead hour: values over [0, 600) and [1200, 1800).
TimeSeries GappyTrace(uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples;
  for (int t = 0; t < 600; ++t) samples.push_back({t, rng.LogNormal(5.0, 1.0)});
  for (int t = 1200; t < 1800; ++t) {
    samples.push_back({t, rng.LogNormal(5.0, 1.0)});
  }
  return TimeSeries::FromSamples(std::move(samples)).value();
}

TEST(FleetTolerantTest, BadInputQuarantinesOnlyThatHousehold) {
  std::vector<FleetInput> inputs = SyntheticInputs(3, 400);
  inputs[1].trace = InternalError("disk on fire");
  FleetEncodeOptions options = SmallOptions();
  options.retry.max_retries = 0;
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> reports,
                       EncodeFleetTolerant(inputs, options));
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].outcome, HouseholdOutcome::kOk);
  EXPECT_EQ(reports[2].outcome, HouseholdOutcome::kOk);
  EXPECT_TRUE(reports[0].encoding.has_value());
  EXPECT_EQ(reports[1].outcome, HouseholdOutcome::kQuarantined);
  EXPECT_FALSE(reports[1].encoding.has_value());
  EXPECT_NE(reports[1].error.message().find("disk on fire"),
            std::string::npos)
      << reports[1].error.message();
  EXPECT_NE(reports[1].error.message().find("house_2"), std::string::npos)
      << reports[1].error.message();
  FleetQualityReport summary = SummarizeFleet(reports);
  EXPECT_EQ(summary.households_ok, 2u);
  EXPECT_EQ(summary.households_quarantined, 1u);
  EXPECT_EQ(summary.total(), 3u);
}

TEST(FleetTolerantTest, TransientFaultRecoversWithinRetryBudget) {
  std::vector<FleetInput> inputs = SyntheticInputs(1, 300);
  FleetEncodeOptions options = SmallOptions();
  options.retry.max_retries = 2;
  std::vector<int64_t> slept;
  options.retry.sleep_ms = [&slept](int64_t ms) { slept.push_back(ms); };
  fault::ScopedFaultPlan plan(
      {fault::FaultRule::FailCalls("fleet.household", 1, 2)});
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> reports,
                       EncodeFleetTolerant(inputs, options));
  ASSERT_EQ(reports.size(), 1u);
  // Two injected failures then success: attempt 3 lands, so the household
  // survives but is flagged degraded.
  EXPECT_EQ(reports[0].attempts, 3);
  EXPECT_EQ(reports[0].outcome, HouseholdOutcome::kDegraded);
  EXPECT_TRUE(reports[0].error.ok());
  EXPECT_TRUE(reports[0].encoding.has_value());
  // Exponential backoff before retries 1 and 2: 100 ms then 200 ms.
  EXPECT_EQ(slept, (std::vector<int64_t>{100, 200}));
}

TEST(FleetTolerantTest, ExhaustedRetriesQuarantineWithAttemptCount) {
  std::vector<FleetInput> inputs = SyntheticInputs(1, 300);
  FleetEncodeOptions options = SmallOptions();
  options.retry.max_retries = 1;
  options.retry.initial_backoff_ms = 7;
  std::vector<int64_t> slept;
  options.retry.sleep_ms = [&slept](int64_t ms) { slept.push_back(ms); };
  fault::ScopedFaultPlan plan(
      {fault::FaultRule::FailCalls("fleet.household", 1)});
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> reports,
                       EncodeFleetTolerant(inputs, options));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].outcome, HouseholdOutcome::kQuarantined);
  EXPECT_EQ(reports[0].attempts, 2);
  EXPECT_FALSE(reports[0].error.ok());
  EXPECT_EQ(slept, (std::vector<int64_t>{7}));
  // Quarantined households contribute no windows to the rollup.
  FleetQualityReport summary = SummarizeFleet(reports);
  EXPECT_EQ(summary.windows_total, 0u);
}

TEST(FleetTolerantTest, GappyTraceIsDegradedWhenGapAware) {
  std::vector<FleetInput> inputs;
  inputs.push_back({"gappy", GappyTrace(9)});
  FleetEncodeOptions options = SmallOptions();
  options.gap_aware = true;
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> reports,
                       EncodeFleetTolerant(inputs, options));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].outcome, HouseholdOutcome::kDegraded);
  EXPECT_EQ(reports[0].attempts, 1);
  EXPECT_EQ(reports[0].quality.windows_valid, 20u);
  EXPECT_EQ(reports[0].quality.windows_gap, 10u);
  ASSERT_TRUE(reports[0].encoding.has_value());
  EXPECT_EQ(reports[0].encoding->symbols.GapCount(), 10u);
  EXPECT_EQ(reports[0].encoding->symbols.size(), 30u);
  // Without gap awareness the outage is silently dropped: the household
  // looks clean but the hour of missing windows leaves no trace in the
  // symbol stream or the quality counts.
  options.gap_aware = false;
  ASSERT_OK_AND_ASSIGN(reports, EncodeFleetTolerant(inputs, options));
  EXPECT_EQ(reports[0].outcome, HouseholdOutcome::kOk);
  EXPECT_EQ(reports[0].quality.windows_valid, 20u);
  EXPECT_EQ(reports[0].quality.windows_gap, 0u);
  EXPECT_EQ(reports[0].encoding->symbols.size(), 20u);
}

TEST(FleetTolerantTest, SinkConsumesEncodingAndItsFailuresRetry) {
  std::vector<FleetInput> inputs = SyntheticInputs(2, 300);
  FleetEncodeOptions options = SmallOptions();
  options.retry.max_retries = 1;
  options.retry.sleep_ms = [](int64_t) {};
  int house_1_sink_calls = 0;
  HouseholdSink sink = [&house_1_sink_calls](
                           size_t index, const HouseholdReport& report,
                           const HouseholdEncoding& encoding) -> Status {
    EXPECT_FALSE(report.name.empty());
    EXPECT_GT(encoding.symbols.size(), 0u);
    if (index == 0) {
      // First sink call for house_1 fails; the retry must call it again.
      if (++house_1_sink_calls == 1) return InternalError("sink hiccup");
    }
    return Status();
  };
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> reports,
                       EncodeFleetTolerant(inputs, options, nullptr, sink));
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(house_1_sink_calls, 2);
  EXPECT_EQ(reports[0].attempts, 2);
  EXPECT_EQ(reports[0].outcome, HouseholdOutcome::kDegraded);
  EXPECT_EQ(reports[1].outcome, HouseholdOutcome::kOk);
  // With a sink, encodings stream out instead of accumulating.
  EXPECT_FALSE(reports[0].encoding.has_value());
  EXPECT_FALSE(reports[1].encoding.has_value());
}

TEST(FleetTolerantTest, RejectsBadRetryOptions) {
  std::vector<FleetInput> inputs = SyntheticInputs(1, 100);
  FleetEncodeOptions options = SmallOptions();
  options.retry.max_retries = -1;
  EXPECT_FALSE(EncodeFleetTolerant(inputs, options).ok());
  options = SmallOptions();
  options.retry.initial_backoff_ms = -5;
  EXPECT_FALSE(EncodeFleetTolerant(inputs, options).ok());
  options = SmallOptions();
  options.retry.backoff_multiplier = 0.5;
  EXPECT_FALSE(EncodeFleetTolerant(inputs, options).ok());
}

TEST(FleetTolerantTest, ParallelReportsMatchSerial) {
  std::vector<FleetInput> inputs = SyntheticInputs(6, 300);
  inputs[3].trace = NotFoundError("no such meter");
  FleetEncodeOptions options = SmallOptions();
  options.gap_aware = true;
  options.retry.max_retries = 0;
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> serial,
                       EncodeFleetTolerant(inputs, options));
  for (size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> parallel,
                         EncodeFleetTolerant(inputs, options, &pool));
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t h = 0; h < serial.size(); ++h) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " house=" + std::to_string(h));
      EXPECT_EQ(parallel[h].name, serial[h].name);
      EXPECT_EQ(parallel[h].outcome, serial[h].outcome);
      EXPECT_EQ(parallel[h].attempts, serial[h].attempts);
      EXPECT_EQ(parallel[h].quality.windows_valid,
                serial[h].quality.windows_valid);
      EXPECT_EQ(parallel[h].quality.windows_gap,
                serial[h].quality.windows_gap);
      EXPECT_EQ(parallel[h].encoding.has_value(),
                serial[h].encoding.has_value());
      if (parallel[h].encoding.has_value()) {
        ExpectSameEncoding(*parallel[h].encoding, *serial[h].encoding);
      }
    }
  }
}

TEST(FleetTolerantTest, ProgressCountsMatchTheReports) {
  std::vector<FleetInput> inputs = SyntheticInputs(6, 300);
  inputs[2].trace = InternalError("dead meter");
  FleetEncodeOptions options = SmallOptions();
  options.retry.max_retries = 1;
  options.retry.sleep_ms = [](int64_t) {};
  // One injected transient failure: some household (scheduling-dependent
  // under the pool) burns a retry; the progress totals must still agree
  // with the final reports exactly.
  fault::ScopedFaultPlan plan(
      {fault::FaultRule::FailCalls("fleet.household", 1, 1)});
  ThreadPool pool(3);
  FleetProgress progress;
  ASSERT_OK_AND_ASSIGN(
      std::vector<HouseholdReport> reports,
      EncodeFleetTolerant(inputs, options, &pool, nullptr, &progress));
  ASSERT_EQ(reports.size(), inputs.size());

  FleetProgress::Snapshot snap = progress.Get();
  FleetQualityReport summary = SummarizeFleet(reports);
  EXPECT_EQ(snap.completed, inputs.size());
  EXPECT_EQ(snap.ok, summary.households_ok);
  EXPECT_EQ(snap.degraded, summary.households_degraded);
  EXPECT_EQ(snap.quarantined, summary.households_quarantined);
  EXPECT_EQ(snap.quarantined, 1u);  // only the dead meter
  size_t retries = 0;
  for (const HouseholdReport& r : reports) {
    retries += static_cast<size_t>(r.attempts - 1);
  }
  EXPECT_EQ(snap.retries, retries);
  EXPECT_GE(snap.retries, 1u);  // the injected failure forced at least one
}

TEST(FleetTolerantTest, JsonReportNamesEveryHouseholdAndOutcome) {
  std::vector<FleetInput> inputs = SyntheticInputs(2, 200);
  inputs[1].trace = InternalError("bad \"quote\" in message");
  FleetEncodeOptions options = SmallOptions();
  options.retry.max_retries = 0;
  ASSERT_OK_AND_ASSIGN(std::vector<HouseholdReport> reports,
                       EncodeFleetTolerant(inputs, options));
  std::string json = FleetQualityReportToJson(SummarizeFleet(reports), reports);
  EXPECT_NE(json.find("\"house_1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"house_2\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"quarantined\""), std::string::npos) << json;
  // The quote inside the error message must be escaped.
  EXPECT_NE(json.find("bad \\\"quote\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"households_quarantined\": 1"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace smeter
