#include "core/codec.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

SymbolicSeries MakeSeries(int level, const std::vector<uint32_t>& indices,
                          Timestamp start = 0, int64_t step = 900) {
  SymbolicSeries series(level);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_OK(series.Append({start + static_cast<int64_t>(i) * step,
                             Symbol::Create(level, indices[i]).value()}));
  }
  return series;
}

TEST(CodecTest, RoundTripPreservesEverything) {
  SymbolicSeries original =
      MakeSeries(4, {0, 15, 7, 8, 3, 12, 1}, 86400, 900);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(original));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  ASSERT_EQ(decoded.size(), original.size());
  EXPECT_EQ(decoded.level(), original.level());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i], original[i]) << "at " << i;
  }
}

TEST(CodecTest, RoundTripAllLevels) {
  Rng rng(5);
  for (int level = 1; level <= kMaxSymbolLevel; ++level) {
    std::vector<uint32_t> indices;
    for (int i = 0; i < 100; ++i) {
      indices.push_back(
          static_cast<uint32_t>(rng.UniformInt(1u << level)));
    }
    SymbolicSeries original = MakeSeries(level, indices);
    ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(original));
    ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
    ASSERT_EQ(decoded.size(), original.size()) << "level " << level;
    for (size_t i = 0; i < original.size(); ++i) {
      ASSERT_EQ(decoded[i], original[i]) << "level " << level << " at " << i;
    }
  }
}

TEST(CodecTest, PaperDaySizeIs384PayloadBits) {
  // Section 2.3: 96 windows x 4 bits = 384 bits.
  EXPECT_EQ(PackedPayloadBits(96, 4), 384);
  std::vector<uint32_t> day(96, 9);
  SymbolicSeries series = MakeSeries(4, day);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(series));
  EXPECT_EQ(blob.size(), PackedSizeBytes(96, 4));
  // 26-byte header + 48-byte payload.
  EXPECT_EQ(blob.size(), 26u + 48u);
}

TEST(CodecTest, SingleSampleSeries) {
  SymbolicSeries series = MakeSeries(3, {5}, 1234);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(series));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].timestamp, 1234);
  EXPECT_EQ(decoded[0].symbol.index(), 5u);
}

TEST(CodecTest, NonByteAlignedPayload) {
  // 5 symbols x 3 bits = 15 bits -> 2 payload bytes with 1 padding bit.
  SymbolicSeries series = MakeSeries(3, {1, 2, 3, 4, 5});
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(series));
  EXPECT_EQ(blob.size(), 26u + 2u);
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(decoded[i], series[i]);
  }
}

TEST(CodecTest, RejectsEmptyAndIrregularSeries) {
  SymbolicSeries empty(4);
  EXPECT_FALSE(PackSymbolicSeries(empty).ok());

  SymbolicSeries irregular(2);
  ASSERT_OK(irregular.Append({0, Symbol::Create(2, 0).value()}));
  ASSERT_OK(irregular.Append({900, Symbol::Create(2, 1).value()}));
  ASSERT_OK(irregular.Append({2700, Symbol::Create(2, 2).value()}));  // gap
  EXPECT_FALSE(PackSymbolicSeries(irregular).ok());

  SymbolicSeries repeated(2);
  ASSERT_OK(repeated.Append({0, Symbol::Create(2, 0).value()}));
  ASSERT_OK(repeated.Append({0, Symbol::Create(2, 1).value()}));
  EXPECT_FALSE(PackSymbolicSeries(repeated).ok());  // zero step
}

TEST(CodecTest, UnpackRejectsCorruptBlobs) {
  EXPECT_FALSE(UnpackSymbolicSeries("").ok());
  EXPECT_FALSE(UnpackSymbolicSeries("too short").ok());

  SymbolicSeries series = MakeSeries(4, {1, 2, 3, 4});
  std::string blob = PackSymbolicSeries(series).value();

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(UnpackSymbolicSeries(bad_magic).ok());

  std::string bad_version = blob;
  bad_version[4] = 9;
  EXPECT_FALSE(UnpackSymbolicSeries(bad_version).ok());

  std::string bad_level = blob;
  bad_level[5] = 0;
  EXPECT_FALSE(UnpackSymbolicSeries(bad_level).ok());

  std::string truncated = blob.substr(0, blob.size() - 1);
  EXPECT_FALSE(UnpackSymbolicSeries(truncated).ok());

  std::string padded = blob + "x";
  EXPECT_FALSE(UnpackSymbolicSeries(padded).ok());
}

TEST(CodecTest, PackedSizeArithmetic) {
  EXPECT_EQ(PackedSizeBytes(0, 4), 26u);
  EXPECT_EQ(PackedSizeBytes(1, 1), 27u);
  EXPECT_EQ(PackedSizeBytes(8, 1), 27u);
  EXPECT_EQ(PackedSizeBytes(9, 1), 28u);
  EXPECT_EQ(PackedPayloadBits(24, 1), 24);
  // v2: header + ceil(count/8) bitmap + ceil((count-gaps)*level/8) payload.
  EXPECT_EQ(PackedSizeBytesWithGaps(8, 2, 4), 26u + 1u + 3u);
  EXPECT_EQ(PackedSizeBytesWithGaps(9, 9, 4), 26u + 2u + 0u);
}

// Inserts GAP symbols at `gap_positions` into an otherwise value-bearing
// series.
SymbolicSeries MakeGappySeries(int level, size_t count,
                               const std::vector<size_t>& gap_positions,
                               Timestamp start = 0, int64_t step = 900) {
  SymbolicSeries series(level);
  for (size_t i = 0; i < count; ++i) {
    bool gap = false;
    for (size_t g : gap_positions) gap |= (g == i);
    Symbol s = gap ? Symbol::Gap(level)
                   : Symbol::Create(level, static_cast<uint32_t>(
                                               i % (1u << level)))
                         .value();
    EXPECT_OK(series.Append({start + static_cast<int64_t>(i) * step, s}));
  }
  return series;
}

TEST(CodecGapTest, GappySeriesRoundTripsThroughVersion2) {
  SymbolicSeries original = MakeGappySeries(4, 12, {0, 5, 6, 11}, 3600);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(original));
  EXPECT_EQ(static_cast<unsigned char>(blob[4]), 2u);  // version
  EXPECT_EQ(blob.size(), PackedSizeBytesWithGaps(12, 4, 4));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].timestamp, original[i].timestamp) << i;
    EXPECT_EQ(decoded[i].symbol.is_gap(), original[i].symbol.is_gap()) << i;
    EXPECT_EQ(decoded[i].symbol, original[i].symbol) << i;
  }
  EXPECT_EQ(decoded.GapCount(), 4u);
}

TEST(CodecGapTest, GaplessSeriesStillPacksAsVersion1BitIdentical) {
  // Back-compat: no gaps -> the exact pre-GAP wire bytes.
  SymbolicSeries series = MakeSeries(4, {0, 15, 7, 8});
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(series));
  EXPECT_EQ(static_cast<unsigned char>(blob[4]), 1u);
  EXPECT_EQ(blob.size(), PackedSizeBytes(4, 4));
}

TEST(CodecGapTest, AllGapSeriesRoundTrips) {
  SymbolicSeries original = MakeGappySeries(3, 10,
                                            {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(original));
  // Bitmap only; zero payload bytes.
  EXPECT_EQ(blob.size(), PackedSizeBytesWithGaps(10, 10, 3));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  EXPECT_EQ(decoded.GapCount(), 10u);
}

TEST(CodecGapTest, RoundTripAllLevelsWithRandomGaps) {
  Rng rng(17);
  for (int level = 1; level <= kMaxSymbolLevel; ++level) {
    SymbolicSeries original(level);
    size_t gaps = 0;
    for (int i = 0; i < 100; ++i) {
      Symbol s = Symbol::Create(
                     level, static_cast<uint32_t>(rng.UniformInt(1u << level)))
                     .value();
      if (rng.Uniform() < 0.3) {
        s = Symbol::Gap(level);
        ++gaps;
      }
      ASSERT_OK(original.Append({static_cast<int64_t>(i) * 900, s}));
    }
    if (gaps == 0) continue;
    ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(original));
    ASSERT_EQ(blob.size(), PackedSizeBytesWithGaps(100, gaps, level))
        << "level " << level;
    ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
    ASSERT_EQ(decoded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
      ASSERT_EQ(decoded[i], original[i]) << "level " << level << " at " << i;
    }
  }
}

TEST(CodecGapTest, UnpackRejectsMalformedVersion2Blobs) {
  SymbolicSeries original = MakeGappySeries(4, 12, {3, 7});
  std::string blob = PackSymbolicSeries(original).value();

  // Truncation anywhere (bitmap or payload) fails the size check.
  for (size_t cut = 1; cut < blob.size(); ++cut) {
    EXPECT_FALSE(UnpackSymbolicSeries(blob.substr(0, cut)).ok()) << cut;
  }
  EXPECT_FALSE(UnpackSymbolicSeries(blob + "x").ok());

  // Nonzero padding bits in the final bitmap byte are ambiguous encodings.
  std::string dirty_pad = blob;
  dirty_pad[26 + 1] = static_cast<char>(
      static_cast<unsigned char>(dirty_pad[26 + 1]) | 0x01);
  EXPECT_FALSE(UnpackSymbolicSeries(dirty_pad).ok());

  // A v2 blob whose bitmap claims zero gaps is not something Pack emits.
  SymbolicSeries gapless = MakeSeries(4, {1, 2, 3, 4, 5, 6, 7, 8});
  std::string v1 = PackSymbolicSeries(gapless).value();
  std::string fake_v2 = v1;
  fake_v2[4] = 2;
  fake_v2.insert(26, 1, '\0');  // empty bitmap for 8 symbols
  EXPECT_FALSE(UnpackSymbolicSeries(fake_v2).ok());
}

}  // namespace
}  // namespace smeter
