#include "core/codec.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace smeter {
namespace {

SymbolicSeries MakeSeries(int level, const std::vector<uint32_t>& indices,
                          Timestamp start = 0, int64_t step = 900) {
  SymbolicSeries series(level);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_OK(series.Append({start + static_cast<int64_t>(i) * step,
                             Symbol::Create(level, indices[i]).value()}));
  }
  return series;
}

TEST(CodecTest, RoundTripPreservesEverything) {
  SymbolicSeries original =
      MakeSeries(4, {0, 15, 7, 8, 3, 12, 1}, 86400, 900);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(original));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  ASSERT_EQ(decoded.size(), original.size());
  EXPECT_EQ(decoded.level(), original.level());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i], original[i]) << "at " << i;
  }
}

TEST(CodecTest, RoundTripAllLevels) {
  Rng rng(5);
  for (int level = 1; level <= kMaxSymbolLevel; ++level) {
    std::vector<uint32_t> indices;
    for (int i = 0; i < 100; ++i) {
      indices.push_back(
          static_cast<uint32_t>(rng.UniformInt(1u << level)));
    }
    SymbolicSeries original = MakeSeries(level, indices);
    ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(original));
    ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
    ASSERT_EQ(decoded.size(), original.size()) << "level " << level;
    for (size_t i = 0; i < original.size(); ++i) {
      ASSERT_EQ(decoded[i], original[i]) << "level " << level << " at " << i;
    }
  }
}

TEST(CodecTest, PaperDaySizeIs384PayloadBits) {
  // Section 2.3: 96 windows x 4 bits = 384 bits.
  EXPECT_EQ(PackedPayloadBits(96, 4), 384);
  std::vector<uint32_t> day(96, 9);
  SymbolicSeries series = MakeSeries(4, day);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(series));
  EXPECT_EQ(blob.size(), PackedSizeBytes(96, 4));
  // 26-byte header + 48-byte payload.
  EXPECT_EQ(blob.size(), 26u + 48u);
}

TEST(CodecTest, SingleSampleSeries) {
  SymbolicSeries series = MakeSeries(3, {5}, 1234);
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(series));
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].timestamp, 1234);
  EXPECT_EQ(decoded[0].symbol.index(), 5u);
}

TEST(CodecTest, NonByteAlignedPayload) {
  // 5 symbols x 3 bits = 15 bits -> 2 payload bytes with 1 padding bit.
  SymbolicSeries series = MakeSeries(3, {1, 2, 3, 4, 5});
  ASSERT_OK_AND_ASSIGN(std::string blob, PackSymbolicSeries(series));
  EXPECT_EQ(blob.size(), 26u + 2u);
  ASSERT_OK_AND_ASSIGN(SymbolicSeries decoded, UnpackSymbolicSeries(blob));
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(decoded[i], series[i]);
  }
}

TEST(CodecTest, RejectsEmptyAndIrregularSeries) {
  SymbolicSeries empty(4);
  EXPECT_FALSE(PackSymbolicSeries(empty).ok());

  SymbolicSeries irregular(2);
  ASSERT_OK(irregular.Append({0, Symbol::Create(2, 0).value()}));
  ASSERT_OK(irregular.Append({900, Symbol::Create(2, 1).value()}));
  ASSERT_OK(irregular.Append({2700, Symbol::Create(2, 2).value()}));  // gap
  EXPECT_FALSE(PackSymbolicSeries(irregular).ok());

  SymbolicSeries repeated(2);
  ASSERT_OK(repeated.Append({0, Symbol::Create(2, 0).value()}));
  ASSERT_OK(repeated.Append({0, Symbol::Create(2, 1).value()}));
  EXPECT_FALSE(PackSymbolicSeries(repeated).ok());  // zero step
}

TEST(CodecTest, UnpackRejectsCorruptBlobs) {
  EXPECT_FALSE(UnpackSymbolicSeries("").ok());
  EXPECT_FALSE(UnpackSymbolicSeries("too short").ok());

  SymbolicSeries series = MakeSeries(4, {1, 2, 3, 4});
  std::string blob = PackSymbolicSeries(series).value();

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(UnpackSymbolicSeries(bad_magic).ok());

  std::string bad_version = blob;
  bad_version[4] = 9;
  EXPECT_FALSE(UnpackSymbolicSeries(bad_version).ok());

  std::string bad_level = blob;
  bad_level[5] = 0;
  EXPECT_FALSE(UnpackSymbolicSeries(bad_level).ok());

  std::string truncated = blob.substr(0, blob.size() - 1);
  EXPECT_FALSE(UnpackSymbolicSeries(truncated).ok());

  std::string padded = blob + "x";
  EXPECT_FALSE(UnpackSymbolicSeries(padded).ok());
}

TEST(CodecTest, PackedSizeArithmetic) {
  EXPECT_EQ(PackedSizeBytes(0, 4), 26u);
  EXPECT_EQ(PackedSizeBytes(1, 1), 27u);
  EXPECT_EQ(PackedSizeBytes(8, 1), 27u);
  EXPECT_EQ(PackedSizeBytes(9, 1), 28u);
  EXPECT_EQ(PackedPayloadBits(24, 1), 24);
}

}  // namespace
}  // namespace smeter
