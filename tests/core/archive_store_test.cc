// Tests for the partitioned archive store: build determinism, partition
// slicing, rollup byte-identity, retention, the hot current table, crash
// convergence through every store.* fault seam, and the hierarchy property
// the rollup design rests on — coarsening an encoded series to level k is
// exactly symbol-prefix truncation of the finer encoding, GAPs included.

#include "core/archive_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/io.h"
#include "core/codec.h"
#include "core/symbolic_series.h"
#include "testutil.h"

namespace smeter {
namespace {

namespace fs = std::filesystem;

Symbol Sym(int level, uint32_t index) {
  return Symbol::Create(level, index).value();
}

// A deterministic series at `level`: `n` samples from `start` with the
// given step, every `gap_every`-th sample a GAP (0 = no gaps).
SymbolicSeries MakeSymbolSeries(int level, Timestamp start, int64_t step,
                                size_t n, uint64_t seed,
                                size_t gap_every = 0) {
  SymbolicSeries series(level);
  uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    Symbol symbol =
        (gap_every > 0 && i % gap_every == gap_every - 1)
            ? Symbol::Gap(level)
            : Sym(level, static_cast<uint32_t>((state >> 33) %
                                               (1u << level)));
    EXPECT_TRUE(
        series.Append({start + static_cast<Timestamp>(i) * step, symbol})
            .ok());
  }
  return series;
}

// Writes <dir>/<meter>.symbols for each entry (the v3 framed archive the
// store builder consumes).
void WriteArchive(const std::string& dir,
                  const std::map<std::string, SymbolicSeries>& meters) {
  fs::create_directories(dir);
  for (const auto& [meter, series] : meters) {
    auto blob = PackSymbolicSeriesFramed(series);
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    ASSERT_TRUE(io::AtomicWriteFile(dir + "/" + meter + ".symbols", *blob)
                    .ok());
  }
}

// Relative path -> file bytes for every regular file under `dir`.
std::map<std::string, std::string> SnapshotDir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files[fs::relative(entry.path(), dir).generic_string()] =
        io::ReadFileToString(entry.path().string()).value();
  }
  return files;
}

std::string Scratch(const std::string& name) {
  std::string root = smeter::testing::TempPath("archive_store_" + name);
  fs::remove_all(root);
  fs::create_directories(root);
  return root;
}

// A three-meter fleet spanning four day-partitions, gaps included.
std::map<std::string, SymbolicSeries> TestFleet(int level = 4) {
  std::map<std::string, SymbolicSeries> fleet;
  fleet.emplace("house_a", MakeSymbolSeries(level, 900, 900, 320, 11, 7));
  fleet.emplace("house_b",
                MakeSymbolSeries(level, 86'400 + 450, 900, 220, 22, 0));
  fleet.emplace("house_c", MakeSymbolSeries(level, 0, 1800, 160, 33, 13));
  return fleet;
}

// --- plain-function units --------------------------------------------------

TEST(ArchiveStoreUnits, PartitionIdFloorsNegatives) {
  EXPECT_EQ(PartitionIdFor(0, 86'400), 0);
  EXPECT_EQ(PartitionIdFor(86'399, 86'400), 0);
  EXPECT_EQ(PartitionIdFor(86'400, 86'400), 1);
  EXPECT_EQ(PartitionIdFor(-1, 86'400), -1);
  EXPECT_EQ(PartitionIdFor(-86'400, 86'400), -1);
  EXPECT_EQ(PartitionIdFor(-86'401, 86'400), -2);
}

TEST(ArchiveStoreUnits, PartitionDirNameRoundTrip) {
  int64_t id = 0;
  EXPECT_TRUE(IsPartitionDirName("p0", &id));
  EXPECT_EQ(id, 0);
  EXPECT_TRUE(IsPartitionDirName("p-3", &id));
  EXPECT_EQ(id, -3);
  EXPECT_FALSE(IsPartitionDirName("q7", nullptr));
  EXPECT_FALSE(IsPartitionDirName("p", nullptr));
  EXPECT_FALSE(IsPartitionDirName("p1x", nullptr));
}

TEST(ArchiveStoreUnits, FoldHistogramMergesPrefixBuckets) {
  // Level 3 -> level 1: buckets [0..3] fold into 0, [4..7] into 1.
  std::vector<uint64_t> fine = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint64_t> folded = FoldHistogram(fine, 3, 1);
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_EQ(folded[0], 1u + 2 + 3 + 4);
  EXPECT_EQ(folded[1], 5u + 6 + 7 + 8);
  // Identity fold.
  EXPECT_EQ(FoldHistogram(fine, 3, 3), fine);
}

TEST(ArchiveStoreUnits, RollupRowRecordRoundTrips) {
  RollupRow row;
  row.meter = "house_a";
  row.level = 5;
  row.start = 1234;
  row.step = 900;
  row.windows = 96;
  row.gaps = 3;
  row.histogram.assign(32, 0);
  row.histogram[7] = 41;
  row.histogram[31] = 52;
  auto parsed = ParseRollupRow(RollupRowRecord(row));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == row);
  EXPECT_FALSE(ParseRollupRow("not json").has_value());
  EXPECT_FALSE(ParseRollupRow("{\"meter\":\"x\"}").has_value());
}

TEST(ArchiveStoreUnits, CurrentRecordJsonRoundTrips) {
  CurrentRecord record;
  record.meter = "house_b";
  record.timestamp = 999'000;
  record.level = 4;
  record.symbol = kStoreGapSymbol;
  auto parsed = ParseCurrentRecord(CurrentRecordJson(record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->meter, record.meter);
  EXPECT_EQ(parsed->timestamp, record.timestamp);
  EXPECT_EQ(parsed->level, record.level);
  EXPECT_EQ(parsed->symbol, record.symbol);
  EXPECT_FALSE(ParseCurrentRecord("{}").has_value());
}

// --- the hierarchy property (satellite: coarsen == prefix truncation) ------

TEST(HierarchyProperty, CoarsenIsPrefixTruncationThroughTheCodec) {
  // Encode at the deepest level, decode, coarsen to every k — the result
  // must be exactly per-symbol prefix truncation of what was packed, with
  // GAPs surviving as GAPs at every level.
  SymbolicSeries native =
      MakeSymbolSeries(kMaxSymbolLevel, 0, 900, 400, 77, 9);
  auto blob = PackSymbolicSeriesFramed(native);
  ASSERT_TRUE(blob.ok());
  auto decoded = UnpackSymbolicSeries(*blob);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), native.size());
  for (int k = kMaxSymbolLevel; k >= 1; --k) {
    auto coarse = decoded->Coarsen(k);
    ASSERT_TRUE(coarse.ok());
    ASSERT_EQ(coarse->size(), native.size());
    for (size_t i = 0; i < native.size(); ++i) {
      const Symbol fine = native[i].symbol;
      const Symbol got = (*coarse)[i].symbol;
      ASSERT_EQ((*coarse)[i].timestamp, native[i].timestamp);
      if (fine.is_gap()) {
        // GAP propagation: a gap stays a gap under truncation.
        ASSERT_TRUE(got.is_gap()) << "k=" << k << " i=" << i;
        continue;
      }
      ASSERT_FALSE(got.is_gap());
      // Prefix truncation == dropping the low (n - k) bits.
      ASSERT_EQ(got.index(),
                fine.index() >> (kMaxSymbolLevel - k))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(HierarchyProperty, FoldedHistogramMatchesCoarseEncoding) {
  // The rollup shortcut: folding the native histogram must agree with
  // decoding and re-encoding at the coarser level, gaps excluded from
  // buckets but preserved in GapCount.
  SymbolicSeries native = MakeSymbolSeries(8, 0, 900, 512, 41, 5);
  for (int k = 8; k >= 1; --k) {
    auto coarse = native.Coarsen(k);
    ASSERT_TRUE(coarse.ok());
    EXPECT_EQ(FoldHistogram(native.Histogram(), 8, k),
              coarse->Histogram())
        << "k=" << k;
    EXPECT_EQ(coarse->GapCount(), native.GapCount());
  }
}

// --- build / open / scan / aggregate ---------------------------------------

TEST(ArchiveStoreBuild, BuildsPartitionsIndexRollupsAndCurrent) {
  const std::string root = Scratch("build");
  WriteArchive(root + "/archive", TestFleet());
  auto report = BuildArchiveStore(root + "/archive", root + "/store");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->meters, 3u);
  EXPECT_EQ(report->meters_skipped, 0u);
  EXPECT_EQ(report->partitions, 4u);
  EXPECT_GT(report->segments_written, 0u);

  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->partitions().size(), 4u);
  for (const PartitionInfo& partition : (*store)->partitions()) {
    EXPECT_TRUE(fs::exists(root + "/store/p" +
                           std::to_string(partition.id) + "/" +
                           kRollupTableFile));
  }
  // The current table has one row per meter, the last sample of each.
  EXPECT_EQ((*store)->CurrentMeters(), 3u);
  auto latest = (*store)->Latest("house_a");
  ASSERT_TRUE(latest.ok());
  auto fleet = TestFleet();
  const SymbolicSeries& a = fleet.at("house_a");
  EXPECT_EQ(latest->timestamp, a[a.size() - 1].timestamp);
}

TEST(ArchiveStoreBuild, RebuildIsByteIdentical) {
  const std::string root = Scratch("deterministic");
  WriteArchive(root + "/archive", TestFleet());
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/s1").ok());
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/s2").ok());
  EXPECT_EQ(SnapshotDir(root + "/s1"), SnapshotDir(root + "/s2"));
}

TEST(ArchiveStoreBuild, UnparseableMeterIsSkippedNotFatal) {
  const std::string root = Scratch("skip");
  WriteArchive(root + "/archive", TestFleet());
  ASSERT_TRUE(
      io::AtomicWriteFile(root + "/archive/broken.symbols", "garbage").ok());
  auto report = BuildArchiveStore(root + "/archive", root + "/store");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->meters, 3u);
  EXPECT_EQ(report->meters_skipped, 1u);
}

TEST(ArchiveStoreScan, NativeScanMatchesTheSourceSeries) {
  const std::string root = Scratch("scan");
  auto fleet = TestFleet();
  WriteArchive(root + "/archive", fleet);
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok());

  const SymbolicSeries& source = fleet.at("house_a");
  auto scan = (*store)->Scan("house_a",
                             {0, source[source.size() - 1].timestamp + 1},
                             /*level=*/0, /*max_symbols=*/100'000);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->level, source.level());
  EXPECT_FALSE(scan->truncated);
  ASSERT_EQ(scan->symbols.size(), source.size());
  EXPECT_EQ(scan->start_timestamp, source[0].timestamp);
  for (size_t i = 0; i < source.size(); ++i) {
    const Symbol symbol = source[i].symbol;
    const uint16_t expect =
        symbol.is_gap() ? kStoreGapSymbol
                        : static_cast<uint16_t>(symbol.index());
    ASSERT_EQ(scan->symbols[i], expect) << "i=" << i;
  }
}

TEST(ArchiveStoreScan, CoarseScanIsPrefixTruncation) {
  const std::string root = Scratch("coarse");
  auto fleet = TestFleet(6);
  WriteArchive(root + "/archive", fleet);
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok());

  const SymbolicSeries& source = fleet.at("house_c");
  const TimeRange range = {0, source[source.size() - 1].timestamp + 1};
  for (int k = 1; k <= 6; ++k) {
    auto scan = (*store)->Scan("house_c", range, k, 100'000);
    ASSERT_TRUE(scan.ok()) << "k=" << k << ": " << scan.status().ToString();
    EXPECT_EQ(scan->level, k);
    ASSERT_EQ(scan->symbols.size(), source.size());
    for (size_t i = 0; i < source.size(); ++i) {
      const Symbol symbol = source[i].symbol;
      const uint16_t expect =
          symbol.is_gap()
              ? kStoreGapSymbol
              : static_cast<uint16_t>(symbol.index() >> (6 - k));
      ASSERT_EQ(scan->symbols[i], expect) << "k=" << k << " i=" << i;
    }
  }
  // Finer than native is refused; unknown meters are not found.
  EXPECT_FALSE((*store)->Scan("house_c", range, 7, 100).ok());
  auto missing = (*store)->Scan("nobody", range, 0, 100);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ArchiveStoreScan, TruncationStopsAtMaxSymbols) {
  const std::string root = Scratch("truncate");
  auto fleet = TestFleet();
  WriteArchive(root + "/archive", fleet);
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok());
  auto scan = (*store)->Scan("house_a", {0, 10'000'000}, 0, 10);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->truncated);
  EXPECT_EQ(scan->symbols.size(), 10u);
}

TEST(ArchiveStoreAggregate, FoldedRollupsMatchBruteForce) {
  const std::string root = Scratch("aggregate");
  auto fleet = TestFleet(5);
  WriteArchive(root + "/archive", fleet);
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok());

  // A window covering whole partitions only: served purely from rollups.
  const TimeRange range = {0, 4 * kSecondsPerDay};
  for (int k = 1; k <= 5; ++k) {
    auto aggregate = (*store)->Aggregate(range, k);
    ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();
    EXPECT_EQ(aggregate->level, k);
    EXPECT_EQ(aggregate->meters, 3u);
    EXPECT_EQ(aggregate->meters_coarser, 0u);
    EXPECT_GT(aggregate->rollup_partitions, 0u);
    EXPECT_EQ(aggregate->scanned_partitions, 0u);

    // Brute force from the source series.
    std::vector<uint64_t> expect(1u << k, 0);
    uint64_t windows = 0, gaps = 0;
    for (const auto& [meter, series] : fleet) {
      for (const SymbolicSample& sample : series) {
        if (sample.timestamp < range.begin ||
            sample.timestamp >= range.end) {
          continue;
        }
        ++windows;
        if (sample.symbol.is_gap()) {
          ++gaps;
          continue;
        }
        ++expect[sample.symbol.index() >> (5 - k)];
      }
    }
    EXPECT_EQ(aggregate->windows, windows) << "k=" << k;
    EXPECT_EQ(aggregate->gaps, gaps) << "k=" << k;
    EXPECT_EQ(aggregate->histogram, expect) << "k=" << k;
  }

  // A ragged window forces edge partitions through the segment-scan path;
  // totals must still match brute force.
  const TimeRange ragged = {40'000, 3 * kSecondsPerDay + 20'000};
  auto aggregate = (*store)->Aggregate(ragged, 3);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_GT(aggregate->scanned_partitions, 0u);
  std::vector<uint64_t> expect(8, 0);
  uint64_t windows = 0, gaps = 0;
  for (const auto& [meter, series] : fleet) {
    for (const SymbolicSample& sample : series) {
      if (sample.timestamp < ragged.begin ||
          sample.timestamp >= ragged.end) {
        continue;
      }
      ++windows;
      if (sample.symbol.is_gap()) {
        ++gaps;
      } else {
        ++expect[sample.symbol.index() >> 2];
      }
    }
  }
  EXPECT_EQ(aggregate->windows, windows);
  EXPECT_EQ(aggregate->gaps, gaps);
  EXPECT_EQ(aggregate->histogram, expect);
}

// --- rollups, retention, current table -------------------------------------

TEST(ArchiveStoreRollups, RebuildIsByteIdenticalToBuild) {
  const std::string root = Scratch("rollup_rebuild");
  WriteArchive(root + "/archive", TestFleet());
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  std::map<std::string, std::string> before;
  for (const auto& entry :
       fs::recursive_directory_iterator(root + "/store")) {
    if (entry.path().filename() != kRollupTableFile) continue;
    before[entry.path().string()] =
        io::ReadFileToString(entry.path().string()).value();
    fs::remove(entry.path());
  }
  ASSERT_FALSE(before.empty());
  auto rebuilt = RebuildRollups(root + "/store");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, before.size());
  for (const auto& [path, bytes] : before) {
    EXPECT_EQ(io::ReadFileToString(path).value(), bytes) << path;
  }
}

TEST(ArchiveStoreRetention, DropsWholePartitionsBeforeCutoff) {
  const std::string root = Scratch("retention");
  WriteArchive(root + "/archive", TestFleet());
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto dropped = DropPartitionsBefore(root + "/store", kSecondsPerDay);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 1u);
  EXPECT_FALSE(fs::exists(root + "/store/p0"));
  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->partitions().size(), 3u);
  // Data before the cutoff is gone; later data still serves.
  auto early = (*store)->Scan("house_a", {0, kSecondsPerDay}, 0, 1000);
  EXPECT_FALSE(early.ok());
  auto later = (*store)->Scan(
      "house_a", {kSecondsPerDay, 4 * kSecondsPerDay}, 0, 1000);
  EXPECT_TRUE(later.ok());
}

TEST(ArchiveStoreCurrent, LiveLogAppendsRefreshLatest) {
  const std::string root = Scratch("current");
  WriteArchive(root + "/archive", TestFleet());
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok());
  auto before = (*store)->Latest("house_a");
  ASSERT_TRUE(before.ok());

  // A live writer (the ingest daemon) appends a fresher row; the store
  // notices on the next lookup without reopening.
  auto writer = CurrentTableWriter::Open(root + "/store");
  ASSERT_TRUE(writer.ok());
  CurrentRecord fresh;
  fresh.meter = "house_a";
  fresh.timestamp = before->timestamp + 900;
  fresh.level = 4;
  fresh.symbol = 9;
  ASSERT_TRUE((*writer)->Update(fresh).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto after = (*store)->Latest("house_a");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->timestamp, fresh.timestamp);
  EXPECT_EQ(after->symbol, 9);
  EXPECT_GT((*store)->current_refreshes(), 0u);
}

// --- crash convergence through the fault seams -----------------------------

TEST(ArchiveStoreFaults, KilledBuildConvergesOnRerun) {
  // Fail each store.* write seam at several call numbers; the interrupted
  // build leaves only atomic artifacts, and a clean rerun produces a store
  // byte-identical to one never interrupted.
  const std::string root = Scratch("kill_build");
  auto fleet = TestFleet();
  WriteArchive(root + "/archive", fleet);
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/clean").ok());
  const std::map<std::string, std::string> want =
      SnapshotDir(root + "/clean");

  int trial = 0;
  const std::map<std::string, std::vector<int>> seam_calls = {
      {"store.segment.write", {1, 2}},
      {"store.rollup.write", {1, 2}},
      {"store.index.write", {1}},  // the index is one atomic write
  };
  for (const auto& [seam, calls] : seam_calls) {
    for (int call : calls) {
      const std::string store_dir =
          root + "/store_" + std::to_string(trial++);
      {
        fault::ScopedFaultPlan plan(
            {fault::FaultRule::FailCalls(seam, call, call)});
        auto killed = BuildArchiveStore(root + "/archive", store_dir);
        ASSERT_FALSE(killed.ok()) << seam << " call " << call;
      }
      auto report = BuildArchiveStore(root + "/archive", store_dir);
      ASSERT_TRUE(report.ok()) << seam << " call " << call;
      EXPECT_EQ(SnapshotDir(store_dir), want) << seam << " call " << call;
    }
  }
}

TEST(ArchiveStoreFaults, SegmentReadFailureSurfacesWithoutCorruption) {
  const std::string root = Scratch("read_seam");
  WriteArchive(root + "/archive", TestFleet());
  ASSERT_TRUE(BuildArchiveStore(root + "/archive", root + "/store").ok());
  auto store = ArchiveStore::Open(root + "/store");
  ASSERT_TRUE(store.ok());
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("store.segment.read", 1, 1)});
    auto scan = (*store)->Scan("house_a", {0, 10'000'000}, 0, 1000);
    EXPECT_FALSE(scan.ok());
  }
  // The store object survives an injected read failure.
  auto scan = (*store)->Scan("house_a", {0, 10'000'000}, 0, 1000);
  EXPECT_TRUE(scan.ok());
}

TEST(ArchiveStoreFaults, CurrentAppendSeamDegradesNotDies) {
  const std::string root = Scratch("current_seam");
  fs::create_directories(root + "/store");
  auto writer = CurrentTableWriter::Open(root + "/store");
  ASSERT_TRUE(writer.ok());
  CurrentRecord record;
  record.meter = "m";
  record.timestamp = 1;
  record.level = 1;
  record.symbol = 0;
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("store.current.append", 1, 1)});
    EXPECT_FALSE((*writer)->Update(record).ok());
  }
  record.timestamp = 2;
  EXPECT_TRUE((*writer)->Update(record).ok());
  ASSERT_TRUE((*writer)->Close().ok());
}

}  // namespace
}  // namespace smeter
