#include "cli.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/io.h"
#include "testutil.h"

namespace smeter::cli {
namespace {

// Runs a CLI command and returns its stdout; asserts success.
std::string RunOk(const std::vector<std::string>& args) {
  std::ostringstream out;
  Status status = RunCli(args, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

Status RunErr(const std::vector<std::string>& args) {
  std::ostringstream out;
  return RunCli(args, out);
}

TEST(FlagsTest, ParsesFlagValuePairs) {
  ASSERT_OK_AND_ASSIGN(Flags flags,
                       Flags::Parse({"--a", "1", "--name", "x y"}));
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_FALSE(flags.Has("b"));
  ASSERT_OK_AND_ASSIGN(std::string name, flags.Get("name"));
  EXPECT_EQ(name, "x y");
  ASSERT_OK_AND_ASSIGN(int64_t a, flags.GetInt("a", 9));
  EXPECT_EQ(a, 1);
  ASSERT_OK_AND_ASSIGN(int64_t missing, flags.GetInt("zzz", 9));
  EXPECT_EQ(missing, 9);
  EXPECT_EQ(flags.GetOr("zzz", "dflt"), "dflt");
}

TEST(FlagsTest, RejectsMalformedArguments) {
  EXPECT_FALSE(Flags::Parse({"positional"}).ok());
  EXPECT_FALSE(Flags::Parse({"--dangling"}).ok());
  EXPECT_FALSE(Flags::Parse({"--a", "1", "--a", "2"}).ok());
}

TEST(FlagsTest, ParsesBooleans) {
  ASSERT_OK_AND_ASSIGN(Flags flags,
                       Flags::Parse({"--yes", "true", "--no", "0", "--bad",
                                     "maybe"}));
  ASSERT_OK_AND_ASSIGN(bool yes, flags.GetBool("yes", false));
  EXPECT_TRUE(yes);
  ASSERT_OK_AND_ASSIGN(bool no, flags.GetBool("no", true));
  EXPECT_FALSE(no);
  ASSERT_OK_AND_ASSIGN(bool fallback, flags.GetBool("absent", true));
  EXPECT_TRUE(fallback);
  EXPECT_FALSE(flags.GetBool("bad", false).ok());
}

TEST(FlagsTest, TracksUnreadFlags) {
  ASSERT_OK_AND_ASSIGN(Flags flags, Flags::Parse({"--used", "1", "--stray",
                                                  "2"}));
  (void)flags.Get("used");
  std::vector<std::string> stray = flags.UnreadFlags();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0], "stray");
}

TEST(CliTest, HelpAndUnknownCommand) {
  std::string help = RunOk({"help"});
  EXPECT_NE(help.find("simulate"), std::string::npos);
  EXPECT_NE(help.find("encode"), std::string::npos);
  Status unknown = RunErr({"frobnicate"});
  EXPECT_FALSE(unknown.ok());
  std::string empty_help = RunOk({});
  EXPECT_EQ(empty_help, UsageText());
}

// Full workflow: simulate -> stats -> learn-table -> encode -> info ->
// decode, all through the CLI surface.
TEST(CliTest, EndToEndWorkflow) {
  std::string dir = smeter::testing::TempPath("cli_e2e");
  RunOk({"simulate", "--out", dir, "--houses", "1", "--days", "3",
         "--seed", "9", "--outages", "0"});
  std::string channel = dir + "/house_1/channel_1.dat";

  std::string stats = RunOk({"stats", "--input", channel});
  EXPECT_NE(stats.find("median"), std::string::npos);
  EXPECT_NE(stats.find("samples"), std::string::npos);

  std::string table_path = dir + "/table.txt";
  std::string learn = RunOk({"learn-table", "--input", channel, "--out",
                             table_path, "--method", "median", "--level",
                             "4", "--history-seconds", "172800"});
  EXPECT_NE(learn.find("16 symbols"), std::string::npos);

  std::string symbols_path = dir + "/day.sym";
  std::string encode =
      RunOk({"encode", "--input", channel, "--table", table_path, "--out",
             symbols_path, "--window", "900"});
  EXPECT_NE(encode.find("encoded"), std::string::npos);

  std::string info = RunOk({"info", "--input", symbols_path});
  EXPECT_NE(info.find("packed symbolic series"), std::string::npos);
  EXPECT_NE(info.find("level 4"), std::string::npos);

  std::string table_info = RunOk({"info", "--input", table_path});
  EXPECT_NE(table_info.find("lookup table"), std::string::npos);
  EXPECT_NE(table_info.find("median"), std::string::npos);

  std::string csv = RunOk(
      {"decode", "--input", symbols_path, "--table", table_path});
  EXPECT_NE(csv.find("timestamp,watts"), std::string::npos);
  // 3 days at 15-minute windows -> 288 decoded rows + header.
  size_t lines = static_cast<size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 289u);
}

TEST(CliTest, CerWorkflow) {
  std::string dir = smeter::testing::TempPath("cli_cer");
  RunOk({"simulate", "--out", dir, "--houses", "2", "--days", "2",
         "--format", "cer"});
  std::string file = dir + "/meters.cer";
  std::string stats =
      RunOk({"stats", "--input", file, "--format", "cer", "--meter",
             "1001"});
  // 2 days at 30-minute cadence = 96 slots (minus any simulated outage).
  EXPECT_NE(stats.find("samples"), std::string::npos);
  EXPECT_NE(stats.find("median"), std::string::npos);
  Status missing_meter = RunErr(
      {"stats", "--input", file, "--format", "cer", "--meter", "7"});
  EXPECT_FALSE(missing_meter.ok());
}

TEST(CliTest, EncodeFleetWorkflow) {
  std::string dir = smeter::testing::TempPath("cli_fleet");
  RunOk({"simulate", "--out", dir, "--houses", "3", "--days", "2",
         "--seed", "4", "--outages", "0"});
  std::string out_dir = dir + "/encoded";
  std::string fleet =
      RunOk({"encode-fleet", "--input", dir, "--out", out_dir, "--level",
             "3", "--window", "900", "--threads", "2"});
  EXPECT_NE(fleet.find("house_1:"), std::string::npos);
  EXPECT_NE(fleet.find("house_3:"), std::string::npos);
  EXPECT_NE(fleet.find("3 households"), std::string::npos);
  EXPECT_NE(fleet.find("2 threads"), std::string::npos);

  // The per-household artifacts are real: info can read them back.
  std::string info = RunOk({"info", "--input", out_dir + "/house_2.symbols"});
  EXPECT_NE(info.find("packed symbolic series"), std::string::npos);
  EXPECT_NE(info.find("level 3"), std::string::npos);
  std::string table_info =
      RunOk({"info", "--input", out_dir + "/house_2.table"});
  EXPECT_NE(table_info.find("lookup table"), std::string::npos);

  // Thread count must be non-negative, and the input must hold houses.
  EXPECT_FALSE(RunErr({"encode-fleet", "--input", dir, "--out", out_dir,
                       "--threads", "-1"})
                   .ok());
  std::string empty = smeter::testing::TempPath("cli_fleet_empty");
  RunOk({"simulate", "--out", empty, "--houses", "1", "--days", "1",
         "--format", "cer"});
  EXPECT_FALSE(
      RunErr({"encode-fleet", "--input", empty, "--out", out_dir}).ok());
}

TEST(CliTest, EncodeFleetQuarantinesCorruptHouseholdAndStillSucceeds) {
  std::string dir = smeter::testing::TempPath("cli_fleet_corrupt");
  std::filesystem::remove_all(dir);  // TempPath is stable across runs
  RunOk({"simulate", "--out", dir, "--houses", "3", "--days", "1",
         "--seed", "8", "--outages", "0"});
  {
    std::ofstream corrupt(dir + "/house_2/channel_1.dat",
                          std::ios::binary | std::ios::trunc);
    corrupt << "this is not a meter reading\n";
  }
  std::string out_dir = dir + "/encoded";
  std::string fleet =
      RunOk({"encode-fleet", "--input", dir, "--out", out_dir,
             "--max-retries", "0", "--threads", "1"});
  EXPECT_NE(fleet.find("house_2: quarantined"), std::string::npos) << fleet;
  EXPECT_NE(fleet.find("2 ok, 0 degraded, 1 quarantined"), std::string::npos)
      << fleet;
  // The healthy households encoded; the corrupt one left no outputs.
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/house_1.symbols"));
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/house_3.symbols"));
  EXPECT_FALSE(std::filesystem::exists(out_dir + "/house_2.symbols"));
  // quality.json names the quarantined household and its underlying error.
  std::ifstream in(out_dir + "/quality.json", std::ios::binary);
  std::stringstream quality;
  quality << in.rdbuf();
  EXPECT_NE(quality.str().find("\"house_2\""), std::string::npos)
      << quality.str();
  EXPECT_NE(quality.str().find("\"quarantined\""), std::string::npos);
  EXPECT_NE(quality.str().find("\"households_quarantined\": 1"),
            std::string::npos);
}

TEST(CliTest, EncodeFleetResumeSkipsFinishedHouseholds) {
  std::string dir = smeter::testing::TempPath("cli_fleet_resume");
  std::filesystem::remove_all(dir);
  RunOk({"simulate", "--out", dir, "--houses", "2", "--days", "1",
         "--seed", "5", "--outages", "0"});
  std::string clean_dir = dir + "/clean";
  RunOk({"encode-fleet", "--input", dir, "--out", clean_dir, "--threads",
         "1"});

  // Replay a killed run: only house_1's checkpoint record survives, and
  // house_2's outputs are gone. A torn trailing append (the crash
  // signature) must be ignored.
  std::string resumed_dir = dir + "/resumed";
  RunOk({"encode-fleet", "--input", dir, "--out", resumed_dir, "--threads",
         "1"});
  std::string manifest_path = resumed_dir + "/fleet.manifest";
  ASSERT_OK_AND_ASSIGN(io::AppendLogContents log,
                       io::ReadAppendLog(manifest_path));
  ASSERT_TRUE(log.clean());
  std::string house1_record;
  for (const std::string& record : log.records) {
    if (record.find("house_1") != std::string::npos) house1_record = record;
  }
  ASSERT_FALSE(house1_record.empty());
  {
    std::string damaged = io::BuildAppendLog({house1_record});
    const std::string torn = io::EncodeAppendRecord("{\"name\":\"hou");
    damaged += torn.substr(0, torn.size() - 5);  // cut mid-frame
    std::ofstream manifest(manifest_path, std::ios::binary | std::ios::trunc);
    manifest << damaged;
  }
  std::filesystem::remove(resumed_dir + "/house_2.table");
  std::filesystem::remove(resumed_dir + "/house_2.symbols");

  std::string resumed =
      RunOk({"encode-fleet", "--input", dir, "--out", resumed_dir,
             "--resume", "true", "--threads", "1"});
  EXPECT_NE(resumed.find("house_1: "), std::string::npos);
  EXPECT_NE(resumed.find("[resumed]"), std::string::npos) << resumed;

  // The resumed run's outputs are bit-identical to the clean run's.
  for (const char* name :
       {"house_1.table", "house_1.symbols", "house_2.table",
        "house_2.symbols", "fleet.manifest", "quality.json"}) {
    std::ifstream a(clean_dir + "/" + name, std::ios::binary);
    std::ifstream b(resumed_dir + "/" + name, std::ios::binary);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str()) << name;
    EXPECT_FALSE(sa.str().empty()) << name;
  }
}

TEST(CliTest, EncodeFleetMatchesSerialSingleHouseEncode) {
  std::string dir = smeter::testing::TempPath("cli_fleet_eq");
  RunOk({"simulate", "--out", dir, "--houses", "2", "--days", "2",
         "--seed", "6", "--outages", "0"});
  std::string out_a = dir + "/threads1";
  std::string out_b = dir + "/threads4";
  RunOk({"encode-fleet", "--input", dir, "--out", out_a, "--threads", "1"});
  RunOk({"encode-fleet", "--input", dir, "--out", out_b, "--threads", "4"});
  for (const char* name : {"house_1", "house_2"}) {
    for (const char* ext : {".table", ".symbols"}) {
      std::ifstream a(out_a + "/" + name + ext, std::ios::binary);
      std::ifstream b(out_b + "/" + name + ext, std::ios::binary);
      std::stringstream sa, sb;
      sa << a.rdbuf();
      sb << b.rdbuf();
      EXPECT_EQ(sa.str(), sb.str()) << name << ext;
      EXPECT_FALSE(sa.str().empty()) << name << ext;
    }
  }
}

TEST(CliTest, UsefulErrors) {
  EXPECT_FALSE(RunErr({"stats"}).ok());  // missing --input
  EXPECT_FALSE(RunErr({"stats", "--input", "/no/such/file"}).ok());
  EXPECT_FALSE(
      RunErr({"stats", "--input", "/tmp", "--format", "exotic"}).ok());
  // Unknown flags are rejected, not ignored.
  std::string dir = smeter::testing::TempPath("cli_err");
  Status stray = RunErr({"simulate", "--out", dir, "--typo", "1"});
  ASSERT_FALSE(stray.ok());
  EXPECT_NE(stray.message().find("--typo"), std::string::npos);
}

TEST(CliTest, DecodeModeValidation) {
  std::string dir = smeter::testing::TempPath("cli_mode");
  RunOk({"simulate", "--out", dir, "--houses", "1", "--days", "3",
         "--outages", "0"});
  std::string channel = dir + "/house_1/channel_1.dat";
  std::string table_path = dir + "/t.txt";
  RunOk({"learn-table", "--input", channel, "--out", table_path});
  std::string symbols_path = dir + "/s.sym";
  RunOk({"encode", "--input", channel, "--table", table_path, "--out",
         symbols_path});
  EXPECT_FALSE(RunErr({"decode", "--input", symbols_path, "--table",
                       table_path, "--mode", "exotic"})
                   .ok());
  std::string center = RunOk({"decode", "--input", symbols_path, "--table",
                              table_path, "--mode", "center"});
  EXPECT_NE(center.find("timestamp,watts"), std::string::npos);
}

TEST(CliExitCodeTest, UnknownSubcommandExitsNonZeroWithUsage) {
  std::ostringstream out, err;
  int code = RunCliExitCode({"frobnicate"}, out, err);
  EXPECT_NE(code, 0);
  EXPECT_NE(err.str().find("unknown command 'frobnicate'"),
            std::string::npos);
  // Usage errors reprint the full usage text so the fix is one screen away.
  EXPECT_NE(err.str().find(UsageText()), std::string::npos);
}

TEST(CliExitCodeTest, UnknownFlagExitsNonZeroWithUsage) {
  std::ostringstream out, err;
  // --out is required and parsed before the stray-flag check, so supply it;
  // the stray check still refuses --bogus before anything is written.
  const std::string dir = smeter::testing::TempPath("cli_unknown_flag");
  int code =
      RunCliExitCode({"simulate", "--out", dir, "--bogus", "1"}, out, err);
  EXPECT_NE(code, 0);
  EXPECT_NE(err.str().find("unknown flag(s): --bogus"), std::string::npos);
  EXPECT_NE(err.str().find(UsageText()), std::string::npos);
}

TEST(CliExitCodeTest, MalformedFlagSyntaxExitsNonZeroWithUsage) {
  std::ostringstream out, err;
  EXPECT_NE(RunCliExitCode({"stats", "--input"}, out, err), 0);
  EXPECT_NE(err.str().find(UsageText()), std::string::npos);

  std::ostringstream out2, err2;
  EXPECT_NE(RunCliExitCode({"stats", "stray_positional"}, out2, err2), 0);
  EXPECT_NE(err2.str().find(UsageText()), std::string::npos);
}

TEST(CliExitCodeTest, ProcessingErrorsDoNotReprintUsage) {
  // A missing input file is the operator's problem, not a usage problem;
  // drowning the real error in the usage text would hide it.
  std::ostringstream out, err;
  int code = RunCliExitCode(
      {"stats", "--input", "/nonexistent/trace.dat"}, out, err);
  EXPECT_NE(code, 0);
  EXPECT_FALSE(err.str().empty());
  EXPECT_EQ(err.str().find(UsageText()), std::string::npos);
}

TEST(CliExitCodeTest, UsageTextDocumentsTheNetCommands) {
  const std::string usage = UsageText();
  EXPECT_NE(usage.find("ingestd"), std::string::npos);
  EXPECT_NE(usage.find("loadgen"), std::string::npos);
}

TEST(CliExitCodeTest, SuccessIsExitZero) {
  std::ostringstream out, err;
  EXPECT_EQ(RunCliExitCode({"help"}, out, err), 0);
  EXPECT_TRUE(err.str().empty());
}

}  // namespace
}  // namespace smeter::cli
