// Spool durability tests: record codec closure, the file-level state
// machine (header/batch/seal/done ordering, consecutive seqs), crash
// recovery via Resume() after torn tails, and the client.spool.append
// fault seam. The spool is the client half of exactly-once delivery, so
// every test here is really a statement about what survives a kill -9.

#include "client/spool.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/io.h"
#include "core/symbol.h"
#include "net/wire.h"
#include "testutil.h"

namespace smeter::client {
namespace {

using smeter::testing::TempPath;

SpoolHeader TestHeader() {
  SpoolHeader header;
  header.meter_id = "meter_7";
  header.table_version = 3;
  header.level = 4;
  header.step_seconds = 900;
  header.table_blob = "serialized-table-bytes";
  return header;
}

SpoolBatch TestBatch(uint64_t seq, int64_t start = 1000) {
  SpoolBatch batch;
  batch.seq = seq;
  batch.start_timestamp = start;
  batch.symbols = {1, 5, net::kWireGapSymbol, 14};
  return batch;
}

// Writes a spool file from raw record payloads, bypassing the Spool class,
// so structural violations unreachable through the API are testable.
void WriteRawSpool(const std::string& path,
                   const std::vector<std::string>& records) {
  ASSERT_OK(io::AtomicWriteFile(path, io::BuildAppendLog(records)));
}

std::string HeaderRecord() {
  SpoolRecord record;
  record.type = SpoolRecordType::kHeader;
  record.header = TestHeader();
  return EncodeSpoolRecord(record);
}

std::string BatchRecord(uint64_t seq) {
  SpoolRecord record;
  record.type = SpoolRecordType::kBatch;
  record.batch = TestBatch(seq);
  return EncodeSpoolRecord(record);
}

std::string SealRecord() {
  SpoolRecord record;
  record.type = SpoolRecordType::kSeal;
  record.seal = {4, 0, 1};
  return EncodeSpoolRecord(record);
}

std::string DoneRecord() {
  SpoolRecord record;
  record.type = SpoolRecordType::kDone;
  return EncodeSpoolRecord(record);
}

TEST(SpoolRecordTest, EveryRecordTypeRoundTrips) {
  SpoolRecord header;
  header.type = SpoolRecordType::kHeader;
  header.header = TestHeader();
  ASSERT_OK_AND_ASSIGN(SpoolRecord parsed,
                       ParseSpoolRecord(EncodeSpoolRecord(header)));
  EXPECT_EQ(parsed.type, SpoolRecordType::kHeader);
  EXPECT_TRUE(parsed.header == header.header);

  SpoolRecord batch;
  batch.type = SpoolRecordType::kBatch;
  batch.batch = TestBatch(9, -12345);
  ASSERT_OK_AND_ASSIGN(parsed, ParseSpoolRecord(EncodeSpoolRecord(batch)));
  EXPECT_EQ(parsed.type, SpoolRecordType::kBatch);
  EXPECT_TRUE(parsed.batch == batch.batch);

  SpoolRecord seal;
  seal.type = SpoolRecordType::kSeal;
  seal.seal = {10, 2, 3};
  ASSERT_OK_AND_ASSIGN(parsed, ParseSpoolRecord(EncodeSpoolRecord(seal)));
  EXPECT_EQ(parsed.type, SpoolRecordType::kSeal);
  EXPECT_TRUE(parsed.seal == seal.seal);

  SpoolRecord done;
  done.type = SpoolRecordType::kDone;
  ASSERT_OK_AND_ASSIGN(parsed, ParseSpoolRecord(EncodeSpoolRecord(done)));
  EXPECT_EQ(parsed.type, SpoolRecordType::kDone);
}

TEST(SpoolRecordTest, ParserIsStrict) {
  // Unknown type byte.
  EXPECT_FALSE(ParseSpoolRecord(std::string(1, '\x09')).ok());
  EXPECT_FALSE(ParseSpoolRecord("").ok());

  // Truncation anywhere fails (every prefix of a valid record).
  const std::string header = HeaderRecord();
  for (size_t cut = 0; cut < header.size(); ++cut) {
    EXPECT_FALSE(ParseSpoolRecord(std::string_view(header).substr(0, cut)).ok())
        << "prefix of " << cut << " bytes parsed";
  }
  // Trailing bytes fail.
  EXPECT_FALSE(ParseSpoolRecord(header + "x").ok());
  EXPECT_FALSE(ParseSpoolRecord(DoneRecord() + "x").ok());

  // Out-of-domain fields fail.
  SpoolRecord bad;
  bad.type = SpoolRecordType::kBatch;
  bad.batch = TestBatch(0);  // seq 0
  EXPECT_FALSE(ParseSpoolRecord(EncodeSpoolRecord(bad)).ok());
  bad.batch = TestBatch(1);
  bad.batch.symbols.clear();  // empty batch
  EXPECT_FALSE(ParseSpoolRecord(EncodeSpoolRecord(bad)).ok());

  SpoolRecord bad_header;
  bad_header.type = SpoolRecordType::kHeader;
  bad_header.header = TestHeader();
  bad_header.header.level = kMaxSymbolLevel + 1;
  EXPECT_FALSE(ParseSpoolRecord(EncodeSpoolRecord(bad_header)).ok());
  bad_header.header = TestHeader();
  bad_header.header.step_seconds = 0;
  EXPECT_FALSE(ParseSpoolRecord(EncodeSpoolRecord(bad_header)).ok());
  bad_header.header = TestHeader();
  bad_header.header.meter_id = "../evil";
  EXPECT_FALSE(ParseSpoolRecord(EncodeSpoolRecord(bad_header)).ok());
  bad_header.header = TestHeader();
  bad_header.header.format_version = 2;  // future version
  EXPECT_FALSE(ParseSpoolRecord(EncodeSpoolRecord(bad_header)).ok());
}

TEST(SpoolTest, CreateAppendSealDoneLifecycle) {
  const std::string path = TempPath("lifecycle.spool");
  ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Create(path, TestHeader()));
  EXPECT_EQ(spool.next_seq(), 1u);
  EXPECT_FALSE(spool.sealed());

  ASSERT_OK(spool.AppendBatch(TestBatch(1)));
  ASSERT_OK(spool.AppendBatch(TestBatch(2, 1000 + 4 * 900)));
  EXPECT_EQ(spool.next_seq(), 3u);
  EXPECT_EQ(spool.symbols_spooled(), 8u);

  ASSERT_OK(spool.Seal({6, 0, 2}));
  EXPECT_TRUE(spool.sealed());
  ASSERT_OK(spool.MarkDone());
  EXPECT_TRUE(spool.done());

  ASSERT_OK_AND_ASSIGN(SpoolContents contents, ReadSpool(path));
  EXPECT_TRUE(contents.header == TestHeader());
  ASSERT_EQ(contents.batches.size(), 2u);
  EXPECT_TRUE(contents.batches[0] == TestBatch(1));
  EXPECT_TRUE(contents.sealed);
  EXPECT_EQ(contents.seal.windows_valid, 6u);
  EXPECT_TRUE(contents.done);
  EXPECT_FALSE(contents.torn_tail);
}

TEST(SpoolTest, CreateRefusesAnExistingFile) {
  const std::string path = TempPath("exists.spool");
  ASSERT_OK(Spool::Create(path, TestHeader()).status());
  EXPECT_EQ(Spool::Create(path, TestHeader()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SpoolTest, OrderingViolationsAreRefusedAtAppendTime) {
  const std::string path = TempPath("ordering.spool");
  ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Create(path, TestHeader()));
  // Wrong seq (must be next_seq).
  EXPECT_FALSE(spool.AppendBatch(TestBatch(2)).ok());
  // Symbol outside the header's level-4 alphabet.
  SpoolBatch wide = TestBatch(1);
  wide.symbols[0] = 16;
  EXPECT_FALSE(spool.AppendBatch(wide).ok());
  // DONE before SEAL.
  EXPECT_FALSE(spool.MarkDone().ok());

  ASSERT_OK(spool.AppendBatch(TestBatch(1)));
  ASSERT_OK(spool.Seal({4, 0, 0}));
  // Batch after SEAL, double SEAL.
  EXPECT_FALSE(spool.AppendBatch(TestBatch(2)).ok());
  EXPECT_FALSE(spool.Seal({4, 0, 0}).ok());
  ASSERT_OK(spool.MarkDone());
  EXPECT_FALSE(spool.MarkDone().ok());
}

TEST(SpoolTest, ResumeContinuesAtTheNextSeq) {
  const std::string path = TempPath("resume.spool");
  {
    ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Create(path, TestHeader()));
    ASSERT_OK(spool.AppendBatch(TestBatch(1)));
    ASSERT_OK(spool.AppendBatch(TestBatch(2)));
    // Spool handle dropped mid-upload (clean process exit, no seal).
  }
  ASSERT_OK_AND_ASSIGN(Spool resumed, Spool::Resume(path));
  EXPECT_EQ(resumed.next_seq(), 3u);
  EXPECT_EQ(resumed.symbols_spooled(), 8u);
  EXPECT_FALSE(resumed.sealed());
  ASSERT_OK(resumed.AppendBatch(TestBatch(3)));
  ASSERT_OK(resumed.Seal({12, 0, 3}));

  ASSERT_OK_AND_ASSIGN(SpoolContents contents, ReadSpool(path));
  EXPECT_EQ(contents.batches.size(), 3u);
  EXPECT_TRUE(contents.sealed);
}

TEST(SpoolTest, ResumeTruncatesATornTail) {
  const std::string path = TempPath("torn.spool");
  {
    ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Create(path, TestHeader()));
    ASSERT_OK(spool.AppendBatch(TestBatch(1)));
  }
  // Simulate kill -9 mid-append: half of the next record's frame reaches
  // the disk.
  const std::string torn = io::EncodeAppendRecord(BatchRecord(2));
  ASSERT_OK_AND_ASSIGN(std::string bytes, io::ReadFileToString(path));
  const size_t intact = bytes.size();
  ASSERT_OK(io::AtomicWriteFile(path,
                                bytes + torn.substr(0, torn.size() / 2)));

  ASSERT_OK_AND_ASSIGN(SpoolContents contents, ReadSpool(path));
  EXPECT_TRUE(contents.torn_tail);
  EXPECT_EQ(contents.valid_bytes, intact);
  EXPECT_EQ(contents.batches.size(), 1u);

  ASSERT_OK_AND_ASSIGN(Spool resumed, Spool::Resume(path));
  EXPECT_EQ(resumed.next_seq(), 2u);
  ASSERT_OK(resumed.AppendBatch(TestBatch(2)));
  // The re-appended batch lands where the torn bytes were.
  ASSERT_OK_AND_ASSIGN(SpoolContents after, ReadSpool(path));
  EXPECT_FALSE(after.torn_tail);
  EXPECT_EQ(after.batches.size(), 2u);
}

TEST(SpoolTest, MidFileCorruptionIsDataLoss) {
  const std::string path = TempPath("corrupt.spool");
  WriteRawSpool(path, {HeaderRecord(), BatchRecord(1), SealRecord()});
  ASSERT_OK_AND_ASSIGN(std::string bytes, io::ReadFileToString(path));
  // Flip a bit in the middle record's payload (well before the tail).
  bytes[io::kAppendLogMagicSize + 8 + HeaderRecord().size() + 8 + 4] ^= 0x1;
  ASSERT_OK(io::AtomicWriteFile(path, bytes));

  EXPECT_EQ(ReadSpool(path).status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(Spool::Resume(path).ok());
}

TEST(SpoolTest, StructuralViolationsAreRefusedAtReadTime) {
  const std::string path = TempPath("structure.spool");

  WriteRawSpool(path, {BatchRecord(1)});
  EXPECT_FALSE(ReadSpool(path).ok());  // first record not a header

  WriteRawSpool(path, {HeaderRecord(), HeaderRecord()});
  EXPECT_FALSE(ReadSpool(path).ok());  // duplicate header

  WriteRawSpool(path, {HeaderRecord(), BatchRecord(2)});
  EXPECT_FALSE(ReadSpool(path).ok());  // seq gap (expected 1)

  WriteRawSpool(path, {HeaderRecord(), BatchRecord(1), DoneRecord()});
  EXPECT_FALSE(ReadSpool(path).ok());  // DONE before SEAL

  WriteRawSpool(path,
                {HeaderRecord(), BatchRecord(1), SealRecord(), BatchRecord(2)});
  EXPECT_FALSE(ReadSpool(path).ok());  // batch after SEAL

  WriteRawSpool(path, {HeaderRecord(), BatchRecord(1), SealRecord(),
                       DoneRecord(), SealRecord()});
  EXPECT_FALSE(ReadSpool(path).ok());  // record after DONE

  WriteRawSpool(path, {});
  EXPECT_FALSE(ReadSpool(path).ok());  // no header record
}

TEST(SpoolTest, OpenOrCreateResumesAndChecksTheHeader) {
  const std::string path = TempPath("openorcreate.spool");
  {
    ASSERT_OK_AND_ASSIGN(Spool spool,
                         Spool::OpenOrCreate(path, TestHeader()));
    ASSERT_OK(spool.AppendBatch(TestBatch(1)));
  }
  // Same header: resumes.
  ASSERT_OK_AND_ASSIGN(Spool resumed, Spool::OpenOrCreate(path, TestHeader()));
  EXPECT_EQ(resumed.next_seq(), 2u);

  // Different header (re-encoded meter): refused, file untouched.
  SpoolHeader other = TestHeader();
  other.level = 5;
  EXPECT_EQ(Spool::OpenOrCreate(path, other).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_OK_AND_ASSIGN(SpoolContents contents, ReadSpool(path));
  EXPECT_EQ(contents.batches.size(), 1u);
}

TEST(SpoolTest, AppendFaultSeamFailsTheAppendNotTheFile) {
  const std::string path = TempPath("fault.spool");
  ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Create(path, TestHeader()));
  ASSERT_OK(spool.AppendBatch(TestBatch(1)));
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("client.spool.append", 1, 1)});
    EXPECT_FALSE(spool.AppendBatch(TestBatch(2)).ok());
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  // The failed append changed nothing durable: the file still ends at
  // batch 1, and a resumed writer picks up exactly there.
  ASSERT_OK_AND_ASSIGN(Spool resumed, Spool::Resume(path));
  EXPECT_EQ(resumed.next_seq(), 2u);
  ASSERT_OK(resumed.AppendBatch(TestBatch(2)));
  ASSERT_OK_AND_ASSIGN(SpoolContents contents, ReadSpool(path));
  EXPECT_EQ(contents.batches.size(), 2u);
}

}  // namespace
}  // namespace smeter::client
