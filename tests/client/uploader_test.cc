// Uploader tests over real loopback sockets: one spool replayed as a wire
// conversation must land in the archive and earn its DONE marker, done
// spools must cost zero network traffic, and the client.connect /
// client.send fault seams must surface as retries that converge — the
// connect/retry half of the exactly-once contract.

#include "client/uploader.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "client/spool.h"
#include "common/fault_injection.h"
#include "common/sync.h"
#include "core/lookup_table.h"
#include "net/ingest_server.h"
#include "net/wire.h"
#include "testutil.h"

namespace smeter::client {
namespace {

constexpr int kLevel = 4;

std::string TableBlob() {
  LookupTableOptions options;
  options.level = kLevel;
  options.method = SeparatorMethod::kMedian;
  std::vector<double> training;
  for (int i = 1; i <= 64; ++i) training.push_back(10.0 * i);
  Result<LookupTable> table = LookupTable::Build(training, options);
  SMETER_CHECK(table.ok());
  return table->Serialize();
}

SpoolHeader TestHeader(const std::string& meter = "meter_up1") {
  SpoolHeader header;
  header.meter_id = meter;
  header.table_version = 1;
  header.level = kLevel;
  header.step_seconds = 900;
  header.table_blob = TableBlob();
  return header;
}

// A sealed single-batch spool ready for uplink: 4 windows, one of them a
// gap, quality counts matching what the server will reconstruct.
std::string MakeSealedSpool(const std::string& dir,
                            const std::string& meter = "meter_up1") {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + meter + kSpoolSuffix;
  Result<Spool> spool = Spool::Create(path, TestHeader(meter));
  SMETER_CHECK(spool.ok());
  SpoolBatch batch;
  batch.seq = 1;
  batch.start_timestamp = 1'000;
  batch.symbols = {1, 5, net::kWireGapSymbol, 14};
  SMETER_CHECK(spool->AppendBatch(batch).ok());
  SMETER_CHECK(spool->Seal({3, 0, 1}).ok());
  return path;
}

// An ingest server on an ephemeral loopback port; joins on destruction.
struct RunningServer {
  std::unique_ptr<net::IngestServer> server;
  std::thread thread;
  Status result;

  explicit RunningServer(const std::string& archive_dir,
                         uint64_t exit_after = 0) {
    net::IngestServerOptions options;
    options.archive_dir = archive_dir;
    options.port = 0;
    options.drain_grace_ms = 500;
    options.exit_after_households = exit_after;
    auto created = net::IngestServer::Create(std::move(options));
    SMETER_CHECK(created.ok());
    server = std::move(created.value());
    thread = std::thread([this] { result = server->Run(); });
  }

  RunningServer(const RunningServer&) = delete;
  RunningServer& operator=(const RunningServer&) = delete;

  ~RunningServer() {
    if (thread.joinable()) {
      server->RequestDrain();
      thread.join();
    }
  }
};

UploaderOptions Options(uint16_t port) {
  UploaderOptions options;
  options.port = port;
  // Failures in these tests are injected, not timing-dependent; retry
  // fast so the suite stays quick.
  options.backoff.base_ms = 1;
  options.backoff.cap_ms = 5;
  return options;
}

TEST(SpoolUplinkTest, SealedSpoolDeliversAndEarnsItsDoneMarker) {
  const std::string dir = smeter::testing::TempPath("uplink_deliver");
  const std::string path = MakeSealedSpool(dir + "/spool");
  RunningServer running(dir + "/archive", 1);

  UploadOutcome outcome =
      UploadSpool(Options(running.server->port()), path);
  ASSERT_OK(outcome.status);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_FALSE(outcome.already_done);
  EXPECT_EQ(outcome.meter_id, "meter_up1");
  EXPECT_EQ(outcome.attempts, 1u);
  // HELLO + TABLE_ANNOUNCE + 1 SYMBOL_BATCH + GOODBYE.
  EXPECT_EQ(outcome.frames_sent, 4u);
  EXPECT_EQ(outcome.symbols_sent, 4u);

  running.thread.join();  // exit_after_households drains the server
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, 1u);
  EXPECT_EQ(running.server->counters().symbols_persisted, 4u);

  // DONE is on disk: the spool is now inert.
  ASSERT_OK_AND_ASSIGN(SpoolContents contents, ReadSpool(path));
  EXPECT_TRUE(contents.done);
  EXPECT_TRUE(std::filesystem::exists(dir + "/archive/meter_up1.symbols"));
}

TEST(SpoolUplinkTest, DoneSpoolSendsNothing) {
  const std::string dir = smeter::testing::TempPath("uplink_done");
  const std::string path = MakeSealedSpool(dir + "/spool");
  {
    ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Resume(path));
    ASSERT_OK(spool.MarkDone());
  }
  // Port 1 is unreachable — proving no connection is even attempted.
  UploadOutcome outcome = UploadSpool(Options(1), path);
  ASSERT_OK(outcome.status);
  EXPECT_TRUE(outcome.already_done);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 0u);
  EXPECT_EQ(outcome.frames_sent, 0u);
}

TEST(SpoolUplinkTest, UnsealedSpoolIsSkippedNotUploaded) {
  const std::string dir = smeter::testing::TempPath("uplink_unsealed");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/meter_up1.spool";
  {
    ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Create(path, TestHeader()));
    SpoolBatch batch;
    batch.seq = 1;
    batch.start_timestamp = 0;
    batch.symbols = {2, 3};
    ASSERT_OK(spool.AppendBatch(batch));
    // No SEAL: the meter is still accumulating.
  }
  UploadOutcome outcome = UploadSpool(Options(1), path);
  ASSERT_OK(outcome.status);
  EXPECT_TRUE(outcome.skipped_unsealed);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.frames_sent, 0u);
}

TEST(SpoolUplinkTest, ConnectFaultRetriesAndConverges) {
  const std::string dir = smeter::testing::TempPath("uplink_connect_fault");
  const std::string path = MakeSealedSpool(dir + "/spool");
  RunningServer running(dir + "/archive", 1);

  UploadOutcome outcome;
  {
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("client.connect", 1, 1)});
    outcome = UploadSpool(Options(running.server->port()), path);
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  ASSERT_OK(outcome.status);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 2u);

  running.thread.join();
  ASSERT_OK(running.result);
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, 1u);
}

TEST(SpoolUplinkTest, SendFaultAbortsTheAttemptThenReplaysCleanly) {
  const std::string dir = smeter::testing::TempPath("uplink_send_fault");
  const std::string path = MakeSealedSpool(dir + "/spool");
  RunningServer running(dir + "/archive", 1);

  UploadOutcome outcome;
  {
    // Kill the 3rd frame write (the SYMBOL_BATCH) of attempt 1: the
    // conversation aborts mid-stream and attempt 2 replays from HELLO.
    fault::ScopedFaultPlan plan(
        {fault::FaultRule::FailCalls("client.send", 3, 3)});
    outcome = UploadSpool(Options(running.server->port()), path);
    EXPECT_EQ(plan.TotalInjected(), 1u);
  }
  ASSERT_OK(outcome.status);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 2u);
  // Attempt 1 sent HELLO + TABLE; attempt 2 all four.
  EXPECT_EQ(outcome.frames_sent, 6u);

  running.thread.join();
  ASSERT_OK(running.result);
  // A half-uploaded then replayed meter lands exactly once.
  ScopedThreadRole owner(running.server->role());
  EXPECT_EQ(running.server->counters().households_persisted, 1u);
  EXPECT_EQ(running.server->counters().symbols_persisted, 4u);
}

TEST(SpoolUplinkTest, ExhaustedAttemptsLeaveTheSpoolIntact) {
  const std::string dir = smeter::testing::TempPath("uplink_exhausted");
  const std::string path = MakeSealedSpool(dir + "/spool");

  UploaderOptions options = Options(1);  // nothing listens on port 1
  options.max_attempts = 2;
  UploadOutcome outcome = UploadSpool(options, path);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 2u);

  // The failure cost nothing durable: still sealed, not done, ready for
  // the next drain.
  ASSERT_OK_AND_ASSIGN(SpoolContents contents, ReadSpool(path));
  EXPECT_TRUE(contents.sealed);
  EXPECT_FALSE(contents.done);
  EXPECT_EQ(contents.batches.size(), 1u);
}

TEST(SpoolUplinkTest, DrainSpoolDirReportsEveryOutcomeClass) {
  const std::string dir = smeter::testing::TempPath("uplink_drain");
  const std::string spool_dir = dir + "/spool";
  MakeSealedSpool(spool_dir, "meter_a");
  const std::string done_path = MakeSealedSpool(spool_dir, "meter_b");
  {
    ASSERT_OK_AND_ASSIGN(Spool spool, Spool::Resume(done_path));
    ASSERT_OK(spool.MarkDone());
  }
  {
    Result<Spool> unsealed =
        Spool::Create(spool_dir + "/meter_c.spool", TestHeader("meter_c"));
    ASSERT_OK(unsealed.status());
    SpoolBatch batch;
    batch.seq = 1;
    batch.start_timestamp = 0;
    batch.symbols = {7};
    ASSERT_OK(unsealed->AppendBatch(batch));
  }

  RunningServer running(dir + "/archive", 1);
  ASSERT_OK_AND_ASSIGN(
      UplinkReport report,
      DrainSpoolDir(Options(running.server->port()), spool_dir, 2));
  EXPECT_EQ(report.spools_total, 3u);
  EXPECT_EQ(report.delivered, 1u);  // meter_a went over the wire
  EXPECT_EQ(report.already_done, 1u);
  EXPECT_EQ(report.skipped_unsealed, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(report.reconnects, 0u);

  // A second drain is pure dedup: everything eligible is done already.
  ASSERT_OK_AND_ASSIGN(UplinkReport again,
                       DrainSpoolDir(Options(1), spool_dir, 1));
  EXPECT_EQ(again.delivered, 0u);
  EXPECT_EQ(again.already_done, 2u);
  EXPECT_EQ(again.frames_sent, 0u);
}

TEST(SpoolUplinkTest, RemoveDoneUnlinksAfterTheMarkerIsDurable) {
  const std::string dir = smeter::testing::TempPath("uplink_remove");
  const std::string path = MakeSealedSpool(dir + "/spool");
  RunningServer running(dir + "/archive", 1);

  UploaderOptions options = Options(running.server->port());
  options.remove_done = true;
  UploadOutcome outcome = UploadSpool(options, path);
  ASSERT_OK(outcome.status);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace smeter::client
