#include "app/forecaster.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "testutil.h"

namespace smeter::app {
namespace {

ml::ClassifierFactory NbFactory() {
  return [] { return std::make_unique<ml::NaiveBayes>(); };
}

// A strongly diurnal hourly consumption pattern with mild noise.
std::vector<double> DiurnalSeries(size_t hours, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(hours);
  for (size_t h = 0; h < hours; ++h) {
    double phase = 2.0 * 3.14159265358979 * static_cast<double>(h % 24) / 24.0;
    double base = 300.0 + 250.0 * std::sin(phase);
    values.push_back(std::max(base + rng.Gaussian(0.0, 20.0), 10.0));
  }
  return values;
}

ForecasterOptions SmallOptions() {
  ForecasterOptions options;
  options.level = 3;
  options.lag = 6;
  return options;
}

TEST(SymbolicForecasterTest, TrainValidatesInput) {
  SymbolicForecaster forecaster(NbFactory(), SmallOptions());
  EXPECT_FALSE(forecaster.Train({1.0, 2.0, 3.0}).ok());  // < lag + 2
  EXPECT_FALSE(forecaster.trained());
  ForecasterOptions zero_lag = SmallOptions();
  zero_lag.lag = 0;
  SymbolicForecaster bad(NbFactory(), zero_lag);
  EXPECT_FALSE(bad.Train(DiurnalSeries(48, 1)).ok());
}

TEST(SymbolicForecasterTest, PredictBeforeTrainFails) {
  SymbolicForecaster forecaster(NbFactory(), SmallOptions());
  EXPECT_FALSE(forecaster.PredictNext(DiurnalSeries(12, 1)).ok());
  EXPECT_FALSE(forecaster.Forecast(DiurnalSeries(12, 1), 3).ok());
  EXPECT_FALSE(forecaster.EvaluateMae({1.0}, {1.0}).ok());
}

TEST(SymbolicForecasterTest, LearnsDiurnalPattern) {
  std::vector<double> series = DiurnalSeries(7 * 24 + 24, 5);
  std::vector<double> history(series.begin(), series.begin() + 7 * 24);
  std::vector<double> next_day(series.begin() + 7 * 24, series.end());

  SymbolicForecaster forecaster(NbFactory(), SmallOptions());
  ASSERT_OK(forecaster.Train(history));
  ASSERT_TRUE(forecaster.trained());

  ASSERT_OK_AND_ASSIGN(double mae,
                       forecaster.EvaluateMae(history, next_day));
  // The mean predictor's MAE on a 250 W sinusoid is ~160 W; the symbolic
  // forecaster must do far better on this clean pattern.
  EXPECT_LT(mae, 100.0);
}

TEST(SymbolicForecasterTest, PredictionsStayInTableDomain) {
  std::vector<double> history = DiurnalSeries(7 * 24, 7);
  SymbolicForecaster forecaster(NbFactory(), SmallOptions());
  ASSERT_OK(forecaster.Train(history));
  ASSERT_OK_AND_ASSIGN(double next, forecaster.PredictNext(history));
  EXPECT_GE(next, forecaster.table().domain_min());
  EXPECT_LE(next, forecaster.table().domain_max());
}

TEST(SymbolicForecasterTest, IteratedForecastHasRequestedHorizon) {
  std::vector<double> history = DiurnalSeries(7 * 24, 9);
  SymbolicForecaster forecaster(NbFactory(), SmallOptions());
  ASSERT_OK(forecaster.Train(history));
  ASSERT_OK_AND_ASSIGN(std::vector<double> forecast,
                       forecaster.Forecast(history, 24));
  ASSERT_EQ(forecast.size(), 24u);
  for (double v : forecast) {
    EXPECT_GE(v, forecaster.table().domain_min());
    EXPECT_LE(v, forecaster.table().domain_max());
  }
  EXPECT_FALSE(forecaster.Forecast(history, 0).ok());
}

TEST(SymbolicForecasterTest, IteratedForecastTracksDiurnalShape) {
  std::vector<double> series = DiurnalSeries(7 * 24 + 24, 11);
  std::vector<double> history(series.begin(), series.begin() + 7 * 24);
  std::vector<double> next_day(series.begin() + 7 * 24, series.end());
  SymbolicForecaster forecaster(NbFactory(), SmallOptions());
  ASSERT_OK(forecaster.Train(history));
  ASSERT_OK_AND_ASSIGN(std::vector<double> forecast,
                       forecaster.Forecast(history, 24));
  // Even without teacher forcing the forecast should correlate with the
  // true day: high hours high, low hours low.
  double mae = 0.0;
  for (size_t i = 0; i < 24; ++i) mae += std::abs(forecast[i] - next_day[i]);
  mae /= 24.0;
  EXPECT_LT(mae, 160.0);  // clearly better than predicting the mean
}

TEST(SymbolicForecasterTest, RejectsShortOrBadRecentWindow) {
  std::vector<double> history = DiurnalSeries(7 * 24, 13);
  SymbolicForecaster forecaster(NbFactory(), SmallOptions());
  ASSERT_OK(forecaster.Train(history));
  EXPECT_FALSE(forecaster.PredictNext({1.0, 2.0}).ok());  // < lag
  std::vector<double> with_nan(history.begin(), history.begin() + 6);
  with_nan[3] = std::nan("");
  EXPECT_FALSE(forecaster.PredictNext(with_nan).ok());
}

TEST(SymbolicForecasterTest, WorksWithRandomForest) {
  std::vector<double> series = DiurnalSeries(7 * 24 + 12, 17);
  std::vector<double> history(series.begin(), series.begin() + 7 * 24);
  std::vector<double> tail(series.begin() + 7 * 24, series.end());
  ml::RandomForestOptions rf;
  rf.num_trees = 15;
  SymbolicForecaster forecaster(
      [rf] { return std::make_unique<ml::RandomForest>(rf); },
      SmallOptions());
  ASSERT_OK(forecaster.Train(history));
  ASSERT_OK_AND_ASSIGN(double mae, forecaster.EvaluateMae(history, tail));
  EXPECT_LT(mae, 120.0);
}

TEST(SymbolicForecasterTest, RangeMeanSemanticsSupported) {
  ForecasterOptions options = SmallOptions();
  options.semantics = ReconstructionMode::kRangeMean;
  std::vector<double> history = DiurnalSeries(7 * 24, 19);
  SymbolicForecaster forecaster(NbFactory(), options);
  ASSERT_OK(forecaster.Train(history));
  EXPECT_OK(forecaster.PredictNext(history).status());
}

}  // namespace
}  // namespace smeter::app
